(* Perf gate: compare the two highest-numbered BENCH_<n>.json snapshots
   in the working directory (or two explicit paths given as arguments)
   and fail when any probe present in both regressed committed
   throughput by more than the threshold.

   The snapshots are written by [bench/main.exe --json] with one probe
   object per line and a fixed field order (see [probe_to_json]), so the
   parser below extracts fields line by line instead of pulling in a
   JSON library — the bench writer is the only producer.

     dune exec tools/bench_diff.exe                # two newest snapshots
     dune exec tools/bench_diff.exe -- OLD NEW     # explicit files

   Exit codes: 0 = clean (warnings allowed), 1 = regression beyond the
   threshold, 2 = usage/parse error. *)

let threshold = 0.20 (* fail when committed/s drops by more than this *)

type row = {
  probe : string;
  throughput : float;
  msgs_per_commit : float;
  forces_per_commit : float;
}

(* --- minimal field extraction over the fixed one-probe-per-line shape --- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let string_field line key =
  match find_sub line (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let float_field line key =
  match find_sub line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some start ->
      let n = String.length line in
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let load path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "bench_diff: cannot open %s: %s\n" path e;
      exit 2
  in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match string_field line "probe" with
       | None -> ()
       | Some probe ->
           (* The headline number is mandatory; auxiliary counters
              default to 0 so a snapshot written before a counter
              existed (or after one is retired) still diffs instead of
              killing the gate. *)
           let num key =
             match float_field line key with
             | Some v -> v
             | None ->
                 Printf.eprintf "bench_diff: %s: probe %s lacks %s\n" path
                   probe key;
                 exit 2
           in
           let num_opt key =
             Option.value (float_field line key) ~default:0.
           in
           rows :=
             {
               probe;
               throughput = num "throughput_txn_s";
               msgs_per_commit = num_opt "msgs_per_commit";
               forces_per_commit = num_opt "forces_per_commit";
             }
             :: !rows
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(* --- snapshot discovery: the two highest BENCH_<n>.json indices --- *)

let snapshot_index name =
  Scanf.sscanf_opt name "BENCH_%d.json%!" (fun n -> n)

let newest_two () =
  let indexed =
    Array.to_list (Sys.readdir ".")
    |> List.filter_map (fun name ->
           match snapshot_index name with
           | Some n -> Some (n, name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  match indexed with
  | (_, newer) :: (_, older) :: _ -> (older, newer)
  | _ ->
      Printf.eprintf
        "bench_diff: need two BENCH_<n>.json snapshots to compare (run \
         `make bench-json` against a committed baseline)\n";
      exit 2

let () =
  let old_path, new_path =
    match Sys.argv with
    | [| _ |] -> newest_two ()
    | [| _; o; n |] -> (o, n)
    | _ ->
        Printf.eprintf "usage: bench_diff [OLD.json NEW.json]\n";
        exit 2
  in
  let old_rows = load old_path and new_rows = load new_path in
  let old_by_probe = List.map (fun r -> (r.probe, r)) old_rows in
  Printf.printf "perf gate: %s -> %s (fail threshold: -%.0f%% committed/s)\n\n"
    old_path new_path (100. *. threshold);
  Printf.printf "| probe | committed/s | msgs/commit | forces/commit | verdict |\n";
  Printf.printf "|---|---|---|---|---|\n";
  let failures = ref 0 and warnings = ref 0 in
  let pct o n = if o = 0. then 0. else 100. *. (n -. o) /. o in
  List.iter
    (fun n ->
      match List.assoc_opt n.probe old_by_probe with
      | None ->
          incr warnings;
          Printf.printf "| %s | new probe | - | - | warn |\n" n.probe
      | Some o ->
          let dthr = pct o.throughput n.throughput in
          let verdict =
            if dthr < -.(100. *. threshold) then begin
              incr failures;
              "FAIL"
            end
            else if dthr < 0. then begin
              incr warnings;
              "warn"
            end
            else "ok"
          in
          Printf.printf "| %s | %+.1f%% | %+.1f%% | %+.1f%% | %s |\n" n.probe
            dthr
            (pct o.msgs_per_commit n.msgs_per_commit)
            (pct o.forces_per_commit n.forces_per_commit)
            verdict)
    new_rows;
  List.iter
    (fun o ->
      if not (List.exists (fun n -> n.probe = o.probe) new_rows) then begin
        incr warnings;
        Printf.printf "| %s | probe removed | - | - | warn |\n" o.probe
      end)
    old_rows;
  Printf.printf "\n%d failure(s), %d warning(s)\n" !failures !warnings;
  if !failures > 0 then exit 1
