(* mli-coverage: an .ml without an .mli exports every helper, letting
   callers reach into scheduler internals and freeze accidental API.
   Interface files are also where the determinism contracts of this
   codebase live (which operations are replay-safe, which orders are
   guaranteed); library modules must state them. *)

let name = "mli-coverage"

let doc =
  "Every .ml under lib/ must have a companion .mli.  Executables \
   (bin/, bench/, examples/) and tests are exempt."

let check (ctx : Rule.ctx) (_ : Parsetree.structure) =
  if
    Helpers.has_segment "lib" ctx.file
    && Filename.check_suffix ctx.file ".ml"
    && not (Sys.file_exists (ctx.file ^ "i"))
  then
    [
      Finding.make_at ~rule:name ~file:ctx.file ~line:1 ~col:0
        ~message:
          (Printf.sprintf "library module has no interface; add %si"
             (Filename.basename ctx.file));
    ]
  else []
