(* no-global-rng: stdlib Random is process-global, seedable from the
   environment (Random.self_init), and shared across every caller —
   exactly the state the deterministic simulator must not touch.  All
   randomness flows through the explicitly seeded, splittable
   Rt_sim.Rng that the engine threads through the run. *)

open Parsetree

let name = "no-global-rng"

let doc =
  "Bans stdlib Random.* everywhere except lib/sim/rng.ml.  All \
   randomness must come from the seeded Rt_sim.Rng a run is created \
   with; global RNG state silently diverges replays."

(* The one module allowed to reference stdlib Random (it currently
   doesn't — the generator is hand-rolled splitmix64 — but the exemption
   documents where such a dependency would have to live). *)
let exempt_file file = Helpers.path_ends_with ~suffix:"lib/sim/rng.ml" file

let check (ctx : Rule.ctx) structure =
  if exempt_file ctx.file then []
  else begin
    let findings = ref [] in
    Helpers.iter_exprs structure (fun e ->
        match Helpers.ident_path e with
        | Some ("Random" :: _ :: _ as path) ->
            findings :=
              Finding.make ~rule:name ~loc:e.pexp_loc
                ~message:
                  (Printf.sprintf
                     "global %s bypasses the seeded simulator RNG; draw \
                      from the Rt_sim.Rng threaded through the run"
                     (Helpers.string_of_path path))
              :: !findings
        | _ -> ());
    !findings
  end
