(* Parse units, run the rule set, apply suppressions, collect files. *)

exception Parse_error of string

let all_rules : (module Rule.S) list =
  [
    (module Rule_wall_clock);
    (module Rule_rng);
    (module Rule_poly_compare);
    (module Rule_det_iter);
    (module Rule_catch_all);
    (module Rule_mli);
    (module Rule_toplevel_state);
    (module Rule_fingerprint);
  ]

let rule_names rules =
  List.map (fun (module R : Rule.S) -> R.name) rules

let find_rule name =
  List.find_opt (fun (module R : Rule.S) -> R.name = name) all_rules

let parse_source ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  try Parse.implementation lexbuf
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
      | _ -> Printexc.to_string exn
    in
    raise (Parse_error (Printf.sprintf "%s: %s" file msg))

(* Lint one unit given as a string.  [file] decides path-sensitive
   rules; suppression comments are honoured.  This is the entry point
   the test suite drives with inline fixtures. *)
let lint_source ?(rules = all_rules) ~file source =
  let structure = parse_source ~file source in
  let ctx = { Rule.file } in
  let sup = Suppress.scan ~known:(rule_names all_rules) source in
  List.concat_map (fun (module R : Rule.S) -> R.check ctx structure) rules
  |> List.filter (fun (f : Finding.t) ->
         not (Suppress.suppressed sup ~rule:f.rule ~line:f.line))
  |> List.sort Finding.compare

let read_file file =
  In_channel.with_open_bin file In_channel.input_all

let lint_file ?rules file = lint_source ?rules ~file (read_file file)

(* Every .ml under the given roots (files are taken as-is), sorted so
   the report — and therefore CI output — is stable. *)
let collect_ml_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun entry ->
             if entry <> "" && entry.[0] <> '_' && entry.[0] <> '.' then
               walk (Filename.concat path entry))
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter walk roots;
  List.sort String.compare !acc
