(* no-poly-compare-on-ids: polymorphic compare walks structure, so it
   keeps "working" when a type gains a field whose representation order
   differs from its semantic order (mutable state, abstract timestamps,
   closures — a runtime crash).  Transaction and site ids have dedicated
   Ids.*.equal/compare; replay divergence historically sneaks in through
   a stray [=] on an id or a [List.sort compare] on id pairs.

   Being untyped, the rule applies three heuristics:
   - [Hashtbl.hash] outside lib/types/ids.ml (ids own their hashing);
   - [compare] used as a value — always for [Stdlib.compare], and for
     bare [compare] unless the file binds its own [compare] (module- or
     let-level), which is how Ids.Txn_id and friends shadow it;
   - [=] / [<>] / [==] / [!=] where an operand's last identifier segment
     is id-ish (tid, txn, txn_id, or *_tid / *_txn / *_txn_id). *)

open Parsetree

let name = "no-poly-compare-on-ids"

let doc =
  "Flags polymorphic compare / Hashtbl.hash where a dedicated \
   comparator exists: Stdlib.compare (and unshadowed bare compare) \
   anywhere, Hashtbl.hash outside lib/types/ids.ml, and =/<> applied \
   to id-ish operands (tid, txn, txn_id).  Use Int.compare, \
   String.compare, Ids.Txn_id.equal/compare, ..."

let idish n =
  let n = String.lowercase_ascii n in
  n = "tid" || n = "txn" || n = "txn_id"
  || Helpers.path_ends_with ~suffix:"_tid" n
  || Helpers.path_ends_with ~suffix:"_txn" n
  || Helpers.path_ends_with ~suffix:"_txn_id" n

let eq_ops = [ [ "=" ]; [ "<>" ]; [ "==" ]; [ "!=" ] ]

let binds_compare structure =
  let found = ref false in
  Helpers.iter_pats structure (fun p ->
      match p.ppat_desc with
      | Ppat_var { txt = "compare"; _ } -> found := true
      | _ -> ());
  !found

let check (ctx : Rule.ctx) structure =
  let findings = ref [] in
  let add loc message =
    findings := Finding.make ~rule:name ~loc ~message :: !findings
  in
  let compare_shadowed = binds_compare structure in
  let ids_file = Helpers.path_ends_with ~suffix:"lib/types/ids.ml" ctx.file in
  Helpers.iter_exprs structure (fun e ->
      (match e.pexp_desc with
      | Pexp_apply (op, args) -> (
          match Helpers.ident_path op with
          | Some path when List.mem path eq_ops ->
              let id_arg =
                List.find_map
                  (fun (_, a) ->
                    match Helpers.last_name a with
                    | Some n when idish n -> Some n
                    | _ -> None)
                  args
              in
              Option.iter
                (fun n ->
                  add op.pexp_loc
                    (Printf.sprintf
                       "polymorphic (%s) on id-ish operand '%s'; use \
                        Ids.Txn_id.equal / a dedicated comparator"
                       (Helpers.string_of_path path) n))
                id_arg
          | _ -> ())
      | _ -> ());
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          let raw = Helpers.flatten_ident txt in
          match Helpers.norm_path raw with
          | [ "Hashtbl"; "hash" ] when not ids_file ->
              add e.pexp_loc
                "Hashtbl.hash is polymorphic; hash through the id \
                 module's own hash (Ids.Txn_id.hash)"
          | [ "compare" ] | [ "Pervasives"; "compare" ] ->
              let qualified = raw <> [ "compare" ] in
              if qualified || not compare_shadowed then
                add e.pexp_loc
                  "polymorphic compare; use a type-specific comparator \
                   (Int.compare, String.compare, Ids.Txn_id.compare, ...)"
          | _ -> ())
      | _ -> ());
  !findings
