(* fingerprint-coverage: the schedule explorer dedups states by a
   canonical fingerprint composed from module dumps.  A module in the
   explorer's state surface (lib/{core,storage,lock,net,commit}) that
   declares mutable record fields but exports no canonical rendering is
   a hole in that fingerprint: two abstract states can differ only in
   the hidden fields, alias under the digest, and let the explorer
   unsoundly prune a schedule that reaches new behaviour.

   The rule fires when the .ml declares a record type with a [mutable]
   field and the companion .mli exists but exposes none of
   [val dump] / [val fingerprint] / [val snapshot].  Modules whose
   mutable state is genuinely outside the explored surface (fault
   injectors, client drivers) annotate the declaration with the reason.
   Missing .mli files are mli-coverage's business, not this rule's. *)

open Parsetree

let name = "fingerprint-coverage"

let doc =
  "Modules under lib/{core,storage,lock,net,commit} that declare \
   mutable record fields must export val dump/fingerprint/snapshot in \
   their .mli so the schedule explorer's state digest can see the \
   state.  Annotate modules whose mutable state is not part of the \
   explored surface."

let scope_dirs = [ "core"; "storage"; "lock"; "net"; "commit" ]

let in_scope file =
  Helpers.has_segment "lib" file
  && List.exists (fun d -> Helpers.has_segment d file) scope_dirs

let exported_renderers = [ "dump"; "fingerprint"; "snapshot" ]

(* Textual scan of the interface for [val dump], [val dump :], etc.
   Good enough for an .mli: a val item is the only place these tokens
   appear at the start of a declaration. *)
let mli_exposes_renderer mli_file =
  let source = In_channel.with_open_bin mli_file In_channel.input_all in
  List.exists
    (fun v ->
      let needle = "val " ^ v in
      let n = String.length source and m = String.length needle in
      let rec at i =
        if i + m > n then false
        else if
          String.sub source i m = needle
          && (i + m = n
             ||
             let c = source.[i + m] in
             c = ' ' || c = ':' || c = '\n')
        then true
        else at (i + 1)
      in
      at 0)
    exported_renderers

let check (ctx : Rule.ctx) structure =
  let mli = ctx.file ^ "i" in
  if
    (not (in_scope ctx.file))
    || (not (Sys.file_exists mli))
    || mli_exposes_renderer mli
  then []
  else begin
    let findings = ref [] in
    let type_declaration self (td : type_declaration) =
      (match td.ptype_kind with
      | Ptype_record labels ->
          List.iter
            (fun (ld : label_declaration) ->
              if ld.pld_mutable = Asttypes.Mutable && !findings = [] then
                findings :=
                  [
                    Finding.make ~rule:name ~loc:ld.pld_loc
                      ~message:
                        (Printf.sprintf
                           "mutable field %s but %s exports no val \
                            dump/fingerprint/snapshot; hidden mutable state \
                            aliases distinct explorer states under one \
                            digest — export a canonical rendering or \
                            annotate why this state is outside the explored \
                            surface"
                           ld.pld_name.txt (Filename.basename mli));
                  ])
            labels
      | _ -> ());
      Ast_iterator.default_iterator.type_declaration self td
    in
    let it = { Ast_iterator.default_iterator with type_declaration } in
    it.structure it structure;
    !findings
  end
