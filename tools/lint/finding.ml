(* A single lint diagnostic: where, which rule, and why it matters. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make_at ~rule ~file ~line ~col ~message = { rule; file; line; col; message }

let make ~rule ~loc ~message =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message

let pp fmt t = Format.pp_print_string fmt (to_string t)
