(* Allow-annotations.  Two spellings, both inside ordinary comments:

     (* rt_lint: allow <rule>[, <rule>...] -- justification *)
     (* rt_lint: allow-file <rule>[, <rule>...] -- justification *)

   [allow] suppresses matching findings on the same line or the line
   directly below the annotation (so it can sit on its own line above
   the flagged expression).  [allow-file] suppresses the rule for the
   whole file; reserve it for modules whose job is the exempted
   operation itself.

   The scanner is textual, not lexical: it looks for "rt_lint:"
   anywhere in the source.  Tokens after the directive are only
   honoured when they name a known rule, so a justification can follow
   without a separator — though "--" is the conventional one. *)

type t = {
  line_allows : (int * string) list;  (* annotation line -> rule *)
  file_allows : string list;
}

let marker = "rt_lint:"

(* All indices at which [sub] occurs in [s]. *)
let occurrences s sub =
  let n = String.length s and m = String.length sub in
  let rec go acc i =
    if i + m > n then List.rev acc
    else if String.sub s i m = sub then go (i :: acc) (i + m)
    else go acc (i + 1)
  in
  go [] 0

let line_of source idx =
  let line = ref 1 in
  for i = 0 to idx - 1 do
    if source.[i] = '\n' then incr line
  done;
  !line

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

(* Split [s] into word tokens, stopping at a comment close or an
   explicit "--" separator. *)
let cut sep s =
  let n = String.length s and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sep then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub s 0 i | None -> s

let tokens s =
  let s = s |> cut "*)" |> cut "--" |> cut "\n" in
  String.fold_left
    (fun (acc, cur) c ->
      if is_word_char c then (acc, cur ^ String.make 1 c)
      else if cur = "" then (acc, "")
      else (cur :: acc, ""))
    ([], "") s
  |> fun (acc, cur) -> List.rev (if cur = "" then acc else cur :: acc)

let scan ~known source =
  let line_allows = ref [] and file_allows = ref [] in
  List.iter
    (fun idx ->
      let after = idx + String.length marker in
      let rest = String.sub source after (String.length source - after) in
      match tokens rest with
      | directive :: names when directive = "allow" || directive = "allow-file"
        ->
          let rules = List.filter (fun n -> List.mem n known) names in
          if directive = "allow" then
            let line = line_of source idx in
            List.iter (fun r -> line_allows := (line, r) :: !line_allows) rules
          else List.iter (fun r -> file_allows := r :: !file_allows) rules
      | _ -> ())
    (occurrences source marker);
  { line_allows = !line_allows; file_allows = !file_allows }

let suppressed t ~rule ~line =
  List.mem rule t.file_allows
  || List.exists
       (fun (l, r) -> r = rule && (l = line || l = line - 1))
       t.line_allows
