(* Shared AST plumbing for rules. *)

open Parsetree

let flatten_ident (lid : Longident.t) : string list =
  (* Lapply never appears in value positions we inspect; be defensive. *)
  try Longident.flatten lid with _ -> []

(* Drop an explicit [Stdlib.] qualifier so [Stdlib.compare] and bare
   [compare] normalise to the same path. *)
let norm_path = function "Stdlib" :: rest -> rest | p -> p

let string_of_path = String.concat "."

(* Run [f] on every expression in the structure, in syntactic order. *)
let iter_exprs (structure : structure) (f : expression -> unit) : unit =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure

(* Run [f] on every pattern in the structure (covers let-bindings at any
   depth, match cases, function arguments). *)
let iter_pats (structure : structure) (f : pattern -> unit) : unit =
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          f p;
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.structure it structure

(* Follow nested applications down to the function being applied:
   [head_expr (f a b)] is the expression node for [f]. *)
let rec head_expr e =
  match e.pexp_desc with Pexp_apply (f, _) -> head_expr f | _ -> e

(* The final identifier segment an expression reads from, if any:
   [x] -> "x", [r.txn] -> "txn", [(e : t)] -> recurse.  Used for the
   id-ish operand heuristic. *)
let rec last_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (flatten_ident txt) with n :: _ -> Some n | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (flatten_ident txt) with n :: _ -> Some n | [] -> None)
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> last_name e
  | _ -> None

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (norm_path (flatten_ident txt))
  | _ -> None

(* Path-segment membership: [has_segment "lib" "lib/cc/occ.ml"]. *)
let has_segment seg file = List.mem seg (String.split_on_char '/' file)

let path_ends_with ~suffix file =
  let lf = String.length file and ls = String.length suffix in
  ls <= lf && String.sub file (lf - ls) ls = suffix
