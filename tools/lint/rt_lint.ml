(* rt_lint — determinism & protocol-safety lints for the replicated
   transactions codebase.

   Usage:
     rt_lint <dir-or-file>...      lint every .ml under the roots
     rt_lint --list-rules          print the rule set and rationale

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/parse error. *)

let list_rules () =
  List.iter
    (fun (module R : Rt_lint_core.Rule.S) ->
      Printf.printf "%-26s %s\n\n" R.name R.doc)
    Rt_lint_core.Driver.all_rules

let () =
  match Array.to_list Sys.argv |> List.tl with
  | [] | [ "--help" ] | [ "-h" ] ->
      prerr_endline "usage: rt_lint [--list-rules] <dir-or-file>...";
      exit 2
  | [ "--list-rules" ] -> list_rules ()
  | roots ->
      let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
      if missing <> [] then begin
        List.iter (Printf.eprintf "rt_lint: no such path: %s\n") missing;
        exit 2
      end;
      let files = Rt_lint_core.Driver.collect_ml_files roots in
      let parse_failed = ref false in
      let findings =
        List.concat_map
          (fun file ->
            try Rt_lint_core.Driver.lint_file file
            with Rt_lint_core.Driver.Parse_error msg ->
              parse_failed := true;
              Printf.eprintf "rt_lint: %s\n" msg;
              [])
          files
      in
      List.iter
        (fun f -> print_endline (Rt_lint_core.Finding.to_string f))
        findings;
      if !parse_failed then exit 2
      else if findings <> [] then begin
        Printf.printf
          "rt_lint: %d finding(s) in %d file(s) scanned; annotate with \
           (* rt_lint: allow <rule> -- why *) only with a justification\n"
          (List.length findings) (List.length files);
        exit 1
      end
      else Printf.printf "rt_lint: OK (%d files)\n" (List.length files)
