(* no-wall-clock: the simulation's experiment tables are reproducible
   only because every timestamp flows through the discrete-event clock
   (Rt_sim.Time / Engine.now).  A single host-clock read makes latencies
   depend on the machine running the binary and breaks seed-for-seed
   replay of histories. *)

open Parsetree

let name = "no-wall-clock"

let doc =
  "Bans host-clock primitives (Sys.time, Unix.gettimeofday/time, \
   localtime, gmtime, sleep).  Simulated code must read time from \
   Rt_sim.Time / Rt_sim.Engine.now so the same seed replays the same \
   history.  Host-side progress reporting in drivers may be \
   allow-annotated with a justification."

let banned =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Unix"; "localtime" ];
    [ "Unix"; "gmtime" ];
    [ "Unix"; "mktime" ];
    [ "Unix"; "sleep" ];
    [ "Unix"; "sleepf" ];
  ]

let check (_ctx : Rule.ctx) structure =
  let findings = ref [] in
  Helpers.iter_exprs structure (fun e ->
      match Helpers.ident_path e with
      | Some path when List.mem path banned ->
          findings :=
            Finding.make ~rule:name ~loc:e.pexp_loc
              ~message:
                (Printf.sprintf
                   "wall-clock primitive %s; simulated time must flow \
                    through Rt_sim.Time / Engine.now"
                   (Helpers.string_of_path path))
            :: !findings
      | _ -> ());
  !findings
