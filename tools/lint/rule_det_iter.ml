(* deterministic-iteration: Hashtbl.iter/fold visit buckets in layout
   order — a function of insertion history and initial size, not of the
   keys.  Any list, log line, metrics row, or callback sequence built
   from such a traversal is only accidentally stable; resizing the table
   or reordering inserts silently permutes replay.  The fix is to
   traverse in sorted key order (Rt_sim.Det) or sort the collected
   result.

   The rule recognises the one safe syntactic shape — a fold whose
   result is sorted in the same expression:

     Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort cmp

   (also [List.sort cmp (Hashtbl.fold ...)] and the [@@] spelling).
   Order-insensitive traversals (commutative accumulation, pure
   side-effect-free conjunctions) are annotated case by case. *)

open Parsetree

let name = "deterministic-iteration"

let doc =
  "Flags Hashtbl.iter/fold/to_seq (and Txn_map.*) whose result is not \
   sorted in the same expression.  Bucket order is not key order: \
   iterate via Rt_sim.Det.iter_sorted / fold_sorted, or pipe the fold \
   straight into List.sort; annotate genuinely order-insensitive \
   traversals."

let iter_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let is_hash_iter_path path =
  match List.rev path with
  | fn :: m :: _ -> (m = "Hashtbl" || m = "Txn_map") && List.mem fn iter_fns
  | _ -> false

let is_hash_iter_ident e =
  match Helpers.ident_path e with
  | Some p -> is_hash_iter_path p
  | None -> false

let sort_fns =
  [
    [ "List"; "sort" ];
    [ "List"; "sort_uniq" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
  ]

let is_sortish e =
  match Helpers.ident_path (Helpers.head_expr e) with
  | Some p -> List.mem p sort_fns
  | None -> false

let check (_ctx : Rule.ctx) structure =
  (* Pass 1: collect the iteration idents excused by an enclosing sort.
     Physical identity is enough — each node is visited once. *)
  let exempt = ref [] in
  let excuse e = if is_hash_iter_ident (Helpers.head_expr e) then exempt := Helpers.head_expr e :: !exempt in
  Helpers.iter_exprs structure (fun e ->
      match e.pexp_desc with
      | Pexp_apply (op, args) -> (
          match (Helpers.ident_path op, args) with
          | Some [ "|>" ], [ (_, lhs); (_, rhs) ] when is_sortish rhs ->
              excuse lhs
          | Some [ "@@" ], [ (_, lhs); (_, rhs) ] when is_sortish lhs ->
              excuse rhs
          | _ -> if is_sortish e then List.iter (fun (_, a) -> excuse a) args)
      | _ -> ());
  (* Pass 2: flag every remaining iteration ident. *)
  let findings = ref [] in
  Helpers.iter_exprs structure (fun e ->
      match Helpers.ident_path e with
      | Some path
        when is_hash_iter_path path && not (List.memq e !exempt) ->
          findings :=
            Finding.make ~rule:name ~loc:e.pexp_loc
              ~message:
                (Printf.sprintf
                   "%s traverses in bucket order; iterate sorted \
                    (Rt_sim.Det) or sort the result in this expression"
                   (Helpers.string_of_path path))
            :: !findings
      | _ -> ());
  !findings
