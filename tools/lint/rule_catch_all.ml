(* no-silent-catch-all: a [try ... with _ ->] inside a protocol step
   function converts any bug — an assertion in the commit state machine,
   an out-of-range vote count, a broken WAL invariant — into a silently
   wrong protocol transition.  Gray & Lamport's framing is that commit
   protocols are invariant-checking problems; swallowing the exception
   swallows the invariant violation.  Scope is the protocol layers
   (lib/commit, lib/cc, lib/storage); drivers and examples may still
   use broad handlers. *)

open Parsetree

let name = "no-silent-catch-all"

let doc =
  "Flags catch-all exception handlers (try ... with _ ->) in protocol \
   step code under lib/commit, lib/cc, lib/storage.  Match the \
   exceptions a step can actually raise, or let the violation \
   propagate to the harness."

let protocol_dirs = [ "commit"; "cc"; "storage" ]

let in_scope file =
  Helpers.has_segment "lib" file
  && List.exists (fun d -> Helpers.has_segment d file) protocol_dirs

let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all p
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let check (ctx : Rule.ctx) structure =
  if not (in_scope ctx.file) then []
  else begin
    let findings = ref [] in
    Helpers.iter_exprs structure (fun e ->
        match e.pexp_desc with
        | Pexp_try (_, cases) ->
            List.iter
              (fun c ->
                if c.pc_guard = None && catch_all c.pc_lhs then
                  findings :=
                    Finding.make ~rule:name ~loc:c.pc_lhs.ppat_loc
                      ~message:
                        "catch-all handler swallows protocol invariant \
                         violations; match specific exceptions or \
                         reraise"
                    :: !findings)
              cases
        | _ -> ());
    !findings
  end
