(* Rule interface: each rule is a module that inspects one parsed
   compilation unit and reports findings.  Rules are purely syntactic —
   they see the Parsetree, never types — so each one documents the
   heuristic it applies and the escape hatch is an explicit
   [rt_lint: allow] annotation with a justification. *)

type ctx = { file : string }
(** [file] is the path the unit was loaded from (or a caller-supplied
    pseudo-path in tests).  Path-sensitive rules (rng exemption,
    protocol-only rules, mli coverage) key off its segments. *)

module type S = sig
  val name : string
  (** Stable rule id, used in findings and allow-annotations. *)

  val doc : string
  (** One-paragraph rationale shown by [rt_lint --list-rules]. *)

  val check : ctx -> Parsetree.structure -> Finding.t list
end
