(* no-toplevel-mutable-state: a ref cell or mutable container created at
   module initialization time is process-global — it outlives every
   cluster the process builds.  The schedule explorer re-executes a
   fresh cluster per decision trail and assumes the only mutable state
   is what the cluster owns (and what the state fingerprint can see);
   a module-level table or flag silently couples executions and makes
   replay divergent.  Scope the state inside [create ()], or annotate a
   deliberate process-wide debug tap with the reason it cannot leak
   into simulation behaviour.

   The rule is syntactic: it flags applications of known mutable-state
   constructors ([ref], [Hashtbl.create], [Queue.create], ...) in
   module-level code — anything not under a [fun]/[function] or functor
   body, including nested [let]s, [Pstr_eval] initializers, and inner
   [struct]s.  Constructors inside lambdas are per-call state and fine. *)

open Parsetree

let name = "no-toplevel-mutable-state"

let doc =
  "Flags ref/Hashtbl.create/Queue.create/... applied at module \
   initialization time in lib/ (outside any function or functor body): \
   process-global mutable state leaks across the replay-based \
   explorer's executions and escapes state fingerprints.  Scope it in \
   a constructor or annotate the debug tap."

let creators =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Atomic"; "make" ];
    [ "Dynarray"; "create" ];
  ]

let is_creator e =
  match Helpers.ident_path e with
  | Some p -> List.mem p creators
  | None -> false

let check (ctx : Rule.ctx) structure =
  if not (Helpers.has_segment "lib" ctx.file) then []
  else begin
    let findings = ref [] in
    let depth = ref 0 in
    let expr self e =
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ ->
          incr depth;
          Ast_iterator.default_iterator.expr self e;
          decr depth
      | Pexp_apply (f, _) when !depth = 0 && is_creator f ->
          let path =
            match Helpers.ident_path f with
            | Some p -> Helpers.string_of_path p
            | None -> "?"
          in
          findings :=
            Finding.make ~rule:name ~loc:e.pexp_loc
              ~message:
                (Printf.sprintf
                   "%s at module initialization creates process-global \
                    mutable state; it outlives every simulated cluster, \
                    leaks across replayed executions, and is invisible to \
                    state fingerprints — scope it inside a constructor or \
                    annotate the debug tap"
                   path)
            :: !findings;
          Ast_iterator.default_iterator.expr self e
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    let module_expr self m =
      match m.pmod_desc with
      | Pmod_functor _ ->
          (* A functor body runs per application, like a function. *)
          incr depth;
          Ast_iterator.default_iterator.module_expr self m;
          decr depth
      | _ -> Ast_iterator.default_iterator.module_expr self m
    in
    let it = { Ast_iterator.default_iterator with expr; module_expr } in
    it.structure it structure;
    !findings
  end
