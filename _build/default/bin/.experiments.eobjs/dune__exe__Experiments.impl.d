bin/experiments.ml: Arg Cmd Cmdliner List Manpage Printf Rt_core Rt_metrics String Term Unix
