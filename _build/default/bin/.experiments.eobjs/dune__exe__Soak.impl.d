bin/soak.ml: Arg Array Client Cluster Cmd Cmdliner Config Failure List Option Printf Result Rt_commit Rt_core Rt_metrics Rt_replica Rt_sim Rt_storage Rt_workload Site Term
