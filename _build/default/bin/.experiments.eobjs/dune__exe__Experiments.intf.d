bin/experiments.mli:
