bin/soak.mli:
