(* Bank transfers: atomicity under concurrency and crashes.

   Twenty accounts hold 100 units each.  Concurrent clients keep moving
   money between random accounts with read-modify-write transactions
   while one replica crashes and recovers mid-run.  Atomic commitment
   guarantees the invariant: the total balance never changes, on any
   replica, no matter what fails.

     dune exec examples/bank_transfer.exe *)

open Rt_core
module Mix = Rt_workload.Mix
module Time = Rt_sim.Time
module Rng = Rt_sim.Rng

let accounts = 20
let initial = 100
let account i = Printf.sprintf "acct%02d" i

let balance kv i =
  match Rt_storage.Kv.get kv (account i) with
  | Some item -> int_of_string item.value
  | None -> 0

let total kv =
  let sum = ref 0 in
  for i = 0 to accounts - 1 do
    sum := !sum + balance kv i
  done;
  !sum

let () =
  let config =
    { (Config.default ~sites:3 ()) with
      replica_control = Rt_replica.Replica_control.available_copies;
      seed = 2026 }
  in
  let cluster = Cluster.create config in
  let engine = Cluster.engine cluster in
  let rng = Rng.split (Rt_sim.Engine.create ~seed:99 () |> Rt_sim.Engine.rng) in

  (* Fund the accounts through a real transaction so every replica and
     log agrees on the initial state. *)
  let funded = ref false in
  Cluster.submit cluster ~site:0
    ~ops:
      (List.init accounts (fun i ->
           Mix.Write (account i, string_of_int initial)))
    ~k:(fun o -> funded := o = Site.Committed);
  Cluster.run ~until:(Time.ms 20) cluster;
  assert !funded;
  Printf.printf "funded %d accounts with %d each (total %d)\n" accounts
    initial (accounts * initial);

  (* Transfer loop using interactive transactions: the amounts written
     are computed from balances read *inside* the transaction, under its
     locks — the read-modify-write is atomic end to end. *)
  let committed = ref 0 and aborted = ref 0 in
  let transfers_running = ref true in
  let rec transfer_loop site =
    if !transfers_running then begin
      let again () =
        ignore
          (Rt_sim.Engine.schedule_after engine (Time.us 300) (fun () ->
               transfer_loop site))
      in
      let s = Cluster.site cluster site in
      let from_i = Rng.int rng accounts in
      let to_i = (from_i + 1 + Rng.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Rng.int rng 10 in
      match Site.begin_txn s with
      | None -> again ()
      | Some txn ->
          let fail _ = incr aborted; again () in
          Site.txn_read s txn ~key:(account from_i) ~k:(function
            | Error _ -> fail ()
            | Ok from_v ->
                let from_b =
                  Option.value ~default:0 (Option.map int_of_string from_v)
                in
                if from_b < amount then begin
                  Site.txn_abort s txn;
                  again ()
                end
                else
                  Site.txn_read s txn ~key:(account to_i) ~k:(function
                    | Error _ -> fail ()
                    | Ok to_v ->
                        let to_b =
                          Option.value ~default:0
                            (Option.map int_of_string to_v)
                        in
                        Site.txn_write s txn ~key:(account from_i)
                          ~value:(string_of_int (from_b - amount))
                          ~k:(function
                          | Error _ -> fail ()
                          | Ok () ->
                              Site.txn_write s txn ~key:(account to_i)
                                ~value:(string_of_int (to_b + amount))
                                ~k:(function
                                | Error _ -> fail ()
                                | Ok () ->
                                    Site.txn_commit s txn ~k:(fun o ->
                                        (match o with
                                        | Site.Committed -> incr committed
                                        | Site.Aborted _ -> incr aborted);
                                        again ())))))
    end
  in
  List.iter transfer_loop [ 0; 0; 1; 1; 2; 2 ];

  (* Crash replica 2 mid-run; recover it later.  Available-copies keeps
     the survivors writing; the recovering site catches up before it
     serves again. *)
  Failure.schedule cluster
    [
      (Time.ms 40, Failure.Crash 2);
      (Time.ms 80, Failure.Recover 2);
    ];

  ignore
    (Rt_sim.Engine.schedule_at engine (Time.ms 150) (fun () ->
         transfers_running := false));
  Cluster.run ~until:(Time.ms 200) cluster;

  Printf.printf "transfers: %d committed, %d aborted\n" !committed !aborted;
  Array.iter
    (fun site ->
      Printf.printf "  site %d total balance: %d%s\n" (Site.id site)
        (total (Site.kv site))
        (if Site.serving site then "" else " (not serving)"))
    (Cluster.sites cluster);
  let ok =
    Array.for_all
      (fun site -> total (Site.kv site) = accounts * initial)
      (Cluster.sites cluster)
  in
  Printf.printf "invariant (total = %d on every replica): %s\n"
    (accounts * initial)
    (if ok then "HOLDS" else "VIOLATED");
  if not ok then exit 1
