(* Partition demo: why quorums exist.

   Two five-site clusters run the same workload through the same network
   partition.  The available-copies cluster keeps accepting writes on
   both sides and forks its data; the majority-quorum cluster refuses the
   minority side and stays single-history.

     dune exec examples/partition_demo.exe *)

open Rt_core
module Mix = Rt_workload.Mix
module Time = Rt_sim.Time
module Kv = Rt_storage.Kv

let run_side name config =
  Printf.printf "--- %s ---\n" name;
  let cluster = Cluster.create config in
  let commit_on site key value =
    let result = ref "in flight" in
    Cluster.submit cluster ~site
      ~ops:[ Mix.Write (key, value) ]
      ~k:(fun o ->
        result :=
          match o with
          | Site.Committed -> "committed"
          | Site.Aborted r -> "aborted (" ^ Site.abort_reason_label r ^ ")");
    Cluster.run ~until:(Time.add (Cluster.now cluster) (Time.ms 300)) cluster;
    Printf.printf "  site %d writes %s=%s: %s\n" site key value !result
  in

  Printf.printf "before the partition:\n";
  commit_on 0 "config" "v1";

  Printf.printf "partition {0,1} | {2,3,4}; failure detectors converge...\n";
  Cluster.partition cluster [ [ 0; 1 ]; [ 2; 3; 4 ] ];
  Cluster.run ~until:(Time.add (Cluster.now cluster) (Time.ms 100)) cluster;

  Printf.printf "during the partition:\n";
  commit_on 2 "config" "majority-v2";
  commit_on 0 "config" "minority-v2";

  Cluster.heal cluster;
  Cluster.run ~until:(Time.add (Cluster.now cluster) (Time.ms 100)) cluster;
  Printf.printf "after healing, each replica's copy of 'config':\n";
  Array.iter
    (fun site ->
      match Kv.get (Site.kv site) "config" with
      | Some item ->
          Printf.printf "  site %d: %s (version %d)\n" (Site.id site)
            item.value item.version
      | None -> Printf.printf "  site %d: <none>\n" (Site.id site))
    (Cluster.sites cluster);

  (* A fork is two replicas holding the same version number with
     different contents — irreconcilable divergent histories. *)
  let items =
    Array.to_list (Cluster.sites cluster)
    |> List.filter_map (fun s -> Kv.get (Site.kv s) "config")
  in
  let forked =
    List.exists
      (fun (a : Kv.item) ->
        List.exists
          (fun (b : Kv.item) -> a.version = b.version && a.value <> b.value)
          items)
      items
  in
  Printf.printf "  => %s\n\n"
    (if forked then "SPLIT BRAIN: divergent histories committed"
     else "single history preserved");
  forked

let () =
  let base = Config.default ~sites:5 () in
  let forked_rowa =
    run_side "available copies + 2PC (reads local, writes to all up sites)"
      { base with
        replica_control = Rt_replica.Replica_control.available_copies;
        seed = 1 }
  in
  let forked_quorum =
    run_side "majority quorum + quorum commit"
      { base with
        replica_control = Rt_replica.Replica_control.majority ~sites:5;
        commit_protocol =
          Config.Quorum_commit { commit_quorum = None; abort_quorum = None };
        seed = 1 }
  in
  Printf.printf
    "summary: available-copies forked=%b, majority-quorum forked=%b\n"
    forked_rowa forked_quorum;
  if forked_quorum then exit 1
