(* Protocol tour: what each atomic-commitment protocol costs and how it
   behaves when the coordinator dies at the worst moment.

   Part 1 runs one committed transaction under every protocol in the
   deterministic sandbox and prints the exact message and log-force
   counts — the trade-off table behind the presumption variants.

   Part 2 kills the coordinator mid-protocol and shows which protocols
   leave survivors blocked (2PC) and which terminate on their own (3PC,
   quorum commit with a live majority).

     dune exec examples/protocol_tour.exe *)

open Rt_commit
module P = Protocol

let protos =
  [
    Sandbox.P_two_pc Two_pc.Presumed_nothing;
    Sandbox.P_two_pc Two_pc.Presumed_abort;
    Sandbox.P_two_pc Two_pc.Presumed_commit;
    Sandbox.P_three_pc;
    Sandbox.P_quorum { commit_quorum = 2; abort_quorum = 2 };
  ]

let () =
  let sites = 3 in
  Printf.printf
    "Part 1: failure-free cost of one committed transaction (%d sites)\n\n"
    sites;
  Printf.printf "  %-10s %10s %14s %12s\n" "protocol" "messages"
    "forced writes" "lazy writes";
  List.iter
    (fun proto ->
      let o =
        Sandbox.run_fifo ~proto ~sites ~votes:(Array.make sites true) ()
      in
      assert (o.agreement && o.all_decided);
      Printf.printf "  %-10s %10d %14d %12d\n" (Sandbox.proto_name proto)
        o.messages o.forced_writes o.lazy_writes)
    protos;
  Printf.printf
    "\n  Reading the table: presumed commit (PrC) drops the ack round\n\
    \  (fewer messages) and the participants' forced commit records;\n\
    \  3PC and quorum commit pay an extra round and extra forces for\n\
    \  their pre-commit phase.\n\n";

  Printf.printf
    "Part 2: coordinator crashes mid-protocol, never recovers (30 crash \
     points x 10 schedules each)\n\n";
  Printf.printf "  %-10s %12s %12s %12s\n" "protocol" "blocked runs"
    "undecided" "agreement";
  List.iter
    (fun proto ->
      let blocked = ref 0 and undecided = ref 0 and agree = ref 0 in
      let runs = ref 0 in
      for k = 1 to 30 do
        for seed = 1 to 10 do
          incr runs;
          let o =
            Sandbox.run ~seed ~crashes:[ (0, k) ] ~max_steps:1500 ~proto
              ~sites ~votes:(Array.make sites true) ()
          in
          if o.blocked then incr blocked;
          if not o.all_decided then incr undecided;
          if o.agreement then incr agree
        done
      done;
      Printf.printf "  %-10s %11d%% %11d%% %11d%%\n"
        (Sandbox.proto_name proto)
        (100 * !blocked / !runs)
        (100 * !undecided / !runs)
        (100 * !agree / !runs))
    protos;
  Printf.printf
    "\n  2PC participants caught in the uncertainty window stay blocked\n\
    \  until the coordinator returns; 3PC and quorum commit elect a\n\
    \  leader and terminate.  Agreement is never violated by any\n\
    \  protocol, at any crash point.\n"
