(* Quickstart: bring up a 3-site replicated database, run a few atomic
   transactions against it, and watch the copies stay identical.

     dune exec examples/quickstart.exe *)

open Rt_core
module Mix = Rt_workload.Mix
module Time = Rt_sim.Time

let () =
  (* Three fully replicated sites, read-one/write-all replica control,
     presumed-abort two-phase commit — the classical defaults. *)
  let config = Config.default ~sites:3 () in
  let cluster = Cluster.create config in

  (* A transaction is a list of reads and writes executed atomically.
     [submit] names the coordinator site; the callback fires with the
     outcome. *)
  let exec site ops label =
    Cluster.submit cluster ~site ~ops ~k:(fun outcome ->
        Printf.printf "%-28s -> %s\n" label
          (match outcome with
          | Site.Committed -> "committed"
          | Site.Aborted r -> "aborted: " ^ Site.abort_reason_label r));
    (* Drive the simulation forward far enough for the transaction to
       finish.  (Heartbeats tick forever, so an unbounded run would never
       return.) *)
    Cluster.run ~until:(Time.add (Cluster.now cluster) (Time.ms 100)) cluster
  in

  exec 0
    [ Mix.Write ("alice", "100"); Mix.Write ("bob", "100") ]
    "initialize two accounts";
  exec 1 [ Mix.Read "alice"; Mix.Read "bob" ] "read both from site 1";
  exec 2
    [ Mix.Read "alice"; Mix.Write ("alice", "50"); Mix.Write ("bob", "150") ]
    "transfer 50 alice->bob";

  (* Every replica holds the same state. *)
  Printf.printf "\nreplica contents:\n";
  Array.iter
    (fun site ->
      let kv = Site.kv site in
      Printf.printf "  site %d: alice=%s bob=%s\n" (Site.id site)
        (match Rt_storage.Kv.get kv "alice" with
        | Some i -> i.value
        | None -> "?")
        (match Rt_storage.Kv.get kv "bob" with
        | Some i -> i.value
        | None -> "?"))
    (Cluster.sites cluster);
  Printf.printf "converged: %b\n" (Cluster.converged cluster);

  (* The simulator gives exact cost accounting for free. *)
  let stats = Cluster.net_stats cluster in
  Printf.printf "\nnetwork: %d messages sent, %d delivered\n" stats.sent
    stats.delivered;
  Printf.printf "virtual time elapsed: %s\n"
    (Format.asprintf "%a" Time.pp (Cluster.now cluster))
