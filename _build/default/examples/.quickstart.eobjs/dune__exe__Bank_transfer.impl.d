examples/bank_transfer.ml: Array Cluster Config Failure List Option Printf Rt_core Rt_replica Rt_sim Rt_storage Rt_workload Site
