examples/quickstart.mli:
