examples/partition_demo.ml: Array Cluster Config List Printf Rt_core Rt_replica Rt_sim Rt_storage Rt_workload Site
