examples/protocol_tour.ml: Array List Printf Protocol Rt_commit Sandbox Two_pc
