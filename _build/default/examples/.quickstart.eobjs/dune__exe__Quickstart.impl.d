examples/quickstart.ml: Array Cluster Config Format Printf Rt_core Rt_sim Rt_storage Rt_workload Site
