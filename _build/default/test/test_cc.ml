(* Tests for the local concurrency-control schemes: per-scheme behaviour,
   the serializability oracle, and randomized workloads through the
   workbench. *)

open Rt_sim
open Rt_types
open Rt_cc
module Kv = Rt_storage.Kv

let txn seq = Ids.Txn_id.make ~origin:0 ~seq ~start_ts:(Time.us seq)

let setup () =
  let engine = Engine.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"a0" ~version:1;
  Kv.set kv ~key:"b" ~value:"b0" ~version:1;
  (engine, kv)

(* --- 2PL --------------------------------------------------------------- *)

let test_2pl_read_write_commit () =
  let engine, kv = setup () in
  let st = Two_phase_locking.create engine kv in
  let t1 = txn 1 in
  Two_phase_locking.begin_txn st t1;
  let read_value = ref None in
  Two_phase_locking.read st ~txn:t1 ~key:"a" ~k:(function
    | `Value v -> read_value := v
    | `Abort -> Alcotest.fail "unexpected abort");
  Alcotest.(check (option string)) "read committed value" (Some "a0") !read_value;
  Two_phase_locking.write st ~txn:t1 ~key:"a" ~value:"a1" ~k:(function
    | `Ok -> ()
    | `Abort -> Alcotest.fail "write refused");
  (* Read-your-writes. *)
  Two_phase_locking.read st ~txn:t1 ~key:"a" ~k:(function
    | `Value v -> Alcotest.(check (option string)) "own write" (Some "a1") v
    | `Abort -> Alcotest.fail "unexpected abort");
  (* Buffered: not visible in the store yet. *)
  Alcotest.(check int) "store unchanged before commit" 1 (Kv.version kv "a");
  Two_phase_locking.commit st ~txn:t1 ~k:(function
    | `Committed -> ()
    | `Aborted -> Alcotest.fail "commit failed");
  Alcotest.(check int) "version bumped" 2 (Kv.version kv "a")

let test_2pl_blocks_then_grants () =
  let engine, kv = setup () in
  let st = Two_phase_locking.create engine kv in
  let t1 = txn 1 and t2 = txn 2 in
  Two_phase_locking.begin_txn st t1;
  Two_phase_locking.begin_txn st t2;
  Two_phase_locking.write st ~txn:t1 ~key:"a" ~value:"x" ~k:(fun _ -> ());
  let t2_read = ref None in
  Two_phase_locking.read st ~txn:t2 ~key:"a" ~k:(function
    | `Value v -> t2_read := Some v
    | `Abort -> Alcotest.fail "t2 aborted");
  Alcotest.(check bool) "t2 blocked" true (!t2_read = None);
  Two_phase_locking.commit st ~txn:t1 ~k:(fun _ -> ());
  (* Release grants t2; it sees t1's committed value. *)
  Alcotest.(check (option (option string))) "t2 unblocked with new value"
    (Some (Some "x")) !t2_read

let test_2pl_deadlock_victim () =
  let engine, kv = setup () in
  let st = Two_phase_locking.create engine kv in
  let t1 = txn 1 and t2 = txn 2 in
  Two_phase_locking.begin_txn st t1;
  Two_phase_locking.begin_txn st t2;
  Two_phase_locking.write st ~txn:t1 ~key:"a" ~value:"1" ~k:(fun _ -> ());
  Two_phase_locking.write st ~txn:t2 ~key:"b" ~value:"2" ~k:(fun _ -> ());
  let t1_result = ref `Pending and t2_result = ref `Pending in
  Two_phase_locking.write st ~txn:t1 ~key:"b" ~value:"1" ~k:(function
    | `Ok -> t1_result := `Ok
    | `Abort -> t1_result := `Abort);
  (* Closing the cycle aborts the youngest (t2) immediately. *)
  Two_phase_locking.write st ~txn:t2 ~key:"a" ~value:"2" ~k:(function
    | `Ok -> t2_result := `Ok
    | `Abort -> t2_result := `Abort);
  Alcotest.(check bool) "t2 was victim" true (!t2_result = `Abort);
  Alcotest.(check bool) "t1 got the lock" true (!t1_result = `Ok);
  Alcotest.(check int) "one deadlock abort" 1
    (Two_phase_locking.stats st).deadlock_aborts

(* --- TO ---------------------------------------------------------------- *)

let test_to_rejects_late_read () =
  let engine, kv = setup () in
  let st = Timestamp_order.create engine kv in
  let old_txn = txn 1 and new_txn = txn 2 in
  Timestamp_order.begin_txn st old_txn;
  Timestamp_order.begin_txn st new_txn;
  (* Newer transaction writes and commits; the older one's read must now
     be rejected (it would read "from the future"). *)
  Timestamp_order.write st ~txn:new_txn ~key:"a" ~value:"new" ~k:(fun _ -> ());
  Timestamp_order.commit st ~txn:new_txn ~k:(fun _ -> ());
  let result = ref `Pending in
  Timestamp_order.read st ~txn:old_txn ~key:"a" ~k:(function
    | `Value _ -> result := `Ok
    | `Abort -> result := `Abort);
  Alcotest.(check bool) "old read rejected" true (!result = `Abort);
  Alcotest.(check int) "order abort counted" 1
    (Timestamp_order.stats st).order_aborts

let test_to_rejects_late_write () =
  let engine, kv = setup () in
  let st = Timestamp_order.create engine kv in
  let old_txn = txn 1 and new_txn = txn 2 in
  Timestamp_order.begin_txn st old_txn;
  Timestamp_order.begin_txn st new_txn;
  let ok = ref false in
  Timestamp_order.read st ~txn:new_txn ~key:"a" ~k:(function
    | `Value _ -> ok := true
    | `Abort -> ());
  Alcotest.(check bool) "new read fine" true !ok;
  let result = ref `Pending in
  Timestamp_order.write st ~txn:old_txn ~key:"a" ~value:"old" ~k:(function
    | `Ok -> result := `Ok
    | `Abort -> result := `Abort);
  Alcotest.(check bool) "old write after newer read rejected" true
    (!result = `Abort)

let test_to_thomas_write_rule () =
  let engine, kv = setup () in
  let st = Timestamp_order.create engine kv in
  let t1 = txn 1 and t2 = txn 2 in
  Timestamp_order.begin_txn st t1;
  Timestamp_order.begin_txn st t2;
  Timestamp_order.write st ~txn:t1 ~key:"a" ~value:"t1" ~k:(fun _ -> ());
  Timestamp_order.write st ~txn:t2 ~key:"a" ~value:"t2" ~k:(fun _ -> ());
  (* Newer commits first... *)
  Timestamp_order.commit st ~txn:t2 ~k:(fun _ -> ());
  (* ...then the older commit's write is skipped, not applied backwards. *)
  Timestamp_order.commit st ~txn:t1 ~k:(function
    | `Committed -> ()
    | `Aborted -> Alcotest.fail "TWR commit should succeed");
  Alcotest.(check (option string)) "newest value retained" (Some "t2")
    (Option.map (fun (i : Kv.item) -> i.value) (Kv.get kv "a"))

(* --- OCC --------------------------------------------------------------- *)

let test_occ_validation_failure () =
  let engine, kv = setup () in
  let st = Occ.create engine kv in
  let t1 = txn 1 and t2 = txn 2 in
  Occ.begin_txn st t1;
  Occ.begin_txn st t2;
  Occ.read st ~txn:t1 ~key:"a" ~k:(fun _ -> ());
  Occ.read st ~txn:t2 ~key:"a" ~k:(fun _ -> ());
  Occ.write st ~txn:t1 ~key:"a" ~value:"t1" ~k:(fun _ -> ());
  Occ.write st ~txn:t2 ~key:"a" ~value:"t2" ~k:(fun _ -> ());
  let r1 = ref `Pending and r2 = ref `Pending in
  Occ.commit st ~txn:t1 ~k:(fun o -> r1 := (o :> [ `Committed | `Aborted | `Pending ]));
  Occ.commit st ~txn:t2 ~k:(fun o -> r2 := (o :> [ `Committed | `Aborted | `Pending ]));
  Alcotest.(check bool) "first committer wins" true (!r1 = `Committed);
  Alcotest.(check bool) "second validation fails" true (!r2 = `Aborted);
  Alcotest.(check int) "validation abort counted" 1
    (Occ.stats st).validation_aborts

let test_occ_disjoint_commits () =
  let engine, kv = setup () in
  let st = Occ.create engine kv in
  let t1 = txn 1 and t2 = txn 2 in
  Occ.begin_txn st t1;
  Occ.begin_txn st t2;
  Occ.write st ~txn:t1 ~key:"a" ~value:"1" ~k:(fun _ -> ());
  Occ.write st ~txn:t2 ~key:"b" ~value:"2" ~k:(fun _ -> ());
  let ok = ref 0 in
  Occ.commit st ~txn:t1 ~k:(function `Committed -> incr ok | _ -> ());
  Occ.commit st ~txn:t2 ~k:(function `Committed -> incr ok | _ -> ());
  Alcotest.(check int) "both committed" 2 !ok

(* --- History oracle ----------------------------------------------------- *)

let test_history_detects_nonserializable () =
  let h = History.create () in
  let t1 = txn 1 and t2 = txn 2 in
  (* Classic lost-update cycle: each reads version 1 then overwrites the
     other's write. *)
  History.read h t1 ~key:"a" ~version:1;
  History.read h t2 ~key:"a" ~version:1;
  History.write h t1 ~key:"a" ~version:2;
  History.write h t2 ~key:"a" ~version:3;
  History.commit h t1;
  History.commit h t2;
  Alcotest.(check bool) "cycle detected" false (History.serializable h)

let test_history_serial_ok () =
  let h = History.create () in
  let t1 = txn 1 and t2 = txn 2 in
  History.read h t1 ~key:"a" ~version:1;
  History.write h t1 ~key:"a" ~version:2;
  History.commit h t1;
  History.read h t2 ~key:"a" ~version:2;
  History.write h t2 ~key:"a" ~version:3;
  History.commit h t2;
  Alcotest.(check bool) "serial history fine" true (History.serializable h)

let test_history_ignores_aborted () =
  let h = History.create () in
  let t1 = txn 1 and t2 = txn 2 in
  History.read h t1 ~key:"a" ~version:1;
  History.read h t2 ~key:"a" ~version:1;
  History.write h t1 ~key:"a" ~version:2;
  History.write h t2 ~key:"a" ~version:3;
  History.commit h t1;
  History.abort h t2;
  Alcotest.(check bool) "aborted txn not part of graph" true
    (History.serializable h)

(* --- Workbench: every scheme is serializable under random load ---------- *)

let workbench_case scheme =
  Alcotest.test_case
    (Printf.sprintf "%s: random workload is serializable"
       (Workbench.scheme_name scheme))
    `Quick
    (fun () ->
      let mix =
        { Rt_workload.Mix.default with keys = 20; ops_per_txn = 3;
          read_fraction = 0.5; theta = 0.9 }
      in
      let r =
        Workbench.run ~seed:42 ~check_history:true ~scheme ~clients:8 ~mix
          ~duration:(Time.ms 15) ()
      in
      Alcotest.(check bool) "made progress" true (r.committed > 10);
      Alcotest.(check (option bool)) "serializable" (Some true) r.serializable)

let prop_schemes_serializable =
  QCheck.Test.make ~name:"all schemes serializable across seeds" ~count:8
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, clients) ->
      List.for_all
        (fun scheme ->
          let mix =
            { Rt_workload.Mix.default with keys = 10; ops_per_txn = 3;
              theta = 1.0 }
          in
          let r =
            Workbench.run ~seed ~check_history:true ~scheme ~clients ~mix
              ~duration:(Time.ms 8) ()
          in
          r.serializable = Some true)
        Workbench.all_schemes)

let test_contention_hurts_occ_and_to () =
  (* Under high skew, the restart-based schemes abort much more than they
     do under uniform access — the shape experiment T6/F3 reports. *)
  let base = { Rt_workload.Mix.default with keys = 100; ops_per_txn = 4 } in
  let run scheme theta =
    (Workbench.run ~seed:7 ~scheme ~clients:8
       ~mix:{ base with theta } ~duration:(Time.ms 40) ())
      .abort_rate
  in
  List.iter
    (fun scheme ->
      let uniform = run scheme 0.0 and hot = run scheme 1.2 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: skew increases aborts"
           (Workbench.scheme_name scheme))
        true
        (hot >= uniform))
    [ Workbench.Timestamp; Workbench.Optimistic ]


(* --- deadlock prevention policies -------------------------------------- *)

let test_wound_wait_older_wounds () =
  let engine, kv = setup () in
  let st = Two_phase_locking.create_with_policy ~policy:`Wound_wait kv in
  ignore engine;
  let old_t = txn 1 and young_t = txn 2 in
  Two_phase_locking.begin_txn st young_t;
  Two_phase_locking.begin_txn st old_t;
  (* Young holds the lock... *)
  Two_phase_locking.write st ~txn:young_t ~key:"a" ~value:"y" ~k:(fun _ -> ());
  (* ...old wants it: young is wounded and old proceeds. *)
  let old_result = ref `Pending in
  Two_phase_locking.write st ~txn:old_t ~key:"a" ~value:"o" ~k:(function
    | `Ok -> old_result := `Ok
    | `Abort -> old_result := `Abort);
  Alcotest.(check bool) "old got the lock" true (!old_result = `Ok);
  Alcotest.(check int) "young was wounded" 1
    (Two_phase_locking.stats st).deadlock_aborts;
  (* The wounded transaction is gone; its commit reports aborted. *)
  Two_phase_locking.commit st ~txn:young_t ~k:(function
    | `Aborted -> ()
    | `Committed -> Alcotest.fail "wounded txn must not commit")

let test_wound_wait_younger_waits () =
  let _, kv = setup () in
  let st = Two_phase_locking.create_with_policy ~policy:`Wound_wait kv in
  let old_t = txn 1 and young_t = txn 2 in
  Two_phase_locking.begin_txn st old_t;
  Two_phase_locking.begin_txn st young_t;
  Two_phase_locking.write st ~txn:old_t ~key:"a" ~value:"o" ~k:(fun _ -> ());
  let young_result = ref `Pending in
  Two_phase_locking.write st ~txn:young_t ~key:"a" ~value:"y" ~k:(function
    | `Ok -> young_result := `Ok
    | `Abort -> young_result := `Abort);
  Alcotest.(check bool) "young waits (not aborted)" true
    (!young_result = `Pending);
  Two_phase_locking.commit st ~txn:old_t ~k:(fun _ -> ());
  Alcotest.(check bool) "young granted after release" true
    (!young_result = `Ok)

let test_wait_die_younger_dies () =
  let _, kv = setup () in
  let st = Two_phase_locking.create_with_policy ~policy:`Wait_die kv in
  let old_t = txn 1 and young_t = txn 2 in
  Two_phase_locking.begin_txn st old_t;
  Two_phase_locking.begin_txn st young_t;
  Two_phase_locking.write st ~txn:old_t ~key:"a" ~value:"o" ~k:(fun _ -> ());
  let young_result = ref `Pending in
  Two_phase_locking.write st ~txn:young_t ~key:"a" ~value:"y" ~k:(function
    | `Ok -> young_result := `Ok
    | `Abort -> young_result := `Abort);
  Alcotest.(check bool) "young dies immediately" true
    (!young_result = `Abort)

let test_wait_die_older_waits () =
  let _, kv = setup () in
  let st = Two_phase_locking.create_with_policy ~policy:`Wait_die kv in
  let old_t = txn 1 and young_t = txn 2 in
  Two_phase_locking.begin_txn st young_t;
  Two_phase_locking.begin_txn st old_t;
  Two_phase_locking.write st ~txn:young_t ~key:"a" ~value:"y" ~k:(fun _ -> ());
  let old_result = ref `Pending in
  Two_phase_locking.write st ~txn:old_t ~key:"a" ~value:"o" ~k:(function
    | `Ok -> old_result := `Ok
    | `Abort -> old_result := `Abort);
  Alcotest.(check bool) "old waits" true (!old_result = `Pending);
  Two_phase_locking.commit st ~txn:young_t ~k:(fun _ -> ());
  Alcotest.(check bool) "old granted after young commits" true
    (!old_result = `Ok)

let prop_prevention_policies_serializable =
  QCheck.Test.make
    ~name:"wound-wait and wait-die stay serializable and deadlock-free"
    ~count:10
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, clients) ->
      List.for_all
        (fun scheme ->
          let mix =
            { Rt_workload.Mix.default with keys = 10; ops_per_txn = 3;
              theta = 1.0; read_fraction = 0.3 }
          in
          let r =
            Workbench.run ~seed ~check_history:true ~scheme ~clients ~mix
              ~duration:(Time.ms 8) ()
          in
          r.serializable = Some true && r.committed > 0)
        [ Workbench.Two_pl_wound_wait; Workbench.Two_pl_wait_die ])

let () =
  Alcotest.run "cc"
    [
      ( "2pl",
        [
          Alcotest.test_case "read/write/commit" `Quick
            test_2pl_read_write_commit;
          Alcotest.test_case "blocks then grants" `Quick
            test_2pl_blocks_then_grants;
          Alcotest.test_case "deadlock victim" `Quick test_2pl_deadlock_victim;
        ] );
      ( "to",
        [
          Alcotest.test_case "rejects late read" `Quick test_to_rejects_late_read;
          Alcotest.test_case "rejects late write" `Quick
            test_to_rejects_late_write;
          Alcotest.test_case "thomas write rule" `Quick
            test_to_thomas_write_rule;
        ] );
      ( "occ",
        [
          Alcotest.test_case "validation failure" `Quick
            test_occ_validation_failure;
          Alcotest.test_case "disjoint commits" `Quick test_occ_disjoint_commits;
        ] );
      ( "history",
        [
          Alcotest.test_case "detects non-serializable" `Quick
            test_history_detects_nonserializable;
          Alcotest.test_case "serial ok" `Quick test_history_serial_ok;
          Alcotest.test_case "ignores aborted" `Quick
            test_history_ignores_aborted;
        ] );
      ( "prevention",
        [
          Alcotest.test_case "wound-wait: older wounds" `Quick
            test_wound_wait_older_wounds;
          Alcotest.test_case "wound-wait: younger waits" `Quick
            test_wound_wait_younger_waits;
          Alcotest.test_case "wait-die: younger dies" `Quick
            test_wait_die_younger_dies;
          Alcotest.test_case "wait-die: older waits" `Quick
            test_wait_die_older_waits;
          QCheck_alcotest.to_alcotest prop_prevention_policies_serializable;
        ] );
      ( "workbench",
        List.map workbench_case Workbench.all_schemes
        @ [
            QCheck_alcotest.to_alcotest prop_schemes_serializable;
            Alcotest.test_case "skew increases aborts" `Quick
              test_contention_hurts_occ_and_to;
          ] );
    ]
