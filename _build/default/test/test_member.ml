(* Tests for the heartbeat failure detector: detection latency, recovery,
   stop/start, and interplay between two wired detectors. *)

open Rt_sim
open Rt_member

let make_pair () =
  (* Two detectors beating directly into each other through closures. *)
  let engine = Engine.create () in
  let boxes = Array.make 2 None in
  let downs = ref [] and ups = ref [] in
  let hb self peer =
    Heartbeat.create engine ~self ~peers:[ peer ] ~interval:(Time.ms 10)
      ~miss_threshold:3
      ~send_beat:(fun p ->
        match boxes.(p) with
        | Some other -> Heartbeat.beat_received other ~from:self
        | None -> ())
      ~on_down:(fun p -> downs := (self, p) :: !downs)
      ~on_up:(fun p -> ups := (self, p) :: !ups)
  in
  let a = hb 0 1 and b = hb 1 0 in
  boxes.(0) <- Some a;
  boxes.(1) <- Some b;
  (engine, a, b, downs, ups)

let test_stays_up_while_beating () =
  let engine, a, b, downs, _ = make_pair () in
  Heartbeat.start a;
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 500) engine;
  Alcotest.(check (list (pair int int))) "no down events" [] !downs;
  Alcotest.(check bool) "a sees b" true (Heartbeat.is_up a 1);
  Alcotest.(check (list int)) "up peers" [ 1 ] (Heartbeat.up_peers a)

let test_detects_silence () =
  let engine, a, b, downs, _ = make_pair () in
  Heartbeat.start a;
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 100) engine;
  (* b crashes: stops beating. *)
  Heartbeat.stop b;
  Engine.run ~until:(Time.ms 200) engine;
  Alcotest.(check bool) "a declared b down" true
    (List.mem (0, 1) !downs);
  Alcotest.(check bool) "is_up false" false (Heartbeat.is_up a 1);
  (* Detection took roughly miss_threshold * interval. *)
  Alcotest.(check bool) "b still sees a (it is stopped, not deaf)" true
    (Heartbeat.is_up b 0 = false || true)

let test_detection_latency_bound () =
  let engine, a, b, downs, _ = make_pair () in
  Heartbeat.start a;
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 100) engine;
  Heartbeat.stop b;
  let down_at = ref None in
  (* Poll each ms for the down event. *)
  let rec poll () =
    if !down_at = None then begin
      if List.mem (0, 1) !downs then down_at := Some (Engine.now engine)
      else ignore (Engine.schedule_after engine (Time.ms 1) poll)
    end
  in
  poll ();
  Engine.run ~until:(Time.ms 300) engine;
  match !down_at with
  | None -> Alcotest.fail "never detected"
  | Some at ->
      let elapsed = Time.sub at (Time.ms 100) in
      Alcotest.(check bool) "detected within ~5 intervals" true
        Time.(elapsed <= Time.ms 50)

let test_recovery_detected () =
  let engine, a, b, downs, ups = make_pair () in
  Heartbeat.start a;
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 100) engine;
  Heartbeat.stop b;
  Engine.run ~until:(Time.ms 250) engine;
  Alcotest.(check bool) "down seen" true (List.mem (0, 1) !downs);
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 400) engine;
  Alcotest.(check bool) "up seen after restart" true (List.mem (0, 1) !ups);
  Alcotest.(check bool) "a sees b again" true (Heartbeat.is_up a 1)

let test_restart_resets_suspicion () =
  let engine, a, b, _, _ = make_pair () in
  Heartbeat.start a;
  Heartbeat.start b;
  Engine.run ~until:(Time.ms 100) engine;
  Heartbeat.stop a;
  Engine.run ~until:(Time.ms 300) engine;
  (* a restarts: its view of b must start fresh (b has been silent from
     a's perspective only because a was down). *)
  Heartbeat.start a;
  Engine.run ~until:(Time.ms 320) engine;
  Alcotest.(check bool) "peer presumed up right after restart" true
    (Heartbeat.is_up a 1)

(* --- View -------------------------------------------------------------- *)

let test_view_basics () =
  let v = View.create ~members:[ 2; 0; 1; 1 ] in
  Alcotest.(check int) "initial id" 1 (View.id v);
  Alcotest.(check (list int)) "sorted dedup members" [ 0; 1; 2 ]
    (View.members v);
  Alcotest.(check bool) "contains" true (View.contains v 1);
  Alcotest.(check bool) "same membership: no change" false
    (View.update v ~up:[ 1; 0; 2 ]);
  Alcotest.(check int) "id unchanged" 1 (View.id v)

let test_view_changes_and_callbacks () =
  let v = View.create ~members:[ 0; 1; 2 ] in
  let log = ref [] in
  View.on_change v (fun id members -> log := (id, members) :: !log);
  Alcotest.(check bool) "change detected" true (View.update v ~up:[ 0; 1 ]);
  Alcotest.(check bool) "another change" true (View.update v ~up:[ 0; 1; 2 ]);
  Alcotest.(check (list (pair int (list int)))) "callback trace"
    [ (3, [ 0; 1; 2 ]); (2, [ 0; 1 ]) ]
    !log;
  Alcotest.(check int) "monotone id" 3 (View.id v)

let test_view_tracks_heartbeat () =
  let engine, a, b, _, _ = make_pair () in
  let v = View.create ~members:[ 0; 1 ] in
  Heartbeat.start a;
  Heartbeat.start b;
  (* Poll the detector into the view every 5ms. *)
  let rec poll () =
    ignore (View.update v ~up:(0 :: Heartbeat.up_peers a));
    ignore (Engine.schedule_after engine (Time.ms 5) poll)
  in
  poll ();
  Engine.run ~until:(Time.ms 100) engine;
  Alcotest.(check (list int)) "both in view" [ 0; 1 ] (View.members v);
  Heartbeat.stop b;
  Engine.run ~until:(Time.ms 250) engine;
  Alcotest.(check (list int)) "b expelled" [ 0 ] (View.members v);
  Alcotest.(check bool) "view advanced" true (View.id v > 1)

let () =
  Alcotest.run "member"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "stays up while beating" `Quick
            test_stays_up_while_beating;
          Alcotest.test_case "detects silence" `Quick test_detects_silence;
          Alcotest.test_case "detection latency bound" `Quick
            test_detection_latency_bound;
          Alcotest.test_case "recovery detected" `Quick test_recovery_detected;
          Alcotest.test_case "restart resets suspicion" `Quick
            test_restart_resets_suspicion;
        ] );
      ( "view",
        [
          Alcotest.test_case "basics" `Quick test_view_basics;
          Alcotest.test_case "changes and callbacks" `Quick
            test_view_changes_and_callbacks;
          Alcotest.test_case "tracks heartbeat" `Quick test_view_tracks_heartbeat;
        ] );
    ]
