(* Tests for the atomic-commitment machines: happy paths, presumption
   variants' cost profiles, crash/recovery schedules, and the agreement
   property under randomized schedules with failures. *)

open Rt_commit
open Protocol

let all_protos =
  [
    Sandbox.P_two_pc Two_pc.Presumed_nothing;
    Sandbox.P_two_pc Two_pc.Presumed_abort;
    Sandbox.P_two_pc Two_pc.Presumed_commit;
    Sandbox.P_three_pc;
    Sandbox.P_quorum { commit_quorum = 2; abort_quorum = 2 };
  ]

let check_commit_unanimous proto () =
  let sites = 3 in
  let votes = Array.make sites true in
  let o = Sandbox.run_fifo ~proto ~sites ~votes () in
  Alcotest.(check bool) "all decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement;
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "committed" true (decision_equal d Commit))
    o.decisions;
  Alcotest.(check int) "three sites decided" 3 (List.length o.decisions)

let check_abort_on_no proto () =
  let sites = 3 in
  let votes = [| true; false; true |] in
  let o = Sandbox.run_fifo ~proto ~sites ~votes () in
  Alcotest.(check bool) "all decided" true o.all_decided;
  Alcotest.(check bool) "agreement" true o.agreement;
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "aborted" true (decision_equal d Abort))
    o.decisions

(* Classical cost profile: presumed-commit saves the commit-case acks,
   presumed-abort saves the abort-case round entirely. *)
let test_commit_costs () =
  let sites = 3 in
  let votes = Array.make sites true in
  let run proto = Sandbox.run_fifo ~proto ~sites ~votes () in
  let prn = run (Sandbox.P_two_pc Two_pc.Presumed_nothing) in
  let pra = run (Sandbox.P_two_pc Two_pc.Presumed_abort) in
  let prc = run (Sandbox.P_two_pc Two_pc.Presumed_commit) in
  (* Cross-site messages with coordinator at site 0 and 2 remote
     participants: PrN/PrA commit = 4 rounds x 2 remotes = 8; PrC drops
     the ack round = 6. *)
  Alcotest.(check int) "PrN messages" 8 prn.messages;
  Alcotest.(check int) "PrA messages" 8 pra.messages;
  Alcotest.(check int) "PrC messages" 6 prc.messages;
  (* Forced writes, commit case: PrN/PrA: coordinator decision + per-site
     prepared + decision = 1 + 3*2 = 7.  PrC adds the collecting record
     but makes participant commit records lazy: 1 + 1 + 3 prepared + 3
     commit(lazy) -> forced = 2 + 3 + coordinator's own participant
     decision... counted exactly below. *)
  Alcotest.(check int) "PrN forced" 7 prn.forced_writes;
  Alcotest.(check int) "PrA forced" 7 pra.forced_writes;
  Alcotest.(check int) "PrC forced" 5 prc.forced_writes;
  (* Abort costs: PrA's abort should be strictly cheaper than PrN's. *)
  let votes_no = [| true; false; true |] in
  let prn_a =
    Sandbox.run ~proto:(Sandbox.P_two_pc Two_pc.Presumed_nothing) ~sites
      ~votes:votes_no ()
  in
  let pra_a =
    Sandbox.run ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites
      ~votes:votes_no ()
  in
  Alcotest.(check bool) "PrA abort cheaper (messages)" true
    (pra_a.messages <= prn_a.messages);
  Alcotest.(check bool) "PrA abort cheaper (forces)" true
    (pra_a.forced_writes < prn_a.forced_writes)

(* Coordinator crash right after start: 2PC participants that prepared
   stay blocked until recovery; 3PC terminates without the coordinator. *)
let test_2pc_blocks_on_coordinator_crash () =
  let proto = Sandbox.P_two_pc Two_pc.Presumed_abort in
  let sites = 3 in
  let votes = Array.make sites true in
  (* Crash the coordinator after enough steps that vote-reqs went out and
     participants prepared; never recover. *)
  let o = Sandbox.run ~seed:1 ~crashes:[ (0, 8) ] ~max_steps:400 ~proto ~sites ~votes () in
  Alcotest.(check bool) "agreement holds" true o.agreement;
  (* Participants must either have decided consistently (crash hit before
     any prepared) or be blocked. *)
  if not o.all_decided then
    Alcotest.(check bool) "blocked reported" true o.blocked

let test_2pc_unblocks_on_recovery () =
  let proto = Sandbox.P_two_pc Two_pc.Presumed_abort in
  let sites = 3 in
  let votes = Array.make sites true in
  let o =
    Sandbox.run ~seed:2 ~crashes:[ (0, 8) ] ~recoveries:[ (0, 60) ]
      ~max_steps:2000 ~proto ~sites ~votes ()
  in
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "all decided after recovery" true o.all_decided

let test_3pc_nonblocking_on_coordinator_crash () =
  let sites = 3 in
  let votes = Array.make sites true in
  (* Whatever the crash point, surviving 3PC participants decide. *)
  for k = 1 to 30 do
    let o =
      Sandbox.run ~seed:k ~crashes:[ (0, k) ] ~max_steps:2000
        ~proto:Sandbox.P_three_pc ~sites ~votes ()
    in
    Alcotest.(check bool)
      (Printf.sprintf "agreement at crash point %d" k)
      true o.agreement;
    Alcotest.(check bool)
      (Printf.sprintf "3PC decided at crash point %d" k)
      true o.all_decided
  done

(* Agreement under randomized schedules and random crash points, across
   every protocol.  This is the core safety property. *)
let prop_agreement =
  let gen =
    QCheck.Gen.(
      let* sites = int_range 2 5 in
      let* votes = array_repeat sites bool in
      let* seed = int_range 0 10_000 in
      let* n_crashes = int_range 0 2 in
      let* crashes =
        list_repeat n_crashes
          (pair (int_range 0 (sites - 1)) (int_range 0 60))
      in
      let* recover = bool in
      let recoveries =
        if recover then List.map (fun (s, k) -> (s, k + 80)) crashes else []
      in
      return (sites, votes, seed, crashes, recoveries))
  in
  let arb =
    QCheck.make gen ~print:(fun (sites, votes, seed, crashes, _) ->
        Printf.sprintf "sites=%d votes=[%s] seed=%d crashes=[%s]" sites
          (String.concat ";"
             (Array.to_list (Array.map string_of_bool votes)))
          seed
          (String.concat ";"
             (List.map (fun (s, k) -> Printf.sprintf "%d@%d" s k) crashes)))
  in
  QCheck.Test.make ~name:"commit protocols: agreement under crashes"
    ~count:300 arb (fun (sites, votes, seed, crashes, recoveries) ->
      List.for_all
        (fun proto ->
          let proto =
            match proto with
            | Sandbox.P_quorum _ ->
                (* Majority quorums sized to the site count. *)
                let q = (sites / 2) + 1 in
                Sandbox.P_quorum { commit_quorum = q; abort_quorum = q }
            | p -> p
          in
          let o =
            Sandbox.run ~seed ~crashes ~recoveries ~max_steps:3000 ~proto
              ~sites ~votes ()
          in
          o.agreement)
        all_protos)

(* Validity: a No vote means nobody commits; unanimous Yes with no
   failures means everybody commits. *)
let prop_validity =
  let gen =
    QCheck.Gen.(
      let* sites = int_range 2 5 in
      let* votes = array_repeat sites bool in
      let* seed = int_range 0 10_000 in
      return (sites, votes, seed))
  in
  let arb =
    QCheck.make gen ~print:(fun (sites, votes, seed) ->
        Printf.sprintf "sites=%d votes=[%s] seed=%d" sites
          (String.concat ";" (Array.to_list (Array.map string_of_bool votes)))
          seed)
  in
  QCheck.Test.make ~name:"commit protocols: validity (failure-free)"
    ~count:300 arb (fun (sites, votes, seed) ->
      let unanimous = Array.for_all (fun v -> v) votes in
      List.for_all
        (fun proto ->
          let proto =
            match proto with
            | Sandbox.P_quorum _ ->
                let q = (sites / 2) + 1 in
                Sandbox.P_quorum { commit_quorum = q; abort_quorum = q }
            | p -> p
          in
          let o = Sandbox.run ~seed ~max_steps:3000 ~proto ~sites ~votes () in
          o.all_decided && o.agreement
          &&
          match o.decisions with
          | [] -> false
          | (_, d) :: _ ->
              if unanimous then decision_equal d Commit
              else decision_equal d Abort)
        all_protos)

(* Quorum commit: with a majority of sites crashed, the survivors block
   rather than decide (no split-brain); with a majority alive they
   decide. *)
let test_qc_minority_blocks () =
  let sites = 5 in
  let votes = Array.make sites true in
  let proto = Sandbox.P_quorum { commit_quorum = 3; abort_quorum = 3 } in
  (* Crash three sites early, leaving 2 < quorum.  Depending on the crash
     point survivors may or may not have decided first; if they have not,
     they must remain undecided (blocked), never decide inconsistently. *)
  let o =
    Sandbox.run ~seed:7
      ~crashes:[ (0, 10); (1, 10); (2, 10) ]
      ~max_steps:1500 ~proto ~sites ~votes ()
  in
  Alcotest.(check bool) "agreement" true o.agreement

(* --- read-only optimization ------------------------------------------ *)

let test_read_only_optimization_costs () =
  let sites = 3 in
  let votes = Array.make sites true in
  let proto = Sandbox.P_two_pc Two_pc.Presumed_abort in
  (* Site 2 performed no writes. *)
  let ro = [| false; false; true |] in
  let base = Sandbox.run_fifo ~proto ~sites ~votes () in
  let opt = Sandbox.run ~read_only:ro ~proto ~sites ~votes () in
  Alcotest.(check bool) "optimized run decides" true opt.all_decided;
  Alcotest.(check bool) "agreement" true opt.agreement;
  (* The read-only site saves its decision round (2 messages) and both
     its forced records (prepared + commit). *)
  Alcotest.(check int) "two messages saved" (base.messages - 2) opt.messages;
  Alcotest.(check int) "two forces saved" (base.forced_writes - 2)
    opt.forced_writes

let test_all_read_only_commits_free () =
  let sites = 3 in
  let votes = Array.make sites true in
  let ro = Array.make sites true in
  let o =
    Sandbox.run ~read_only:ro
      ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites ~votes ()
  in
  Alcotest.(check bool) "decides" true o.all_decided;
  (* Only the vote round remains: 2 requests + 2 read-only votes from the
     remote sites; no forced writes anywhere. *)
  Alcotest.(check int) "vote round only" 4 o.messages;
  Alcotest.(check int) "no forces" 0 o.forced_writes

let prop_read_only_agreement =
  QCheck.Test.make ~name:"read-only optimization preserves agreement"
    ~count:200
    QCheck.(triple (int_range 2 5) (int_range 0 10_000) (int_range 0 31))
    (fun (sites, seed, ro_mask) ->
      let votes = Array.make sites true in
      let ro = Array.init sites (fun i -> ro_mask land (1 lsl i) <> 0) in
      List.for_all
        (fun variant ->
          let o =
            Sandbox.run ~seed ~read_only:ro ~max_steps:3000
              ~proto:(Sandbox.P_two_pc variant) ~sites ~votes ()
          in
          o.agreement && o.all_decided
          && List.for_all (fun (_, d) -> decision_equal d Commit) o.decisions)
        [ Two_pc.Presumed_nothing; Two_pc.Presumed_abort;
          Two_pc.Presumed_commit ])

let happy_cases =
  List.concat_map
    (fun proto ->
      let name = Sandbox.proto_name proto in
      [
        Alcotest.test_case
          (Printf.sprintf "%s: unanimous yes commits" name)
          `Quick (check_commit_unanimous proto);
        Alcotest.test_case
          (Printf.sprintf "%s: a no vote aborts" name)
          `Quick (check_abort_on_no proto);
      ])
    all_protos

let () =
  Alcotest.run "commit"
    [
      ("happy-path", happy_cases);
      ( "costs",
        [ Alcotest.test_case "presumption cost profile" `Quick test_commit_costs ]
      );
      ( "failures",
        [
          Alcotest.test_case "2PC blocks on coordinator crash" `Quick
            test_2pc_blocks_on_coordinator_crash;
          Alcotest.test_case "2PC unblocks on recovery" `Quick
            test_2pc_unblocks_on_recovery;
          Alcotest.test_case "3PC non-blocking on coordinator crash" `Quick
            test_3pc_nonblocking_on_coordinator_crash;
          Alcotest.test_case "QC minority never splits" `Quick
            test_qc_minority_blocks;
        ] );
      ( "read-only",
        [
          Alcotest.test_case "optimization saves messages and forces" `Quick
            test_read_only_optimization_costs;
          Alcotest.test_case "all-read-only is almost free" `Quick
            test_all_read_only_commits_free;
          QCheck_alcotest.to_alcotest prop_read_only_agreement;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_agreement;
          QCheck_alcotest.to_alcotest prop_validity;
        ] );
    ]
