test/test_core_failures.mli:
