test/test_commit_steps.ml: Alcotest List Protocol Quorum_commit Rt_commit Three_pc Two_pc
