test/test_sim.ml: Alcotest Buffer Engine Heap Int List Printf QCheck QCheck_alcotest Rng Rt_sim String Time
