test/test_quorum.ml: Alcotest Array Availability Coterie List Printf QCheck QCheck_alcotest Rt_quorum String Tree_quorum Votes
