test/test_sandbox.ml: Alcotest List Printf Protocol Rt_commit Sandbox String Two_pc
