test/test_storage.ml: Alcotest Checkpoint Engine Gen Ids Kv List Log_record Printf QCheck QCheck_alcotest Recovery Rt_sim Rt_storage Rt_types Time Wal
