test/test_replica.ml: Alcotest List QCheck QCheck_alcotest Replica_control Rt_quorum Rt_replica
