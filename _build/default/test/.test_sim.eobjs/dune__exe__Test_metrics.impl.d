test/test_metrics.ml: Alcotest Counter Gen Histogram List Printf QCheck QCheck_alcotest Rt_metrics Rt_sim Sample String Table
