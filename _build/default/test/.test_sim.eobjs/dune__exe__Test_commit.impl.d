test/test_commit.ml: Alcotest Array List Printf Protocol QCheck QCheck_alcotest Rt_commit Sandbox String Two_pc
