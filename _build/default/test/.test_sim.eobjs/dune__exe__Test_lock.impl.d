test/test_lock.ml: Alcotest Array Ids List Lock_table Printf QCheck QCheck_alcotest Rt_lock Rt_sim Rt_types String Time Wfg
