test/test_workload.ml: Alcotest Array List Mix Printf QCheck QCheck_alcotest Rng Rt_sim Rt_workload String Zipf
