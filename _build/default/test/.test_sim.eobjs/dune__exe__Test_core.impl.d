test/test_core.ml: Alcotest Array Client Cluster Config Engine List Option Printf Rt_commit Rt_core Rt_replica Rt_sim Rt_storage Rt_workload Site Time
