test/test_commit_steps.mli:
