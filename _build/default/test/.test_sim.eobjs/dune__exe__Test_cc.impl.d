test/test_cc.ml: Alcotest Engine History Ids List Occ Option Printf QCheck QCheck_alcotest Rt_cc Rt_sim Rt_storage Rt_types Rt_workload Time Timestamp_order Two_phase_locking Workbench
