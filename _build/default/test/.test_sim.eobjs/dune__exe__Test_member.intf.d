test/test_member.mli:
