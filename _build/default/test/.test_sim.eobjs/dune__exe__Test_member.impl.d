test/test_member.ml: Alcotest Array Engine Heartbeat List Rt_member Rt_sim Time View
