test/test_net.ml: Alcotest Array Engine Latency List Net Partition QCheck QCheck_alcotest Rng Rt_net Rt_sim Time
