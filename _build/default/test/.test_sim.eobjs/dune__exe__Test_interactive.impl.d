test/test_interactive.ml: Alcotest Cluster Config Engine List Option Printf Rng Rt_core Rt_replica Rt_sim Rt_storage Rt_workload Site Time
