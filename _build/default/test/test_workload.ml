(* Tests for workload generation: Zipf distribution correctness, mix
   semantics, determinism, and population. *)

open Rt_sim
open Rt_workload

let rng seed = Rng.create ~seed

(* --- Zipf -------------------------------------------------------------- *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let r = rng 1 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = Zipf.sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "rank %d near 0.1" i)
        true
        (freq > 0.085 && freq < 0.115))
    counts

let test_zipf_skewed () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let r = rng 2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let k = Zipf.sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (Array.for_all (fun c -> counts.(0) >= c) counts);
  Alcotest.(check bool) "rank 0 >> rank 50" true
    (counts.(0) > 10 * max 1 counts.(50))

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:50 ~theta:0.9 in
  let total = ref 0. in
  for i = 0 to 49 do
    total := !total +. Zipf.pmf z i
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_zipf_matches_pmf () =
  let z = Zipf.create ~n:5 ~theta:1.2 in
  let r = rng 3 in
  let n = 100_000 in
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let k = Zipf.sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  for i = 0 to 4 do
    let freq = float_of_int counts.(i) /. float_of_int n in
    let expected = Zipf.pmf z i in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d within 10%% of pmf" i)
      true
      (abs_float (freq -. expected) < 0.1 *. expected +. 0.005)
  done

(* --- Mix ----------------------------------------------------------------- *)

let test_mix_distinct_sorted_keys () =
  let mix = { Mix.default with keys = 50; ops_per_txn = 5 } in
  let g = Mix.generator mix (rng 4) in
  for _ = 1 to 200 do
    let ops = Mix.next_txn g in
    let keys = List.map Mix.op_key ops in
    Alcotest.(check int) "requested ops" 5 (List.length ops);
    Alcotest.(check (list string)) "sorted distinct"
      (List.sort_uniq String.compare keys)
      keys
  done

let test_mix_read_fraction () =
  let mix =
    { Mix.default with keys = 1000; ops_per_txn = 4; read_fraction = 0.75 }
  in
  let g = Mix.generator mix (rng 5) in
  let reads = ref 0 and total = ref 0 in
  for _ = 1 to 2_000 do
    List.iter
      (fun op ->
        incr total;
        if Mix.is_read op then incr reads)
      (Mix.next_txn g)
  done;
  let f = float_of_int !reads /. float_of_int !total in
  Alcotest.(check bool) "read fraction ~0.75" true (f > 0.72 && f < 0.78)

let test_mix_value_size () =
  let mix = { Mix.default with value_size = 64; read_fraction = 0. } in
  let g = Mix.generator mix (rng 6) in
  List.iter
    (function
      | Mix.Write (_, v) ->
          Alcotest.(check bool) "value at least requested size" true
            (String.length v >= 64)
      | Mix.Read _ -> Alcotest.fail "write-only mix")
    (Mix.next_txn g)

let test_mix_determinism () =
  let mix = { Mix.default with keys = 100; theta = 0.9 } in
  let run () =
    let g = Mix.generator mix (rng 7) in
    List.init 50 (fun _ -> Mix.next_txn g)
  in
  Alcotest.(check bool) "same seed, same stream" true (run () = run ())

let test_mix_unordered_has_conflicting_orders () =
  (* With unordered generation, some pair of transactions must access a
     shared pair of keys in opposite orders — the deadlock precondition. *)
  let mix =
    { Mix.default with keys = 5; ops_per_txn = 3; read_fraction = 0. }
  in
  let g = Mix.generator mix (rng 8) in
  let txns = List.init 100 (fun _ -> Mix.next_txn_unordered g) in
  let key_pairs ops =
    let keys = List.map Mix.op_key ops in
    List.concat_map
      (fun a -> List.filter_map (fun b -> if a <> b then Some (a, b) else None) keys)
      keys
    |> List.filter (fun (a, b) ->
           (* a before b in access order *)
           let rec idx k = function
             | [] -> -1
             | x :: r -> if x = k then 0 else 1 + idx k r
           in
           idx a keys < idx b keys)
  in
  let opposite =
    List.exists
      (fun t1 ->
        List.exists
          (fun t2 ->
            List.exists
              (fun (a, b) -> List.mem (b, a) (key_pairs t2))
              (key_pairs t1))
          txns)
      txns
  in
  Alcotest.(check bool) "opposite orders occur" true opposite

let test_populate () =
  let mix = { Mix.default with keys = 10 } in
  let got = ref [] in
  Mix.populate mix (fun ~key ~value:_ -> got := key :: !got);
  Alcotest.(check int) "all keys" 10 (List.length !got);
  Alcotest.(check bool) "key naming" true (List.mem (Mix.key_of 3) !got)

let prop_sample_in_range =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:200
    QCheck.(pair (int_range 1 100) (int_range 0 20))
    (fun (n, theta10) ->
      let z = Zipf.create ~n ~theta:(float_of_int theta10 /. 10.) in
      let r = rng (n + theta10) in
      let ok = ref true in
      for _ = 1 to 100 do
        let k = Zipf.sample z r in
        if k < 0 || k >= n then ok := false
      done;
      !ok)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "skewed" `Quick test_zipf_skewed;
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "sampling matches pmf" `Quick test_zipf_matches_pmf;
          QCheck_alcotest.to_alcotest prop_sample_in_range;
        ] );
      ( "mix",
        [
          Alcotest.test_case "distinct sorted keys" `Quick
            test_mix_distinct_sorted_keys;
          Alcotest.test_case "read fraction" `Quick test_mix_read_fraction;
          Alcotest.test_case "value size" `Quick test_mix_value_size;
          Alcotest.test_case "determinism" `Quick test_mix_determinism;
          Alcotest.test_case "unordered conflicts" `Quick
            test_mix_unordered_has_conflicting_orders;
          Alcotest.test_case "populate" `Quick test_populate;
        ] );
    ]
