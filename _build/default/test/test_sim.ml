(* Tests for the discrete-event engine: clock semantics, ordering,
   cancellation, determinism of the RNG, and heap behaviour. *)

open Rt_sim

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "sec" 1_000_000_000 (Time.sec 1);
  Alcotest.(check int) "of_float_s" 1_500_000_000 (Time.of_float_s 1.5);
  Alcotest.(check (float 1e-9)) "to_float_s" 0.5 (Time.to_float_s (Time.ms 500))

let test_events_fire_in_time_order () =
  let e = Engine.create () in
  let order = ref [] in
  let tag name () = order := name :: !order in
  ignore (Engine.schedule_after e (Time.ms 30) (tag "c"));
  ignore (Engine.schedule_after e (Time.ms 10) (tag "a"));
  ignore (Engine.schedule_after e (Time.ms 20) (tag "b"));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !order)

let test_same_instant_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 9 do
    ignore
      (Engine.schedule_after e (Time.ms 5) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at same instant"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule_after e (Time.ms 7) (fun () -> seen := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "clock at event time" (Time.ms 7) !seen

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule_after e (Time.ms 1) (fun () -> fired := true) in
  Engine.cancel e id;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_run_until_horizon () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule_after e (Time.ms 10) (fun () -> fired := 1 :: !fired));
  ignore (Engine.schedule_after e (Time.ms 30) (fun () -> fired := 2 :: !fired));
  Engine.run ~until:(Time.ms 20) e;
  Alcotest.(check (list int)) "only first fired" [ 1 ] !fired;
  Alcotest.(check int) "clock at horizon" (Time.ms 20) (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "second fired later" [ 2; 1 ] !fired

let test_nested_scheduling () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec chain n () =
    incr count;
    if n > 0 then ignore (Engine.schedule_after e (Time.ms 1) (chain (n - 1)))
  in
  ignore (Engine.schedule_after e Time.zero (chain 99));
  Engine.run e;
  Alcotest.(check int) "chain length" 100 !count;
  Alcotest.(check int) "final clock" (Time.ms 99) (Engine.now e)

let test_schedule_in_past_fires_now () =
  let e = Engine.create () in
  let at = ref (-1) in
  ignore
    (Engine.schedule_after e (Time.ms 10)
       (fun () ->
         ignore (Engine.schedule_at e Time.zero (fun () -> at := Engine.now e))));
  Engine.run e;
  Alcotest.(check int) "past-scheduled fires at current time" (Time.ms 10) !at

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done;
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.bits64 (Rng.create ~seed:42) <> Rng.bits64 c)

let test_rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let x = Rng.bits64 b in
  (* Replaying: splitting at the same point yields the same stream. *)
  let a' = Rng.create ~seed:1 in
  let b' = Rng.split a' in
  Alcotest.(check int64) "split reproducible" x (Rng.bits64 b')

let test_rng_bounds () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Rng.float rng 2.0 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.0);
    let i = Rng.int_in rng ~lo:5 ~hi:8 in
    Alcotest.(check bool) "int_in inclusive" true (i >= 5 && i <= 8)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean ~5" true (mean > 4.7 && mean < 5.3)

let test_rng_bernoulli () =
  let rng = Rng.create ~seed:3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli rate ~0.3" true (rate > 0.27 && rate < 0.33)

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare in
  let input = [ 5; 3; 8; 1; 9; 2; 7; 4; 6; 0 ] in
  List.iter (Heap.push h) input;
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are seed-deterministic" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let run () =
        let e = Engine.create ~seed () in
        let rng = Rng.split (Engine.rng e) in
        let log = Buffer.create 64 in
        for i = 0 to 20 do
          let d = Rng.int rng 1000 in
          ignore
            (Engine.schedule_after e (Time.us d) (fun () ->
                 Buffer.add_string log (Printf.sprintf "%d@%d;" i (Engine.now e))))
        done;
        Engine.run e;
        Buffer.contents log
      in
      String.equal (run ()) (run ()))

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [ Alcotest.test_case "units" `Quick test_time_units ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_events_fire_in_time_order;
          Alcotest.test_case "same-instant fifo" `Quick test_same_instant_fifo;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until horizon" `Quick test_run_until_horizon;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "past scheduling clamps" `Quick
            test_schedule_in_past_fires_now;
          QCheck_alcotest.to_alcotest prop_engine_deterministic;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split reproducible" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
    ]
