(* Tests for weighted voting, coteries, and availability analysis. *)

open Rt_quorum

let test_majority () =
  let v = Votes.majority ~sites:5 in
  Alcotest.(check int) "read quorum" 3 (Votes.read_quorum v);
  Alcotest.(check int) "write quorum" 3 (Votes.write_quorum v);
  Alcotest.(check bool) "3 sites suffice" true (Votes.read_ok v [ 0; 1; 2 ]);
  Alcotest.(check bool) "2 sites fail" false (Votes.write_ok v [ 0; 1 ]);
  Alcotest.(check bool) "duplicates don't double-count" false
    (Votes.write_ok v [ 0; 0; 1; 1 ])

let test_rowa () =
  let v = Votes.read_one_write_all ~sites:4 in
  Alcotest.(check bool) "read one" true (Votes.read_ok v [ 2 ]);
  Alcotest.(check bool) "write needs all" false (Votes.write_ok v [ 0; 1; 2 ]);
  Alcotest.(check bool) "write all ok" true (Votes.write_ok v [ 0; 1; 2; 3 ])

let test_invalid_assignments () =
  Alcotest.check_raises "r+w <= total rejected"
    (Invalid_argument "Votes.make: r + w must exceed total votes") (fun () ->
      ignore (Votes.make ~votes:[| 1; 1; 1 |] ~read_quorum:1 ~write_quorum:2));
  Alcotest.check_raises "2w <= total rejected"
    (Invalid_argument "Votes.make: 2w must exceed total votes") (fun () ->
      ignore (Votes.make ~votes:[| 1; 1; 1; 1 |] ~read_quorum:4 ~write_quorum:2));
  Alcotest.check_raises "read-all-write-one invalid for n>1"
    (Invalid_argument "Votes.make: 2w must exceed total votes") (fun () ->
      ignore (Votes.read_all_write_one ~sites:3))

let test_weighted () =
  (* Site 0 carries 3 votes: it alone can form a write quorum of 4 with one
     helper, and reads can be served by the heavy site alone. *)
  let v = Votes.make ~votes:[| 3; 1; 1 |] ~read_quorum:3 ~write_quorum:4 in
  Alcotest.(check bool) "heavy site reads alone" true (Votes.read_ok v [ 0 ]);
  Alcotest.(check bool) "light pair cannot read" false (Votes.read_ok v [ 1; 2 ]);
  Alcotest.(check bool) "heavy + one writes" true (Votes.write_ok v [ 0; 2 ])

let test_min_sets () =
  let v = Votes.make ~votes:[| 3; 1; 1 |] ~read_quorum:3 ~write_quorum:4 in
  (match Votes.min_read_set v ~up:(fun _ -> true) with
  | Some set -> Alcotest.(check (list int)) "greedy read set" [ 0 ] set
  | None -> Alcotest.fail "read set expected");
  (match Votes.min_write_set v ~up:(fun s -> s <> 0) with
  | Some _ -> Alcotest.fail "write impossible without heavy site"
  | None -> ());
  match Votes.min_write_set v ~up:(fun _ -> true) with
  | Some set -> Alcotest.(check int) "write set size" 2 (List.length set)
  | None -> Alcotest.fail "write set expected"

let test_uniform_helper () =
  let v = Votes.uniform ~sites:7 ~read_quorum:2 in
  Alcotest.(check int) "write quorum derived" 6 (Votes.write_quorum v);
  let v2 = Votes.uniform ~sites:7 ~read_quorum:4 in
  Alcotest.(check int) "majority floor" 4 (Votes.write_quorum v2)

(* --- Coteries -------------------------------------------------------- *)

let test_coterie_from_votes () =
  let v = Votes.majority ~sites:3 in
  let wq = Coterie.write_quorums_of_votes v in
  (* Minimal write quorums of majority-3: the three pairs. *)
  Alcotest.(check int) "three minimal quorums" 3
    (List.length (Coterie.quorums wq));
  Alcotest.(check bool) "pairwise intersecting" true
    (Coterie.pairwise_intersecting wq);
  let rq = Coterie.read_quorums_of_votes v in
  Alcotest.(check bool) "read/write intersect" true
    (Coterie.cross_intersecting rq wq);
  Alcotest.(check int) "min size" 2 (Coterie.min_quorum_size wq);
  Alcotest.(check bool) "contains quorum" true
    (Coterie.contains_quorum wq [ 1; 2 ]);
  Alcotest.(check bool) "singleton insufficient" false
    (Coterie.contains_quorum wq [ 1 ])

let test_coterie_minimality () =
  let c = Coterie.of_quorums [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 1; 2 ] ] in
  Alcotest.(check int) "superset removed" 2 (List.length (Coterie.quorums c))

let prop_vote_quorums_always_intersect =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* votes = array_repeat n (int_range 1 3) in
      let total = Array.fold_left ( + ) 0 votes in
      let* w = int_range ((total / 2) + 1) total in
      let r_min = total - w + 1 in
      let* r = int_range r_min total in
      return (votes, r, w))
  in
  QCheck.Test.make ~name:"vote-derived quorums intersect" ~count:200
    (QCheck.make gen ~print:(fun (votes, r, w) ->
         Printf.sprintf "votes=[%s] r=%d w=%d"
           (String.concat ";"
              (Array.to_list (Array.map string_of_int votes)))
           r w))
    (fun (votes, r, w) ->
      let v = Votes.make ~votes ~read_quorum:r ~write_quorum:w in
      let rq = Coterie.read_quorums_of_votes v in
      let wq = Coterie.write_quorums_of_votes v in
      Coterie.pairwise_intersecting wq && Coterie.cross_intersecting rq wq)

(* --- Availability ----------------------------------------------------- *)

let feq = Alcotest.(check (float 1e-9))

let test_rowa_availability () =
  feq "write = p^n" (0.9 ** 3.) (Availability.rowa_write ~sites:3 ~p:0.9);
  feq "read = 1-(1-p)^n"
    (1. -. (0.1 ** 3.))
    (Availability.rowa_read ~sites:3 ~p:0.9);
  feq "available copies write = rowa read"
    (Availability.rowa_read ~sites:3 ~p:0.9)
    (Availability.available_copies_write ~sites:3 ~p:0.9)

let test_majority_availability_closed_form () =
  (* n=3 majority: P(≥2 up) = 3p²(1-p) + p³. *)
  let p = 0.9 in
  let expected = (3. *. p *. p *. (1. -. p)) +. (p ** 3.) in
  feq "majority-3" expected (Availability.majority_txn ~sites:3 ~p)

let test_quorum_availability_monotone () =
  let v = Votes.majority ~sites:5 in
  let a1 = Availability.txn_availability v ~p:0.8 in
  let a2 = Availability.txn_availability v ~p:0.9 in
  Alcotest.(check bool) "monotone in p" true (a2 > a1)

let test_majority_beats_rowa_write () =
  (* The classical motivation: majority writes stay available when any
     minority of sites is down, while ROWA writes require all sites. *)
  let p = 0.9 and n = 5 in
  let rowa = Availability.rowa_write ~sites:n ~p in
  let maj = Availability.majority_txn ~sites:n ~p in
  Alcotest.(check bool) "majority > rowa for writes" true (maj > rowa)

let prop_availability_bounds =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* p10 = int_range 0 10 in
      return (n, float_of_int p10 /. 10.))
  in
  QCheck.Test.make ~name:"availability stays within [0,1]" ~count:100
    (QCheck.make gen ~print:(fun (n, p) -> Printf.sprintf "n=%d p=%.1f" n p))
    (fun (n, p) ->
      let v = Votes.majority ~sites:n in
      let a = Availability.txn_availability v ~p in
      a >= 0. && a <= 1.)

let prop_read_availability_ge_write =
  (* With r ≤ w, read quorums are easier to form. *)
  QCheck.Test.make ~name:"read availability ≥ write availability when r ≤ w"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 9))
    (fun (n, p10) ->
      let p = float_of_int p10 /. 10. in
      let v = Votes.majority ~sites:n in
      Availability.read_availability v ~p >= Availability.write_availability v ~p -. 1e-12)

(* --- Tree quorums ------------------------------------------------------ *)

let test_tree_sites () =
  Alcotest.(check int) "degree 3 height 1" 4 (Tree_quorum.sites ~degree:3 ~height:1);
  Alcotest.(check int) "degree 3 height 2" 13 (Tree_quorum.sites ~degree:3 ~height:2);
  Alcotest.(check int) "degree 2 height 2" 7 (Tree_quorum.sites ~degree:2 ~height:2)

let test_tree_quorums_intersect () =
  List.iter
    (fun (degree, height) ->
      let c = Tree_quorum.coterie ~degree ~height in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d h=%d pairwise intersecting" degree height)
        true
        (Coterie.pairwise_intersecting c))
    [ (2, 1); (2, 2); (3, 1); (3, 2) ]

let test_tree_min_quorum_logarithmic () =
  (* Binary tree of height 2 (7 sites): the cheapest quorum is a
     root-to-leaf path of 3, beating the flat majority of 4; height 3
     (15 sites): path of 4 vs majority of 8. *)
  Alcotest.(check int) "7 sites: path of 3"
    3 (Tree_quorum.min_quorum_size ~degree:2 ~height:2);
  Alcotest.(check int) "15 sites: path of 4"
    4 (Tree_quorum.min_quorum_size ~degree:2 ~height:3)

let test_tree_availability_reasonable () =
  let p = 0.9 in
  let tree = Tree_quorum.availability ~degree:3 ~height:1 ~p in
  (* Beats a single copy, bounded by 1. *)
  Alcotest.(check bool) "beats single site" true (tree > p);
  Alcotest.(check bool) "valid probability" true (tree <= 1.0);
  (* Degrades to 0 as p -> 0, approaches 1 as p -> 1. *)
  Alcotest.(check bool) "low p low availability" true
    (Tree_quorum.availability ~degree:3 ~height:1 ~p:0.05 < 0.1);
  Alcotest.(check bool) "high p high availability" true
    (Tree_quorum.availability ~degree:3 ~height:1 ~p:0.999 > 0.99)

let tree_cases =
  [
    Alcotest.test_case "sites" `Quick test_tree_sites;
    Alcotest.test_case "quorums intersect" `Quick test_tree_quorums_intersect;
    Alcotest.test_case "logarithmic quorums" `Quick
      test_tree_min_quorum_logarithmic;
    Alcotest.test_case "availability" `Quick test_tree_availability_reasonable;
  ]

let () =
  Alcotest.run "quorum"
    [
      ( "votes",
        [
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "rowa" `Quick test_rowa;
          Alcotest.test_case "invalid" `Quick test_invalid_assignments;
          Alcotest.test_case "weighted" `Quick test_weighted;
          Alcotest.test_case "min sets" `Quick test_min_sets;
          Alcotest.test_case "uniform helper" `Quick test_uniform_helper;
        ] );
      ( "coterie",
        [
          Alcotest.test_case "from votes" `Quick test_coterie_from_votes;
          Alcotest.test_case "minimality" `Quick test_coterie_minimality;
          QCheck_alcotest.to_alcotest prop_vote_quorums_always_intersect;
        ] );
      ("tree", tree_cases);
      ( "availability",
        [
          Alcotest.test_case "rowa formulas" `Quick test_rowa_availability;
          Alcotest.test_case "majority closed form" `Quick
            test_majority_availability_closed_form;
          Alcotest.test_case "monotone" `Quick test_quorum_availability_monotone;
          Alcotest.test_case "majority beats rowa" `Quick
            test_majority_beats_rowa_write;
          QCheck_alcotest.to_alcotest prop_availability_bounds;
          QCheck_alcotest.to_alcotest prop_read_availability_ge_write;
        ] );
    ]

