(* Tests of the sandbox interpreter itself: determinism, seed coverage,
   crash/recovery reconstruction from durable records, and cost
   accounting stability.  The sandbox is test infrastructure, but it is
   also the measurement instrument for T1/F5/A2 — so its semantics are
   pinned here. *)

open Rt_commit

let outcome_fingerprint (o : Sandbox.outcome) =
  Printf.sprintf "%s|%b|%b|%d|%d|%d|%b|%d"
    (String.concat ","
       (List.map
          (fun (s, d) ->
            Printf.sprintf "%d:%s" s
              (match d with Protocol.Commit -> "C" | Protocol.Abort -> "A"))
          o.decisions))
    o.agreement o.all_decided o.messages o.forced_writes o.lazy_writes
    o.blocked o.timeouts_fired

let test_fifo_deterministic () =
  let run () =
    Sandbox.run_fifo ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites:4
      ~votes:[| true; true; true; true |] ()
  in
  Alcotest.(check string) "identical runs"
    (outcome_fingerprint (run ()))
    (outcome_fingerprint (run ()))

let test_seeded_deterministic () =
  let run () =
    Sandbox.run ~seed:12345 ~crashes:[ (1, 7) ] ~recoveries:[ (1, 50) ]
      ~proto:Sandbox.P_three_pc ~sites:3 ~votes:[| true; true; true |] ()
  in
  Alcotest.(check string) "identical seeded runs"
    (outcome_fingerprint (run ()))
    (outcome_fingerprint (run ()))

let test_seeds_differ () =
  (* Different seeds must explore different schedules at least sometimes:
     over many seeds the message orderings change even when outcomes
     agree, visible through timeout/blocked variation under crashes. *)
  let fingerprints =
    List.init 30 (fun seed ->
        outcome_fingerprint
          (Sandbox.run ~seed
             ~crashes:[ (0, 3 + (seed mod 12)) ]
             ~max_steps:800
             ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites:3
             ~votes:[| true; true; true |] ()))
  in
  Alcotest.(check bool) "schedule diversity" true
    (List.length (List.sort_uniq String.compare fingerprints) > 1)

let test_crash_before_prepare_loses_nothing () =
  (* Crash a participant before it could even receive the vote request:
     its prepared record never exists, so on recovery it may abort
     unilaterally and the coordinator's vote timeout aborts the
     transaction everywhere. *)
  let o =
    Sandbox.run ~seed:4 ~crashes:[ (2, 1) ] ~recoveries:[ (2, 40) ]
      ~max_steps:2000 ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort)
      ~sites:3 ~votes:[| true; true; true |] ()
  in
  Alcotest.(check bool) "agreement" true o.agreement;
  Alcotest.(check bool) "all decided" true o.all_decided;
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "aborted everywhere" true (d = Protocol.Abort))
    o.decisions

let test_recovery_uses_durable_state () =
  (* Crash a participant late enough that its prepared record is durable:
     the rebuilt machine is uncertain and must learn the real outcome —
     never invent one. *)
  let consistent = ref true in
  for seed = 1 to 40 do
    let o =
      Sandbox.run ~seed
        ~crashes:[ (1, 12 + (seed mod 8)) ]
        ~recoveries:[ (1, 80) ] ~max_steps:3000
        ~proto:(Sandbox.P_two_pc Two_pc.Presumed_abort) ~sites:3
        ~votes:[| true; true; true |] ()
    in
    if not (o.agreement && o.all_decided) then consistent := false
  done;
  Alcotest.(check bool) "recovered participants always converge" true
    !consistent

let test_costs_stable_across_seeds () =
  (* Failure-free commit costs must not depend on delivery order. *)
  let baseline =
    Sandbox.run_fifo ~proto:Sandbox.P_three_pc ~sites:3
      ~votes:[| true; true; true |] ()
  in
  for seed = 1 to 20 do
    let o =
      Sandbox.run ~seed ~proto:Sandbox.P_three_pc ~sites:3
        ~votes:[| true; true; true |] ()
    in
    Alcotest.(check int)
      (Printf.sprintf "messages at seed %d" seed)
      baseline.messages o.messages;
    Alcotest.(check int)
      (Printf.sprintf "forces at seed %d" seed)
      baseline.forced_writes o.forced_writes
  done

let test_bad_arguments_rejected () =
  Alcotest.check_raises "votes size"
    (Invalid_argument "Sandbox.run: votes array size mismatch") (fun () ->
      ignore
        (Sandbox.run ~proto:Sandbox.P_three_pc ~sites:3 ~votes:[| true |] ()));
  Alcotest.check_raises "read_only size"
    (Invalid_argument "Sandbox.run: read_only array size mismatch") (fun () ->
      ignore
        (Sandbox.run ~read_only:[| true |] ~proto:Sandbox.P_three_pc ~sites:3
           ~votes:[| true; true; true |] ()))

let () =
  Alcotest.run "sandbox"
    [
      ( "determinism",
        [
          Alcotest.test_case "fifo deterministic" `Quick test_fifo_deterministic;
          Alcotest.test_case "seeded deterministic" `Quick
            test_seeded_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
          Alcotest.test_case "costs stable across seeds" `Quick
            test_costs_stable_across_seeds;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "crash before prepare" `Quick
            test_crash_before_prepare_loses_nothing;
          Alcotest.test_case "recovery from durable state" `Quick
            test_recovery_uses_durable_state;
        ] );
      ( "arguments",
        [ Alcotest.test_case "bad sizes rejected" `Quick
            test_bad_arguments_rejected ] );
    ]
