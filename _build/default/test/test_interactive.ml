(* Tests for the interactive transaction API: read-your-writes,
   read-dependent writes, aborts, conflicts between interactive
   transactions, and the bank-transfer invariant under concurrency. *)

open Rt_sim
open Rt_core
module Mix = Rt_workload.Mix
module Kv = Rt_storage.Kv

let mk ?(sites = 3) ?(seed = 1) () =
  Cluster.create { (Config.default ~sites ()) with seed }

let run_for cluster d =
  Cluster.run ~until:(Time.add (Cluster.now cluster) d) cluster

let value_at cluster site key =
  Option.map
    (fun (i : Kv.item) -> i.value)
    (Kv.get (Site.kv (Cluster.site cluster site)) key)

let test_read_modify_write () =
  let cluster = mk () in
  let s = Cluster.site cluster 0 in
  (* Seed a counter. *)
  let ok = ref false in
  Cluster.submit cluster ~site:0 ~ops:[ Mix.Write ("n", "41") ] ~k:(fun o ->
      ok := o = Site.Committed);
  run_for cluster (Time.ms 50);
  assert !ok;
  (* Interactive increment. *)
  let outcome = ref None in
  (match Site.begin_txn s with
  | None -> Alcotest.fail "begin failed"
  | Some txn ->
      Site.txn_read s txn ~key:"n" ~k:(function
        | Error _ -> Alcotest.fail "read refused"
        | Ok v ->
            let n = int_of_string (Option.get v) in
            Site.txn_write s txn ~key:"n" ~value:(string_of_int (n + 1))
              ~k:(function
              | Error _ -> Alcotest.fail "write refused"
              | Ok () -> Site.txn_commit s txn ~k:(fun o -> outcome := Some o))));
  run_for cluster (Time.ms 100);
  Alcotest.(check bool) "committed" true (!outcome = Some Site.Committed);
  for site = 0 to 2 do
    Alcotest.(check (option string))
      (Printf.sprintf "incremented at %d" site)
      (Some "42") (value_at cluster site "n")
  done

let test_read_your_writes () =
  let cluster = mk () in
  let s = Cluster.site cluster 0 in
  let seen = ref None in
  (match Site.begin_txn s with
  | None -> Alcotest.fail "begin failed"
  | Some txn ->
      Site.txn_write s txn ~key:"w" ~value:"mine" ~k:(function
        | Error _ -> Alcotest.fail "write refused"
        | Ok () ->
            Site.txn_read s txn ~key:"w" ~k:(function
              | Error _ -> Alcotest.fail "read refused"
              | Ok v ->
                  seen := v;
                  Site.txn_commit s txn ~k:(fun _ -> ()))));
  run_for cluster (Time.ms 100);
  Alcotest.(check (option string)) "saw own write" (Some "mine") !seen

let test_voluntary_abort_releases () =
  let cluster = mk () in
  let s = Cluster.site cluster 0 in
  (match Site.begin_txn s with
  | None -> Alcotest.fail "begin failed"
  | Some txn ->
      Site.txn_write s txn ~key:"a" ~value:"x" ~k:(function
        | Error _ -> Alcotest.fail "write refused"
        | Ok () -> Site.txn_abort s txn));
  run_for cluster (Time.ms 100);
  Alcotest.(check (option string)) "nothing installed" None
    (value_at cluster 0 "a");
  (* The key is free again: another transaction gets it immediately. *)
  let ok = ref false in
  Cluster.submit cluster ~site:1 ~ops:[ Mix.Write ("a", "y") ] ~k:(fun o ->
      ok := o = Site.Committed);
  run_for cluster (Time.ms 100);
  Alcotest.(check bool) "lock released" true !ok

let test_conflicting_interactive_serialize () =
  (* Two interactive increments on the same counter must serialize: final
     value = initial + number of commits. *)
  let cluster = mk ~seed:9 () in
  let ok = ref false in
  Cluster.submit cluster ~site:0 ~ops:[ Mix.Write ("c", "0") ] ~k:(fun o ->
      ok := o = Site.Committed);
  run_for cluster (Time.ms 50);
  assert !ok;
  let commits = ref 0 and finished = ref 0 in
  let increment site =
    let s = Cluster.site cluster site in
    match Site.begin_txn s with
    | None -> incr finished
    | Some txn ->
        Site.txn_read s txn ~key:"c" ~k:(function
          | Error _ -> incr finished
          | Ok v ->
              let n = int_of_string (Option.value ~default:"0" v) in
              Site.txn_write s txn ~key:"c" ~value:(string_of_int (n + 1))
                ~k:(function
                | Error _ -> incr finished
                | Ok () ->
                    Site.txn_commit s txn ~k:(fun o ->
                        incr finished;
                        if o = Site.Committed then incr commits)))
  in
  increment 0;
  increment 1;
  increment 2;
  run_for cluster (Time.sec 2);
  Alcotest.(check int) "all finished" 3 !finished;
  Alcotest.(check (option string)) "no lost update"
    (Some (string_of_int !commits))
    (value_at cluster 0 "c");
  Alcotest.(check bool) "replicas agree" true (Cluster.converged cluster)

let test_begin_on_down_site () =
  let cluster = mk () in
  Cluster.crash_site cluster 0;
  Alcotest.(check bool) "begin refused" true
    (Site.begin_txn (Cluster.site cluster 0) = None)

let test_interactive_bank_invariant () =
  (* Randomized concurrent transfers driven through the interactive API;
     the total is conserved whatever commits or aborts. *)
  let cluster = mk ~seed:33 () in
  let engine = Cluster.engine cluster in
  let rng = Rng.split (Engine.rng engine) in
  let accounts = 8 and initial = 50 in
  let account i = Printf.sprintf "acct%d" i in
  let ok = ref false in
  Cluster.submit cluster ~site:0
    ~ops:(List.init accounts (fun i -> Mix.Write (account i, string_of_int initial)))
    ~k:(fun o -> ok := o = Site.Committed);
  run_for cluster (Time.ms 50);
  assert !ok;
  let live = ref true in
  let rec loop site =
    if !live then begin
      let again () =
        ignore (Engine.schedule_after engine (Time.us 200) (fun () -> loop site))
      in
      let s = Cluster.site cluster site in
      let a = Rng.int rng accounts in
      let b = (a + 1 + Rng.int rng (accounts - 1)) mod accounts in
      match Site.begin_txn s with
      | None -> again ()
      | Some txn ->
          Site.txn_read s txn ~key:(account a) ~k:(function
            | Error _ -> again ()
            | Ok av ->
                Site.txn_read s txn ~key:(account b) ~k:(function
                  | Error _ -> again ()
                  | Ok bv ->
                      let an = int_of_string (Option.get av) in
                      let bn = int_of_string (Option.get bv) in
                      let amt = 1 + Rng.int rng 5 in
                      if an < amt then begin
                        Site.txn_abort s txn;
                        again ()
                      end
                      else
                        Site.txn_write s txn ~key:(account a)
                          ~value:(string_of_int (an - amt)) ~k:(function
                          | Error _ -> again ()
                          | Ok () ->
                              Site.txn_write s txn ~key:(account b)
                                ~value:(string_of_int (bn + amt)) ~k:(function
                                | Error _ -> again ()
                                | Ok () ->
                                    Site.txn_commit s txn ~k:(fun _ -> again ())))))
    end
  in
  List.iter loop [ 0; 1; 2; 0 ];
  ignore
    (Engine.schedule_at engine (Time.ms 100) (fun () -> live := false));
  run_for cluster (Time.ms 300);
  let total site =
    let kv = Site.kv (Cluster.site cluster site) in
    let sum = ref 0 in
    for i = 0 to accounts - 1 do
      sum :=
        !sum
        + Option.value ~default:0
            (Option.map
               (fun (it : Kv.item) -> int_of_string it.value)
               (Kv.get kv (account i)))
    done;
    !sum
  in
  for site = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "total conserved at site %d" site)
      (accounts * initial) (total site)
  done


(* --- quorum version resolution ------------------------------------------ *)

let test_quorum_read_resolves_newest_version () =
  (* Under majority quorums on 3 sites, a write installs at 2 copies and
     the third stays stale.  A later read whose quorum includes the stale
     copy must still return the newest value by version resolution. *)
  let config =
    { (Config.default ~sites:3 ()) with
      replica_control = Rt_replica.Replica_control.majority ~sites:3;
      commit_protocol =
        Config.Quorum_commit { commit_quorum = None; abort_quorum = None };
      seed = 4 }
  in
  let cluster = Cluster.create config in
  let ok = ref false in
  Cluster.submit cluster ~site:0 ~ops:[ Mix.Write ("q", "first") ] ~k:(fun o ->
      ok := o = Site.Committed);
  run_for cluster (Time.ms 100);
  assert !ok;
  let ok2 = ref false in
  Cluster.submit cluster ~site:0 ~ops:[ Mix.Write ("q", "second") ]
    ~k:(fun o -> ok2 := o = Site.Committed);
  run_for cluster (Time.ms 100);
  assert !ok2;
  (* At least one site should now be stale (write quorum = 2 of 3). *)
  let versions =
    List.map
      (fun s -> Kv.version (Site.kv (Cluster.site cluster s)) "q")
      [ 0; 1; 2 ]
  in
  let vmax = List.fold_left max 0 versions in
  Alcotest.(check bool) "some copy is stale" true
    (List.exists (fun v -> v < vmax) versions);
  (* Read from every site: version resolution must always answer with the
     newest value, wherever the stale copy hides. *)
  List.iter
    (fun site ->
      let s = Cluster.site cluster site in
      let got = ref None in
      (match Site.begin_txn s with
      | None -> Alcotest.fail "begin failed"
      | Some txn ->
          Site.txn_read s txn ~key:"q" ~k:(function
            | Error _ -> Alcotest.fail "read aborted"
            | Ok v ->
                got := v;
                Site.txn_commit s txn ~k:(fun _ -> ())));
      run_for cluster (Time.ms 100);
      Alcotest.(check (option string))
        (Printf.sprintf "newest value from site %d" site)
        (Some "second") !got)
    [ 0; 1; 2 ]

let () =
  Alcotest.run "interactive"
    [
      ( "api",
        [
          Alcotest.test_case "read-modify-write" `Quick test_read_modify_write;
          Alcotest.test_case "read your writes" `Quick test_read_your_writes;
          Alcotest.test_case "voluntary abort releases" `Quick
            test_voluntary_abort_releases;
          Alcotest.test_case "begin on down site" `Quick test_begin_on_down_site;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "read resolves newest version" `Quick
            test_quorum_read_resolves_newest_version;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "conflicting increments serialize" `Quick
            test_conflicting_interactive_serialize;
          Alcotest.test_case "bank invariant under concurrency" `Quick
            test_interactive_bank_invariant;
        ] );
    ]
