lib/metrics/table.ml: Array Buffer List Printf Stdlib String
