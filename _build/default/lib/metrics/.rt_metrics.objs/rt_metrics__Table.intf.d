lib/metrics/table.mli:
