lib/metrics/sample.mli:
