lib/metrics/histogram.mli:
