lib/metrics/histogram.ml: Float Hashtbl Int List Option Stdlib
