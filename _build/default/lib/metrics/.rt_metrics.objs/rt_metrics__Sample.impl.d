lib/metrics/sample.ml: Array Float Stdlib
