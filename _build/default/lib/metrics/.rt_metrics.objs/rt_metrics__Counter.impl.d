lib/metrics/counter.ml: Format Hashtbl List String
