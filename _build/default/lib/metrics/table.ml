type row = Cells of string list | Rule

type t = { columns : string list; mutable rows : row list (* reversed *) }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.columns :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells)
    all_cell_rows;
  let buf = Buffer.create 256 in
  let pad i s =
    let extra = widths.(i) - String.length s in
    s ^ String.make (Stdlib.max 0 extra) ' '
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  emit_cells t.columns;
  rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_i v = string_of_int v
