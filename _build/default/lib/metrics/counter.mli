(** Named integer counters grouped in a registry, for exact tallies
    (messages, log forces, aborts, ...). *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit

val get : t -> string -> int
(** 0 for a never-incremented counter. *)

val set : t -> string -> int -> unit

val names : t -> string list
(** Sorted counter names. *)

val to_assoc : t -> (string * int) list
(** Sorted by name. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
