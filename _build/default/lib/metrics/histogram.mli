(** Log-bucketed histogram for latency-style positive values.

    Buckets grow geometrically so that relative error is bounded by the
    configured precision while memory stays constant regardless of sample
    count.  Good for long simulations where storing every observation would
    be wasteful. *)

type t

val create : ?precision:float -> unit -> t
(** [precision] is the per-bucket relative width (default 0.02, i.e. 2%
    quantile error). *)

val add : t -> float -> unit
(** Adds a sample.  Non-positive samples land in the underflow bucket. *)

val count : t -> int

val mean : t -> float

val min : t -> float

val max : t -> float

val percentile : t -> float -> float
(** Bucket-midpoint estimate of the [p]-th percentile, [p] in [0, 100].
    Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** Both histograms must share the same precision. *)

val clear : t -> unit
