type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { data = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap 0. in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size
let is_empty t = t.size = 0

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let total t = fold ( +. ) 0. t
let mean t = if t.size = 0 then 0. else total t /. float_of_int t.size

let stddev t =
  if t.size < 2 then 0.
  else begin
    let m = mean t in
    let ss = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. t in
    sqrt (ss /. float_of_int t.size)
  end

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.size in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.size;
    t.sorted <- true
  end

let min t =
  if t.size = 0 then invalid_arg "Sample.min: empty";
  ensure_sorted t;
  t.data.(0)

let max t =
  if t.size = 0 then invalid_arg "Sample.max: empty";
  ensure_sorted t;
  t.data.(t.size - 1)

let percentile t p =
  if t.size = 0 then invalid_arg "Sample.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Sample.percentile: p out of range";
  ensure_sorted t;
  (* Nearest-rank definition: ceil(p/100 * n), 1-indexed. *)
  let rank = int_of_float (Float.round (ceil (p /. 100. *. float_of_int t.size))) in
  let rank = Stdlib.max 1 rank in
  t.data.(rank - 1)

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.data.(i)
  done;
  t

let clear t =
  t.data <- [||];
  t.size <- 0;
  t.sorted <- true
