type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr ?(by = 1) t name =
  let r = cell t name in
  r := !r + by

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let set t name v = cell t name := v

let to_assoc t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let names t = List.map fst (to_assoc t)
let reset t = Hashtbl.reset t

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@," name v) (to_assoc t);
  Format.fprintf fmt "@]"
