(** Exact sample set: stores every observation, gives exact quantiles.

    Suitable for simulation runs (up to a few million samples); for compact
    streaming aggregation use {!Histogram} instead. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val is_empty : t -> bool

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min : t -> float

val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0, 100], nearest-rank on the sorted
    samples.  Raises [Invalid_argument] when empty or [p] out of range. *)

val total : t -> float

val merge : t -> t -> t
(** Fresh sample set containing all observations of both. *)

val clear : t -> unit
