(** Plain-text table rendering for experiment output.

    Renders aligned columns with a header rule, matching the row/series
    layout of the paper's tables so outputs can be compared side by side. *)

type t

val create : columns:string list -> t

val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val add_rule : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val cell_f : ?decimals:int -> float -> string
(** Format a float cell with fixed decimals (default 2). *)

val cell_i : int -> string
