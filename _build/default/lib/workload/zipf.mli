(** Zipf-distributed key sampling.

    [theta] controls skew: 0 is uniform, 0.99 is the YCSB default, larger
    values concentrate accesses on fewer keys.  Sampling is by binary
    search over a precomputed CDF (O(log n) per draw, exact). *)

type t

val create : n:int -> theta:float -> t
(** [n] ranks (1-based internally); [theta ≥ 0]. *)

val sample : t -> Rt_sim.Rng.t -> int
(** A rank in [\[0, n)]; rank 0 is the most popular. *)

val n : t -> int

val theta : t -> float

val pmf : t -> int -> float
(** Probability of the given rank. *)
