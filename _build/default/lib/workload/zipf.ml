type t = { n : int; theta : float; cdf : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0. then invalid_arg "Zipf.create: theta must be non-negative";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; theta; cdf }

let sample t rng =
  let u = Rt_sim.Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let n t = t.n
let theta t = t.theta

let pmf t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)
