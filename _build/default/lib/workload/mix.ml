type op = Read of string | Write of string * string

let op_key = function Read k -> k | Write (k, _) -> k
let is_read = function Read _ -> true | Write _ -> false

type t = {
  keys : int;
  theta : float;
  ops_per_txn : int;
  read_fraction : float;
  value_size : int;
}

let default =
  { keys = 1000; theta = 0.; ops_per_txn = 4; read_fraction = 0.5;
    value_size = 16 }

let read_only t = { t with read_fraction = 1.0 }
let update_heavy t = { t with read_fraction = 0.0 }

let ycsb_base =
  { keys = 1000; theta = 0.99; ops_per_txn = 4; read_fraction = 0.5;
    value_size = 100 }

let ycsb_a = ycsb_base
let ycsb_b = { ycsb_base with read_fraction = 0.95 }
let ycsb_c = { ycsb_base with read_fraction = 1.0 }
let key_of i = Printf.sprintf "k%06d" i

type gen = { mix : t; zipf : Zipf.t; rng : Rt_sim.Rng.t; mutable counter : int }

let generator mix rng =
  if mix.keys <= 0 || mix.ops_per_txn <= 0 then
    invalid_arg "Mix.generator: bad parameters";
  if mix.read_fraction < 0. || mix.read_fraction > 1. then
    invalid_arg "Mix.generator: read_fraction out of range";
  { mix; zipf = Zipf.create ~n:mix.keys ~theta:mix.theta; rng; counter = 0 }

let fresh_value g =
  g.counter <- g.counter + 1;
  let tag = Printf.sprintf "v%d-" g.counter in
  let pad = max 0 (g.mix.value_size - String.length tag) in
  tag ^ String.make pad 'x'

(* Sample [ops_per_txn] distinct keys. *)
let sample_keys g =
  let seen = Hashtbl.create 8 in
  let keys = ref [] in
  let attempts = ref 0 in
  while Hashtbl.length seen < g.mix.ops_per_txn && !attempts < 100 * g.mix.ops_per_txn
  do
    incr attempts;
    let k = Zipf.sample g.zipf g.rng in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      keys := k :: !keys
    end
  done;
  List.rev !keys

let ops_of_keys g keys =
  List.map
    (fun k ->
      let key = key_of k in
      if Rt_sim.Rng.bernoulli g.rng ~p:g.mix.read_fraction then Read key
      else Write (key, fresh_value g))
    keys

let next_txn g =
  let keys = List.sort_uniq Int.compare (sample_keys g) in
  ops_of_keys g keys

let next_txn_unordered g = ops_of_keys g (sample_keys g)

let populate mix set =
  for i = 0 to mix.keys - 1 do
    set ~key:(key_of i) ~value:(String.make (max 1 mix.value_size) '0')
  done
