lib/workload/zipf.ml: Array Rt_sim
