lib/workload/zipf.mli: Rt_sim
