lib/workload/mix.ml: Hashtbl Int List Printf Rt_sim String Zipf
