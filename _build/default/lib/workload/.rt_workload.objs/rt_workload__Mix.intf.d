lib/workload/mix.mli: Rt_sim
