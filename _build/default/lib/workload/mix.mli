(** Transaction mixes: what a generated transaction looks like.

    An operation reads or writes a key; a transaction is a list of
    operations executed in order under one atomic envelope.  Mixes are
    parameterised the way the tables in the paper sweep them: number of
    keys touched, read fraction, and access skew. *)

type op = Read of string | Write of string * string

val op_key : op -> string

val is_read : op -> bool

type t = {
  keys : int;  (** Keyspace size. *)
  theta : float;  (** Zipf skew over the keyspace. *)
  ops_per_txn : int;
  read_fraction : float;  (** Probability each op is a read. *)
  value_size : int;  (** Payload bytes per written value. *)
}

val default : t
(** 1000 keys, uniform, 4 ops, 50% reads, 16-byte values. *)

val read_only : t -> t

val update_heavy : t -> t
(** 100% writes. *)

(** Named mixes in the style of the standard cloud-serving benchmark:
    A = 50/50 read/update on a skewed keyspace, B = 95/5, C = read-only,
    all over 1000 keys with Zipf 0.99 access. *)

val ycsb_a : t

val ycsb_b : t

val ycsb_c : t

val key_of : int -> string
(** Stable key naming ("k000042"). *)

type gen

val generator : t -> Rt_sim.Rng.t -> gen

val next_txn : gen -> op list
(** Keys within one transaction are distinct and sorted, which gives
    deterministic lock-acquisition order (the classical deadlock-avoidance
    discipline); disable with {!next_txn_unordered} to measure deadlocks. *)

val next_txn_unordered : gen -> op list
(** Same sampling but keys in access order (duplicates removed), so
    opposite-order conflicts — and hence deadlocks — can occur. *)

val populate : t -> (key:string -> value:string -> unit) -> unit
(** Call the setter for every key with an initial value. *)
