(** Common interface for local concurrency-control schemes.

    Requests are continuation-passing: a scheme that can answer
    immediately calls the continuation synchronously; a blocking scheme
    (2PL) calls it when the lock is granted; any scheme may answer
    [`Abort] to signal that the transaction lost a conflict and must
    restart.  After [`Abort] the scheduler has already released the
    transaction's resources — the caller just forgets the transaction.

    Writes are buffered and applied to the store atomically at commit, so
    every scheme presents the same recoverable, strict behaviour to the
    outside. *)

open Rt_types
open Rt_storage

type read_result = [ `Value of string option | `Abort ]

type write_result = [ `Ok | `Abort ]

type commit_result = [ `Committed | `Aborted ]

(** Why transactions aborted, for experiment reporting. *)
type stats = {
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deadlock_aborts : int;
  mutable order_aborts : int;  (** Timestamp-order violations. *)
  mutable validation_aborts : int;  (** OCC backward-validation failures. *)
}

module type S = sig
  type t

  val name : string

  val create : ?history:History.t -> Rt_sim.Engine.t -> Kv.t -> t

  val begin_txn : t -> Ids.Txn_id.t -> unit

  val read :
    t -> txn:Ids.Txn_id.t -> key:string -> k:(read_result -> unit) -> unit

  val write :
    t ->
    txn:Ids.Txn_id.t ->
    key:string ->
    value:string ->
    k:(write_result -> unit) ->
    unit

  val commit : t -> txn:Ids.Txn_id.t -> k:(commit_result -> unit) -> unit

  val abort : t -> txn:Ids.Txn_id.t -> unit
  (** Voluntary abort; idempotent. *)

  val stats : t -> stats
end

val fresh_stats : unit -> stats
