open Rt_sim
open Rt_types

type result = {
  scheme : string;
  committed : int;
  aborted : int;
  deadlock_aborts : int;
  order_aborts : int;
  validation_aborts : int;
  duration : Time.t;
  throughput : float;
  abort_rate : float;
  serializable : bool option;
}

type scheme =
  | Two_pl
  | Two_pl_wound_wait
  | Two_pl_wait_die
  | Timestamp
  | Optimistic

let scheme_name = function
  | Two_pl -> "2PL"
  | Two_pl_wound_wait -> "2PL-WW"
  | Two_pl_wait_die -> "2PL-WD"
  | Timestamp -> "TO"
  | Optimistic -> "OCC"

let all_schemes = [ Two_pl; Timestamp; Optimistic ]
let all_2pl_policies = [ Two_pl; Two_pl_wound_wait; Two_pl_wait_die ]

module type SCHEME = Scheduler.S

let driver (type s) (module S : SCHEME with type t = s) (st : s) ~engine ~rng
    ~clients ~mix ~horizon ~op_cost ~ordered =
  let seq = ref 0 in
  let fresh origin =
    incr seq;
    Ids.Txn_id.make ~origin ~seq:!seq ~start_ts:(Engine.now engine)
  in
  let gens =
    Array.init clients (fun _ -> Rt_workload.Mix.generator mix (Rng.split rng))
  in
  let rec client_loop c =
    if Time.(Engine.now engine < horizon) then begin
      let ops =
        if ordered then Rt_workload.Mix.next_txn gens.(c)
        else Rt_workload.Mix.next_txn_unordered gens.(c)
      in
      attempt c ops
    end
  and attempt c ops =
    let txn = fresh c in
    S.begin_txn st txn;
    let rec step remaining =
      match remaining with
      | [] ->
          S.commit st ~txn ~k:(fun outcome ->
              match outcome with
              | `Committed -> after c
              | `Aborted -> retry c ops)
      | op :: rest ->
          let continue ok = if ok then after_op rest else retry c ops in
          let dispatch () =
            match op with
            | Rt_workload.Mix.Read key ->
                S.read st ~txn ~key ~k:(function
                  | `Value _ -> continue true
                  | `Abort -> continue false)
            | Rt_workload.Mix.Write (key, value) ->
                S.write st ~txn ~key ~value ~k:(function
                  | `Ok -> continue true
                  | `Abort -> continue false)
          in
          ignore (Engine.schedule_after engine op_cost dispatch)
    and after_op rest = step rest in
    step ops
  and retry c ops =
    if Time.(Engine.now engine < horizon) then
      let backoff = Rng.uniform_time rng ~lo:op_cost ~hi:(op_cost * 10) in
      ignore (Engine.schedule_after engine backoff (fun () -> attempt c ops))
  and after c =
    ignore (Engine.schedule_after engine op_cost (fun () -> client_loop c))
  in
  for c = 0 to clients - 1 do
    (* Stagger starts so timestamps differ. *)
    ignore
      (Engine.schedule_after engine (Time.ns c) (fun () -> client_loop c))
  done;
  Engine.run ~until:horizon engine

let run ?(seed = 0) ?(check_history = false) ?(op_cost = Time.us 2)
    ?(ordered = true) ~scheme ~clients ~mix ~duration () =
  let engine = Engine.create ~seed () in
  let rng = Rng.split (Engine.rng engine) in
  let kv = Rt_storage.Kv.create () in
  Rt_workload.Mix.populate mix (fun ~key ~value ->
      Rt_storage.Kv.set kv ~key ~value ~version:1);
  let history = if check_history then Some (History.create ()) else None in
  let horizon = duration in
  let run_2pl policy =
    let st = Two_phase_locking.create_with_policy ?history ~policy kv in
    driver (module Two_phase_locking) st ~engine ~rng ~clients ~mix ~horizon
      ~op_cost ~ordered;
    Two_phase_locking.stats st
  in
  let stats =
    match scheme with
    | Two_pl -> run_2pl `Detect
    | Two_pl_wound_wait -> run_2pl `Wound_wait
    | Two_pl_wait_die -> run_2pl `Wait_die
    | Timestamp ->
        let st = Timestamp_order.create ?history engine kv in
        driver (module Timestamp_order) st ~engine ~rng ~clients ~mix ~horizon
          ~op_cost ~ordered;
        Timestamp_order.stats st
    | Optimistic ->
        let st = Occ.create ?history engine kv in
        driver (module Occ) st ~engine ~rng ~clients ~mix ~horizon ~op_cost
          ~ordered;
        Occ.stats st
  in
  let attempts = stats.committed + stats.aborted in
  {
    scheme = scheme_name scheme;
    committed = stats.committed;
    aborted = stats.aborted;
    deadlock_aborts = stats.deadlock_aborts;
    order_aborts = stats.order_aborts;
    validation_aborts = stats.validation_aborts;
    duration;
    throughput = float_of_int stats.committed /. Time.to_float_s duration;
    abort_rate =
      (if attempts = 0 then 0.
       else float_of_int stats.aborted /. float_of_int attempts);
    serializable = Option.map History.serializable history;
  }
