(** Execution histories and the conflict-serializability check.

    Schedulers record the versions their committed transactions read and
    wrote; the checker builds the version-order conflict graph (wr, ww,
    rw edges) over committed transactions and tests it for cycles.  An
    acyclic graph certifies conflict-serializability — the correctness
    oracle for every scheme's property tests. *)

open Rt_types

type t

val create : unit -> t

val read : t -> Ids.Txn_id.t -> key:string -> version:int -> unit
(** Record that the transaction read the given committed version
    (version 0 = the initial value). *)

val write : t -> Ids.Txn_id.t -> key:string -> version:int -> unit
(** Record that the transaction's commit installed this version. *)

val commit : t -> Ids.Txn_id.t -> unit

val abort : t -> Ids.Txn_id.t -> unit

val committed : t -> Ids.Txn_id.t list

val conflict_edges : t -> (Ids.Txn_id.t * Ids.Txn_id.t) list
(** Edges between committed transactions, deduplicated. *)

val serializable : t -> bool

val cycle : t -> Ids.Txn_id.t list option
(** A witness cycle when not serializable. *)
