open Rt_types
open Rt_storage

type read_result = [ `Value of string option | `Abort ]
type write_result = [ `Ok | `Abort ]
type commit_result = [ `Committed | `Aborted ]

type stats = {
  mutable started : int;
  mutable committed : int;
  mutable aborted : int;
  mutable deadlock_aborts : int;
  mutable order_aborts : int;
  mutable validation_aborts : int;
}

module type S = sig
  type t

  val name : string
  val create : ?history:History.t -> Rt_sim.Engine.t -> Kv.t -> t
  val begin_txn : t -> Ids.Txn_id.t -> unit

  val read :
    t -> txn:Ids.Txn_id.t -> key:string -> k:(read_result -> unit) -> unit

  val write :
    t ->
    txn:Ids.Txn_id.t ->
    key:string ->
    value:string ->
    k:(write_result -> unit) ->
    unit

  val commit : t -> txn:Ids.Txn_id.t -> k:(commit_result -> unit) -> unit
  val abort : t -> txn:Ids.Txn_id.t -> unit
  val stats : t -> stats
end

let fresh_stats () =
  {
    started = 0;
    committed = 0;
    aborted = 0;
    deadlock_aborts = 0;
    order_aborts = 0;
    validation_aborts = 0;
  }
