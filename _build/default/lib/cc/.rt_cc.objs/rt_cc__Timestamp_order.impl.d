lib/cc/timestamp_order.ml: Hashtbl History Ids Kv List Option Rt_storage Rt_types Scheduler
