lib/cc/history.mli: Ids Rt_types
