lib/cc/scheduler.mli: History Ids Kv Rt_sim Rt_storage Rt_types
