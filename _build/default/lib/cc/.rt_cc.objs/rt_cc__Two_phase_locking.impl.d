lib/cc/two_phase_locking.ml: Hashtbl History Ids Kv List Option Rt_lock Rt_storage Rt_types Scheduler
