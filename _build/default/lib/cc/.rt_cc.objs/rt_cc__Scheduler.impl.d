lib/cc/scheduler.ml: History Ids Kv Rt_sim Rt_storage Rt_types
