lib/cc/history.ml: Array Hashtbl Ids Int List Rt_lock Rt_types Set
