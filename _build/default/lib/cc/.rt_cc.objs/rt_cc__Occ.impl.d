lib/cc/occ.ml: Hashtbl History Ids Kv Option Rt_storage Rt_types Scheduler
