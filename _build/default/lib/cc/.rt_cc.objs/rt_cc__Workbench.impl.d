lib/cc/workbench.ml: Array Engine History Ids Occ Option Rng Rt_sim Rt_storage Rt_types Rt_workload Scheduler Time Timestamp_order Two_phase_locking
