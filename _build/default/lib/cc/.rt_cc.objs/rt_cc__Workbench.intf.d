lib/cc/workbench.mli: Rt_sim Rt_workload Time
