(** Closed-loop driver for comparing local concurrency-control schemes.

    Runs M logical clients against one store under a given scheme on the
    simulation engine; each operation costs a small CPU delay so clients
    genuinely interleave.  Reports throughput and abort behaviour, and can
    record a history for the serializability oracle. *)

open Rt_sim

type result = {
  scheme : string;
  committed : int;
  aborted : int;
  deadlock_aborts : int;
  order_aborts : int;
  validation_aborts : int;
  duration : Time.t;
  throughput : float;  (** Committed transactions per simulated second. *)
  abort_rate : float;  (** Aborts / (commits + aborts). *)
  serializable : bool option;  (** When history checking was requested. *)
}

type scheme =
  | Two_pl  (** Strict 2PL, deadlock detection. *)
  | Two_pl_wound_wait
  | Two_pl_wait_die
  | Timestamp
  | Optimistic

val scheme_name : scheme -> string

val all_schemes : scheme list
(** The three families: detection-based 2PL, TO, OCC. *)

val all_2pl_policies : scheme list
(** Detection, wound-wait, wait-die — the deadlock-handling ablation. *)

val run :
  ?seed:int ->
  ?check_history:bool ->
  ?op_cost:Time.t ->
  ?ordered:bool ->
  scheme:scheme ->
  clients:int ->
  mix:Rt_workload.Mix.t ->
  duration:Time.t ->
  unit ->
  result
(** Aborted transactions are retried (fresh timestamp) after a small
    backoff, as a restart-oriented scheduler would.  [ordered] (default
    true) sorts each transaction's keys — the deadlock-avoidance
    discipline; pass false to let opposite-order conflicts (and hence
    deadlocks) occur. *)
