lib/sim/heap.mli:
