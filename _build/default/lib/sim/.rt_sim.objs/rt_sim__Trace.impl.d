lib/sim/trace.ml: Engine Logs Time
