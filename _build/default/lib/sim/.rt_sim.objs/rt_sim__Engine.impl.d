lib/sim/engine.ml: Heap Int Option Rng Time
