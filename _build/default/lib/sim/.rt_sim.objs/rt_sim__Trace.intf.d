lib/sim/trace.mli: Engine Logs
