(** Lightweight tracing for simulated components.

    Tracing is disabled by default; enabling it routes events through [Logs]
    with the virtual timestamp prepended.  Useful when debugging protocol
    interleavings. *)

val src : Logs.src

val enabled : unit -> bool

val set_enabled : bool -> unit

val event : Engine.t -> (unit -> string) -> unit
(** [event engine msg] logs [msg ()] at debug level with the current virtual
    time.  [msg] is not evaluated when tracing is off. *)
