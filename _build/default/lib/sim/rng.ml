type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Rejection sampling over the top 62 bits keeps the distribution exact. *)
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  if bound land (bound - 1) = 0 then mask land (bound - 1)
  else
    let rec go v =
      let r = v mod bound in
      if v - r + (bound - 1) < 0 then go (Int64.to_int (Int64.shift_right_logical (bits64 t) 2))
      else r
    in
    go mask

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let uniform_time t ~lo ~hi = int_in t ~lo ~hi

let exponential_time t ~mean =
  Time.of_float_s (exponential t ~mean:(Time.to_float_s mean))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
