type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_float_s s = int_of_float (Float.round (s *. 1e9))
let add = ( + )
let sub = ( - )
let compare = Int.compare
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b
let to_float_s t = float_of_int t /. 1e9
let to_float_ms t = float_of_int t /. 1e6
let to_float_us t = float_of_int t /. 1e3

let pp fmt t =
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.1fus" (to_float_us t)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)
