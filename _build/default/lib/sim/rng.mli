(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in the simulator flows from a single seed
    through this module, so a run is fully reproducible.  Streams can be
    [split] so that independent components (network links, clients, failure
    injectors) draw from statistically independent sequences regardless of
    the order in which they are consulted. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives a new independent generator and advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** True with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val uniform_time : t -> lo:Time.t -> hi:Time.t -> Time.t

val exponential_time : t -> mean:Time.t -> Time.t
(** Exponential with the given mean, rounded to whole nanoseconds. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
