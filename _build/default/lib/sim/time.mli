(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Using integers keeps the event queue total order exact and
    runs byte-identical across platforms. *)

type t = int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_float_s : float -> t
(** [of_float_s s] converts [s] seconds to a time, rounding to nanoseconds. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]. *)

val compare : t -> t -> int

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val to_float_s : t -> float
(** Time in seconds, for reporting. *)

val to_float_ms : t -> float

val to_float_us : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)
