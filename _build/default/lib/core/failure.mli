(** Failure injection: scripted schedules and random crash/recover
    processes, driven by the cluster's virtual clock. *)

open Rt_sim
open Rt_types

type event =
  | Crash of Ids.site_id
  | Recover of Ids.site_id
  | Partition of Ids.site_id list list
  | Heal

val schedule : Cluster.t -> (Time.t * event) list -> unit
(** Install a fixed schedule of failure events (absolute virtual times). *)

type process

val random_crashes :
  Cluster.t ->
  mttf:Time.t ->
  mttr:Time.t ->
  ?protect:Ids.site_id list ->
  unit ->
  process
(** Each unprotected site independently alternates up/down with
    exponentially distributed times to failure ([mttf]) and repair
    ([mttr]).  Deterministic given the engine's seed.  Runs until
    {!stop}. *)

val stop : process -> unit
