open Rt_types

type refusal = R_lock_timeout | R_deadlock | R_order | R_doomed | R_down

let pp_refusal fmt = function
  | R_lock_timeout -> Format.pp_print_string fmt "lock-timeout"
  | R_deadlock -> Format.pp_print_string fmt "deadlock"
  | R_order -> Format.pp_print_string fmt "order-conflict"
  | R_doomed -> Format.pp_print_string fmt "doomed"
  | R_down -> Format.pp_print_string fmt "down"

type payload =
  | Read_req of { key : string }
  | Read_reply of {
      key : string;
      result : (string option * int, refusal) Result.t;
    }
  | Write_req of { key : string; value : string }
  | Write_reply of { key : string; result : (int, refusal) Result.t }
  | Abort_txn
  | Commit_msg of {
      pmsg : Rt_commit.Protocol.msg;
      prepare : prepare_info option;
    }
  | Probe of { initiator : Ids.Txn_id.t }
  | Heartbeat
  | Catchup_req of { keys : (string * int) list }
  | Catchup_reply of { entries : (string * string * int) list; complete : bool }

and prepare_info = {
  writes : (string * string * int) list;
  participants : Ids.site_id list;
  presumed_down : Ids.site_id list;
}

type t = { txn : Ids.Txn_id.t option; payload : payload }

let txn_msg txn payload = { txn = Some txn; payload }
let site_msg payload = { txn = None; payload }

let pp_payload fmt = function
  | Read_req { key } -> Format.fprintf fmt "read(%s)" key
  | Read_reply { key; result = Ok (_, v) } ->
      Format.fprintf fmt "read-reply(%s,v%d)" key v
  | Read_reply { key; result = Error r } ->
      Format.fprintf fmt "read-refused(%s,%a)" key pp_refusal r
  | Write_req { key; _ } -> Format.fprintf fmt "write(%s)" key
  | Write_reply { key; result = Ok v } ->
      Format.fprintf fmt "write-reply(%s,v%d)" key v
  | Write_reply { key; result = Error r } ->
      Format.fprintf fmt "write-refused(%s,%a)" key pp_refusal r
  | Abort_txn -> Format.pp_print_string fmt "abort-txn"
  | Commit_msg { pmsg; prepare } ->
      Format.fprintf fmt "commit[%a%s]" Rt_commit.Protocol.pp_msg pmsg
        (match prepare with
        | Some p -> Printf.sprintf ",%d writes" (List.length p.writes)
        | None -> "")
  | Probe { initiator } ->
      Format.fprintf fmt "probe(init=%a)" Ids.Txn_id.pp initiator
  | Heartbeat -> Format.pp_print_string fmt "hb"
  | Catchup_req { keys } -> Format.fprintf fmt "catchup-req(%d)" (List.length keys)
  | Catchup_reply { entries; complete } ->
      Format.fprintf fmt "catchup-reply(%d%s)" (List.length entries)
        (if complete then "" else ",partial")

let pp fmt t =
  match t.txn with
  | Some txn -> Format.fprintf fmt "%a:%a" Ids.Txn_id.pp txn pp_payload t.payload
  | None -> pp_payload fmt t.payload
