(** Wire messages exchanged between sites.

    Every message is either transaction-scoped (execution or commitment
    traffic, tagged with the transaction id) or site-scoped (heartbeats
    and recovery catch-up). *)

open Rt_types

type refusal =
  | R_lock_timeout
  | R_deadlock
  | R_order  (** Timestamp-ordering conflict: restart with a newer stamp. *)
  | R_doomed
  | R_down

val pp_refusal : Format.formatter -> refusal -> unit

type payload =
  | Read_req of { key : string }
  | Read_reply of {
      key : string;
      result : (string option * int, refusal) Result.t;
          (** Value (None = key absent) and copy version, or a refusal. *)
    }
  | Write_req of { key : string; value : string }
  | Write_reply of { key : string; result : (int, refusal) Result.t }
      (** Current copy version before the write, or a refusal. *)
  | Abort_txn
      (** Coordinator aborts a transaction before any commit protocol
          started: drop buffers, release locks. *)
  | Commit_msg of {
      pmsg : Rt_commit.Protocol.msg;
      prepare : prepare_info option;
          (** Piggybacked on [Vote_req]: what this participant must make
              durable before voting, and who the participants are. *)
    }
  | Probe of { initiator : Ids.Txn_id.t }
      (** Chandy–Misra–Haas edge-chasing probe.  The envelope transaction
          is the probed one: at its coordinator the probe is routed to the
          sites it waits on; at a participant it fans out to the probed
          transaction's local blockers.  A probe whose envelope equals its
          initiator has gone round a cycle: the initiator aborts. *)
  | Heartbeat
  | Catchup_req of { keys : (string * int) list }
      (** Recovering site's (key, version) inventory. *)
  | Catchup_reply of {
      entries : (string * string * int) list;
          (** Entries strictly newer than the requester's inventory. *)
      complete : bool;
          (** False when the replier is itself still validating: its
              entries are safe to merge but may not cover everything. *)
    }

and prepare_info = {
  writes : (string * string * int) list;
      (** (key, value, version) assignments for this site. *)
  participants : Ids.site_id list;
      (** Full participant set, for termination after a crash. *)
  presumed_down : Ids.site_id list;
      (** Copies the coordinator skipped believing them failed.  The
          available-copies validation protocol: a participant that knows
          one of these to be alive votes No, so a coordinator with a
          stale failure view cannot commit a write that misses live
          copies. *)
}

type t = { txn : Ids.Txn_id.t option; payload : payload }

val txn_msg : Ids.Txn_id.t -> payload -> t

val site_msg : payload -> t

val pp : Format.formatter -> t -> unit
