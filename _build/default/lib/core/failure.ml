open Rt_sim
open Rt_types

type event =
  | Crash of Ids.site_id
  | Recover of Ids.site_id
  | Partition of Ids.site_id list list
  | Heal

let apply cluster = function
  | Crash s -> Cluster.crash_site cluster s
  | Recover s -> Cluster.recover_site cluster s
  | Partition groups -> Cluster.partition cluster groups
  | Heal -> Cluster.heal cluster

let schedule cluster events =
  let engine = Cluster.engine cluster in
  List.iter
    (fun (at, event) ->
      ignore (Engine.schedule_at engine at (fun () -> apply cluster event)))
    events

type process = { mutable running : bool }

let random_crashes cluster ~mttf ~mttr ?(protect = []) () =
  let engine = Cluster.engine cluster in
  let rng = Rng.split (Engine.rng engine) in
  let p = { running = true } in
  let sites = (Cluster.config cluster).sites in
  let rec cycle site =
    if p.running then begin
      let up_for = Rng.exponential_time rng ~mean:mttf in
      ignore
        (Engine.schedule_after engine up_for (fun () ->
             if p.running then begin
               Cluster.crash_site cluster site;
               let down_for = Rng.exponential_time rng ~mean:mttr in
               ignore
                 (Engine.schedule_after engine down_for (fun () ->
                      if p.running then begin
                        Cluster.recover_site cluster site;
                        cycle site
                      end))
             end))
    end
  in
  for site = 0 to sites - 1 do
    if not (List.mem site protect) then cycle site
  done;
  p

let stop p = p.running <- false
