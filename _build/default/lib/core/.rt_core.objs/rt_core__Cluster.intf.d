lib/core/cluster.mli: Config Engine Ids Rt_metrics Rt_net Rt_sim Rt_types Rt_workload Site Time
