lib/core/failure.ml: Cluster Engine Ids List Rng Rt_sim Rt_types
