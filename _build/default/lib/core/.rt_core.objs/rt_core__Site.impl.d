lib/core/site.ml: Config Engine Format Hashtbl Ids Int List Msg Option Result Rt_commit Rt_lock Rt_member Rt_metrics Rt_replica Rt_sim Rt_storage Rt_types Rt_workload Set String Time
