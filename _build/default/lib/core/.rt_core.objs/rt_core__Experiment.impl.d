lib/core/experiment.ml: Array Client Cluster Config Engine Failure Format List Printf Rt_cc Rt_commit Rt_metrics Rt_net Rt_quorum Rt_replica Rt_sim Rt_storage Rt_types Rt_workload Site String Time
