lib/core/config.ml: Option Rt_commit Rt_net Rt_quorum Rt_replica Rt_sim Time
