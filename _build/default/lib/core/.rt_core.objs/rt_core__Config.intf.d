lib/core/config.mli: Rt_commit Rt_net Rt_replica Rt_sim Time
