lib/core/client.ml: Cluster Engine Ids List Rng Rt_net Rt_sim Rt_types Rt_workload Site Time
