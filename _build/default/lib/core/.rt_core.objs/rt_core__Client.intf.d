lib/core/client.mli: Cluster Ids Rng Rt_sim Rt_types Rt_workload Time
