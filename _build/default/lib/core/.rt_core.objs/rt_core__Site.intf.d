lib/core/site.mli: Config Engine Ids Msg Result Rt_metrics Rt_sim Rt_storage Rt_types Rt_workload
