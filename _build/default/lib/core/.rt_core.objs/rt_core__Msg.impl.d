lib/core/msg.ml: Format Ids List Printf Result Rt_commit Rt_types
