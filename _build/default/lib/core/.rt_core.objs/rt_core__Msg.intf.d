lib/core/msg.mli: Format Ids Result Rt_commit Rt_types
