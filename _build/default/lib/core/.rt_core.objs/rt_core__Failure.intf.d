lib/core/failure.mli: Cluster Ids Rt_sim Rt_types Time
