lib/core/experiment.mli: Rt_metrics
