lib/core/cluster.ml: Array Config Engine List Msg Rt_metrics Rt_net Rt_sim Rt_storage Rt_workload Site
