(** Tree quorums (Agrawal & El Abbadi).

    Sites are arranged in a complete tree of the given degree and height
    (numbered breadth-first, root = 0).  A quorum for a subtree is either
    its root plus quorums from ⌈d/2⌉ of its children, or — when the root
    is down — quorums from ⌊d/2⌋+1 of its children.  For binary trees the
    failure-free case yields quorums of logarithmic size (a root-to-leaf
    path), degrading gracefully toward majority-like sets as sites fail,
    while always remaining pairwise intersecting. *)

val sites : degree:int -> height:int -> int
(** Number of nodes in the complete tree. *)

val coterie : degree:int -> height:int -> Coterie.t
(** All minimal tree quorums.  [degree ≥ 2], [height ≥ 0]; intended for
    small trees (≤ 15 sites) where enumeration is cheap. *)

val min_quorum_size : degree:int -> height:int -> int
(** Size of the cheapest quorum (root-to-leaf style path): O(height). *)

val availability : degree:int -> height:int -> p:float -> float
(** Probability that the up-set contains some tree quorum, sites failing
    independently with up-probability [p]. *)
