(** Weighted voting (Gifford 1979) vote assignments and quorum thresholds.

    Each site holds a number of votes; a read needs [read_quorum] votes and
    a write needs [write_quorum] votes.  Correctness requires
    [read_quorum + write_quorum > total] (every read quorum intersects
    every write quorum) and [2 * write_quorum > total] (any two write
    quorums intersect), which {!make} enforces. *)

open Rt_types

type t

val make : votes:int array -> read_quorum:int -> write_quorum:int -> t
(** Raises [Invalid_argument] if a vote is negative, the total is zero, or
    the intersection constraints are violated. *)

val majority : sites:int -> t
(** One vote per site; ⌈(n+1)/2⌉ for both quorums. *)

val read_one_write_all : sites:int -> t
(** One vote per site; read quorum 1, write quorum n.  The ROWA limit case
    of weighted voting. *)

val read_all_write_one : sites:int -> t
(** The opposite corner: read quorum n, write quorum 1 — *not* a valid
    general assignment for writes (2w > total fails for n > 1), so this
    raises for [sites > 1]; exposed for tests documenting the constraint. *)

val uniform : sites:int -> read_quorum:int -> t
(** One vote per site; write quorum is the smallest value that satisfies
    both intersection constraints given the read quorum. *)

val sites : t -> int

val votes : t -> int array

val total : t -> int

val read_quorum : t -> int

val write_quorum : t -> int

val vote_count : t -> Ids.site_id list -> int
(** Sum of votes of the given (deduplicated) sites. *)

val read_ok : t -> Ids.site_id list -> bool
(** Do these sites muster a read quorum? *)

val write_ok : t -> Ids.site_id list -> bool

val min_read_set : t -> up:(Ids.site_id -> bool) -> Ids.site_id list option
(** A smallest-cardinality set of up sites forming a read quorum (greedy by
    descending votes, deterministic tie-break by id), or [None]. *)

val min_write_set : t -> up:(Ids.site_id -> bool) -> Ids.site_id list option

val pp : Format.formatter -> t -> unit
