lib/quorum/votes.mli: Format Ids Rt_types
