lib/quorum/tree_quorum.mli: Coterie
