lib/quorum/coterie.mli: Ids Rt_types Votes
