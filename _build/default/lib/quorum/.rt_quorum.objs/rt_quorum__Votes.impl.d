lib/quorum/votes.ml: Array Format Int List String
