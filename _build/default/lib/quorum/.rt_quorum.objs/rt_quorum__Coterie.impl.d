lib/quorum/coterie.ml: Ids Int List Rt_types Votes
