lib/quorum/tree_quorum.ml: Coterie List
