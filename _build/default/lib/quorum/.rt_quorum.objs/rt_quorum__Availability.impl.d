lib/quorum/availability.ml: Array Votes
