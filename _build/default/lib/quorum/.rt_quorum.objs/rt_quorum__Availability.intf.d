lib/quorum/availability.mli: Votes
