
type t = {
  votes : int array;
  total : int;
  read_quorum : int;
  write_quorum : int;
}

let make ~votes ~read_quorum ~write_quorum =
  if Array.exists (fun v -> v < 0) votes then
    invalid_arg "Votes.make: negative vote";
  let total = Array.fold_left ( + ) 0 votes in
  if total = 0 then invalid_arg "Votes.make: no votes";
  if read_quorum <= 0 || write_quorum <= 0 then
    invalid_arg "Votes.make: quorums must be positive";
  if read_quorum + write_quorum <= total then
    invalid_arg "Votes.make: r + w must exceed total votes";
  if 2 * write_quorum <= total then
    invalid_arg "Votes.make: 2w must exceed total votes";
  if read_quorum > total || write_quorum > total then
    invalid_arg "Votes.make: quorum exceeds total votes";
  { votes = Array.copy votes; total; read_quorum; write_quorum }

let majority ~sites =
  if sites <= 0 then invalid_arg "Votes.majority";
  let q = (sites / 2) + 1 in
  make ~votes:(Array.make sites 1) ~read_quorum:q ~write_quorum:q

let read_one_write_all ~sites =
  if sites <= 0 then invalid_arg "Votes.read_one_write_all";
  make ~votes:(Array.make sites 1) ~read_quorum:1 ~write_quorum:sites

let read_all_write_one ~sites =
  if sites <= 0 then invalid_arg "Votes.read_all_write_one";
  make ~votes:(Array.make sites 1) ~read_quorum:sites ~write_quorum:1

let uniform ~sites ~read_quorum =
  if sites <= 0 then invalid_arg "Votes.uniform";
  let w = max (sites - read_quorum + 1) ((sites / 2) + 1) in
  make ~votes:(Array.make sites 1) ~read_quorum ~write_quorum:w

let sites t = Array.length t.votes
let votes t = Array.copy t.votes
let total t = t.total
let read_quorum t = t.read_quorum
let write_quorum t = t.write_quorum

let vote_count t site_list =
  List.sort_uniq Int.compare site_list
  |> List.fold_left
       (fun acc s ->
         if s < 0 || s >= Array.length t.votes then
           invalid_arg "Votes.vote_count: site out of range"
         else acc + t.votes.(s))
       0

let read_ok t site_list = vote_count t site_list >= t.read_quorum
let write_ok t site_list = vote_count t site_list >= t.write_quorum

let min_set t ~up ~threshold =
  (* Greedy: take up sites in descending vote order (id breaks ties) until
     the threshold is met.  Optimal for cardinality because votes are
     interchangeable within the sum. *)
  let candidates =
    Array.to_list (Array.mapi (fun i v -> (i, v)) t.votes)
    |> List.filter (fun (i, v) -> v > 0 && up i)
    |> List.sort (fun (i1, v1) (i2, v2) ->
           let c = Int.compare v2 v1 in
           if c <> 0 then c else Int.compare i1 i2)
  in
  let rec go acc sum = function
    | _ when sum >= threshold -> Some (List.rev acc)
    | [] -> None
    | (i, v) :: rest -> go (i :: acc) (sum + v) rest
  in
  go [] 0 candidates

let min_read_set t ~up = min_set t ~up ~threshold:t.read_quorum
let min_write_set t ~up = min_set t ~up ~threshold:t.write_quorum

let pp fmt t =
  Format.fprintf fmt "votes=[%s] r=%d w=%d/%d"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.votes)))
    t.read_quorum t.write_quorum t.total
