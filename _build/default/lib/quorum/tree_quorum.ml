let sites ~degree ~height =
  if degree < 2 then invalid_arg "Tree_quorum: degree must be >= 2";
  if height < 0 then invalid_arg "Tree_quorum: height must be >= 0";
  let rec go level acc width =
    if level > height then acc else go (level + 1) (acc + width) (width * degree)
  in
  go 0 0 1

(* Children of [v] in the breadth-first numbering. *)
let children ~degree v = List.init degree (fun i -> (degree * v) + i + 1)

(* All (not necessarily minimal) quorums of the subtree rooted at [v] at
   the given remaining height. *)
let rec quorums_of ~degree ~height v =
  if height = 0 then [ [ v ] ]
  else begin
    let kids = children ~degree v in
    let kid_quorums =
      List.map (fun c -> quorums_of ~degree ~height:(height - 1) c) kids
    in
    (* Intersection arithmetic: with-root quorums take k = ceil(d/2)
       child subtrees and rootless ones take m = floor(d/2)+1, so that
       k+m > d (rooted meets rootless in a common subtree) and 2m > d
       (rootless pairs overlap).  For binary trees this is the classical
       "root plus one child's quorum, or both children's quorums". *)
    let k_with_root = (degree + 1) / 2 in
    let m_without = (degree / 2) + 1 in
    (* Cross product of quorum choices from a list of child subtrees. *)
    let rec cross = function
      | [] -> [ [] ]
      | qs :: rest ->
          let tails = cross rest in
          List.concat_map (fun q -> List.map (fun t -> q @ t) tails) qs
    in
    (* Choose [k] of the child subtrees. *)
    let rec choose k list =
      if k = 0 then [ [] ]
      else
        match list with
        | [] -> []
        | x :: rest ->
            List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest
    in
    let with_root =
      choose k_with_root kid_quorums
      |> List.concat_map cross
      |> List.map (fun q -> v :: q)
    in
    let without_root = List.concat_map cross (choose m_without kid_quorums) in
    with_root @ without_root
  end

let coterie ~degree ~height =
  if sites ~degree ~height > 15 then
    invalid_arg "Tree_quorum.coterie: tree too large to enumerate";
  Coterie.of_quorums (quorums_of ~degree ~height 0)

let min_quorum_size ~degree ~height =
  Coterie.min_quorum_size (coterie ~degree ~height)

let availability ~degree ~height ~p =
  let n = sites ~degree ~height in
  let c = coterie ~degree ~height in
  let total = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let prob = ref 1. and up = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        prob := !prob *. p;
        up := i :: !up
      end
      else prob := !prob *. (1. -. p)
    done;
    if Coterie.contains_quorum c !up then total := !total +. !prob
  done;
  !total
