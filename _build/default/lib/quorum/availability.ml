let check_p p =
  if p < 0. || p > 1. then invalid_arg "Availability: p out of [0,1]"

let quorum_availability ~votes ~threshold ~p =
  check_p p;
  let n = Votes.sites votes in
  if n > 20 then invalid_arg "Availability: too many sites to enumerate";
  let v = Votes.votes votes in
  let total = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let sum = ref 0 and prob = ref 1. in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        sum := !sum + v.(i);
        prob := !prob *. p
      end
      else prob := !prob *. (1. -. p)
    done;
    if !sum >= threshold then total := !total +. !prob
  done;
  !total

let read_availability votes ~p =
  quorum_availability ~votes ~threshold:(Votes.read_quorum votes) ~p

let write_availability votes ~p =
  quorum_availability ~votes ~threshold:(Votes.write_quorum votes) ~p

let txn_availability votes ~p =
  let t = max (Votes.read_quorum votes) (Votes.write_quorum votes) in
  quorum_availability ~votes ~threshold:t ~p

let rowa_write ~sites ~p =
  check_p p;
  p ** float_of_int sites

let rowa_read ~sites ~p =
  check_p p;
  1. -. ((1. -. p) ** float_of_int sites)

let available_copies_write ~sites ~p = rowa_read ~sites ~p

let majority_txn ~sites ~p = txn_availability (Votes.majority ~sites) ~p
