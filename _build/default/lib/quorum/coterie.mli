(** Coteries: explicit sets of quorums.

    A coterie is a family of pairwise-intersecting site sets, none of which
    contains another.  Vote assignments induce coteries; representing them
    explicitly allows checking intersection properties and comparing
    schemes (used by the quorum tests and the F6 crossover analysis). *)

open Rt_types

type quorum = Ids.site_id list
(** Sorted, duplicate-free. *)

type t

val of_quorums : quorum list -> t
(** Normalises (sorts, dedups, removes supersets).  Raises
    [Invalid_argument] on an empty family or an empty quorum. *)

val quorums : t -> quorum list

val read_quorums_of_votes : Votes.t -> t
(** All minimal read quorums induced by a vote assignment (enumerates
    subsets; intended for small site counts). *)

val write_quorums_of_votes : Votes.t -> t

val pairwise_intersecting : t -> bool
(** Every pair of quorums shares a site — required of write coteries. *)

val cross_intersecting : t -> t -> bool
(** Every quorum of the first intersects every quorum of the second —
    the read/write intersection property. *)

val min_quorum_size : t -> int

val contains_quorum : t -> Ids.site_id list -> bool
(** Do the given (available) sites contain some quorum? *)
