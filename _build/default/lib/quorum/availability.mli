(** Closed-form availability analysis for replica-control schemes.

    Sites fail independently; each is up with probability [p].  The
    availability of an operation is the probability that the set of up
    sites contains a quorum for it.  These formulas generate Table T3 and
    are cross-checked against simulation in experiment F4. *)

val quorum_availability : votes:Votes.t -> threshold:int -> p:float -> float
(** Probability that the up-site set musters [threshold] votes.  Exact
    (enumerates site subsets; fine for ≤ 20 sites). *)

val read_availability : Votes.t -> p:float -> float

val write_availability : Votes.t -> p:float -> float

val txn_availability : Votes.t -> p:float -> float
(** Probability that both a read and a write quorum exist, i.e. that an
    update transaction can run.  Since quorums are monotone in the up-set,
    this equals the availability of the larger threshold. *)

val rowa_write : sites:int -> p:float -> float
(** Read-one/write-all write availability: all sites must be up. *)

val rowa_read : sites:int -> p:float -> float
(** At least one site up. *)

val available_copies_write : sites:int -> p:float -> float
(** Available-copies writes succeed while at least one copy is up (failures
    are detected and masked); equals [rowa_read]. *)

val majority_txn : sites:int -> p:float -> float
(** Update availability under one-vote-per-site majority quorums. *)
