(** Dynamic network partitions.

    A partition assigns every node to a component; messages are delivered
    only between nodes in the same component.  The default state is fully
    connected. *)

type t

type node_id = int

val create : nodes:int -> t

val nodes : t -> int

val split : t -> node_id list list -> unit
(** [split t groups] places each listed group in its own component.  Nodes
    not mentioned keep component 0.  Raises [Invalid_argument] if a node id
    is out of range or listed twice. *)

val isolate : t -> node_id -> unit
(** Put one node alone in a fresh component. *)

val heal : t -> unit
(** Restore full connectivity. *)

val connected : t -> node_id -> node_id -> bool

val component_of : t -> node_id -> int

val is_split : t -> bool
