type node_id = int
type t = { component : int array; mutable next_component : int }

let create ~nodes =
  if nodes <= 0 then invalid_arg "Partition.create: nodes must be positive";
  { component = Array.make nodes 0; next_component = 1 }

let nodes t = Array.length t.component

let check_node t n =
  if n < 0 || n >= Array.length t.component then
    invalid_arg (Printf.sprintf "Partition: node %d out of range" n)

let split t groups =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun group ->
      let c = t.next_component in
      t.next_component <- t.next_component + 1;
      List.iter
        (fun n ->
          check_node t n;
          if Hashtbl.mem seen n then
            invalid_arg (Printf.sprintf "Partition.split: node %d listed twice" n);
          Hashtbl.add seen n ();
          t.component.(n) <- c)
        group)
    groups

let isolate t n =
  check_node t n;
  t.component.(n) <- t.next_component;
  t.next_component <- t.next_component + 1

let heal t = Array.fill t.component 0 (Array.length t.component) 0

let connected t a b =
  check_node t a;
  check_node t b;
  t.component.(a) = t.component.(b)

let component_of t n =
  check_node t n;
  t.component.(n)

let is_split t =
  let c0 = t.component.(0) in
  Array.exists (fun c -> c <> c0) t.component
