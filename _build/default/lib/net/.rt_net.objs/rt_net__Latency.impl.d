lib/net/latency.ml: Format Rng Rt_sim Time
