lib/net/partition.mli:
