lib/net/latency.mli: Format Rng Rt_sim Time
