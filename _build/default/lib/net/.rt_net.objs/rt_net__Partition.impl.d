lib/net/partition.ml: Array Hashtbl List Printf
