lib/net/net.mli: Engine Latency Partition Rng Rt_sim
