lib/net/net.ml: Array Engine Hashtbl Latency Partition Printf Rng Rt_sim Time
