(** Monotone membership views.

    A view is a numbered snapshot of the sites believed operational.
    Feeding successive up-sets (typically from {!Heartbeat}) produces a
    new view exactly when membership changes; view numbers only grow.
    Protocol layers can use the view id as a cheap epoch for fencing
    stale messages. *)

open Rt_types

type t

val create : members:Ids.site_id list -> t
(** View 1 contains the initial members. *)

val id : t -> int

val members : t -> Ids.site_id list
(** Sorted. *)

val update : t -> up:Ids.site_id list -> bool
(** Install a new membership; returns [true] (and bumps the id) iff it
    differs from the current one. *)

val contains : t -> Ids.site_id -> bool

val on_change : t -> (int -> Ids.site_id list -> unit) -> unit
(** Register a callback invoked after each change with the new id and
    member list.  Multiple callbacks are invoked in registration order. *)

val pp : Format.formatter -> t -> unit
