open Rt_types

type t = {
  mutable id : int;
  mutable members : Ids.site_id list;  (* sorted *)
  mutable callbacks : (int -> Ids.site_id list -> unit) list;  (* reversed *)
}

let create ~members =
  { id = 1; members = List.sort_uniq Int.compare members; callbacks = [] }

let id t = t.id
let members t = t.members

let update t ~up =
  let up = List.sort_uniq Int.compare up in
  if up = t.members then false
  else begin
    t.id <- t.id + 1;
    t.members <- up;
    List.iter (fun f -> f t.id t.members) (List.rev t.callbacks);
    true
  end

let contains t site = List.mem site t.members
let on_change t f = t.callbacks <- f :: t.callbacks

let pp fmt t =
  Format.fprintf fmt "view %d {%s}" t.id
    (String.concat "," (List.map string_of_int t.members))
