lib/member/heartbeat.ml: Engine Hashtbl Ids Int List Rt_sim Rt_types Time
