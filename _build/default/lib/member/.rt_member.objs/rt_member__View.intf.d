lib/member/view.mli: Format Ids Rt_types
