lib/member/heartbeat.mli: Engine Ids Rt_sim Rt_types Time
