lib/member/view.ml: Format Ids Int List Rt_types String
