(** Heartbeat failure detector.

    Each site periodically beats to its peers; a peer silent for
    [miss_threshold] consecutive intervals is declared down, and declared
    up again on the next beat heard.  The detector is deliberately simple
    (and, under partitions, deliberately wrong in the way real timeout
    detectors are wrong): unreachable and crashed look identical, which is
    exactly the ambiguity quorum commit is designed to survive. *)

open Rt_sim
open Rt_types

type t

val create :
  Engine.t ->
  self:Ids.site_id ->
  peers:Ids.site_id list ->
  interval:Time.t ->
  miss_threshold:int ->
  send_beat:(Ids.site_id -> unit) ->
  on_down:(Ids.site_id -> unit) ->
  on_up:(Ids.site_id -> unit) ->
  t
(** [on_up] fires only for recoveries (not at start, when every peer is
    presumed up). *)

val start : t -> unit

val stop : t -> unit
(** Stop beating and checking (the local site crashed). *)

val beat_received : t -> from:Ids.site_id -> unit

val is_up : t -> Ids.site_id -> bool

val up_peers : t -> Ids.site_id list
(** Sorted; excludes self. *)
