type site_id = int

let pp_site fmt s = Format.fprintf fmt "S%d" s

module Txn_id = struct
  type t = { origin : site_id; seq : int; start_ts : Rt_sim.Time.t }

  let make ~origin ~seq ~start_ts = { origin; seq; start_ts }

  let compare a b =
    let c = Rt_sim.Time.compare a.start_ts b.start_ts in
    if c <> 0 then c
    else
      let c = Int.compare a.origin b.origin in
      if c <> 0 then c else Int.compare a.seq b.seq

  let equal a b = compare a b = 0
  let older a b = compare a b < 0
  let hash t = Hashtbl.hash (t.origin, t.seq, t.start_ts)

  let pp fmt t =
    Format.fprintf fmt "T%d.%d@@%a" t.origin t.seq Rt_sim.Time.pp t.start_ts

  let to_string t = Format.asprintf "%a" pp t
end

module Txn_map = Hashtbl.Make (Txn_id)
