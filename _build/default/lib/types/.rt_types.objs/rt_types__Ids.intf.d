lib/types/ids.mli: Format Hashtbl Rt_sim
