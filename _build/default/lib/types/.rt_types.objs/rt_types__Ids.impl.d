lib/types/ids.ml: Format Hashtbl Int Rt_sim
