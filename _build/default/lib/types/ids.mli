(** Identifiers shared across the whole system. *)

type site_id = int
(** Dense site (replica) index, also the network node id. *)

val pp_site : Format.formatter -> site_id -> unit

(** Globally unique transaction identifiers.

    A transaction is named by its origin site and a per-site sequence
    number; the start timestamp is embedded so that age-based policies
    (wound-wait victim selection, timestamp ordering) need no extra
    lookup.  Ordering is by [(start_ts, origin, seq)]: older transactions
    compare smaller, with site/sequence as a deterministic tie-break. *)
module Txn_id : sig
  type t = { origin : site_id; seq : int; start_ts : Rt_sim.Time.t }

  val make : origin:site_id -> seq:int -> start_ts:Rt_sim.Time.t -> t

  val compare : t -> t -> int
  (** Total order; smaller means older (higher priority). *)

  val equal : t -> t -> bool

  val older : t -> t -> bool
  (** [older a b] iff [a] started strictly earlier in the total order. *)

  val hash : t -> int

  val pp : Format.formatter -> t -> unit

  val to_string : t -> string
end

module Txn_map : Hashtbl.S with type key = Txn_id.t
