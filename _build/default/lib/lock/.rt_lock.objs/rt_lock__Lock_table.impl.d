lib/lock/lock_table.ml: Format Hashtbl Ids List Rt_types String Wfg
