lib/lock/wfg.ml: Ids List Rt_types Set
