lib/lock/wfg.mli: Ids Rt_types
