lib/lock/lock_table.mli: Format Ids Rt_types Wfg
