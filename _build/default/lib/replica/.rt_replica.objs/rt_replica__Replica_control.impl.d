lib/replica/replica_control.ml: Array Ids Int List Option Printf Rt_quorum Rt_types
