lib/replica/replica_control.mli: Ids Rt_quorum Rt_types
