lib/commit/quorum_commit.ml: Ids Int List Option Protocol Rt_types Set
