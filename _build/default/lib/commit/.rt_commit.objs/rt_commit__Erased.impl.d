lib/commit/erased.ml: Protocol Quorum_commit Three_pc Two_pc
