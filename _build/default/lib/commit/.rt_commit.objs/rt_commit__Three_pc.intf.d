lib/commit/three_pc.mli: Ids Protocol Rt_types
