lib/commit/quorum_commit.mli: Ids Protocol Rt_types
