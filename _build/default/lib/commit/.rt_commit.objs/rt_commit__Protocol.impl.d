lib/commit/protocol.ml: Format Ids Int List Rt_sim Rt_types
