lib/commit/sandbox.mli: Ids Protocol Rt_types Two_pc
