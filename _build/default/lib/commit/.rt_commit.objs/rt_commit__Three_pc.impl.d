lib/commit/three_pc.ml: Ids Int List Protocol Rt_types Set
