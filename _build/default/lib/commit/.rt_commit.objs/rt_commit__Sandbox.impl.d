lib/commit/sandbox.ml: Array Erased Format Hashtbl Ids List Option Printf Protocol Quorum_commit Rt_sim Rt_types Three_pc Two_pc
