lib/commit/two_pc.ml: Format Ids Int List Protocol Rt_types Set
