lib/commit/erased.mli: Protocol Quorum_commit Three_pc Two_pc
