lib/commit/two_pc.mli: Format Ids Protocol Rt_types
