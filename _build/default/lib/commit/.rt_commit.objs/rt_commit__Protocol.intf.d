lib/commit/protocol.mli: Format Ids Rt_sim Rt_types
