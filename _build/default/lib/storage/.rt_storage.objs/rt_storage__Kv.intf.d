lib/storage/kv.mli:
