lib/storage/kv.ml: Hashtbl List String
