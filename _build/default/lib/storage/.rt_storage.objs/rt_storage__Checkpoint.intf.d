lib/storage/checkpoint.mli: Kv Wal
