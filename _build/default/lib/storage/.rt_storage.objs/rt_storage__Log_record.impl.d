lib/storage/log_record.ml: Format Ids Kv List Rt_types
