lib/storage/log_record.mli: Format Ids Kv Rt_types
