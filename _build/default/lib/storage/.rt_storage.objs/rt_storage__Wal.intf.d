lib/storage/wal.mli: Engine Rt_sim Time
