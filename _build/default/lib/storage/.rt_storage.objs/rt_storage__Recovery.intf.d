lib/storage/recovery.mli: Ids Kv Log_record Rt_sim Rt_types
