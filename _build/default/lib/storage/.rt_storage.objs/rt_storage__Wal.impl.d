lib/storage/wal.ml: Array Engine List Option Rt_sim Time
