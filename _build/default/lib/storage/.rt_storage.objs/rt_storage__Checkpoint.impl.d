lib/storage/checkpoint.ml: Kv Wal
