lib/storage/recovery.ml: Ids Kv List Log_record Option Rt_sim Rt_types
