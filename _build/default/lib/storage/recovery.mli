(** Crash recovery: rebuild the volatile store from a checkpoint snapshot
    plus the durable log suffix.

    This is the classical two-pass restart for a no-steal/no-force volatile
    cache: the snapshot is the last materialised state; an analysis pass
    classifies transactions from the log; a redo pass re-applies the updates
    of committed ("winner") transactions in log order.  Loser updates were
    never applied to stable state, so no undo pass is needed — but
    transactions that had logged [Prepared] without a decision are returned
    as in-doubt and must be resolved by the commitment protocol's
    termination/recovery procedure before their locks can be released. *)

open Rt_types

(** How far an in-doubt transaction had progressed. *)
type doubt_state = D_prepared | D_precommitted | D_preaborted

type in_doubt = {
  txn : Ids.Txn_id.t;
  state : doubt_state;
  participants : Ids.site_id list;  (** From the [Prepared] record. *)
  writes : (string * string * Kv.version) list;
      (** The updates this transaction would install on commit. *)
}

type outcome = {
  committed : Ids.Txn_id.t list;  (** Winners found in the log. *)
  aborted : Ids.Txn_id.t list;
  in_doubt : in_doubt list;
      (** Prepared (or pre-committed/pre-aborted) with no decision. *)
  collecting : Ids.Txn_id.t list;
      (** Coordinator-side presumed-commit begin records without a
          decision: these transactions must be answered "abort". *)
  redone : int;  (** Update records re-applied. *)
  scanned : int;  (** Total records scanned. *)
}

val recover : Kv.t -> Log_record.t list -> outcome
(** [recover kv log] applies winner updates from [log] to [kv] (which
    should already hold the checkpoint snapshot) and classifies every
    transaction seen.  Idempotent: re-running on the same input yields the
    same state, because updates carry absolute values and versions. *)

val replay_duration :
  per_record:Rt_sim.Time.t -> scanned:int -> redone:int -> Rt_sim.Time.t
(** Simulated wall time for a restart that scans [scanned] records and
    re-applies [redone]: redo costs [per_record] each, scanning a tenth of
    that.  Used by the recovery-time experiment (T5). *)
