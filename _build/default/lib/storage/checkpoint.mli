(** Checkpoints: durable snapshots of the store paired with the log position
    they capture.

    Taking a checkpoint lets the log be truncated up to the snapshot's LSN
    (minus any still-active transactions, which the caller must account
    for).  The snapshot is modelled as instantaneously durable; its cost
    shows up in experiments through the log-length/recovery-time trade-off
    rather than a write stall. *)

type t

val create : unit -> t

val take : t -> kv:Kv.t -> lsn:Wal.lsn -> unit
(** Record a snapshot of [kv] as of log position [lsn]. *)

val latest : t -> ((string * Kv.item) list * Wal.lsn) option
(** Most recent snapshot and its LSN, if any. *)

val restore_latest : t -> Kv.t -> Wal.lsn
(** Load the latest snapshot into the store (clearing it first) and return
    the LSN recovery should replay from; replays from LSN 1 over an empty
    store when no checkpoint exists. *)

val count : t -> int
(** Checkpoints taken so far. *)
