type t = {
  mutable snapshot : ((string * Kv.item) list * Wal.lsn) option;
  mutable taken : int;
}

let create () = { snapshot = None; taken = 0 }

let take t ~kv ~lsn =
  t.snapshot <- Some (Kv.snapshot kv, lsn);
  t.taken <- t.taken + 1

let latest t = t.snapshot

let restore_latest t kv =
  match t.snapshot with
  | None ->
      Kv.clear kv;
      0
  | Some (entries, lsn) ->
      Kv.restore kv entries;
      lsn

let count t = t.taken
