open Rt_types

type doubt_state = D_prepared | D_precommitted | D_preaborted

type in_doubt = {
  txn : Ids.Txn_id.t;
  state : doubt_state;
  participants : Ids.site_id list;
  writes : (string * string * Kv.version) list;
}

type outcome = {
  committed : Ids.Txn_id.t list;
  aborted : Ids.Txn_id.t list;
  in_doubt : in_doubt list;
  collecting : Ids.Txn_id.t list;
  redone : int;
  scanned : int;
}

type status =
  | Active
  | Was_prepared
  | Was_precommitted
  | Was_preaborted
  | Won
  | Lost

let recover kv log =
  let status : status Ids.Txn_map.t = Ids.Txn_map.create 64 in
  let participants : Ids.site_id list Ids.Txn_map.t = Ids.Txn_map.create 16 in
  let collecting : unit Ids.Txn_map.t = Ids.Txn_map.create 16 in
  let get txn = Option.value (Ids.Txn_map.find_opt status txn) ~default:Active in
  let scanned = ref 0 in
  (* Analysis pass: classify every transaction mentioned in the log. *)
  List.iter
    (fun record ->
      incr scanned;
      match record with
      | Log_record.Update { txn; _ } ->
          if not (Ids.Txn_map.mem status txn) then
            Ids.Txn_map.replace status txn Active
      | Prepared { txn; participants = parts } -> (
          Ids.Txn_map.replace participants txn parts;
          match get txn with
          | Active -> Ids.Txn_map.replace status txn Was_prepared
          | _ -> ())
      | Precommit txn -> (
          match get txn with
          | Active | Was_prepared | Was_preaborted ->
              Ids.Txn_map.replace status txn Was_precommitted
          | _ -> ())
      | Preabort txn -> (
          match get txn with
          | Active | Was_prepared | Was_precommitted ->
              Ids.Txn_map.replace status txn Was_preaborted
          | _ -> ())
      | Collecting txn -> Ids.Txn_map.replace collecting txn ()
      | Commit txn -> Ids.Txn_map.replace status txn Won
      | Abort txn -> Ids.Txn_map.replace status txn Lost
      | End txn -> Ids.Txn_map.remove collecting txn
      | Checkpoint_marker _ -> ())
    log;
  (* Redo pass: winners only, in log order. *)
  let redone = ref 0 in
  List.iter
    (fun record ->
      match record with
      | Log_record.Update { txn; key; value; version; _ } when get txn = Won ->
          Kv.set kv ~key ~value ~version;
          incr redone
      | _ -> ())
    log;
  let classify want =
    Ids.Txn_map.fold
      (fun txn st acc -> if want st then txn :: acc else acc)
      status []
    |> List.sort Ids.Txn_id.compare
  in
  let in_doubt_of txn state =
    let writes =
      List.filter_map
        (function
          | Log_record.Update { txn = t; key; value; version; _ }
            when Ids.Txn_id.equal t txn ->
              Some (key, value, version)
          | _ -> None)
        log
    in
    {
      txn;
      state;
      participants =
        Option.value (Ids.Txn_map.find_opt participants txn) ~default:[];
      writes;
    }
  in
  let in_doubt =
    List.map (fun t -> in_doubt_of t D_prepared)
      (classify (fun s -> s = Was_prepared))
    @ List.map (fun t -> in_doubt_of t D_precommitted)
        (classify (fun s -> s = Was_precommitted))
    @ List.map (fun t -> in_doubt_of t D_preaborted)
        (classify (fun s -> s = Was_preaborted))
  in
  let in_doubt =
    List.sort (fun a b -> Ids.Txn_id.compare a.txn b.txn) in_doubt
  in
  let collecting_no_decision =
    Ids.Txn_map.fold
      (fun txn () acc ->
        match get txn with Won | Lost -> acc | _ -> txn :: acc)
      collecting []
    |> List.sort Ids.Txn_id.compare
  in
  {
    committed = classify (fun s -> s = Won);
    aborted = classify (fun s -> s = Lost);
    in_doubt;
    collecting = collecting_no_decision;
    redone = !redone;
    scanned = !scanned;
  }

let replay_duration ~per_record ~scanned ~redone =
  Rt_sim.Time.add (redone * per_record) (scanned * per_record / 10)
