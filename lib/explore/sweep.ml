(* Cluster harness for the explorer: small-scope scenarios (N = 3, one or
   two transactions, all six commit protocols, full and two-shard
   placements, optional crash injection), the standard sweep matrix, and
   the byte-stable report `make explore` regenerates.  The matrix is
   strict: every invariant violation counts, with no expected-violation
   carve-outs.

   Every scenario runs twice — sleep sets on and off, both with state
   dedup — so the reported reduction factor isolates the partial-order
   reduction.  All randomness is neutralized: fixed link latency, no
   drops, a fixed seed, and a heartbeat interval far beyond the horizon
   (the t = 0 beat burst is drained before exploration starts, and the
   re-arm events carry the [Recurring] label the explorer never fires). *)

open Rt_sim
open Rt_core

type crash_spec = {
  cr_sites : int list;
  cr_points : string list;  (* empty = every announced point *)
  cr_budget : int;
}

type scenario = {
  sc_name : string;
  sc_protocol : Config.commit_protocol;
  sc_sharded : bool;
  sc_batched : bool;
      (* WAL group commit + link batching on: the flush-window timers and
         envelope deliveries become schedule choices. *)
  sc_txns : (int * Rt_workload.Mix.op list) list;  (* (origin, ops) *)
  sc_crash : crash_spec option;
  sc_max_executions : int;
}

let sites = 3
let recover_after = Time.ms 100
let drain_horizon = Time.sec 3
let settle = Time.sec 1

(* Two range shards split at "b" over three sites, degree 2: shard 0
   ("a") on {0,1}, shard 1 ("b") on {1,2} — genuinely partial, with the
   coordinator replicating only one shard. *)
let sharded_placement () =
  Rt_placement.Placement.create
    ~map:(Rt_placement.Shard_map.range ~boundaries:[ "b" ])
    ~sites ~degree:2 ()

let config_of sc =
  {
    (Config.default ~sites ()) with
    commit_protocol = sc.sc_protocol;
    placement = (if sc.sc_sharded then Some (sharded_placement ()) else None);
    link = Rt_net.Net.reliable_link (Rt_net.Latency.Fixed (Time.us 10));
    heartbeat_interval = Time.sec 3600;
    group_commit_window = (if sc.sc_batched then Time.us 20 else Time.zero);
    batch_window = (if sc.sc_batched then Some (Time.us 10) else None);
    seed = 0;
  }

let writes_of ops =
  List.filter_map
    (function Rt_workload.Mix.Write (k, v) -> Some (k, v) | _ -> None)
    ops

(* --- the Explore.sys for a scenario ----------------------------------- *)

let make_sys sc () =
  let config = config_of sc in
  let cluster = Cluster.create config in
  let engine = Cluster.engine cluster in
  (* Drain the t=0 heartbeat burst so exploration starts from a settled
     view; the next ticks are an hour out. *)
  Cluster.run ~until:(Time.us 100) cluster;
  let n_txns = List.length sc.sc_txns in
  let outcomes = Array.make (max 1 n_txns) None in
  let committed_writes () =
    (* A transaction's writes count as durable obligations once any site
       recorded a commit decision for it.  Transactions are matched to
       submissions by origin site (scenarios use distinct origins). *)
    let committed_origin o =
      Array.exists
        (fun site ->
          List.exists
            (fun ((txn : Rt_types.Ids.Txn_id.t), d) ->
              txn.origin = o && d = Rt_commit.Protocol.Commit)
            (Site.decided_txns site))
        (Cluster.sites cluster)
    in
    List.concat_map
      (fun (origin, ops) ->
        if committed_origin origin then writes_of ops else [])
      sc.sc_txns
  in
  {
    Explore.ys_engine = engine;
    ys_start =
      (fun () ->
        List.iteri
          (fun i (origin, ops) ->
            Cluster.submit cluster ~site:origin ~ops ~k:(fun o ->
                outcomes.(i) <- Some o))
          sc.sc_txns);
    ys_digest =
      (fun () ->
        let b = Buffer.create 8192 in
        Array.iter
          (fun s ->
            Buffer.add_string b (Site.dump s);
            Buffer.add_char b '\n')
          (Cluster.sites cluster);
        (* In-flight messages, canonicalized per FIFO link: sort by
           (src, dst) and keep engine order within a link (= send
           order); the seq itself stays out of the digest. *)
        Rt_net.Net.in_flight (Cluster.net cluster)
        |> List.map (fun (seq, src, dst, msgs) ->
               ( (src, dst, seq),
                 Format.asprintf "%d>%d:%s;" src dst
                   (String.concat ","
                      (List.map (Format.asprintf "%a" Msg.pp) msgs)) ))
        |> List.sort (fun ((a1, a2, a3), _) ((b1, b2, b3), _) ->
               match Int.compare a1 b1 with
               | 0 -> (
                   match Int.compare a2 b2 with
                   | 0 -> Int.compare a3 b3
                   | c -> c)
               | c -> c)
        |> List.iter (fun (_, line) -> Buffer.add_string b line);
        (* Raw text, not a hash: the explorer hashes the composite
           digest itself, and replay exposes this text for
           counterexample inspection. *)
        Buffer.contents b);
    ys_delivery_class =
      (fun ~seq ->
        match Rt_net.Net.find_in_flight (Cluster.net cluster) ~seq with
        | Some (_, _, [ (m : Msg.t) ]) when m.payload = Msg.Heartbeat ->
            Explore.Eager
        | Some (_, _, msgs) ->
            Explore.Choice
              (String.concat "," (List.map (Format.asprintf "%a" Msg.pp) msgs))
        | None -> Explore.Choice "?")
;
    ys_crash_ok =
      (fun ~site ~point ->
        match sc.sc_crash with
        | None -> false
        | Some cr ->
            List.mem site cr.cr_sites
            && (cr.cr_points = [] || List.mem point cr.cr_points)
            && Site.is_up (Cluster.site cluster site));
    ys_crash =
      (fun ~site ->
        Cluster.crash_site cluster site;
        ignore
          (Engine.schedule_after
             ~label:(Engine.Timer { site; name = "recover" })
             engine recover_after
             (fun () ->
               if not (Site.is_up (Cluster.site cluster site)) then
                 Cluster.recover_site cluster site)));
    ys_drain =
      (fun () ->
        Cluster.run ~until:(Time.add (Engine.now engine) drain_horizon) cluster);
    ys_audit =
      (fun () ->
        let termination =
          List.concat
            (List.mapi
               (fun i (origin, _) ->
                 match outcomes.(i) with
                 | Some _ -> []
                 | None ->
                     [
                       ( "termination",
                         Printf.sprintf
                           "txn submitted at site %d never reached an outcome"
                           origin );
                     ])
               sc.sc_txns)
        in
        let writes = committed_writes () in
        let audit =
          Audit.standard ~writes ~settle cluster
          |> List.map (fun (v : Audit.violation) -> (v.inv, v.detail))
        in
        termination @ audit);
  }

(* Infrastructure timers whose interleavings the explorer leaves to the
   deterministic leaf drain: client-round timeouts and background sweeps
   fire against every protocol stage and multiply the space by an order
   of magnitude without touching the commit protocol's own decision
   structure.  Protocol timers (the commit machines' timeouts) and crash
   recovery remain explorable choices.  The WAL device completes
   eagerly, inside the enclosing macro step: a slow force is observable
   only through the timing of the messages it gates — and message timing
   is explored directly — while durability nondeterminism is explored
   through crash decisions at the force-boundary crash points.  This is
   a documented scope bound, not a soundness claim: nemesis and soak
   cover the excluded timers under randomized schedules. *)
let pending_timers =
  [ "orphan-sweep"; "op-timeout"; "lock-wait"; "catchup-retry"; "gc" ]

let opts_of sc ~sleep =
  {
    Explore.default_opts with
    op_sleep = sleep;
    (* One timeout injection per schedule, CHESS-style bounded: every
       single-untimely-fire behaviour is covered exhaustively, while the
       pairwise cross-product (measured 20x the states, past any closable
       budget) is left to nemesis's randomized timer chaos. *)
    op_timer_total = 1;
    op_timer_class =
      (fun ~site:_ ~name ->
        if name = "wal-device" then `Eager
        else if List.mem name pending_timers then `Pending
        else `Choice);
    op_crash_budget =
      (match sc.sc_crash with None -> 0 | Some cr -> cr.cr_budget);
    op_max_executions = sc.sc_max_executions;
  }

(* --- scenario matrix --------------------------------------------------- *)

let protocols =
  [
    ("2PC-PrN", Config.Two_phase Rt_commit.Two_pc.Presumed_nothing);
    ("2PC-PrA", Config.Two_phase Rt_commit.Two_pc.Presumed_abort);
    ("2PC-PrC", Config.Two_phase Rt_commit.Two_pc.Presumed_commit);
    ("3PC", Config.Three_phase);
    ("QC", Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
    ("Paxos", Config.Paxos_commit { f = None });
  ]

(* One replicated write: under ROWA every site is a write participant,
   which is what the durability invariant needs, at the smallest depth
   the commit protocol admits.  The cross-shard scenarios add a second
   key so the transaction genuinely spans both shards. *)
let full_txn = [ Rt_workload.Mix.Write ("a", "1") ]
let shard_txn =
  [ Rt_workload.Mix.Write ("a", "1"); Rt_workload.Mix.Write ("b", "2") ]

let scenario ?(sharded = false) ?(batched = false) ?crash
    ?(max_executions = 50_000) ~name ~protocol ~txns () =
  {
    sc_name = name;
    sc_protocol = protocol;
    sc_sharded = sharded;
    sc_batched = batched;
    sc_txns = txns;
    sc_crash = crash;
    sc_max_executions = max_executions;
  }

let default_matrix () =
  List.concat_map
    (fun (pname, protocol) ->
      (* Paxos Commit at N = 3 runs F = 1: per-vote consensus instances
         over three acceptors plus leader usurpation, a state space that
         does not close under any affordable budget (50k executions
         reach depth ~46 with the frontier still widening).  The sweep
         stays strict — every violation in the explored prefix counts —
         but caps the budget so `make explore` stays in CI range; the
         report marks these rows `complete = no`. *)
      let max_executions =
        match protocol with
        | Config.Paxos_commit _ -> 15_000
        | Config.Two_phase _ | Config.Three_phase | Config.Quorum_commit _ ->
            50_000
      in
      [
        (* One distributed write transaction, full replication. *)
        scenario ~max_executions
          ~name:(pname ^ "/full")
          ~protocol
          ~txns:[ (0, full_txn) ]
          ();
        (* Same transaction across two partial shards. *)
        scenario ~sharded:true ~max_executions
          ~name:(pname ^ "/shard2")
          ~protocol
          ~txns:[ (0, shard_txn) ]
          ();
        (* Two conflicting writers from different origins. *)
        scenario ~max_executions
          ~name:(pname ^ "/conflict")
          ~protocol
          ~txns:
            [
              (0, [ Rt_workload.Mix.Write ("a", "1") ]);
              (1, [ Rt_workload.Mix.Write ("a", "2") ]);
            ]
          ();
        (* One transaction with a single coordinator crash at a
           log-force boundary, recovery explored as a schedule choice. *)
        scenario ~max_executions
          ~name:(pname ^ "/crash")
          ~protocol
          ~txns:[ (0, full_txn) ]
          ~crash:
            {
              cr_sites = [ 0 ];
              cr_points = [ "wal:force-volatile"; "wal:force-durable" ];
              cr_budget = 1;
            }
          ();
        (* Two conflicting writers with group commit and batching on:
           wal-flush and net-flush timers interleave with envelope
           deliveries, and a shared flush must still release each
           continuation only after the covering cycle is durable. *)
        scenario ~batched:true ~max_executions
          ~name:(pname ^ "/conflict+gcb")
          ~protocol
          ~txns:
            [
              (0, [ Rt_workload.Mix.Write ("a", "1") ]);
              (1, [ Rt_workload.Mix.Write ("a", "2") ]);
            ]
          ();
        (* Coordinator crash at the (group-commit) force boundaries with
           batching on: the moved boundaries stay recoverable. *)
        scenario ~batched:true ~max_executions
          ~name:(pname ^ "/crash+gcb")
          ~protocol
          ~txns:[ (0, full_txn) ]
          ~crash:
            {
              cr_sites = [ 0 ];
              cr_points = [ "wal:force-volatile"; "wal:force-durable" ];
              cr_budget = 1;
            }
          ();
      ])
    protocols

let find_scenario name =
  List.find_opt (fun sc -> sc.sc_name = name) (default_matrix ())

(* --- running and reporting --------------------------------------------- *)

type row = {
  rw_scenario : scenario;
  rw_sleep : Explore.result;
  rw_nosleep : Explore.result;
  rw_counterexamples : (int list * string list * (string * string) list) list;
      (* minimized schedule, trace, violations *)
  rw_violations : int;
      (* Every violation the sweep found.  The matrix is strict: there is
         no expected-violation filter, and any nonzero total fails. *)
}

let run_scenario sc =
  let sleep = Explore.explore ~opts:(opts_of sc ~sleep:true) (make_sys sc) in
  let nosleep =
    Explore.explore ~opts:(opts_of sc ~sleep:false) (make_sys sc)
  in
  let counterexamples =
    (* Minimize and re-derive each distinct violation (cap 3). *)
    let take3 = List.filteri (fun i _ -> i < 3) sleep.r_violating in
    List.map
      (fun (lr : Explore.leaf_report) ->
        let opts = opts_of sc ~sleep:true in
        let min_sched =
          Explore.minimize ~opts (make_sys sc) lr.lf_schedule
        in
        let out = Explore.follow ~opts (make_sys sc) min_sched in
        let vs =
          if out.rp_violations <> [] then out.rp_violations
          else lr.lf_violations
        in
        (min_sched, out.rp_trace, vs))
      take3
  in
  let violations =
    List.concat_map
      (fun (lr : Explore.leaf_report) -> lr.lf_violations)
      sleep.r_violating
    |> List.length
  in
  { rw_scenario = sc; rw_sleep = sleep; rw_nosleep = nosleep;
    rw_counterexamples = counterexamples; rw_violations = violations }

let reduction_factor row =
  let s = row.rw_sleep.r_stats.st_executions in
  let n = row.rw_nosleep.r_stats.st_executions in
  if s = 0 then (1.0, false)
  else (float_of_int n /. float_of_int s, not row.rw_nosleep.r_complete)

let pp_schedule fmt sched =
  Format.fprintf fmt "[%s]"
    (String.concat "," (List.map string_of_int sched))

let render_report fmt rows =
  Format.fprintf fmt "# Schedule exploration (rt_explore)\n\n";
  Format.fprintf fmt
    "N=%d sites, deterministic config (fixed 10us links, no drops, seed 0).\n\
     Each scenario explored twice: sleep sets on and off, both with\n\
     canonical-state dedup.  `reduction` = executions(no-sleep) /\n\
     executions(sleep); prefixed `>=` when the no-sleep run hit its\n\
     execution budget.  Regenerate with `make explore`.\n\n"
    sites;
  Format.fprintf fmt
    "| scenario | execs | states | dedup | sleep-cut | leaves | depth | \
     complete | no-sleep execs | reduction | violations |\n";
  Format.fprintf fmt "|---|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun row ->
      let s = row.rw_sleep.r_stats in
      let n = row.rw_nosleep.r_stats in
      let factor, capped = reduction_factor row in
      Format.fprintf fmt
        "| %s | %d | %d | %d | %d | %d | %d | %s | %d | %s%.2f | %d |\n"
        row.rw_scenario.sc_name s.st_executions s.st_states s.st_dedup_hits
        s.st_sleep_prunes s.st_leaves s.st_max_depth
        (if row.rw_sleep.r_complete then "yes" else "no")
        n.st_executions
        (if capped then ">=" else "")
        factor
        (List.length row.rw_sleep.r_violating))
    rows;
  let violating = List.filter (fun r -> r.rw_counterexamples <> []) rows in
  if violating <> [] then begin
    Format.fprintf fmt "\n## Counterexamples\n";
    List.iter
      (fun row ->
        List.iter
          (fun (sched, trace, vs) ->
            Format.fprintf fmt "\n### %s %a\n\n" row.rw_scenario.sc_name
              pp_schedule sched;
            Format.fprintf fmt
              "Replay: `dune exec bin/explore.exe -- --replay %s --schedule \
               %s`\n\n"
              row.rw_scenario.sc_name
              (String.concat "," (List.map string_of_int sched));
            List.iter
              (fun (inv, detail) ->
                Format.fprintf fmt "- **%s**: %s\n" inv detail)
              vs;
            Format.fprintf fmt "\nDecisions:\n\n";
            List.iter (fun l -> Format.fprintf fmt "    %s\n" l) trace)
          row.rw_counterexamples)
      violating
  end;
  let total_violations =
    List.fold_left (fun a r -> a + r.rw_violations) 0 rows
  in
  Format.fprintf fmt "\n%d violation(s).\n" total_violations;
  total_violations

let run_matrix ?(filter = fun _ -> true) ?budget fmt =
  let clamp sc =
    match budget with
    | None -> sc
    | Some b -> { sc with sc_max_executions = b }
  in
  let rows =
    default_matrix () |> List.filter filter |> List.map clamp
    |> List.map run_scenario
  in
  render_report fmt rows
