(** Cluster harness for the explorer: small-scope scenarios (N = 3, one
    or two transactions, all six commit protocols, full and two-shard
    placements, optional crash injection), the standard sweep matrix,
    and the byte-stable report [make explore] regenerates.  The matrix
    is strict: every invariant violation counts, with no
    expected-violation carve-outs.

    Every scenario runs twice — sleep sets on and off, both with state
    dedup — so the reported reduction factor isolates the partial-order
    reduction.  All randomness is neutralized: fixed link latency, no
    drops, a fixed seed, and a heartbeat interval far beyond the
    horizon. *)

type crash_spec = {
  cr_sites : int list;  (** Sites whose crash points become decisions. *)
  cr_points : string list;  (** Empty = every announced point. *)
  cr_budget : int;  (** Max crash injections per schedule. *)
}

type scenario = {
  sc_name : string;
  sc_protocol : Rt_core.Config.commit_protocol;
  sc_sharded : bool;
  sc_batched : bool;
      (** WAL group commit + link batching on: flush-window timers and
          envelope deliveries become schedule choices. *)
  sc_txns : (int * Rt_workload.Mix.op list) list;  (** (origin, ops) *)
  sc_crash : crash_spec option;
  sc_max_executions : int;
}

val protocols : (string * Rt_core.Config.commit_protocol) list
(** The six commit protocols, keyed by report name. *)

val scenario :
  ?sharded:bool ->
  ?batched:bool ->
  ?crash:crash_spec ->
  ?max_executions:int ->
  name:string ->
  protocol:Rt_core.Config.commit_protocol ->
  txns:(int * Rt_workload.Mix.op list) list ->
  unit ->
  scenario

val default_matrix : unit -> scenario list
(** Six scenarios per protocol: full, shard2, conflict, crash, plus the
    conflict and crash shapes again with WAL group commit and link
    batching on (conflict+gcb, crash+gcb). *)

val find_scenario : string -> scenario option

val make_sys : scenario -> unit -> Explore.sys
(** Build a fresh cluster harness for one execution of [scenario]; the
    t = 0 heartbeat burst is drained so exploration starts settled. *)

val opts_of : scenario -> sleep:bool -> Explore.opts
(** Explorer options for a scenario: state dedup on, one timeout
    injection per schedule (CHESS-style bounded), infra timers held
    pending until the leaf drain, wal-device completions eager. *)

type row = {
  rw_scenario : scenario;
  rw_sleep : Explore.result;
  rw_nosleep : Explore.result;
  rw_counterexamples : (int list * string list * (string * string) list) list;
      (** Minimized schedule, trace, violations. *)
  rw_violations : int;
      (** Every violation found; no expected-violation filter exists. *)
}

val run_scenario : scenario -> row
(** Explore with and without sleep sets, minimize up to three violating
    leaves, and count every violation. *)

val reduction_factor : row -> float * bool
(** Executions(no-sleep) / executions(sleep); the flag is [true] when the
    no-sleep run hit its execution budget (factor is a lower bound). *)

val render_report : Format.formatter -> row list -> int
(** Write the markdown report; returns the total violation count. *)

val run_matrix :
  ?filter:(scenario -> bool) -> ?budget:int -> Format.formatter -> int
(** Run (a filtered subset of) the default matrix, optionally clamping
    per-scenario execution budgets, render the report, and return the
    total number of violations. *)
