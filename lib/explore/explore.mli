(** Bounded exhaustive schedule exploration with partial-order reduction.

    The engine's state lives in mutable closures and cannot be
    snapshotted, so exploration is replay-based: each execution rebuilds
    the system from scratch ([make_sys]) and follows a recorded decision
    trail; backtracking truncates the trail at the deepest decision with
    an unexplored alternative and re-runs.  Decisions are (a) which
    pending event to fire next — message delivery or timer expiry, by
    engine label — and (b) crash/continue at crash-point announcements.
    Label [Internal] events (and deliveries the harness classifies as
    eager) are drained deterministically between decisions, forming
    atomic macro steps.

    Exploration prunes with canonical-state dedup (digests from the
    harness) and sleep sets over site-scope independence; see the
    implementation header for the soundness argument.  Schedules are
    plain [int list]s of chosen alternative indices and replay
    deterministically with {!follow}. *)

open Rt_sim

(** How the harness wants a pending delivery treated: [Eager] deliveries
    (e.g. heartbeats) are drained like internal events; [Choice d] makes
    the delivery an explorable decision, with [d] (a canonical payload
    rendering) folded into its identity key. *)
type delivery_class = Eager | Choice of string

(** The system under exploration, rebuilt fresh for every execution. *)
type sys = {
  ys_engine : Engine.t;
  ys_start : unit -> unit;
      (** Kick off the workload.  Runs after the explorer installs its
          crash hook, so crash points announced during submission are
          explorable decisions. *)
  ys_digest : unit -> string;
      (** Canonical fingerprint of the complete mutable state.  Must not
          depend on clocks, engine sequence numbers, or hash-table
          iteration order. *)
  ys_delivery_class : seq:int -> delivery_class;
  ys_crash_ok : site:int -> point:string -> bool;
      (** Whether a crash-point announcement is an explorable decision. *)
  ys_crash : site:int -> unit;
      (** Crash the site now and arrange its recovery (typically a
          labelled timer event, which exploration schedules freely). *)
  ys_drain : unit -> unit;
      (** Run the residue (budget-excluded timers, recovery) to
          quiescence in timestamp order before auditing. *)
  ys_audit : unit -> (string * string) list;
      (** Invariant check at a drained leaf: [(invariant, detail)]
          pairs, empty when clean. *)
}

type opts = {
  op_sleep : bool;  (** Sleep-set partial-order reduction. *)
  op_dedup : bool;  (** Canonical-state dedup cache. *)
  op_timer_budget : int;  (** Max fires per (site, timer name) per path. *)
  op_timer_total : int;
      (** Max explorable timer fires per path across all timers —
          bounded timeout injection in the CHESS preemption-bounding
          style: most timeout-interaction bugs need few untimely fires,
          and the bound keeps the space finite and small. *)
  op_timer_class : site:int -> name:string -> [ `Choice | `Pending | `Eager ];
      (** How a pending timer is scheduled.  [`Choice] timers are
          explorable decisions (timeouts racing deliveries).  [`Pending]
          timers stay pending until the leaf drain fires them in
          timestamp order — a scope bound for timeouts whose
          interleavings are out of the question being asked.  [`Eager]
          timers fire promptly inside the enclosing macro step (device
          completions whose only observable effect is message timing,
          which is explored directly). *)
  op_crash_budget : int;  (** Max crash injections per path. *)
  op_max_depth : int;  (** Decision-depth safety net. *)
  op_max_executions : int;  (** Execution budget; exceeding it marks the
                                result incomplete. *)
}

val default_opts : opts
(** Sleep and dedup on, timer budget 1, all timers [`Choice], no
    crashes, depth 300, 200k executions. *)

type stats = {
  mutable st_executions : int;
  mutable st_transitions : int;  (** Explicit choices fired. *)
  mutable st_states : int;  (** Distinct canonical states seen. *)
  mutable st_dedup_hits : int;
  mutable st_sleep_prunes : int;  (** Leaves cut because every eligible
                                      transition was asleep. *)
  mutable st_leaves : int;  (** Distinct quiescent leaves audited. *)
  mutable st_max_depth : int;
  mutable st_truncated : int;  (** Paths cut by the depth bound. *)
}

type leaf_report = {
  lf_schedule : int list;  (** Decision trail reaching the violation. *)
  lf_violations : (string * string) list;
}

type result = {
  r_stats : stats;
  r_complete : bool;
      (** Whole bounded space covered (no budget/depth truncation). *)
  r_violating : leaf_report list;
}

exception Divergence of string
(** A replayed trail stopped matching the execution — determinism was
    violated somewhere.  Always a bug; never expected in normal runs. *)

val explore : ?opts:opts -> (unit -> sys) -> result

type replay_out = {
  rp_trace : string list;  (** One line per decision taken. *)
  rp_violations : (string * string) list;
  rp_leaf : string;  (** ["quiescent"] or ["truncated"]. *)
  rp_state : string;
      (** The harness's raw digest text at the drained leaf — site dumps
          plus in-flight messages, for counterexample inspection. *)
}

val follow : ?opts:opts -> (unit -> sys) -> int list -> replay_out
(** Deterministically re-execute a schedule: the given indices first,
    then always alternative 0, with sleep/dedup off — the replay
    semantics counterexamples are exchanged in.  Drains and audits the
    reached leaf. *)

val minimize :
  ?opts:opts -> ?max_probes:int -> (unit -> sys) -> int list -> int list
(** Greedy counterexample shrinking under {!follow} semantics: shortest
    violating prefix, then lower each index.  Each probe is one full
    re-execution; capped at [max_probes] (default 300). *)
