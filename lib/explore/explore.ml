(* Bounded exhaustive schedule exploration.

   The engine's state lives in mutable closures, so executions cannot be
   snapshotted and restored.  Exploration is therefore replay-based: every
   execution starts from a freshly built system and follows a recorded
   *decision trail*; backtracking picks the deepest decision with an
   unexplored alternative, truncates the trail there, and re-runs.  The
   engine is deterministic given a trail (fixed seed, labelled events), so
   replays are exact.

   A *decision* is either the choice of which pending event to fire next
   (message delivery or timer expiry) or a binary crash/continue choice at
   a crash-point announcement.  Between decisions, purely local events
   (label [Internal], plus deliveries the harness classifies as eager,
   e.g. heartbeats) are drained in deterministic order: a chosen event and
   the local cascade it triggers form one atomic macro step.  This is a
   deliberate coarsening — the real engine could interleave a concurrent
   delivery between a step and its zero-delay local continuation — traded
   for a tractable branching factor.

   Two reductions prune the tree:

   - {b State dedup}: at every decision point the harness digest of the
     global state is looked up in a cache.  The cache stores, per digest,
     the sleep sets under which the state was already expanded; the
     current node is pruned when some recorded sleep set is a subset of
     the current one (fewer sleeping transitions = more behaviours were
     explored from the recorded visit).  Digests are canonical — sorted
     renderings of every hash table, no clocks, no sequence numbers — so
     two paths reaching the same abstract state collide.

   - {b Sleep sets} (the classical partial-order reduction): after
     exploring alternative [a] at a node, [a] is added to the sleep set
     of the later siblings' subtrees and stays asleep until a dependent
     step fires.  Two steps are independent when their site scopes are
     disjoint; the scope of a macro step is the union of the chosen
     event's scope and the scopes of the internals it drained (scope -1
     is global and conflicts with everything).  Sleeping transitions are
     identified by canonical keys (label + payload + FIFO occurrence
     index), not engine sequence numbers, so they survive replay and can
     be compared across paths by the dedup cache.

   Timers are budgeted per (site, name) per path: exploration fires each
   at most [op_timer_budget] times, leaving the rest to the deterministic
   drain that precedes the leaf audit.  The drain runs the residue in
   timestamp order — exact for the explored phase, a closure heuristic
   beyond it. *)

open Rt_sim
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* --- the system under exploration ------------------------------------ *)

type delivery_class = Eager | Choice of string

type sys = {
  ys_engine : Engine.t;
  ys_start : unit -> unit;
  ys_digest : unit -> string;
  ys_delivery_class : seq:int -> delivery_class;
  ys_crash_ok : site:int -> point:string -> bool;
  ys_crash : site:int -> unit;
  ys_drain : unit -> unit;
  ys_audit : unit -> (string * string) list;
}

type opts = {
  op_sleep : bool;
  op_dedup : bool;
  op_timer_budget : int;
  op_timer_total : int;
  op_timer_class : site:int -> name:string -> [ `Choice | `Pending | `Eager ];
  op_crash_budget : int;
  op_max_depth : int;
  op_max_executions : int;
}

let default_opts =
  {
    op_sleep = true;
    op_dedup = true;
    op_timer_budget = 1;
    op_timer_total = max_int;
    op_timer_class = (fun ~site:_ ~name:_ -> `Choice);
    op_crash_budget = 0;
    op_max_depth = 300;
    op_max_executions = 200_000;
  }

(* --- decision-tree nodes ---------------------------------------------- *)

type alt = {
  a_seq : int;
  a_key : string;
  a_scope : int list;
  a_timer : (int * string) option;  (* (site, name) for timer budget *)
}

type node = {
  n_kind : [ `Event | `Crash ];
  n_alts : alt array;
  n_sleep : int list SMap.t;  (* sleep set when the node was first entered *)
  mutable n_explored : int list;
  mutable n_chosen : int;
}

type stats = {
  mutable st_executions : int;
  mutable st_transitions : int;
  mutable st_states : int;
  mutable st_dedup_hits : int;
  mutable st_sleep_prunes : int;
  mutable st_leaves : int;
  mutable st_max_depth : int;
  mutable st_truncated : int;
}

type leaf_report = {
  lf_schedule : int list;
  lf_violations : (string * string) list;
}

type result = {
  r_stats : stats;
  r_complete : bool;
  r_violating : leaf_report list;
}

exception Divergence of string

(* --- per-run state ----------------------------------------------------- *)

type mode =
  | Explore of node array  (* forced prefix from the DFS stack *)
  | Follow of int array  (* forced indices; beyond them, always alternative 0 *)

type rstate = {
  rs_sys : sys;
  rs_opts : opts;
  rs_mode : mode;
  mutable rs_pos : int;
  mutable rs_new : node list;  (* fresh nodes, deepest first *)
  mutable rs_sched : int list;  (* chosen indices, deepest first *)
  mutable rs_trace : string list;  (* human log, deepest first *)
  mutable rs_sleep : int list SMap.t;
  mutable rs_crashes : int;
  rs_timer_counts : (string, int) Hashtbl.t;
  mutable rs_exploring : bool;
}

let indep sc1 sc2 =
  (not (List.mem (-1) sc1))
  && (not (List.mem (-1) sc2))
  && List.for_all (fun s -> not (List.mem s sc2)) sc1

(* Fire every pending eager event — internals, harness-classified eager
   deliveries, and timers classed [`Eager] (prompt completions such as
   the WAL device) — in frontier order; returns the union of their
   scopes. *)
let drain_eager st =
  let scope = ref [] in
  let rec loop () =
    let front = Engine.frontier st.rs_sys.ys_engine in
    let pick =
      List.find_opt
        (fun (seq, _, lbl) ->
          match lbl with
          | Engine.Internal _ -> true
          | Engine.Delivery _ -> (
              match st.rs_sys.ys_delivery_class ~seq with
              | Eager -> true
              | Choice _ -> false)
          | Engine.Timer { site; name } ->
              st.rs_opts.op_timer_class ~site ~name = `Eager
          | Engine.Recurring _ -> false)
        front
    in
    match pick with
    | None -> !scope
    | Some (seq, _, lbl) ->
        (match lbl with
        | Engine.Internal s -> scope := s :: !scope
        | Engine.Delivery { dst; _ } -> scope := dst :: !scope
        | Engine.Timer { site; _ } -> scope := site :: !scope
        | _ -> ());
        ignore (Engine.fire st.rs_sys.ys_engine seq);
        loop ()
  in
  loop ()

let timer_key ~site ~name = Printf.sprintf "t%d:%s" site name

(* The digest of a decision point must determine the whole remaining
   subtree.  The harness digest covers the cluster state and in-flight
   messages; pending timer events and the per-path fire budgets already
   consumed shape the frontier just as much (a no-op timer fire changes
   nothing in the cluster but removes a choice), so they are folded in
   here.  Without them every stutter step collides with its parent and
   quiescent leaves become unreachable. *)
let state_digest st =
  let b = Buffer.create 512 in
  Buffer.add_string b (st.rs_sys.ys_digest ());
  Engine.frontier st.rs_sys.ys_engine
  |> List.filter_map (fun (_, _, lbl) ->
         match lbl with
         | Engine.Timer { site; name } -> Some (timer_key ~site ~name)
         | _ -> None)
  |> List.sort String.compare
  |> List.iter (fun k ->
         Buffer.add_string b k;
         Buffer.add_char b ';');
  Buffer.add_char b '|';
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) st.rs_timer_counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, n) -> Buffer.add_string b (Printf.sprintf "%s=%d;" k n));
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Pending events that are up for explicit choice, in frontier order.
   Canonical keys get a per-base occurrence suffix: identical messages on
   one FIFO link keep their relative sequence order along every path that
   leaves them pending, so the k-th occurrence is structurally the same
   event across sibling branches. *)
let eligible st =
  let front = Engine.frontier st.rs_sys.ys_engine in
  let occs = Hashtbl.create 8 in
  let occ base =
    let n = try Hashtbl.find occs base with Not_found -> 0 in
    Hashtbl.replace occs base (n + 1);
    n
  in
  let total_fired =
    (* rt_lint: allow deterministic-iteration -- commutative integer sum *)
    Hashtbl.fold (fun _ n acc -> n + acc) st.rs_timer_counts 0
  in
  List.filter_map
    (fun (seq, _, lbl) ->
      match lbl with
      | Engine.Internal _ | Engine.Recurring _ -> None
      | Engine.Timer { site; name } ->
          let base = timer_key ~site ~name in
          let fired =
            try Hashtbl.find st.rs_timer_counts base with Not_found -> 0
          in
          if
            fired >= st.rs_opts.op_timer_budget
            || total_fired >= st.rs_opts.op_timer_total
            || st.rs_opts.op_timer_class ~site ~name <> `Choice
          then None
          else
            Some
              {
                a_seq = seq;
                a_key = Printf.sprintf "%s#%d" base (occ base);
                a_scope = [ site ];
                a_timer = Some (site, name);
              }
      | Engine.Delivery { src; dst } -> (
          match st.rs_sys.ys_delivery_class ~seq with
          | Eager -> None
          | Choice desc ->
              let base = Printf.sprintf "d%d>%d:%s" src dst desc in
              Some
                {
                  a_seq = seq;
                  a_key = Printf.sprintf "%s#%d" base (occ base);
                  a_scope = [ dst ];
                  a_timer = None;
                }))
    front

let first_unexplored ~sleep_on nd =
  let n = Array.length nd.n_alts in
  let rec go i =
    if i >= n then None
    else if List.mem i nd.n_explored then go (i + 1)
    else if
      nd.n_kind = `Event && sleep_on && SMap.mem nd.n_alts.(i).a_key nd.n_sleep
    then go (i + 1)
    else Some i
  in
  go 0

(* Record a decision: forced while inside the trail prefix, fresh beyond
   it.  Returns the chosen alternative index. *)
let decide st ~kind ~(alts : alt array) =
  let idx = st.rs_pos in
  st.rs_pos <- idx + 1;
  let forced_len =
    match st.rs_mode with
    | Explore stack -> Array.length stack
    | Follow choices -> Array.length choices
  in
  let chosen =
    if idx < forced_len then
      match st.rs_mode with
      | Explore stack ->
          let nd = stack.(idx) in
          if nd.n_kind <> kind || Array.length nd.n_alts <> Array.length alts
          then
            raise
              (Divergence
                 (Printf.sprintf "decision %d: expected %d alternatives, got %d"
                    idx
                    (Array.length nd.n_alts)
                    (Array.length alts)));
          (* Thread the child sleep set from the stack's recorded data:
             explored siblings go to sleep for this subtree. *)
          nd.n_chosen
      | Follow choices ->
          let c = choices.(idx) in
          if c < 0 || c >= Array.length alts then
            raise
              (Divergence
                 (Printf.sprintf "decision %d: index %d out of %d [%s]" idx c
                    (Array.length alts)
                    (String.concat " "
                       (Array.to_list
                          (Array.map (fun a -> a.a_key) alts)))))
          else c
    else
      match st.rs_mode with
      | Follow _ -> 0
      | Explore _ ->
          let nd =
            {
              n_kind = kind;
              n_alts = alts;
              n_sleep = st.rs_sleep;
              n_explored = [];
              n_chosen = 0;
            }
          in
          (match first_unexplored ~sleep_on:st.rs_opts.op_sleep nd with
          | Some c -> nd.n_chosen <- c
          | None -> assert false (* caller checked non-sleeping exists *));
          st.rs_new <- nd :: st.rs_new;
          nd.n_chosen
  in
  st.rs_sched <- chosen :: st.rs_sched;
  chosen

(* Explored-sibling alternatives of the node governing decision [idx]
   (empty beyond the forced prefix: fresh nodes have no explored
   siblings yet). *)
let explored_siblings st idx =
  match st.rs_mode with
  | Follow _ -> []
  | Explore stack ->
      if idx < Array.length stack then
        let nd = stack.(idx) in
        List.map (fun i -> nd.n_alts.(i)) nd.n_explored
      else []

let update_sleep st ~siblings ~step_scope =
  if st.rs_opts.op_sleep then begin
    let base =
      List.fold_left
        (fun m (a : alt) -> SMap.add a.a_key a.a_scope m)
        st.rs_sleep siblings
    in
    st.rs_sleep <- SMap.filter (fun _ sc -> indep sc step_scope) base
  end

let on_crash_point st ~site ~point =
  if
    st.rs_exploring
    && st.rs_crashes < st.rs_opts.op_crash_budget
    && st.rs_sys.ys_crash_ok ~site ~point
  then begin
    let alts =
      [|
        {
          a_seq = -1;
          a_key = Printf.sprintf "stay:%d:%s" site point;
          a_scope = [];
          a_timer = None;
        };
        {
          a_seq = -1;
          a_key = Printf.sprintf "crash:%d:%s" site point;
          a_scope = [ site ];
          a_timer = None;
        };
      |]
    in
    let c = decide st ~kind:`Crash ~alts in
    if c = 1 then begin
      st.rs_crashes <- st.rs_crashes + 1;
      st.rs_trace <-
        Printf.sprintf "crash site %d at %s" site point :: st.rs_trace;
      st.rs_sys.ys_crash ~site
    end
  end

type leaf =
  | Quiescent
  | Pruned_dedup
  | Pruned_sleep
  | Truncated

(* One full execution.  [cache] maps digests to the sleep sets under
   which the state was already expanded (ignored in Follow mode). *)
let run_once ~cache ~stats ~opts ~mode sys =
  let st =
    {
      rs_sys = sys;
      rs_opts = opts;
      rs_mode = mode;
      rs_pos = 0;
      rs_new = [];
      rs_sched = [];
      rs_trace = [];
      rs_sleep = SMap.empty;
      rs_crashes = 0;
      rs_timer_counts = Hashtbl.create 16;
      rs_exploring = false;
    }
  in
  stats.st_executions <- stats.st_executions + 1;
  Engine.set_crash_hook sys.ys_engine
    (Some (fun ~site ~point -> on_crash_point st ~site ~point));
  st.rs_exploring <- true;
  sys.ys_start ();
  ignore (drain_eager st);
  let rec loop () =
    if st.rs_pos >= opts.op_max_depth then Truncated
    else
      let alts = eligible st in
      if alts = [] then Quiescent
      else begin
        let alts = Array.of_list alts in
        (* Dedup and sleep-blocking apply only to fresh exploration
           nodes; forced replays and Follow runs pass straight through. *)
        let fresh =
          match st.rs_mode with
          | Explore stack -> st.rs_pos >= Array.length stack
          | Follow _ -> false
        in
        let pruned =
          if not fresh then None
          else begin
            let cur_keys =
              SMap.fold (fun k _ s -> SSet.add k s) st.rs_sleep SSet.empty
            in
            let dedup_hit =
              opts.op_dedup
              &&
              let digest = state_digest st in
              match Hashtbl.find_opt cache digest with
              | Some entry ->
                  if List.exists (fun s -> SSet.subset s cur_keys) !entry
                  then true
                  else begin
                    entry :=
                      cur_keys
                      :: List.filter
                           (fun s -> not (SSet.subset cur_keys s))
                           !entry;
                    false
                  end
              | None ->
                  Hashtbl.replace cache digest (ref [ cur_keys ]);
                  stats.st_states <- stats.st_states + 1;
                  false
            in
            if dedup_hit then begin
              stats.st_dedup_hits <- stats.st_dedup_hits + 1;
              Some Pruned_dedup
            end
            else if
              opts.op_sleep
              && Array.for_all (fun a -> SSet.mem a.a_key cur_keys) alts
            then begin
              stats.st_sleep_prunes <- stats.st_sleep_prunes + 1;
              Some Pruned_sleep
            end
            else None
          end
        in
        match pruned with
        | Some p -> p
        | None ->
            let idx = st.rs_pos in
            let c = decide st ~kind:`Event ~alts in
            let chosen = alts.(c) in
            st.rs_trace <-
              Printf.sprintf "fire %s (alt %d/%d)" chosen.a_key c
                (Array.length alts)
              :: st.rs_trace;
            stats.st_transitions <- stats.st_transitions + 1;
            (* Count the timer fire before executing it so eligibility
               stays consistent if the thunk schedules a same-name timer. *)
            (match chosen.a_timer with
            | Some (site, name) ->
                let bk = timer_key ~site ~name in
                let n =
                  try Hashtbl.find st.rs_timer_counts bk with Not_found -> 0
                in
                Hashtbl.replace st.rs_timer_counts bk (n + 1)
            | None -> ());
            if not (Engine.fire sys.ys_engine chosen.a_seq) then
              raise (Divergence "chosen event vanished");
            let dscope = drain_eager st in
            update_sleep st
              ~siblings:(explored_siblings st idx)
              ~step_scope:(chosen.a_scope @ dscope);
            loop ()
      end
  in
  let leaf = loop () in
  st.rs_exploring <- false;
  if st.rs_pos > stats.st_max_depth then stats.st_max_depth <- st.rs_pos;
  (st, leaf)

(* --- the DFS controller ------------------------------------------------ *)

let zero_stats () =
  {
    st_executions = 0;
    st_transitions = 0;
    st_states = 0;
    st_dedup_hits = 0;
    st_sleep_prunes = 0;
    st_leaves = 0;
    st_max_depth = 0;
    st_truncated = 0;
  }

(* Audit a quiescent leaf: run the residue (budget-excluded timers,
   recovery events) in timestamp order, then ask the harness for
   violations.  Duplicate leaf states audit once. *)
let audit_leaf ~leaf_seen ~stats st =
  let digest = state_digest st in
  if st.rs_opts.op_dedup && Hashtbl.mem leaf_seen digest then begin
    stats.st_dedup_hits <- stats.st_dedup_hits + 1;
    None
  end
  else begin
    Hashtbl.replace leaf_seen digest ();
    stats.st_leaves <- stats.st_leaves + 1;
    st.rs_sys.ys_drain ();
    match st.rs_sys.ys_audit () with
    | [] -> None
    | vs ->
        Some { lf_schedule = List.rev st.rs_sched; lf_violations = vs }
  end

let explore ?(opts = default_opts) make_sys =
  let cache : (string, SSet.t list ref) Hashtbl.t = Hashtbl.create 4096 in
  let leaf_seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let stats = zero_stats () in
  let violating = ref [] in
  let stack : node list ref = ref [] in  (* deepest node first *)
  let complete = ref true in
  let running = ref true in
  while !running do
    if stats.st_executions >= opts.op_max_executions then begin
      complete := false;
      running := false
    end
    else begin
      let forced = Array.of_list (List.rev !stack) in
      let sys = make_sys () in
      let st, leaf = run_once ~cache ~stats ~opts ~mode:(Explore forced) sys in
      stack := st.rs_new @ !stack;
      (match leaf with
      | Quiescent -> (
          match audit_leaf ~leaf_seen ~stats st with
          | Some lr -> violating := lr :: !violating
          | None -> ())
      | Truncated ->
          stats.st_truncated <- stats.st_truncated + 1;
          complete := false
      | Pruned_dedup | Pruned_sleep -> ());
      (* Backtrack: deepest node with an unexplored, non-sleeping
         alternative continues; exhausted nodes pop. *)
      let rec backtrack () =
        match !stack with
        | [] -> running := false
        | nd :: rest -> (
            nd.n_explored <- nd.n_chosen :: nd.n_explored;
            match first_unexplored ~sleep_on:opts.op_sleep nd with
            | Some c -> nd.n_chosen <- c
            | None ->
                stack := rest;
                backtrack ())
      in
      backtrack ()
    end
  done;
  {
    r_stats = stats;
    r_complete = !complete;
    r_violating = List.rev !violating;
  }

(* --- replay ------------------------------------------------------------ *)

type replay_out = {
  rp_trace : string list;
  rp_violations : (string * string) list;
  rp_leaf : string;  (* "quiescent" | "truncated" *)
  rp_state : string;  (* raw harness digest text at the drained leaf *)
}

(* Deterministically re-execute a schedule: forced indices first, then
   always alternative 0 (no sleep filtering, no dedup) to quiescence,
   drain, audit.  This is the exchange format for counterexamples: the
   int list fully determines the run. *)
let follow ?(opts = default_opts) make_sys (choices : int list) =
  let opts = { opts with op_sleep = false; op_dedup = false } in
  let cache = Hashtbl.create 1 in
  let stats = zero_stats () in
  let sys = make_sys () in
  let st, leaf =
    run_once ~cache ~stats ~opts ~mode:(Follow (Array.of_list choices)) sys
  in
  let violations =
    match leaf with
    | Quiescent ->
        st.rs_sys.ys_drain ();
        st.rs_sys.ys_audit ()
    | _ -> []
  in
  {
    rp_trace = List.rev st.rs_trace;
    rp_violations = violations;
    rp_leaf = (match leaf with Quiescent -> "quiescent" | _ -> "truncated");
    rp_state = st.rs_sys.ys_digest ();
  }

(* --- counterexample minimization --------------------------------------- *)

(* Greedy shrink under replay semantics: shortest violating prefix first
   (the suffix re-grows as default-0 choices), then lower each index as
   far as it will go.  Every candidate costs one full re-execution, so
   the probe budget is capped. *)
let minimize ?(opts = default_opts) ?(max_probes = 300) make_sys schedule =
  let probes = ref 0 in
  let viol cs =
    if !probes >= max_probes then false
    else begin
      incr probes;
      (* A mutated prefix can change downstream arity, making a recorded
         index out of range; such probes are simply non-violating. *)
      match (follow ~opts make_sys cs).rp_violations with
      | [] -> false
      | _ :: _ -> true
      | exception Divergence _ -> false
    end
  in
  if not (viol schedule) then schedule  (* not reproducible: keep as-is *)
  else begin
    let best = ref schedule in
    (let n = List.length schedule in
     try
       for k = 0 to n - 1 do
         let prefix = List.filteri (fun i _ -> i < k) schedule in
         if viol prefix then begin
           best := prefix;
           raise Exit
         end
       done
     with Exit -> ());
    let arr = Array.of_list !best in
    for i = 0 to Array.length arr - 1 do
      let orig = arr.(i) in
      (try
         for v = 0 to orig - 1 do
           arr.(i) <- v;
           if viol (Array.to_list arr) then raise Exit
         done;
         arr.(i) <- orig
       with Exit -> ())
    done;
    (* Drop trailing zeros: replay extends with 0s anyway. *)
    let l = ref (Array.to_list arr) in
    let rec strip xs =
      match List.rev xs with 0 :: r -> strip (List.rev r) | _ -> xs
    in
    l := strip !l;
    if viol !l then !l else Array.to_list arr
  end
