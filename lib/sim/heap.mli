(** Imperative binary min-heap, used as the simulator's event queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Folds over every element in storage order (not sorted).  Only suited
    to order-insensitive accumulation such as counting. *)

val clear : 'a t -> unit
