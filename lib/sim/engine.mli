(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.  Events
    scheduled for the same instant fire in scheduling order, which makes runs
    deterministic.  All components of the simulated system (network, storage
    devices, failure injectors, clients) interact only by scheduling events
    here. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

(** {2 Event labels}

    Every event carries a label describing what firing it means, so a
    schedule explorer can enumerate the pending frontier and decide which
    admissible event to fire next instead of following timestamp order.
    Labels are free for normal runs — {!run} and {!step} ignore them.

    - [Internal site]: a glue step (zero-delay continuation, local
      loopback, device completion plumbing) that is not an independent
      scheduling choice; [-1] means "no owning site".  The default.
    - [Delivery]: a network message arrival at [dst].
    - [Timer]: a one-shot timeout whose early/late firing is a real
      protocol schedule (resend, vote-collect, lock-wait, recovery).
    - [Recurring]: a self-re-arming background activity (heartbeats);
      explorers skip these or the frontier never drains. *)
type label =
  | Internal of int
  | Delivery of { src : int; dst : int }
  | Timer of { site : int; name : string }
  | Recurring of { site : int; name : string }

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes an engine whose root RNG is seeded with [seed]
    (default 0). *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root RNG.  Components should [Rng.split] it at setup time
    rather than drawing from it during the run. *)

val schedule_at : ?label:label -> t -> Time.t -> (unit -> unit) -> event_id
(** [schedule_at t when_ f] runs [f] at virtual time [when_].  If [when_] is
    in the past, the event fires at the current time.  [label] defaults to
    [Internal (-1)]. *)

val schedule_after : ?label:label -> t -> Time.t -> (unit -> unit) -> event_id
(** [schedule_after t delay f] runs [f] [delay] after the current time. *)

val event_seq : event_id -> int
(** The event's scheduling sequence number — unique per engine, assigned
    at scheduling time, and therefore stable across replays that share
    the same execution prefix.  Explorers use it as the event's identity. *)

val event_label : event_id -> label

val frontier : t -> (int * Time.t * label) list
(** Live (non-cancelled) pending events as [(seq, fire_at, label)],
    sorted by [(fire_at, seq)] — the order {!run} would fire them in. *)

val fire : t -> int -> bool
(** [fire t seq] executes the pending event with the given sequence
    number {e now}, regardless of its timestamp: the clock advances to
    [max now fire_at] and the thunk runs.  This is the explorer's
    primitive for realising one admissible reordering of the frontier.
    Returns [false] (and fires nothing) if no live event has that seq. *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    drained). *)

val live_pending : t -> int
(** Number of queued events that are not cancelled — the quiescence/timer
    audit used by the crash-point sweep: a component that keeps re-arming
    a timer after its work is done shows up as a live event that never
    drains. *)

(** {2 Crash points}

    Instrumented components (the WAL, the protocol interpreters) announce
    named execution points through the engine; a fault-injection harness
    installs a hook to record them or to crash a site at an exact
    occurrence.  With no hook installed the announcements are free. *)

type crash_hook = site:int -> point:string -> unit

val set_crash_hook : t -> crash_hook option -> unit
(** Install (or with [None] remove) the global crash-point hook.  The hook
    may synchronously crash the announcing site; announcing components
    must re-check their own liveness when [crash_point] returns. *)

val crash_hook_installed : t -> bool
(** Cheap guard so hot paths can skip building point names. *)

val crash_point : t -> site:int -> point:string -> unit
(** Announce that [site] reached the named point.  No-op without a hook. *)

val processed : t -> int
(** Number of events executed so far. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Execute events in time order until the queue is empty, the clock would
    pass [until], or [max_events] have been executed.  Events scheduled
    exactly at [until] do fire. *)

val step : t -> bool
(** Execute the single next event.  Returns [false] if the queue was
    empty. *)
