(* Deterministic traversal of hash tables.

   Stdlib Hashtbl iteration order is bucket order — a function of
   insertion history and table size, not of the keys — so any output,
   log, or callback sequence built from Hashtbl.iter/fold is only
   accidentally reproducible.  These helpers pay one sort per traversal
   to make the order a function of the keys alone, which is what replay
   determinism (and rt_lint's deterministic-iteration rule) requires. *)

let sorted_bindings ~cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let sorted_keys ~cmp tbl = List.map fst (sorted_bindings ~cmp tbl)

let iter_sorted ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp tbl)
