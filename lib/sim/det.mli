(** Deterministic traversal of hash tables.

    Hashtbl visits buckets in layout order, which depends on insertion
    history — not a stable order anything downstream may rely on.  Every
    traversal whose effects or results are order-sensitive must go
    through these helpers (or sort its own result); the
    [deterministic-iteration] lint enforces this. *)

val sorted_bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key with [cmp]. *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val iter_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~cmp f tbl] applies [f] to each binding in ascending
    key order. *)

val fold_sorted :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
