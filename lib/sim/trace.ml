let src = Logs.Src.create "rt.sim" ~doc:"Replicated-transaction simulator"

module Log = (val Logs.src_log src : Logs.LOG)

(* rt_lint: allow no-toplevel-mutable-state -- process-wide logging toggle; affects diagnostics only, never simulation behaviour *)
let flag = ref false
let enabled () = !flag
let set_enabled b = flag := b

let event engine msg =
  if !flag then
    Log.debug (fun m -> m "[%a] %s" Time.pp (Engine.now engine) (msg ()))
