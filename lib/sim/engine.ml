type label =
  | Internal of int
  | Delivery of { src : int; dst : int }
  | Timer of { site : int; name : string }
  | Recurring of { site : int; name : string }

type event = {
  fire_at : Time.t;
  seq : int;
  label : label;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

type crash_hook = site:int -> point:string -> unit

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable n_processed : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable crash_hook : crash_hook option;
}

let compare_event a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 0) () =
  {
    clock = Time.zero;
    next_seq = 0;
    n_processed = 0;
    queue = Heap.create ~cmp:compare_event;
    root_rng = Rng.create ~seed;
    crash_hook = None;
  }

let now t = t.clock
let rng t = t.root_rng

let set_crash_hook t hook = t.crash_hook <- hook
let crash_hook_installed t = t.crash_hook <> None

let crash_point t ~site ~point =
  match t.crash_hook with None -> () | Some f -> f ~site ~point

let schedule_at ?(label = Internal (-1)) t when_ thunk =
  let fire_at = Time.max when_ t.clock in
  let ev = { fire_at; seq = t.next_seq; label; thunk; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule_after ?label t delay thunk =
  schedule_at ?label t (Time.add t.clock delay) thunk

let cancel _t ev = ev.cancelled <- true
let pending t = Heap.length t.queue

let event_seq (ev : event_id) = ev.seq
let event_label (ev : event_id) = ev.label

let frontier t =
  Heap.fold
    (fun acc ev ->
      if ev.cancelled then acc else (ev.seq, ev.fire_at, ev.label) :: acc)
    [] t.queue
  |> List.sort (fun (s1, t1, _) (s2, t2, _) ->
         let c = Time.compare t1 t2 in
         if c <> 0 then c else Int.compare s1 s2)

let fire t seq =
  (* Remove the event with the given seq from the heap (heap order does
     not support keyed removal, so drain-and-refill), then run it as if
     it were next: the clock only ever moves forward, so firing an event
     "early" models the permitted asynchrony — other pending events will
     simply fire late. *)
  let rec drain acc =
    match Heap.pop t.queue with
    | None -> (None, acc)
    | Some ev when ev.seq = seq -> (Some ev, acc)
    | Some ev -> drain (ev :: acc)
  in
  let found, rest = drain [] in
  List.iter (Heap.push t.queue) rest;
  match found with
  | None -> false
  | Some ev when ev.cancelled -> false
  | Some ev ->
      t.clock <- Time.max t.clock ev.fire_at;
      t.n_processed <- t.n_processed + 1;
      ev.thunk ();
      true

let live_pending t =
  Heap.fold (fun acc ev -> if ev.cancelled then acc else acc + 1) 0 t.queue

let processed t = t.n_processed

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.fire_at;
      if not ev.cancelled then begin
        t.n_processed <- t.n_processed + 1;
        ev.thunk ()
      end;
      true

let run ?until ?max_events t =
  let budget = ref (Option.value max_events ~default:max_int) in
  let continue () =
    !budget > 0
    &&
    match Heap.peek t.queue with
    | None -> false
    | Some ev -> (
        match until with
        | None -> true
        | Some horizon -> Time.(ev.fire_at <= horizon))
  in
  let same_instant = ref 0 in
  let last_instant = ref (-1) in
  while continue () do
    (match Heap.pop t.queue with
    | None -> ()
    | Some ev ->
        t.clock <- ev.fire_at;
        if ev.fire_at = !last_instant then begin
          incr same_instant;
          if !same_instant > 5_000_000 then
            failwith
              "Engine.run: millions of events at a single instant — some \
               component is rescheduling itself with zero delay"
        end
        else begin
          last_instant := ev.fire_at;
          same_instant := 0
        end;
        if not ev.cancelled then begin
          t.n_processed <- t.n_processed + 1;
          decr budget;
          ev.thunk ()
        end);
  done;
  (* If we stopped because of the horizon, advance the clock to it so that
     subsequent scheduling is relative to the end of the window. *)
  match until with
  | Some horizon when Time.(t.clock < horizon) -> (
      match Heap.peek t.queue with
      | Some ev when Time.(ev.fire_at <= horizon) -> ()
      | _ -> t.clock <- horizon)
  | _ -> ()
