(** Wait-for graphs and cycle detection for deadlock handling.

    Nodes are transactions; an edge [a -> b] means [a] waits for a lock
    held (or requested ahead) by [b].  Detection is a depth-first search
    that returns the first cycle found; determinism comes from visiting
    nodes in transaction order. *)

open Rt_types

type t

val create : unit -> t

val add_edge : t -> Ids.Txn_id.t -> Ids.Txn_id.t -> unit
(** Self-edges are ignored. *)

val of_edges : (Ids.Txn_id.t * Ids.Txn_id.t) list -> t

val edges : t -> (Ids.Txn_id.t * Ids.Txn_id.t) list
(** Sorted, deduplicated. *)

val dump : t -> string
(** Canonical rendering of the edge set (sorted), for state
    fingerprints. *)

val find_cycle : t -> Ids.Txn_id.t list option
(** Some cycle (each node waits for the next, last waits for first), or
    [None] if the graph is acyclic. *)

val victim : ?policy:[ `Youngest | `Oldest ] -> Ids.Txn_id.t list -> Ids.Txn_id.t
(** Choose the transaction to abort from a non-empty cycle.  [`Youngest]
    (default) aborts the most recently started, which preserves the oldest
    transactions' progress. *)
