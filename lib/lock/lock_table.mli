(** Strict two-phase-locking lock manager.

    Shared/exclusive locks per key with FIFO waiting, lock upgrades, and
    deadlock detection over the induced wait-for graph.  Grants are
    synchronous when possible ([Granted] return) and otherwise delivered
    through the request's callback when a release unblocks it — the caller
    (the transaction scheduler) decides how to resume the transaction.

    Invariants maintained:
    - a key's holders are either one exclusive owner or any number of
      shared owners;
    - a waiting request is granted only when compatible with all current
      holders and no older queued request would be starved;
    - an upgrade (S→X by the sole shared holder) jumps the queue, since it
      can never be granted behind another request that conflicts with its
      held lock. *)

open Rt_types

type mode = Shared | Exclusive

val pp_mode : Format.formatter -> mode -> unit

type t

val create : unit -> t

type outcome =
  | Granted  (** The lock is held on return. *)
  | Waiting  (** Queued; the callback fires when granted. *)

val acquire :
  t -> txn:Ids.Txn_id.t -> key:string -> mode:mode -> on_grant:(unit -> unit) ->
  outcome
(** Re-acquiring a mode already held (or acquiring [Shared] while holding
    [Exclusive]) returns [Granted] without changing state. *)

val release_all : t -> txn:Ids.Txn_id.t -> unit
(** Drop every lock held by [txn], remove its queued requests, and grant
    whatever became grantable (callbacks fire synchronously, in queue
    order). *)

val holds : t -> txn:Ids.Txn_id.t -> key:string -> mode option
(** Strongest mode held. *)

val holders : t -> key:string -> (Ids.Txn_id.t * mode) list

val waiters : t -> key:string -> (Ids.Txn_id.t * mode) list
(** In queue order. *)

val is_waiting : t -> txn:Ids.Txn_id.t -> bool

val held_keys : t -> txn:Ids.Txn_id.t -> string list
(** Sorted. *)

val blocking : t -> txn:Ids.Txn_id.t -> Ids.Txn_id.t list
(** Transactions [txn] currently waits behind, across every key it has a
    queued request on: incompatible holders plus incompatible requests
    queued ahead.  Sorted, deduplicated.  Empty when not waiting. *)

val wait_for_graph : t -> Wfg.t
(** Edges from each waiter to every transaction it must out-wait: current
    incompatible holders plus incompatible requests queued ahead of it. *)

val detect_deadlock :
  ?policy:[ `Youngest | `Oldest ] -> t -> Ids.Txn_id.t option
(** Run cycle detection; return the chosen victim if a deadlock exists.
    The caller is responsible for aborting the victim (which must include
    [release_all]). *)

val locked_keys : t -> int
(** Number of keys with at least one holder or waiter (table size). *)

val dump :
  t ->
  (string * (Ids.Txn_id.t * mode) list * (Ids.Txn_id.t * mode) list) list
(** Every live entry as [(key, holders, waiting)], sorted by key
    (diagnostics: names the transactions behind {!locked_keys}). *)
