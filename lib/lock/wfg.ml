open Rt_types
module Tid = Ids.Txn_id

module Edge_set = Set.Make (struct
  type t = Tid.t * Tid.t

  let compare (a1, a2) (b1, b2) =
    let c = Tid.compare a1 b1 in
    if c <> 0 then c else Tid.compare a2 b2
end)

type t = { mutable set : Edge_set.t }

let create () = { set = Edge_set.empty }

let add_edge t a b =
  if not (Tid.equal a b) then t.set <- Edge_set.add (a, b) t.set

let of_edges list =
  let t = create () in
  List.iter (fun (a, b) -> add_edge t a b) list;
  t

let edges t = Edge_set.elements t.set

let dump t =
  Edge_set.elements t.set
  |> List.map (fun (a, b) ->
         Printf.sprintf "%s->%s;" (Tid.to_string a) (Tid.to_string b))
  |> String.concat ""

let successors t node =
  Edge_set.fold
    (fun (a, b) acc -> if Tid.equal a node then b :: acc else acc)
    t.set []
  |> List.sort Tid.compare

let nodes t =
  Edge_set.fold (fun (a, b) acc -> a :: b :: acc) t.set []
  |> List.sort_uniq Tid.compare

let find_cycle t =
  (* DFS with an explicit on-path set; the path lets us slice out the cycle
     when we hit a grey node. *)
  let module Tset = Set.Make (Tid) in
  let visited = ref Tset.empty in
  let exception Found of Tid.t list in
  let rec dfs path on_path node =
    if Tset.mem node on_path then begin
      (* Slice the cycle out of the path (path is reversed). *)
      let rec take acc = function
        | [] -> acc
        | x :: rest ->
            if Tid.equal x node then x :: acc else take (x :: acc) rest
      in
      raise (Found (take [] path))
    end
    else if not (Tset.mem node !visited) then begin
      let path = node :: path and on_path = Tset.add node on_path in
      List.iter (dfs path on_path) (successors t node);
      visited := Tset.add node !visited
    end
  in
  try
    List.iter (fun n -> dfs [] Tset.empty n) (nodes t);
    None
  with Found cycle -> Some cycle

let victim ?(policy = `Youngest) cycle =
  match cycle with
  | [] -> invalid_arg "Wfg.victim: empty cycle"
  | first :: rest ->
      let pick a b =
        match policy with
        | `Youngest -> if Tid.compare a b >= 0 then a else b
        | `Oldest -> if Tid.compare a b <= 0 then a else b
      in
      List.fold_left pick first rest
