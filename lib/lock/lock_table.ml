open Rt_types
module Tid = Ids.Txn_id

type mode = Shared | Exclusive

let pp_mode fmt = function
  | Shared -> Format.pp_print_string fmt "S"
  | Exclusive -> Format.pp_print_string fmt "X"

type request = {
  txn : Tid.t;
  mode : mode;
  upgrade : bool;  (* txn already holds Shared on this key *)
  on_grant : unit -> unit;
}

type entry = {
  mutable holders : (Tid.t * mode) list;
  mutable waiting : request list;  (* FIFO order: head is next candidate *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  held : string list ref Ids.Txn_map.t;  (* txn -> keys it holds *)
  waits : string list ref Ids.Txn_map.t;  (* txn -> keys it waits on *)
}

type outcome = Granted | Waiting

let create () =
  {
    table = Hashtbl.create 256;
    held = Ids.Txn_map.create 64;
    waits = Ids.Txn_map.create 64;
  }

let entry_for t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { holders = []; waiting = [] } in
      Hashtbl.add t.table key e;
      e

let index_add map txn key =
  match Ids.Txn_map.find_opt map txn with
  | Some r -> r := key :: !r
  | None -> Ids.Txn_map.replace map txn (ref [ key ])

(* Remove ONE occurrence only: a transaction can have several requests
   queued on the same key (duplicate network deliveries), and each keeps
   its own index entry.  Filtering every occurrence here would blind
   [release_all] to the survivors, which can then be spuriously granted
   to an already-dead transaction during its own release — a permanent
   lock leak. *)
let index_remove map txn key =
  match Ids.Txn_map.find_opt map txn with
  | Some r ->
      let rec drop_one = function
        | [] -> []
        | k :: rest -> if k = key then rest else k :: drop_one rest
      in
      r := drop_one !r;
      if !r = [] then Ids.Txn_map.remove map txn
  | None -> ()

(* A holder entry of the requester itself never conflicts: duplicate
   deliveries of the same operation must not queue behind (and time out
   on) their own first copy. *)
let compatible ~txn mode holders =
  match mode with
  | Shared ->
      List.for_all (fun (h, m) -> Tid.equal h txn || m = Shared) holders
  | Exclusive -> List.for_all (fun (h, _) -> Tid.equal h txn) holders

(* Can [r] be granted right now given [e]'s holders?  An upgrade is
   grantable when the requester is the only holder. *)
let grantable e r =
  if r.upgrade then
    match e.holders with [ (h, Shared) ] -> Tid.equal h r.txn | _ -> false
  else compatible ~txn:r.txn r.mode e.holders

let do_grant t key e r =
  if r.upgrade then e.holders <- [ (r.txn, Exclusive) ]
  else
    let mine, others =
      List.partition (fun (h, _) -> Tid.equal h r.txn) e.holders
    in
    match mine with
    | [] ->
        e.holders <- (r.txn, r.mode) :: others;
        index_add t.held r.txn key
    | _ ->
        (* Already a holder (duplicate delivery, or an S and an X request
           that were queued together): keep a single entry at the
           strongest mode and leave the held index alone — a second
           entry per (txn, key) would desync it. *)
        let strongest =
          if r.mode = Exclusive || List.exists (fun (_, m) -> m = Exclusive) mine
          then Exclusive
          else Shared
        in
        e.holders <- (r.txn, strongest) :: others

(* After holders change, grant a maximal compatible prefix of the queue.
   Returns the granted requests in order; callbacks are the caller's to
   fire (after state is consistent). *)
let promote t key e =
  let granted = ref [] in
  let rec go () =
    match e.waiting with
    | r :: rest when grantable e r ->
        e.waiting <- rest;
        index_remove t.waits r.txn key;
        do_grant t key e r;
        granted := r :: !granted;
        go ()
    | _ -> ()
  in
  go ();
  List.rev !granted

let fire granted = List.iter (fun r -> r.on_grant ()) granted

let holds t ~txn ~key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e -> (
      match List.filter (fun (h, _) -> Tid.equal h txn) e.holders with
      | [] -> None
      | held ->
          if List.exists (fun (_, m) -> m = Exclusive) held then Some Exclusive
          else Some Shared)

let acquire t ~txn ~key ~mode ~on_grant =
  let e = entry_for t key in
  match holds t ~txn ~key with
  | Some Exclusive -> Granted
  | Some Shared when mode = Shared -> Granted
  | Some Shared ->
      (* Upgrade request. *)
      let r = { txn; mode = Exclusive; upgrade = true; on_grant } in
      if grantable e r && e.waiting = [] then begin
        do_grant t key e r;
        Granted
      end
      else begin
        (* Upgrades go to the front: nothing behind the current holders can
           be granted before the upgrade anyway, and queue-jumping avoids
           an immediate deadlock with ordinary waiters. *)
        e.waiting <- r :: e.waiting;
        index_add t.waits txn key;
        Waiting
      end
  | None ->
      let r = { txn; mode; upgrade = false; on_grant } in
      if e.waiting = [] && grantable e r then begin
        do_grant t key e r;
        Granted
      end
      else begin
        e.waiting <- e.waiting @ [ r ];
        index_add t.waits txn key;
        Waiting
      end

let release_all t ~txn =
  (* Remove queued requests first so they cannot be spuriously granted.
     Dropping a queued request can itself unblock compatible waiters that
     were queued behind it (e.g. readers behind a cancelled writer), so
     these keys must be re-promoted too. *)
  let waited_keys =
    match Ids.Txn_map.find_opt t.waits txn with
    | None -> []
    | Some keys ->
        List.iter
          (fun key ->
            match Hashtbl.find_opt t.table key with
            | None -> ()
            | Some e ->
                e.waiting <-
                  List.filter (fun r -> not (Tid.equal r.txn txn)) e.waiting)
          !keys;
        Ids.Txn_map.remove t.waits txn;
        !keys
  in
  (* Then drop held locks and promote waiters. *)
  let held_keys =
    match Ids.Txn_map.find_opt t.held txn with
    | None -> []
    | Some keys ->
        Ids.Txn_map.remove t.held txn;
        !keys
  in
  let all_granted =
    List.concat_map
      (fun key ->
        match Hashtbl.find_opt t.table key with
        | None -> []
        | Some e ->
            e.holders <-
              List.filter (fun (h, _) -> not (Tid.equal h txn)) e.holders;
            let granted = promote t key e in
            if e.holders = [] && e.waiting = [] then Hashtbl.remove t.table key;
            granted)
      (List.sort_uniq String.compare (held_keys @ waited_keys))
  in
  fire all_granted

let holders t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some e -> List.rev e.holders

let waiters t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some e -> List.map (fun r -> (r.txn, r.mode)) e.waiting

let is_waiting t ~txn = Ids.Txn_map.mem t.waits txn

let held_keys t ~txn =
  match Ids.Txn_map.find_opt t.held txn with
  | None -> []
  | Some keys -> List.sort_uniq String.compare !keys

let conflicts a b =
  match (a, b) with Shared, Shared -> false | _ -> true

let blocking t ~txn =
  match Ids.Txn_map.find_opt t.waits txn with
  | None -> []
  | Some keys ->
      List.concat_map
        (fun key ->
          match Hashtbl.find_opt t.table key with
          | None -> []
          | Some e -> (
              (* Find txn's request and everything ahead of it. *)
              let rec split ahead = function
                | [] -> None
                | r :: rest ->
                    if Tid.equal r.txn txn then Some (r, ahead)
                    else split (r :: ahead) rest
              in
              match split [] e.waiting with
              | None -> []
              | Some (r, ahead) ->
                  let holders =
                    List.filter_map
                      (fun (h, m) ->
                        if (not (Tid.equal h txn)) && conflicts r.mode m then
                          Some h
                        else None)
                      e.holders
                  in
                  let queued =
                    List.filter_map
                      (fun r' ->
                        if conflicts r.mode r'.mode then Some r'.txn else None)
                      ahead
                  in
                  holders @ queued))
        (List.sort_uniq String.compare !keys)
      |> List.sort_uniq Tid.compare

let wait_for_graph t =
  let g = Wfg.create () in
  (* Sorted keys: edge insertion order feeds victim selection. *)
  Rt_sim.Det.iter_sorted ~cmp:String.compare
    (fun _key e ->
      let rec walk ahead = function
        | [] -> ()
        | r :: rest ->
            (* Wait on incompatible holders... *)
            List.iter
              (fun (h, m) ->
                if (not (Tid.equal h r.txn)) && conflicts r.mode m then
                  Wfg.add_edge g r.txn h)
              e.holders;
            (* ...and on incompatible requests queued ahead (FIFO). *)
            List.iter
              (fun r' ->
                if conflicts r.mode r'.mode then Wfg.add_edge g r.txn r'.txn)
              ahead;
            walk (r :: ahead) rest
      in
      walk [] e.waiting)
    t.table;
  g

let detect_deadlock ?policy t =
  match Wfg.find_cycle (wait_for_graph t) with
  | None -> None
  | Some cycle -> Some (Wfg.victim ?policy cycle)

let locked_keys t = Hashtbl.length t.table

let dump t =
  Hashtbl.fold
    (fun key e acc -> (key, List.rev e.holders, List.map (fun r -> (r.txn, r.mode)) e.waiting) :: acc)
    t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
