open Rt_sim

type node_id = int

type link = {
  latency : Latency.t;
  drop : float;
  duplicate : float;
  overhead : Time.t;
      (* Per-envelope egress cost: each transmission occupies the
         sender's egress port for this long before propagation begins,
         so a batched envelope pays it once for all its messages.
         [Time.zero] = infinite egress bandwidth (the legacy model). *)
}

let reliable_link ?(overhead = Time.zero) latency =
  if Time.(overhead < zero) then
    invalid_arg "Net.reliable_link: overhead must be non-negative";
  { latency; drop = 0.; duplicate = 0.; overhead }

module Stats = struct
  type t = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped_link : int;
    mutable dropped_partition : int;
    mutable duplicated : int;
    mutable envelopes : int;
  }

  let create () =
    {
      sent = 0;
      delivered = 0;
      dropped_link = 0;
      dropped_partition = 0;
      duplicated = 0;
      envelopes = 0;
    }

  let dropped t = t.dropped_link + t.dropped_partition
end

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  fifo : bool;
  batch : Time.t option;  (* flush window; None = one envelope per message *)
  default : link;
  (* Dense n×n fast paths: link overrides and the per-link FIFO floor are
     consulted on every send, so they index by (src, dst) directly
     instead of hashing a tuple. *)
  overrides : link option array array;
  handlers : (src:node_id -> 'msg -> unit) option array;
  part : Partition.t;
  (* Per-link virtual "last scheduled delivery" used to enforce FIFO.
     [Time.zero] means no delivery scheduled yet (arrival times are
     always >= now >= 0, so zero never raises the floor). *)
  last_delivery : Time.t array array;
  (* When each node's egress port is next free; envelopes serialize
     through it for their link's [overhead].  Stays at [Time.zero] (never
     a constraint) while every link has zero overhead. *)
  egress : Time.t array;
  (* Batched mode: messages queued (reversed) per link until the flush
     window fires. *)
  pending : 'msg list array array;
  pending_armed : bool array array;
  (* Scheduled-but-undelivered envelopes, keyed by the engine seq of their
     delivery event — the explorer's view of the wire.  Each envelope
     carries its messages in FIFO (send) order. *)
  in_flight : (int, node_id * node_id * 'msg list) Hashtbl.t;
  stats : Stats.t;
}

let create ?(fifo = true) ?batch ?seed_rng engine ~nodes ~default =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  (match batch with
  | Some w when Time.(w <= zero) ->
      invalid_arg "Net.create: batch window must be positive"
  | Some _ | None -> ());
  let rng =
    match seed_rng with Some r -> r | None -> Rng.split (Engine.rng engine)
  in
  {
    engine;
    rng;
    fifo;
    batch;
    default;
    overrides = Array.init nodes (fun _ -> Array.make nodes None);
    handlers = Array.make nodes None;
    part = Partition.create ~nodes;
    last_delivery = Array.init nodes (fun _ -> Array.make nodes Time.zero);
    egress = Array.make nodes Time.zero;
    pending = Array.init nodes (fun _ -> Array.make nodes []);
    pending_armed = Array.init nodes (fun _ -> Array.make nodes false);
    in_flight = Hashtbl.create 64;
    stats = Stats.create ();
  }

let nodes t = Array.length t.handlers
let engine t = t.engine
let partition t = t.part
let default_link t = t.default

let check_node t n =
  if n < 0 || n >= Array.length t.handlers then
    invalid_arg (Printf.sprintf "Net: node %d out of range" n)

let set_link t ~src ~dst link =
  check_node t src;
  check_node t dst;
  t.overrides.(src).(dst) <- Some link

let clear_link t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.overrides.(src).(dst) <- None

let clear_links t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) None) t.overrides

let link_for t ~src ~dst =
  match t.overrides.(src).(dst) with Some l -> l | None -> t.default

let link t ~src ~dst =
  check_node t src;
  check_node t dst;
  link_for t ~src ~dst

let register t n handler =
  check_node t n;
  t.handlers.(n) <- Some handler

let unregister t n =
  check_node t n;
  t.handlers.(n) <- None

let deliver t ~src ~dst ~seq msgs () =
  Hashtbl.remove t.in_flight seq;
  if Partition.reachable t.part ~src ~dst then
    (* Unpack in FIFO order, re-checking the handler per message: a
       handler that disappears mid-envelope loses the tail, exactly as
       it would have lost those messages as separate events. *)
    List.iter
      (fun m ->
        match t.handlers.(dst) with
        | Some handler ->
            t.stats.delivered <- t.stats.delivered + 1;
            handler ~src m
        | None ->
            (* No handler: the endpoint is effectively unreachable, not a
               link fault. *)
            t.stats.dropped_partition <- t.stats.dropped_partition + 1)
      msgs
  else
    t.stats.dropped_partition <-
      t.stats.dropped_partition + List.length msgs

let schedule_envelope t ~src ~dst msgs =
  let link = link_for t ~src ~dst in
  (* Serialize through the sender's egress port: the envelope departs
     once the port is free and occupies it for [overhead].  Duplicates
     are retransmissions and pay again; dropped envelopes never reach
     the port. *)
  let depart =
    Time.add (Time.max (Engine.now t.engine) t.egress.(src)) link.overhead
  in
  t.egress.(src) <- depart;
  let delay = Latency.sample link.latency t.rng in
  let arrive = Time.add depart delay in
  let arrive =
    if not t.fifo then arrive
    else begin
      let floor = Time.max arrive t.last_delivery.(src).(dst) in
      t.last_delivery.(src).(dst) <- floor;
      floor
    end
  in
  t.stats.envelopes <- t.stats.envelopes + 1;
  (* The delivery event needs its own engine seq (to deregister from the
     in-flight registry), which the engine only assigns at scheduling
     time — tie the knot with a cell. *)
  let seq = ref (-1) in
  let ev =
    Engine.schedule_at
      ~label:(Engine.Delivery { src; dst })
      t.engine arrive
      (fun () -> deliver t ~src ~dst ~seq:!seq msgs ())
  in
  seq := Engine.event_seq ev;
  Hashtbl.replace t.in_flight !seq (src, dst, msgs)

(* Put an envelope on the wire: one loss roll and one duplication roll
   for the whole envelope, so faults affect exactly its contents (the
   per-message tallies still count every message inside). *)
let transmit t ~src ~dst msgs =
  let n = List.length msgs in
  let link = link_for t ~src ~dst in
  if link.drop > 0. && Rng.bernoulli t.rng ~p:link.drop then
    t.stats.dropped_link <- t.stats.dropped_link + n
  else begin
    schedule_envelope t ~src ~dst msgs;
    if link.duplicate > 0. && Rng.bernoulli t.rng ~p:link.duplicate then begin
      t.stats.duplicated <- t.stats.duplicated + n;
      schedule_envelope t ~src ~dst msgs
    end
  end

let flush_link t ~src ~dst () =
  t.pending_armed.(src).(dst) <- false;
  match List.rev t.pending.(src).(dst) with
  | [] -> ()
  | msgs ->
      t.pending.(src).(dst) <- [];
      (* A partition that formed inside the window loses the whole
         envelope before it reaches the wire. *)
      if not (Partition.reachable t.part ~src ~dst) then
        t.stats.dropped_partition <-
          t.stats.dropped_partition + List.length msgs
      else transmit t ~src ~dst msgs

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  t.stats.sent <- t.stats.sent + 1;
  if not (Partition.reachable t.part ~src ~dst) then
    t.stats.dropped_partition <- t.stats.dropped_partition + 1
  else
    match t.batch with
    | None -> transmit t ~src ~dst [ msg ]
    | Some window ->
        t.pending.(src).(dst) <- msg :: t.pending.(src).(dst);
        if not t.pending_armed.(src).(dst) then begin
          t.pending_armed.(src).(dst) <- true;
          ignore
            (Engine.schedule_after
               ~label:(Engine.Timer { site = src; name = "net-flush" })
               t.engine window
               (flush_link t ~src ~dst))
        end

let broadcast t ~src msg =
  for dst = 0 to nodes t - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let in_flight t =
  Hashtbl.fold (fun seq (src, dst, msgs) acc -> (seq, src, dst, msgs) :: acc)
    t.in_flight []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)

let find_in_flight t ~seq = Hashtbl.find_opt t.in_flight seq

let pending t ~src ~dst =
  check_node t src;
  check_node t dst;
  List.rev t.pending.(src).(dst)

let stats t = t.stats

let dump t ~msg =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "sent=%d;del=%d;dl=%d;dp=%d;dup=%d;env=%d|" t.stats.sent
       t.stats.delivered t.stats.dropped_link t.stats.dropped_partition
       t.stats.duplicated t.stats.envelopes);
  List.iter
    (fun (_, src, dst, msgs) ->
      (* Send order, seq itself left out: engine seqs differ across
         explorer branches that reach the same abstract state. *)
      Buffer.add_string b
        (Printf.sprintf "%d>%d:%s;" src dst
           (String.concat "," (List.map msg msgs))))
    (in_flight t);
  (* Batched-but-unflushed messages are mutable state too: render them per
     link in send order. *)
  Array.iteri
    (fun src row ->
      Array.iteri
        (fun dst q ->
          match q with
          | [] -> ()
          | q ->
              Buffer.add_string b
                (Printf.sprintf "%d~%d:%s;" src dst
                   (String.concat "," (List.map msg (List.rev q)))))
        row)
    t.pending;
  Buffer.contents b

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.delivered <- 0;
  t.stats.dropped_link <- 0;
  t.stats.dropped_partition <- 0;
  t.stats.duplicated <- 0;
  t.stats.envelopes <- 0
