open Rt_sim

type node_id = int
type link = { latency : Latency.t; drop : float; duplicate : float }

let reliable_link latency = { latency; drop = 0.; duplicate = 0. }

module Stats = struct
  type t = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped_link : int;
    mutable dropped_partition : int;
    mutable duplicated : int;
  }

  let create () =
    {
      sent = 0;
      delivered = 0;
      dropped_link = 0;
      dropped_partition = 0;
      duplicated = 0;
    }

  let dropped t = t.dropped_link + t.dropped_partition
end

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  fifo : bool;
  default : link;
  overrides : (node_id * node_id, link) Hashtbl.t;
  handlers : (src:node_id -> 'msg -> unit) option array;
  part : Partition.t;
  (* Per-link virtual "last scheduled delivery" used to enforce FIFO. *)
  last_delivery : (node_id * node_id, Time.t) Hashtbl.t;
  (* Scheduled-but-undelivered messages, keyed by the engine seq of their
     delivery event — the explorer's view of the wire. *)
  in_flight : (int, node_id * node_id * 'msg) Hashtbl.t;
  stats : Stats.t;
}

let create ?(fifo = true) ?seed_rng engine ~nodes ~default =
  if nodes <= 0 then invalid_arg "Net.create: nodes must be positive";
  let rng =
    match seed_rng with Some r -> r | None -> Rng.split (Engine.rng engine)
  in
  {
    engine;
    rng;
    fifo;
    default;
    overrides = Hashtbl.create 16;
    handlers = Array.make nodes None;
    part = Partition.create ~nodes;
    last_delivery = Hashtbl.create 64;
    in_flight = Hashtbl.create 64;
    stats = Stats.create ();
  }

let nodes t = Array.length t.handlers
let engine t = t.engine
let partition t = t.part
let default_link t = t.default

let check_node t n =
  if n < 0 || n >= Array.length t.handlers then
    invalid_arg (Printf.sprintf "Net: node %d out of range" n)

let set_link t ~src ~dst link =
  check_node t src;
  check_node t dst;
  Hashtbl.replace t.overrides (src, dst) link

let clear_link t ~src ~dst =
  check_node t src;
  check_node t dst;
  Hashtbl.remove t.overrides (src, dst)

let clear_links t = Hashtbl.reset t.overrides

let link_for t ~src ~dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some l -> l
  | None -> t.default

let link t ~src ~dst =
  check_node t src;
  check_node t dst;
  link_for t ~src ~dst

let register t n handler =
  check_node t n;
  t.handlers.(n) <- Some handler

let unregister t n =
  check_node t n;
  t.handlers.(n) <- None

let deliver t ~src ~dst ~seq msg () =
  Hashtbl.remove t.in_flight seq;
  if Partition.reachable t.part ~src ~dst then
    match t.handlers.(dst) with
    | Some handler ->
        t.stats.delivered <- t.stats.delivered + 1;
        handler ~src msg
    | None ->
        (* No handler: the endpoint is effectively unreachable, not a
           link fault. *)
        t.stats.dropped_partition <- t.stats.dropped_partition + 1
  else t.stats.dropped_partition <- t.stats.dropped_partition + 1

let schedule_delivery t ~src ~dst msg =
  let link = link_for t ~src ~dst in
  let delay = Latency.sample link.latency t.rng in
  let arrive = Time.add (Engine.now t.engine) delay in
  let arrive =
    if not t.fifo then arrive
    else begin
      let key = (src, dst) in
      let floor =
        match Hashtbl.find_opt t.last_delivery key with
        | Some last -> Time.max arrive last
        | None -> arrive
      in
      Hashtbl.replace t.last_delivery key floor;
      floor
    end
  in
  (* The delivery event needs its own engine seq (to deregister from the
     in-flight registry), which the engine only assigns at scheduling
     time — tie the knot with a cell. *)
  let seq = ref (-1) in
  let ev =
    Engine.schedule_at
      ~label:(Engine.Delivery { src; dst })
      t.engine arrive
      (fun () -> deliver t ~src ~dst ~seq:!seq msg ())
  in
  seq := Engine.event_seq ev;
  Hashtbl.replace t.in_flight !seq (src, dst, msg)

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  t.stats.sent <- t.stats.sent + 1;
  if not (Partition.reachable t.part ~src ~dst) then
    t.stats.dropped_partition <- t.stats.dropped_partition + 1
  else begin
    let link = link_for t ~src ~dst in
    if link.drop > 0. && Rng.bernoulli t.rng ~p:link.drop then
      t.stats.dropped_link <- t.stats.dropped_link + 1
    else begin
      schedule_delivery t ~src ~dst msg;
      if link.duplicate > 0. && Rng.bernoulli t.rng ~p:link.duplicate then begin
        t.stats.duplicated <- t.stats.duplicated + 1;
        schedule_delivery t ~src ~dst msg
      end
    end
  end

let broadcast t ~src msg =
  for dst = 0 to nodes t - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let in_flight t =
  Hashtbl.fold (fun seq (src, dst, msg) acc -> (seq, src, dst, msg) :: acc)
    t.in_flight []
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Int.compare a b)

let find_in_flight t ~seq = Hashtbl.find_opt t.in_flight seq

let stats t = t.stats

let dump t ~msg =
  let b = Buffer.create 64 in
  Buffer.add_string b
    (Printf.sprintf "sent=%d;del=%d;dl=%d;dp=%d;dup=%d|" t.stats.sent
       t.stats.delivered t.stats.dropped_link t.stats.dropped_partition
       t.stats.duplicated);
  List.iter
    (fun (_, src, dst, m) ->
      (* Send order, seq itself left out: engine seqs differ across
         explorer branches that reach the same abstract state. *)
      Buffer.add_string b (Printf.sprintf "%d>%d:%s;" src dst (msg m)))
    (in_flight t);
  Buffer.contents b

let reset_stats t =
  t.stats.sent <- 0;
  t.stats.delivered <- 0;
  t.stats.dropped_link <- 0;
  t.stats.dropped_partition <- 0;
  t.stats.duplicated <- 0
