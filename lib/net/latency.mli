(** Message-latency models for simulated links. *)

open Rt_sim

type t =
  | Fixed of Time.t  (** Constant delay. *)
  | Uniform of Time.t * Time.t  (** Uniform in [lo, hi]. *)
  | Exponential of { min : Time.t; mean : Time.t }
      (** [min] plus an exponential with mean [mean - min]; the common model
          for datacenter/LAN round trips with a long tail. *)

val sample : t -> Rng.t -> Time.t

val mean : t -> Time.t
(** Expected value of the distribution, for analytic checks. *)

val scale : t -> factor:int -> t
(** Inflate every parameter of the distribution by an integer factor —
    the model of a gray (slow but live) link.  Raises [Invalid_argument]
    when [factor < 1]. *)

val pp : Format.formatter -> t -> unit
