(** Simulated message-passing network.

    Nodes are dense integer ids.  A message sent on a link is delivered to
    the destination's registered handler after a sampled latency, unless the
    link drops it or a partition separates the endpoints (checked both at
    send and at delivery time, so in-flight messages are lost when a
    partition forms).  Reachability is directional (see
    {!Partition.sever}), so one-way partitions lose exactly one
    direction's traffic.  Links may optionally be FIFO, in which case
    delivery order matches send order per (src, dst) pair — duplicated
    messages are delivered after their original without reordering later
    sends ahead of them.

    {b Batching.}  With a [batch] window, messages to the same destination
    within the window travel as one wire envelope: one latency sample and
    one loss/duplication roll cover the whole envelope, and delivery
    unpacks its contents in FIFO order.  Partition and sever faults apply
    to the envelope, so a lost envelope loses exactly its contents.
    Without a window (the default) every message is its own envelope and
    behaviour is identical to the classical per-message network. *)

open Rt_sim

type node_id = int

type link = {
  latency : Latency.t;
  drop : float;  (** Probability an envelope is silently lost. *)
  duplicate : float;  (** Probability an envelope is delivered twice. *)
  overhead : Time.t;
      (** Per-envelope egress cost: each transmission occupies the
          sender's egress port for this long before propagation begins,
          serializing with every other envelope that node sends (on any
          link).  A batched envelope pays it once for all its messages —
          this is the per-message overhead batching amortizes.
          [Time.zero] models infinite egress bandwidth (the legacy
          behaviour: delivery time is purely a latency sample). *)
}

val reliable_link : ?overhead:Time.t -> Latency.t -> link
(** A link with the given latency, no faults, and the given per-envelope
    egress overhead (default zero). *)

type 'msg t

val create :
  ?fifo:bool ->
  ?batch:Time.t ->
  ?seed_rng:Rng.t ->
  Engine.t ->
  nodes:int ->
  default:link ->
  'msg t
(** [create engine ~nodes ~default] builds a network of [nodes] nodes whose
    links all use [default].  [fifo] (default [true]) enforces per-link FIFO
    delivery.  [batch] (default off) enables per-link batching with the
    given flush window (must be positive); the flush event is labelled
    [Timer {site = src; name = "net-flush"}].  The RNG is split from the
    engine's root RNG unless [seed_rng] is given. *)

val nodes : 'msg t -> int

val engine : 'msg t -> Engine.t

val partition : 'msg t -> Partition.t
(** The network's partition state; mutate it to inject (possibly one-way)
    partitions. *)

val default_link : 'msg t -> link
(** The link every pair uses unless overridden with {!set_link}. *)

val link : 'msg t -> src:node_id -> dst:node_id -> link
(** The effective link for a pair: the override if set, else the default.
    Lets fault injectors transform the current link in place. *)

val set_link : 'msg t -> src:node_id -> dst:node_id -> link -> unit
(** Override the link used for messages from [src] to [dst]. *)

val clear_link : 'msg t -> src:node_id -> dst:node_id -> unit
(** Remove one pair's override so it reverts to the default link. *)

val clear_links : 'msg t -> unit
(** Remove every link override (fault-injection cleanup). *)

val register : 'msg t -> node_id -> (src:node_id -> 'msg -> unit) -> unit
(** Install the delivery handler for a node, replacing any previous one. *)

val unregister : 'msg t -> node_id -> unit

val send : 'msg t -> src:node_id -> dst:node_id -> 'msg -> unit
(** Fire-and-forget message send.  Sending to self is delivered after the
    link latency like any other message.  In batched mode the message
    joins the link's open window (arming the flush timer if none is
    open). *)

val broadcast : 'msg t -> src:node_id -> 'msg -> unit
(** Send to every node except [src]. *)

val in_flight : 'msg t -> (int * node_id * node_id * 'msg list) list
(** Envelopes scheduled for delivery but not yet delivered, as
    [(event_seq, src, dst, msgs)] sorted by send order ([event_seq]);
    each envelope lists its messages in FIFO order.  Delivery events are
    labelled [Engine.Delivery]; the seq here matches
    {!Rt_sim.Engine.frontier}, which is how the schedule explorer maps a
    frontier entry back to the envelope it would deliver.  Envelopes lost
    to a partition at delivery time still appear until their event
    fires. *)

val find_in_flight :
  'msg t -> seq:int -> (node_id * node_id * 'msg list) option
(** The in-flight envelope whose delivery event has the given seq. *)

val pending : 'msg t -> src:node_id -> dst:node_id -> 'msg list
(** Messages queued in the link's open batch window (send order), not yet
    on the wire.  Always empty without batching. *)

(** Exact tallies for experiment reporting.  All counts except
    [envelopes] are per {e message}: a dropped three-message envelope adds
    3 to its drop tally. *)
module Stats : sig
  type t = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped_link : int;  (** Lost to link drop faults. *)
    mutable dropped_partition : int;
        (** Lost to partitions / severed edges / missing handlers. *)
    mutable duplicated : int;
    mutable envelopes : int;
        (** Wire envelopes scheduled for delivery (duplicates included) —
            the network-event cost measure that batching amortizes. *)
  }

  val dropped : t -> int
  (** Total losses: [dropped_link + dropped_partition]. *)
end

val stats : 'msg t -> Stats.t

val reset_stats : 'msg t -> unit

val dump : 'msg t -> msg:('msg -> string) -> string
(** Canonical rendering of the network's mutable state — delivery
    tallies, in-flight envelopes in send order ([src>dst:...]), and
    batched-but-unflushed queues ([src~dst:...]) — for state
    fingerprints (engine seqs excluded). *)
