(** Simulated message-passing network.

    Nodes are dense integer ids.  A message sent on a link is delivered to
    the destination's registered handler after a sampled latency, unless the
    link drops it or a partition separates the endpoints (checked both at
    send and at delivery time, so in-flight messages are lost when a
    partition forms).  Reachability is directional (see
    {!Partition.sever}), so one-way partitions lose exactly one
    direction's traffic.  Links may optionally be FIFO, in which case
    delivery order matches send order per (src, dst) pair — duplicated
    messages are delivered after their original without reordering later
    sends ahead of them. *)

open Rt_sim

type node_id = int

type link = {
  latency : Latency.t;
  drop : float;  (** Probability a message is silently lost. *)
  duplicate : float;  (** Probability a message is delivered twice. *)
}

val reliable_link : Latency.t -> link
(** A link with the given latency and no faults. *)

type 'msg t

val create :
  ?fifo:bool -> ?seed_rng:Rng.t -> Engine.t -> nodes:int -> default:link -> 'msg t
(** [create engine ~nodes ~default] builds a network of [nodes] nodes whose
    links all use [default].  [fifo] (default [true]) enforces per-link FIFO
    delivery.  The RNG is split from the engine's root RNG unless
    [seed_rng] is given. *)

val nodes : 'msg t -> int

val engine : 'msg t -> Engine.t

val partition : 'msg t -> Partition.t
(** The network's partition state; mutate it to inject (possibly one-way)
    partitions. *)

val default_link : 'msg t -> link
(** The link every pair uses unless overridden with {!set_link}. *)

val link : 'msg t -> src:node_id -> dst:node_id -> link
(** The effective link for a pair: the override if set, else the default.
    Lets fault injectors transform the current link in place. *)

val set_link : 'msg t -> src:node_id -> dst:node_id -> link -> unit
(** Override the link used for messages from [src] to [dst]. *)

val clear_link : 'msg t -> src:node_id -> dst:node_id -> unit
(** Remove one pair's override so it reverts to the default link. *)

val clear_links : 'msg t -> unit
(** Remove every link override (fault-injection cleanup). *)

val register : 'msg t -> node_id -> (src:node_id -> 'msg -> unit) -> unit
(** Install the delivery handler for a node, replacing any previous one. *)

val unregister : 'msg t -> node_id -> unit

val send : 'msg t -> src:node_id -> dst:node_id -> 'msg -> unit
(** Fire-and-forget message send.  Sending to self is delivered after the
    link latency like any other message. *)

val broadcast : 'msg t -> src:node_id -> 'msg -> unit
(** Send to every node except [src]. *)

val in_flight : 'msg t -> (int * node_id * node_id * 'msg) list
(** Messages scheduled for delivery but not yet delivered, as
    [(event_seq, src, dst, msg)] sorted by send order ([event_seq]).
    Delivery events are labelled [Engine.Delivery]; the seq here matches
    {!Rt_sim.Engine.frontier}, which is how the schedule explorer maps a
    frontier entry back to the message it would deliver.  Messages lost
    to a partition at delivery time still appear until their event
    fires. *)

val find_in_flight : 'msg t -> seq:int -> (node_id * node_id * 'msg) option
(** The in-flight message whose delivery event has the given seq. *)

(** Exact tallies for experiment reporting. *)
module Stats : sig
  type t = {
    mutable sent : int;
    mutable delivered : int;
    mutable dropped_link : int;  (** Lost to link drop faults. *)
    mutable dropped_partition : int;
        (** Lost to partitions / severed edges / missing handlers. *)
    mutable duplicated : int;
  }

  val dropped : t -> int
  (** Total losses: [dropped_link + dropped_partition]. *)
end

val stats : 'msg t -> Stats.t

val reset_stats : 'msg t -> unit

val dump : 'msg t -> msg:('msg -> string) -> string
(** Canonical rendering of the network's mutable state — delivery
    tallies plus in-flight messages in send order (engine seqs
    excluded) — for state fingerprints. *)
