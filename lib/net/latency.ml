open Rt_sim

type t =
  | Fixed of Time.t
  | Uniform of Time.t * Time.t
  | Exponential of { min : Time.t; mean : Time.t }

let sample t rng =
  match t with
  | Fixed d -> d
  | Uniform (lo, hi) -> Rng.uniform_time rng ~lo ~hi
  | Exponential { min; mean } ->
      let tail = Time.sub mean min in
      let tail = if tail < 0 then 0 else tail in
      Time.add min (Rng.exponential_time rng ~mean:tail)

let mean = function
  | Fixed d -> d
  | Uniform (lo, hi) -> (lo + hi) / 2
  | Exponential { mean; _ } -> mean

let scale t ~factor =
  if factor < 1 then invalid_arg "Latency.scale: factor must be >= 1";
  match t with
  | Fixed d -> Fixed (d * factor)
  | Uniform (lo, hi) -> Uniform (lo * factor, hi * factor)
  | Exponential { min; mean } ->
      Exponential { min = min * factor; mean = mean * factor }

let pp fmt = function
  | Fixed d -> Format.fprintf fmt "fixed(%a)" Time.pp d
  | Uniform (lo, hi) -> Format.fprintf fmt "uniform(%a,%a)" Time.pp lo Time.pp hi
  | Exponential { min; mean } ->
      Format.fprintf fmt "exp(min=%a,mean=%a)" Time.pp min Time.pp mean
