(** Dynamic network partitions, including asymmetric (one-way) ones.

    A partition assigns every node to a component; messages are delivered
    only between nodes in the same component.  On top of that, individual
    {e directed} edges can be severed ({!sever}), which models one-way
    reachability failures (a router dropping one direction, asymmetric
    firewall rules): [src] can no longer reach [dst] while [dst]'s
    messages to [src] still flow.  The default state is fully
    connected. *)

type t

type node_id = int

val create : nodes:int -> t

val nodes : t -> int

val split : t -> node_id list list -> unit
(** [split t groups] places each listed group in its own component.  Nodes
    not mentioned keep component 0.  Raises [Invalid_argument] if a node id
    is out of range or listed twice. *)

val isolate : t -> node_id -> unit
(** Put one node alone in a fresh component. *)

val sever : t -> src:node_id -> dst:node_id -> unit
(** Cut the directed edge [src → dst]: messages from [src] to [dst] are
    lost, the reverse direction is untouched.  Severing an edge twice, or
    a self-edge, is a no-op. *)

val restore : t -> src:node_id -> dst:node_id -> unit
(** Undo {!sever} for one directed edge (no-op if not severed). *)

val heal : t -> unit
(** Restore full connectivity: components merge and every severed edge is
    restored. *)

val reachable : t -> src:node_id -> dst:node_id -> bool
(** Can a message from [src] currently reach [dst]?  Same component and
    the directed edge is not severed.  This is the check the network
    applies at send and delivery time. *)

val connected : t -> node_id -> node_id -> bool
(** Symmetric reachability: [reachable] in both directions. *)

val component_of : t -> node_id -> int

val is_split : t -> bool
(** Some pair of nodes cannot communicate (component split or at least
    one severed edge). *)
