type node_id = int

type t = {
  component : int array;
  (* rt_lint: allow fingerprint-coverage -- fault-injection topology set by the harness, constant along every explored branch *)
  mutable next_component : int;
  (* Directed severed edges (src, dst): src's messages to dst are lost
     even inside a component.  Symmetric partitions stay in the component
     array; this dense matrix only carries the asymmetric residue.
     [reachable] runs on every send AND delivery, so the check is two
     array indexes, no tuple hashing. *)
  severed : bool array array;
  (* rt_lint: allow fingerprint-coverage -- derived tally of true cells in
     [severed]; fault-injection topology set by the harness, constant
     along every explored branch *)
  mutable severed_count : int;
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Partition.create: nodes must be positive";
  {
    component = Array.make nodes 0;
    next_component = 1;
    severed = Array.init nodes (fun _ -> Array.make nodes false);
    severed_count = 0;
  }

let nodes t = Array.length t.component

let check_node t n =
  if n < 0 || n >= Array.length t.component then
    invalid_arg (Printf.sprintf "Partition: node %d out of range" n)

let split t groups =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun group ->
      let c = t.next_component in
      t.next_component <- t.next_component + 1;
      List.iter
        (fun n ->
          check_node t n;
          if Hashtbl.mem seen n then
            invalid_arg (Printf.sprintf "Partition.split: node %d listed twice" n);
          Hashtbl.add seen n ();
          t.component.(n) <- c)
        group)
    groups

let isolate t n =
  check_node t n;
  t.component.(n) <- t.next_component;
  t.next_component <- t.next_component + 1

let sever t ~src ~dst =
  check_node t src;
  check_node t dst;
  if src <> dst && not t.severed.(src).(dst) then begin
    t.severed.(src).(dst) <- true;
    t.severed_count <- t.severed_count + 1
  end

let restore t ~src ~dst =
  check_node t src;
  check_node t dst;
  if t.severed.(src).(dst) then begin
    t.severed.(src).(dst) <- false;
    t.severed_count <- t.severed_count - 1
  end

let heal t =
  Array.fill t.component 0 (Array.length t.component) 0;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) false) t.severed;
  t.severed_count <- 0

let reachable t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.component.(src) = t.component.(dst) && not t.severed.(src).(dst)

let connected t a b = reachable t ~src:a ~dst:b && reachable t ~src:b ~dst:a

let component_of t n =
  check_node t n;
  t.component.(n)

let is_split t =
  let c0 = t.component.(0) in
  Array.exists (fun c -> c <> c0) t.component || t.severed_count > 0
