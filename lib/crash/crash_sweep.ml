open Rt_sim
open Rt_core
module Two_pc = Rt_commit.Two_pc

type case = {
  cs_protocol : string;
  cs_n : int;
  cs_placement : string;  (* "full" or a sharded configuration name *)
  cs_site : int;
  cs_role : string;
  cs_point : string;
  cs_occurrence : int;
  cs_torn : int option;
      (* Some k: tear the in-flight device cycle so only k of its records
         survive the crash.  None: the classical atomic crash. *)
}

let pp_case fmt c =
  Format.fprintf fmt "%s n=%d %s %s(site %d) %s#%d%s" c.cs_protocol c.cs_n
    c.cs_placement c.cs_role c.cs_site c.cs_point c.cs_occurrence
    (match c.cs_torn with
    | None -> ""
    | Some k -> Printf.sprintf " torn=%d" k)

type violation = { v_case : case; v_invariant : string; v_detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%a] %s: %s" pp_case v.v_case v.v_invariant v.v_detail

type summary = {
  sm_protocol : string;
  sm_n : int;
  sm_placement : string;
  sm_points : int;  (* distinct (site, point) pairs targeted *)
  sm_cases : int;
  sm_violations : int;
}

type report = {
  rp_summaries : summary list;
  rp_violations : violation list;
  rp_cases : int;
}

let default_protocols =
  [
    ("2PC-PrN", Config.Two_phase Two_pc.Presumed_nothing);
    ("2PC-PrA", Config.Two_phase Two_pc.Presumed_abort);
    ("2PC-PrC", Config.Two_phase Two_pc.Presumed_commit);
    ("3PC", Config.Three_phase);
    ("QC", Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
    (* F = 1 keeps a 2F+1 = 3 acceptor group even at n = 5, so the larger
       sweep has genuine non-acceptor participants to crash. *)
    ("Paxos", Config.Paxos_commit { f = Some 1 });
  ]

let default_ns = [ 3; 5 ]

(* Two range shards split at "b" (workload key "a" → shard 0, "b" →
   shard 1), round-robin replica sets of 3: for n=5 that is shard 0 on
   {0,1,2} and shard 1 on {1,2,3} — the coordinator (site 0) replicates
   one shard, the targeted participant (site 1) both, and site 4
   nothing, so the sweep exercises cross-shard 2PC/3PC/QC, partial
   participant sets, and non-replica hygiene all at once. *)
let sharded_placement ~n =
  Rt_placement.Placement.create
    ~map:(Rt_placement.Shard_map.range ~boundaries:[ "b" ])
    ~sites:n
    ~degree:(min 3 (n - 1))
    ()

type placement_choice = Full | Sharded of Rt_placement.Placement.t | Skip

type sweep_config = {
  cf_name : string;
  cf_choose : int -> placement_choice;
  cf_tune : Config.t -> Config.t;
      (* Knob adjustments applied after the base config is built — lets a
         sweep variant turn on group commit or batching without a new
         placement. *)
  cf_torn : bool;
      (* Enumerate torn-write variants of every "wal:force-durable"
         point: for a cycle of n records, crash after k of them for each
         k < n.  Requires cf_tune to arm storage_faults.torn_writes. *)
}

let default_configs =
  [
    {
      cf_name = "full";
      cf_choose = (fun _ -> Full);
      cf_tune = Fun.id;
      cf_torn = false;
    };
    {
      cf_name = "sharded";
      cf_choose =
        (fun n ->
          (* Below 4 sites a 3-replica shard is not genuinely partial. *)
          if n >= 4 then Sharded (sharded_placement ~n) else Skip);
      cf_tune = Fun.id;
      cf_torn = false;
    };
    {
      (* Group commit moves the force boundaries (the flush-window timer
         sits between enqueue and device start) and batching moves the
         delivery boundaries; the sweep re-discovers its crash points
         under both, so every new window edge gets an injection. *)
      cf_name = "full+gc";
      cf_choose = (fun _ -> Full);
      cf_tune =
        (fun c ->
          {
            c with
            Config.group_commit_window = Time.us 20;
            batch_window = Some (Time.us 10);
          });
      cf_torn = false;
    };
    {
      (* Torn-write sweep: the same group-commit window as full+gc so
         device cycles cover several records, with the storage fault
         profile's torn_writes armed.  Each observed "wal:force-durable"
         cycle of n records yields n extra injections — crash after k of
         n, for every k < n — on top of the classical atomic-crash
         case (k = n is that case). *)
      cf_name = "full+torn";
      cf_choose = (fun _ -> Full);
      cf_tune =
        (fun c ->
          {
            c with
            Config.group_commit_window = Time.us 20;
            batch_window = Some (Time.us 10);
            storage_faults =
              { Rt_storage.Storage_faults.off with torn_writes = true };
          });
      cf_torn = true;
    };
  ]

(* The swept run: one distributed write transaction submitted at site 0.
   Under ROWA every site is a write participant, which is exactly what
   the durability invariant needs.  The horizon leaves ample room for
   recovery (100 ms after the crash) plus protocol termination. *)
let horizon = Time.sec 3
let recover_after = Time.ms 100
let workload = [ Rt_workload.Mix.Write ("a", "1"); Rt_workload.Mix.Write ("b", "2") ]

(* Crash targets, by protocol.  For 2PC/3PC/QC site 0 is the coordinator
   and site 1 a representative participant.  Paxos Commit (swept at
   F = 1: acceptors {0, 1, 2}) distinguishes three crash roles — site 0
   is the ballot-0 leader with a co-located acceptor, site 1 a pure
   acceptor, and site 3 (present once n ≥ 4) a plain participant with no
   acceptor duties. *)
let roles ~protocol ~n =
  match protocol with
  | Config.Paxos_commit _ ->
      (0, "leader") :: (1, "acceptor")
      :: (if n >= 4 then [ (3, "participant") ] else [])
  | Config.Two_phase _ | Config.Three_phase | Config.Quorum_commit _ ->
      [ (0, "coordinator"); (1, "participant") ]

let make_cluster ?placement ?(tune = Fun.id) ~protocol ~n ~seed () =
  let config =
    tune
      { (Config.default ~sites:n ()) with commit_protocol = protocol;
        placement; seed }
  in
  Cluster.create config

let start_workload cluster =
  let outcome = ref None in
  ignore
    (Engine.schedule_at (Cluster.engine cluster) (Time.ms 1) (fun () ->
         Cluster.submit cluster ~site:0 ~ops:workload ~k:(fun o ->
             outcome := Some o)));
  outcome

(* Discovery pass: run the workload uninjected and record the ordered
   stream of (site, point, cycle-size) announcements for the sites we
   target.  The cycle size is the WAL's in-flight device-cycle record
   count at announcement time — the [n] a torn sweep enumerates k < n
   from at "wal:force-durable" points. *)
let discover ?placement ?tune ~protocol ~n ~seed () =
  let cluster = make_cluster ?placement ?tune ~protocol ~n ~seed () in
  let points = Rt_core.Failure.observe_crash_points_sized cluster in
  let _outcome = start_workload cluster in
  Cluster.run ~until:horizon cluster;
  let targets = roles ~protocol ~n in
  List.filter (fun (s, _, _) -> List.mem_assoc s targets) (points ())

(* The invariant battery itself lives in Rt_core.Audit (shared with soak
   and the nemesis campaigns); here we only add the sweep-specific checks
   (crash point reached, client outcome fired) and tag each violation
   with the case.  Audit.standard runs quiescence first — it drives the
   cluster one second past the horizon, so every later check sees the
   fully drained state. *)
let audit ~case ~cluster ~outcome ~reached =
  let pre = ref [] in
  let add v_invariant v_detail =
    pre := { v_case = case; v_invariant; v_detail } :: !pre
  in
  if not reached then
    add "determinism" "target crash point not reached in injection run";
  let writes =
    List.filter_map
      (function
        | Rt_workload.Mix.Write (k, v) -> Some (k, v)
        | Rt_workload.Mix.Read _ -> None)
      workload
  in
  let vs = Audit.standard ~writes ~settle:(Time.sec 1) cluster in
  (match !outcome with
  | None -> add "termination" "client outcome never fired"
  | Some _ -> ());
  List.rev !pre
  @ List.map
      (fun { Audit.inv; detail } ->
        { v_case = case; v_invariant = inv; v_detail = detail })
      vs

let run_case ?placement ?tune ~case ~protocol ~seed () =
  let cluster = make_cluster ?placement ?tune ~protocol ~n:case.cs_n ~seed () in
  let injected =
    Rt_core.Failure.crash_at_point cluster ?torn:case.cs_torn
      ~site:case.cs_site ~point:case.cs_point ~occurrence:case.cs_occurrence
      ~recover_after ()
  in
  let outcome = start_workload cluster in
  Cluster.run ~until:horizon cluster;
  audit ~case ~cluster ~outcome ~reached:(injected ())

let sweep ?(seed = 0) ?(protocols = default_protocols) ?(ns = default_ns)
    ?(configs = default_configs) () =
  let summaries = ref [] in
  let violations = ref [] in
  let total = ref 0 in
  List.iter
    (fun (name, protocol) ->
      List.iter
        (fun n ->
          List.iter
            (fun cf ->
              match cf.cf_choose n with
              | Skip -> ()
              | (Full | Sharded _) as choice ->
                  let placement =
                    match choice with
                    | Sharded p -> Some p
                    | Full | Skip -> None
                  in
                  let stream =
                    discover ?placement ~tune:cf.cf_tune ~protocol ~n ~seed ()
                  in
                  let targets = roles ~protocol ~n in
                  (* Each occurrence in the discovery stream is one
                     injection. *)
                  let occ = Hashtbl.create 32 in
                  let cases =
                    List.concat_map
                      (fun (site, point, cycle) ->
                        let k =
                          1
                          + Option.value
                              (Hashtbl.find_opt occ (site, point))
                              ~default:0
                        in
                        Hashtbl.replace occ (site, point) k;
                        let base =
                          {
                            cs_protocol = name;
                            cs_n = n;
                            cs_placement = cf.cf_name;
                            cs_site = site;
                            cs_role = List.assoc site targets;
                            cs_point = point;
                            cs_occurrence = k;
                            cs_torn = None;
                          }
                        in
                        let torn_variants =
                          (* Each k < n is a distinct torn crash; k = n
                             is the atomic case already covered. *)
                          if
                            cf.cf_torn
                            && String.equal point "wal:force-durable"
                            && cycle > 0
                          then
                            List.init cycle (fun j ->
                                { base with cs_torn = Some j })
                          else []
                        in
                        base :: torn_variants)
                      stream
                  in
                  let vs =
                    List.concat_map
                      (fun case ->
                        run_case ?placement ~tune:cf.cf_tune ~case ~protocol
                          ~seed ())
                      cases
                  in
                  total := !total + List.length cases;
                  violations := !violations @ vs;
                  summaries :=
                    {
                      sm_protocol = name;
                      sm_n = n;
                      sm_placement = cf.cf_name;
                      sm_points = Hashtbl.length occ;
                      sm_cases = List.length cases;
                      sm_violations = List.length vs;
                    }
                    :: !summaries)
            configs)
        ns)
    protocols;
  {
    rp_summaries = List.rev !summaries;
    rp_violations = !violations;
    rp_cases = !total;
  }

let render report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "| protocol | n | placement | crash points | cases | violations |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %d | %s | %d | %d | %d |\n" s.sm_protocol
           s.sm_n s.sm_placement s.sm_points s.sm_cases s.sm_violations))
    report.rp_summaries;
  Buffer.add_string buf
    (Printf.sprintf "\ntotal: %d cases, %d violations\n" report.rp_cases
       (List.length report.rp_violations));
  List.iter
    (fun v ->
      Buffer.add_string buf (Format.asprintf "%a\n" pp_violation v))
    report.rp_violations;
  Buffer.contents buf
