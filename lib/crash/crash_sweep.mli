(** Deterministic crash-point sweep over the commit protocols.

    For each protocol × cluster size × placement configuration (full
    replication and a sharded placement), a discovery pass runs one
    distributed write transaction with the crash-point hook recording
    every announcement at the targeted sites: the coordinator (site 0)
    and a representative participant (site 1) — or, for Paxos Commit,
    the ballot-0 leader (site 0), a pure acceptor (site 1), and at
    n ≥ 4 a plain participant with no acceptor duties (site 3).  Each recorded occurrence then becomes an injection run:
    the same seeded workload, with the site crashed exactly at that
    occurrence of that point and recovered 100 ms later.  At a 3 s
    horizon every run is audited for agreement, durability, orphaned
    locks, undrained protocol timers, and bounded termination.

    Everything is driven by the DES seed, so the same seed yields a
    byte-identical {!render}ed report. *)

type case = {
  cs_protocol : string;
  cs_n : int;
  cs_placement : string;
      (** ["full"] or the sharded configuration's name. *)
  cs_site : int;  (** The crashed site. *)
  cs_role : string;
      (** ["coordinator"]/["participant"], or for Paxos Commit
          ["leader"]/["acceptor"]/["participant"]. *)
  cs_point : string;
  cs_occurrence : int;  (** 1-based occurrence of the point at the site. *)
  cs_torn : int option;
      (** [Some k]: tear the in-flight WAL device cycle at the crash so
          only [k] of its records survive as durable ([k < n] for a
          cycle of [n] records; the storage fault profile must have
          [torn_writes] on).  [None]: classical atomic crash. *)
}

val pp_case : Format.formatter -> case -> unit

type violation = { v_case : case; v_invariant : string; v_detail : string }

val pp_violation : Format.formatter -> violation -> unit

type summary = {
  sm_protocol : string;
  sm_n : int;
  sm_placement : string;
  sm_points : int;  (** Distinct (site, point) pairs targeted. *)
  sm_cases : int;
  sm_violations : int;
}

type report = {
  rp_summaries : summary list;
  rp_violations : violation list;
  rp_cases : int;
}

val default_protocols : (string * Rt_core.Config.commit_protocol) list
(** 2PC-PrN, 2PC-PrA, 2PC-PrC, 3PC, QC (majority quorums), and Paxos
    Commit at F = 1 (so n = 5 keeps non-acceptor participants). *)

val default_ns : int list
(** Cluster sizes swept by default: 3 and 5. *)

val sharded_placement : n:int -> Rt_placement.Placement.t
(** Two range shards split at "b" with round-robin replica sets of
    [min 3 (n-1)] sites: the sweep's partial-replication configuration
    (the coordinator replicates one shard, the targeted participant
    both, and for n=5 site 4 replicates nothing). *)

type placement_choice = Full | Sharded of Rt_placement.Placement.t | Skip

type sweep_config = {
  cf_name : string;
  cf_choose : int -> placement_choice;
      (** Placement for a cluster size, or [Skip] to omit that size. *)
  cf_tune : Rt_core.Config.t -> Rt_core.Config.t;
      (** Knob adjustments applied to the built config (e.g. enable group
          commit or batching); [Fun.id] for the classical settings. *)
  cf_torn : bool;
      (** Enumerate torn-write variants of every ["wal:force-durable"]
          point: crash after [k] of the cycle's [n] records, for each
          [k < n].  [cf_tune] must arm [storage_faults.torn_writes]. *)
}

val default_configs : sweep_config list
(** Full replication at every size, plus the {!sharded_placement}
    configuration at sizes ≥ 4, plus full replication with WAL group
    commit and link batching enabled ("full+gc") — group commit moves
    the force boundaries, so the sweep re-discovers its crash points
    there — plus "full+torn": the same windows with
    [storage_faults.torn_writes] armed and every torn variant of every
    observed force-durable cycle injected. *)

val sweep :
  ?seed:int ->
  ?protocols:(string * Rt_core.Config.commit_protocol) list ->
  ?ns:int list ->
  ?configs:sweep_config list ->
  unit ->
  report
(** Run the full sweep (default: every protocol × every size × every
    placement configuration, seed 0). *)

val run_case :
  ?placement:Rt_placement.Placement.t ->
  ?tune:(Rt_core.Config.t -> Rt_core.Config.t) ->
  case:case ->
  protocol:Rt_core.Config.commit_protocol ->
  seed:int ->
  unit ->
  violation list
(** Run a single injection case (regression-test entry point).
    [placement] must match the one the case was discovered under
    (absent = full replication). *)

val discover :
  ?placement:Rt_placement.Placement.t ->
  ?tune:(Rt_core.Config.t -> Rt_core.Config.t) ->
  protocol:Rt_core.Config.commit_protocol ->
  n:int ->
  seed:int ->
  unit ->
  (int * string * int) list
(** The discovery pass alone: the ordered (site, point, cycle-size)
    stream at the targeted sites for an uninjected run.  The cycle size
    is the announcing site's WAL device-cycle record count at the
    announcement — the [n] torn variants are enumerated from at
    ["wal:force-durable"] points. *)

val render : report -> string
(** Markdown summary table followed by one line per violation;
    byte-stable for a given seed. *)
