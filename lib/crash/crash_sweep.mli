(** Deterministic crash-point sweep over the commit protocols.

    For each protocol × cluster size, a discovery pass runs one
    distributed write transaction with the crash-point hook recording
    every announcement at the coordinator site (0) and one participant
    site (1).  Each recorded occurrence then becomes an injection run:
    the same seeded workload, with the site crashed exactly at that
    occurrence of that point and recovered 100 ms later.  At a 3 s
    horizon every run is audited for agreement, durability, orphaned
    locks, undrained protocol timers, and bounded termination.

    Everything is driven by the DES seed, so the same seed yields a
    byte-identical {!render}ed report. *)

type case = {
  cs_protocol : string;
  cs_n : int;
  cs_site : int;  (** The crashed site. *)
  cs_role : string;  (** ["coordinator"] (site 0) or ["participant"]. *)
  cs_point : string;
  cs_occurrence : int;  (** 1-based occurrence of the point at the site. *)
}

val pp_case : Format.formatter -> case -> unit

type violation = { v_case : case; v_invariant : string; v_detail : string }

val pp_violation : Format.formatter -> violation -> unit

type summary = {
  sm_protocol : string;
  sm_n : int;
  sm_points : int;  (** Distinct (site, point) pairs targeted. *)
  sm_cases : int;
  sm_violations : int;
}

type report = {
  rp_summaries : summary list;
  rp_violations : violation list;
  rp_cases : int;
}

val default_protocols : (string * Rt_core.Config.commit_protocol) list
(** 2PC-PrN, 2PC-PrA, 2PC-PrC, 3PC, QC (majority quorums). *)

val default_ns : int list
(** Cluster sizes swept by default: 3 and 5. *)

val sweep :
  ?seed:int ->
  ?protocols:(string * Rt_core.Config.commit_protocol) list ->
  ?ns:int list ->
  unit ->
  report
(** Run the full sweep (default: every protocol × every size, seed 0). *)

val run_case :
  case:case -> protocol:Rt_core.Config.commit_protocol -> seed:int ->
  violation list
(** Run a single injection case (regression-test entry point). *)

val discover :
  protocol:Rt_core.Config.commit_protocol -> n:int -> seed:int ->
  (int * string) list
(** The discovery pass alone: the ordered (site, point) stream at the
    targeted sites for an uninjected run. *)

val render : report -> string
(** Markdown summary table followed by one line per violation;
    byte-stable for a given seed. *)
