(** Fault-campaign runner.

    Interprets {!Scenario} steps against a live cluster under a client
    fleet, then heals every fault, recovers every site, measures the
    heal-to-quiet drain time, and runs the shared {!Rt_core.Audit}
    battery.  Fully simulation-deterministic: the same seed produces the
    same results, byte for byte. *)

open Rt_sim
open Rt_core

val default_protocols : (string * Config.commit_protocol) list
(** 2PC (PrN/PrA/PrC), 3PC, quorum commit, and Paxos Commit. *)

val outside_safety_envelope :
  protocol:Config.commit_protocol -> steps:Scenario.step list -> string option
(** Upfront safety-envelope verdict for one campaign cell, decided from
    the fault plan alone: [Some reason] iff the protocol's documented
    assumptions do not cover the scenario's faults.  The only cell
    outside any envelope today is basic 3PC under severed reachability —
    its termination rule trusts a failure detector that partitions can
    fool.  Everything else, Paxos Commit included, is strict: any audit
    violation fails the campaign. *)

val default_scenarios : Scenario.t list
(** Calm control plus lossy, gray, flapping, one-way, churn, and
    coordinator-targeted faults. *)

val default_placements :
  sites:int -> (string * Rt_placement.Placement.t option) list
(** Full replication, plus a 4-shard hash placement when [sites >= 4]. *)

type result = {
  r_scenario : string;
  r_protocol : string;
  r_placement : string;
  r_committed : int;
  r_aborted : int;
  r_retries : int;
  r_sent : int;
  r_dropped_link : int;
  r_dropped_partition : int;
  r_duplicated : int;
  r_torn : int;
      (** Torn WAL tails truncated by recovery's scan, summed over every
          site (cumulative across incarnations).  Always 0 with the
          storage fault profile off. *)
  r_cp_fallbacks : int;
      (** Recoveries that found the latest checkpoint snapshot corrupt
          and fell back to the previous snapshot or a full log replay. *)
  r_corruption : int;
      (** Durable log records lost to corruption; every one is also a
          loud "storage" audit violation, so a clean campaign shows 0. *)
  r_drain : Time.t option;
      (** Time from heal until every site is hygiene-clean; [None] when
          the cluster never drained within the cap (also reported as a
          termination violation). *)
  r_violations : Audit.violation list;
  r_envelope : string option;
      (** [Some reason] when this cell lies outside the protocol's
          declared safety envelope (see {!outside_safety_envelope});
          rendered as a shouted [!! OUTSIDE SAFETY ENVELOPE] block, never
          silently dropped. *)
  r_expected_divergence : Audit.violation list;
      (** Agreement/durability divergences observed while outside the
          envelope; excluded from {!total_violations} but printed loudly.
          Always empty when [r_envelope = None]. *)
}

val run_one :
  ?seed:int ->
  ?sites:int ->
  ?clients:int ->
  ?duration:Time.t ->
  ?rc:Rt_replica.Replica_control.t ->
  ?keys:int ->
  ?tune:(Config.t -> Config.t) ->
  scenario:Scenario.t ->
  protocol:string * Config.commit_protocol ->
  placement:string * Rt_placement.Placement.t option ->
  unit ->
  result
(** One cell: run [scenario] for [duration] against the given protocol,
    replica control (default ROWA) and placement, then drain and audit.
    [tune] adjusts the built config before the cluster is created (e.g.
    enable WAL group commit or link batching). *)

val run :
  ?seed:int ->
  ?sites:int ->
  ?clients:int ->
  ?duration:Time.t ->
  ?rc:Rt_replica.Replica_control.t ->
  ?tune:(Config.t -> Config.t) ->
  ?scenarios:Scenario.t list ->
  ?protocols:(string * Config.commit_protocol) list ->
  ?placements:(string * Rt_placement.Placement.t option) list ->
  unit ->
  result list
(** The full scenario × protocol × placement matrix, every cell tuned by
    [tune] (default: no adjustment). *)

val pp_drain : Format.formatter -> Time.t option -> unit
(** ["stuck"] for [None], otherwise the drain time in milliseconds. *)

val render : result list -> string
(** Markdown table plus one line per violation.  Contains no wall-clock
    timing, so equal-seed runs render byte-identically. *)

val total_violations : result list -> int
