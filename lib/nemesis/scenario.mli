(** Composable network-fault scenarios.

    A scenario is pure data: given the cluster size and the fault window
    it produces a deterministic, time-sorted step list.  The campaign
    runner ({!Campaign}) interprets the steps against a live cluster.
    All steps are clipped to [0, duration), so faults never outlive the
    window — the runner heals, recovers, and drains afterwards. *)

open Rt_sim

type edge = int * int
(** A directed site pair (src, dst). *)

type fault =
  | Lossy of { pairs : edge list option; drop : float; duplicate : float }
      (** Overlay drop/duplication on the pairs ([None] = every ordered
          pair), preserving each link's current latency. *)
  | Gray of { pairs : edge list option; factor : int }
      (** Multiply current latency by [factor] — a slow-but-live link. *)
  | Partition of int list list  (** Symmetric component split. *)
  | Sever of edge list  (** One-way cuts: (src, dst) stops delivering. *)
  | Restore of edge list  (** Undo matching {!Sever} edges. *)
  | Heal_partition
      (** Heal components and severed edges; link overlays remain. *)
  | Reset_links  (** Remove every link overlay. *)
  | Crash of int
  | Recover of int
  | Torn_crash of { site : int; keep : int }
      (** Crash with the storage fault profile's torn-write mode: when a
          WAL device cycle is in flight, only [keep] of its records
          survive as durable (clamped to the cycle size) and the rest
          are left as a garbled tail for recovery's scan to truncate;
          otherwise a classical crash.  The campaign's config must arm
          [Config.storage_faults.torn_writes]. *)
  | Corrupt_checkpoint of int
      (** Flip the latest checkpoint snapshot's checksum so the next
          recovery falls back to the previous snapshot or a full log
          replay.  No-op until the site has a previous snapshot. *)
  | Recrash of int
      (** Crash again regardless of up/down state — landing while the
          site is still down models a crash during recovery. *)

type step = Time.t * fault

type t

val make : string -> (sites:int -> duration:Time.t -> step list) -> t

val name : t -> string

val steps : t -> sites:int -> duration:Time.t -> step list
(** Build, clip to [0, duration), and time-sort the scenario's steps. *)

(** {2 Stock scenarios} *)

val calm : t
(** No faults — the control row of a campaign. *)

val lossy : ?drop:float -> ?duplicate:float -> unit -> t
(** Every link drops and duplicates with the given probabilities for the
    whole window (defaults 0.05 each). *)

val gray : ?factor:int -> unit -> t
(** Site 0's links (both directions) run [factor]× slower (default 8). *)

val flapping : ?period:Time.t -> unit -> t
(** The cluster splits into halves at every period boundary and heals
    half a period later (default period 100 ms). *)

val one_way : ?period:Time.t -> unit -> t
(** Asymmetric partition: the left half's outbound edges are severed
    (requests arrive, replies vanish) on the same square wave. *)

val churn : ?every:Time.t -> ?down_for:Time.t -> unit -> t
(** Round-robin crash/recover, one site down at a time. *)

val coordinator_faults : ?every:Time.t -> ?down_for:Time.t -> unit -> t
(** Alternate crashing site 0 and severing its outbound links — votes
    reach the coordinator, its decisions vanish. *)

val compose : string -> t list -> t
(** Merge several scenarios' steps into one (sorted at build time). *)

val cuts_reachability : step list -> bool
(** Whether the steps sever reachability ({!Partition} or {!Sever}), as
    opposed to merely degrading links.  Crash-stop-only protocols (3PC)
    are allowed documented divergence under such scenarios. *)
