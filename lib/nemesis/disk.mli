(** Disk-fault nemesis campaign.

    Composes the storage fault model's failure modes — torn WAL device
    cycles, corrupted checkpoint snapshots, and re-crashes during
    recovery — into {!Scenario}s and runs them through the shared
    {!Campaign} machinery: client fleet, heal, drain, and the full
    {!Rt_core.Audit} battery.  Every run arms
    [Config.storage_faults.torn_writes]; the probabilistic corruption
    knobs stay 0 so all injection is explicit scenario steps and the
    rendered report is byte-identical for a given seed. *)

open Rt_sim

val calm_disk : Scenario.t
(** Storage faults armed, nothing injected — the campaign's control row
    must behave exactly like a calm run. *)

val torn_churn : ?every:Time.t -> ?down_for:Time.t -> unit -> Scenario.t
(** Round-robin torn crashes: each round tears the victim's in-flight
    WAL device cycle at a different survivor count (0, 1, 2 records
    kept), then recovers it.  Defaults: a crash every 60 ms, down for
    30 ms. *)

val checkpoint_corrupt : ?every:Time.t -> ?down_for:Time.t -> unit -> Scenario.t
(** Crash a site, corrupt its latest checkpoint snapshot while it is
    down, then recover it: restoration must fall back to the previous
    snapshot or a full log replay, never install garbage. *)

val recovery_recrash : ?every:Time.t -> unit -> Scenario.t
(** Crash; crash again while still down; recover; re-crash the instant
    replay finishes; recover once more.  The double replay must be
    idempotent and the log must survive repeated hits. *)

val torn_plus_checkpoint : ?every:Time.t -> ?down_for:Time.t -> unit -> Scenario.t
(** The composed worst case: a torn crash AND a corrupted latest
    checkpoint on the same site, so one recovery must both truncate the
    garbled tail and fall back past the bad snapshot. *)

val default_scenarios : Scenario.t list
(** {!calm_disk}, {!torn_churn}, {!checkpoint_corrupt},
    {!recovery_recrash}, and {!torn_plus_checkpoint} at their default
    cadences. *)

val arm : Rt_core.Config.t -> Rt_core.Config.t
(** The campaign's tune: arm [storage_faults.torn_writes] (leaving the
    probabilistic corruption knobs at 0) on a slow device — 400 µs
    force latency with a 200 µs group-commit window — so multi-record
    cycles are in flight often enough for the scenarios' crashes to
    genuinely tear them. *)

val run :
  ?seed:int ->
  ?sites:int ->
  ?clients:int ->
  ?duration:Time.t ->
  unit ->
  Campaign.result list
(** The full disk scenario × protocol × placement matrix (5 × 6 × 2 = 60
    runs at the default 5 sites) with {!arm} applied to every cell. *)

val render : Campaign.result list -> string
(** Markdown table (committed/aborted plus the disk counters: torn tails
    truncated, checkpoint fallbacks, corrupt records) followed by one
    line per violation; byte-stable for a given seed. *)
