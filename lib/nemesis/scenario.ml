(* Composable network-fault scenarios.

   A scenario is a recipe: given the cluster size and the fault window it
   emits a deterministic, time-sorted list of fault steps.  Scenarios are
   pure data — the campaign runner interprets the steps against a live
   cluster — so they compose by merging step lists. *)

open Rt_sim

type edge = int * int

type fault =
  | Lossy of { pairs : edge list option; drop : float; duplicate : float }
      (* Overlay drop/duplication probabilities on the named directed
         pairs ([None] = every ordered pair), keeping current latency. *)
  | Gray of { pairs : edge list option; factor : int }
      (* Inflate current latency by [factor] on the named pairs. *)
  | Partition of int list list
  | Sever of edge list  (* directed: (src, dst) stops delivering *)
  | Restore of edge list
  | Heal_partition  (* components and severed edges; link overlays stay *)
  | Reset_links  (* drop every link overlay, back to the config default *)
  | Crash of int
  | Recover of int
  | Torn_crash of { site : int; keep : int }
      (* Crash with the storage fault profile's torn-write mode: when a
         WAL device cycle is in flight at the crash, only [keep] of its
         records survive as durable (clamped to the cycle size) and the
         rest are left as a garbled tail for recovery's scan to
         truncate.  With no cycle in flight it is a classical crash.
         Requires [Config.storage_faults.torn_writes]. *)
  | Corrupt_checkpoint of int
      (* Flip the latest checkpoint snapshot's checksum so the next
         recovery must fall back — previous snapshot or full log replay.
         No-op until the site has a previous snapshot to fall back to
         (the fallback chain is never knowingly broken). *)
  | Recrash of int
      (* Crash again regardless of up/down state: landing while the site
         is still down models a crash during recovery (the log must
         replay idempotently on the next attempt). *)

type step = Time.t * fault

type t = {
  name : string;
  build : sites:int -> duration:Time.t -> step list;
}

let make name build = { name; build }
let name t = t.name

let steps t ~sites ~duration =
  t.build ~sites ~duration
  |> List.filter (fun (at, _) -> Time.(at >= zero) && Time.(at < duration))
  |> List.stable_sort (fun (a, _) (b, _) -> Time.compare a b)

(* -- building blocks ------------------------------------------------- *)

let halves sites =
  let mid = sites / 2 in
  (List.init mid Fun.id, List.init (sites - mid) (fun i -> mid + i))

(* Every directed edge from a group to the rest of the cluster. *)
let edges_out ~sites group =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          if List.mem dst group then None else Some (src, dst))
        (List.init sites Fun.id))
    group

(* A square wave: emit [on] at k*period and [offs] half a period later,
   for as many whole periods as fit the window.  The last cycle's [offs]
   steps always land inside the window so faults never outlive it. *)
let square ~period ~duration on offs =
  if Time.(period <= zero) then invalid_arg "Scenario: period must be positive";
  let cycles = duration / period in
  List.concat
    (List.init cycles (fun k ->
         let base = k * period in
         List.map (fun f -> (base, f)) on
         @ List.map (fun f -> (Time.add base (period / 2), f)) offs))

(* -- scenarios ------------------------------------------------------- *)

let calm = make "calm" (fun ~sites:_ ~duration:_ -> [])

let lossy ?(drop = 0.05) ?(duplicate = 0.05) () =
  make
    (Printf.sprintf "lossy(drop=%.2f,dup=%.2f)" drop duplicate)
    (fun ~sites:_ ~duration:_ ->
      [ (Time.zero, Lossy { pairs = None; drop; duplicate }) ])

let gray ?(factor = 8) () =
  make
    (Printf.sprintf "gray(x%d)" factor)
    (fun ~sites ~duration:_ ->
      (* Site 0 is slow to everyone, both directions: the gray-failure
         pattern where one box limps instead of dying. *)
      let pairs =
        List.concat_map
          (fun i -> if i = 0 then [] else [ (0, i); (i, 0) ])
          (List.init sites Fun.id)
      in
      [ (Time.zero, Gray { pairs = Some pairs; factor }) ])

let flapping ?(period = Time.ms 100) () =
  make
    (Printf.sprintf "flapping(%dms)" (period / Time.ms 1))
    (fun ~sites ~duration ->
      let left, right = halves sites in
      square ~period ~duration
        [ Partition [ left; right ] ]
        [ Heal_partition ])

let one_way ?(period = Time.ms 100) () =
  make
    (Printf.sprintf "one-way(%dms)" (period / Time.ms 1))
    (fun ~sites ~duration ->
      (* Asymmetric: the left half can hear the right but not the
         reverse — requests arrive, replies vanish. *)
      let left, _ = halves sites in
      let out = edges_out ~sites left in
      square ~period ~duration [ Sever out ] [ Restore out ])

let churn ?(every = Time.ms 120) ?(down_for = Time.ms 60) () =
  make
    (Printf.sprintf "churn(%dms/%dms)" (every / Time.ms 1)
       (down_for / Time.ms 1))
    (fun ~sites ~duration ->
      (* Round-robin crash/recover, one site down at a time, never the
         whole cluster. *)
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let site = k mod sites in
             let at = k * every in
             [ (at, Crash site); (Time.add at down_for, Recover site) ])))

let coordinator_faults ?(every = Time.ms 150) ?(down_for = Time.ms 50) () =
  make
    (Printf.sprintf "coordinator(%dms/%dms)" (every / Time.ms 1)
       (down_for / Time.ms 1))
    (fun ~sites ~duration ->
      (* Target site 0 — every fleet parks a client there, so these are
         coordinator-side faults: alternately crash it and cut its
         outbound links (votes reach it, its decisions vanish). *)
      let out = edges_out ~sites [ 0 ] in
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let at = k * every in
             if k mod 2 = 0 then
               [ (at, Crash 0); (Time.add at down_for, Recover 0) ]
             else
               [ (at, Sever out); (Time.add at down_for, Restore out) ])))

(* Whether a step list severs reachability (as opposed to degrading
   links).  Protocols that are only safe under crash-stop failures — 3PC
   termination trusts its failure detector — are allowed documented
   divergence in such scenarios (see docs/PROTOCOLS.md). *)
let cuts_reachability steps =
  List.exists
    (function _, (Partition _ | Sever _) -> true | _ -> false)
    steps

let compose name ts =
  make name (fun ~sites ~duration ->
      List.concat_map (fun t -> t.build ~sites ~duration) ts)
