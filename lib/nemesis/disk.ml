(* Disk-fault nemesis campaign: torn writes, checkpoint corruption, and
   recovery-time re-crashes, composed into scenarios and run through the
   shared campaign machinery (client fleet, heal, drain, Rt_core.Audit).
   Every run arms the storage fault profile's torn_writes; the
   probabilistic knobs stay 0 so injection is explicit and the campaign
   stays byte-deterministic per seed. *)

open Rt_sim

let ms = Time.ms

(* Control row: storage faults armed, no faults injected — the campaign's
   baseline must look exactly like a calm network run. *)
let calm_disk = Scenario.make "calm-disk" (fun ~sites:_ ~duration:_ -> [])

let torn_churn ?(every = ms 60) ?(down_for = ms 30) () =
  Scenario.make
    (Printf.sprintf "torn-churn(%dms/%dms)" (every / ms 1) (down_for / ms 1))
    (fun ~sites ~duration ->
      (* Round-robin torn crashes: each round tears the in-flight device
         cycle at a different survivor count (0, 1, 2 records kept). *)
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let site = k mod sites in
             let at = k * every in
             [
               (at, Scenario.Torn_crash { site; keep = k mod 3 });
               (Time.add at down_for, Scenario.Recover site);
             ])))

let checkpoint_corrupt ?(every = ms 90) ?(down_for = ms 45) () =
  Scenario.make
    (Printf.sprintf "cp-corrupt(%dms/%dms)" (every / ms 1) (down_for / ms 1))
    (fun ~sites ~duration ->
      (* Crash a site, corrupt its latest checkpoint while it is down,
         then recover: restoration must fall back to the previous
         snapshot or a full log replay, never install garbage. *)
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let site = k mod sites in
             let at = k * every in
             [
               (at, Scenario.Crash site);
               (Time.add at (ms 5), Scenario.Corrupt_checkpoint site);
               (Time.add at down_for, Scenario.Recover site);
             ])))

let recovery_recrash ?(every = ms 100) () =
  Scenario.make
    (Printf.sprintf "recovery-recrash(%dms)" (every / ms 1))
    (fun ~sites ~duration ->
      (* Crash; crash again while still down (the log must survive a
         second hit); recover; re-crash the instant replay finishes and
         recover once more — the double replay must be idempotent.
         Equal-time steps keep list order (stable sort). *)
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let site = k mod sites in
             let at = k * every in
             let up = Time.add at (ms 30) in
             [
               (at, Scenario.Crash site);
               (Time.add at (ms 10), Scenario.Recrash site);
               (up, Scenario.Recover site);
               (up, Scenario.Recrash site);
               (up, Scenario.Recover site);
             ])))

let torn_plus_checkpoint ?(every = ms 80) ?(down_for = ms 40) () =
  Scenario.make
    (Printf.sprintf "torn+cp(%dms/%dms)" (every / ms 1) (down_for / ms 1))
    (fun ~sites ~duration ->
      (* The composed worst case: a torn crash AND a corrupted latest
         checkpoint on the same site, so recovery must both truncate the
         garbled tail and fall back past the bad snapshot. *)
      let rounds = duration / every in
      List.concat
        (List.init rounds (fun k ->
             let site = k mod sites in
             let at = k * every in
             [
               (at, Scenario.Torn_crash { site; keep = 1 });
               (Time.add at (ms 5), Scenario.Corrupt_checkpoint site);
               (Time.add at down_for, Scenario.Recover site);
             ])))

let default_scenarios =
  [
    calm_disk;
    torn_churn ();
    checkpoint_corrupt ();
    recovery_recrash ();
    torn_plus_checkpoint ();
  ]

(* Arm torn writes; the probabilistic corruption knobs stay 0, so every
   fault in the campaign is an explicit scenario step and the report is
   byte-identical per seed.  A slow device with a group-commit window
   keeps multi-record cycles in flight for a meaningful fraction of the
   run, so the scenarios' crashes actually catch cycles mid-write —
   with the default 50 µs force latency almost every crash would land
   on an idle device and tear nothing. *)
let arm c =
  {
    c with
    Rt_core.Config.storage_faults =
      { Rt_storage.Storage_faults.off with torn_writes = true };
    force_latency = Time.us 400;
    group_commit_window = Time.us 200;
  }

let run ?(seed = 1) ?(sites = 5) ?clients ?duration () =
  Campaign.run ~seed ~sites ?clients ?duration ~tune:arm
    ~scenarios:default_scenarios ()

let render results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "| scenario | protocol | placement | committed | aborted | torn | cp \
     fallback | corrupt | drain | violations |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Format.asprintf "| %s | %s | %s | %d | %d | %d | %d | %d | %a | %d |\n"
           r.Campaign.r_scenario r.Campaign.r_protocol r.Campaign.r_placement
           r.Campaign.r_committed r.Campaign.r_aborted r.Campaign.r_torn
           r.Campaign.r_cp_fallbacks r.Campaign.r_corruption Campaign.pp_drain
           r.Campaign.r_drain
           (List.length r.Campaign.r_violations)))
    results;
  let violation_lines =
    List.concat_map
      (fun r ->
        List.map
          (fun v ->
            Format.asprintf "[%s %s %s] %a" r.Campaign.r_scenario
              r.Campaign.r_protocol r.Campaign.r_placement
              Rt_core.Audit.pp_violation v)
          r.Campaign.r_violations)
      results
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  Buffer.add_string buf
    (Printf.sprintf
       "\ntotal: %d runs, %d violations, %d torn tails truncated, %d \
        checkpoint fallbacks, %d corrupt records\n"
       (List.length results)
       (List.length violation_lines)
       (sum (fun r -> r.Campaign.r_torn))
       (sum (fun r -> r.Campaign.r_cp_fallbacks))
       (sum (fun r -> r.Campaign.r_corruption)));
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    violation_lines;
  Buffer.contents buf
