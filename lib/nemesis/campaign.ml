(* Campaign runner: interpret a fault scenario against a live cluster
   driven by a client fleet, then heal, drain, and run the shared
   invariant audit.  Everything is simulation-deterministic: same seed,
   same bytes. *)

open Rt_sim
open Rt_core
module Net = Rt_net.Net
module Partition = Rt_net.Partition
module Latency = Rt_net.Latency
module Mix = Rt_workload.Mix

let default_protocols =
  [
    ("2PC-PrN", Config.Two_phase Rt_commit.Two_pc.Presumed_nothing);
    ("2PC-PrA", Config.Two_phase Rt_commit.Two_pc.Presumed_abort);
    ("2PC-PrC", Config.Two_phase Rt_commit.Two_pc.Presumed_commit);
    ("3PC", Config.Three_phase);
    ("QC", Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
    ("Paxos", Config.Paxos_commit { f = None });
  ]

(* Safety envelopes, declared per protocol before anything runs.  Basic
   3PC reaches termination by trusting its failure detector, so a
   scenario that severs reachability can split its decision
   (docs/PROTOCOLS.md); that cell is OUTSIDE the protocol's envelope and
   the report shouts about it instead of quietly dropping the
   divergence.  Every other cell — including all of Paxos Commit, which
   replaces the detector with ballots and acceptor quorums — is strict:
   any audit violation is a failure. *)
let outside_safety_envelope ~protocol ~steps =
  match protocol with
  | Config.Three_phase when Scenario.cuts_reachability steps ->
      Some
        "basic 3PC termination trusts its failure detector; severed \
         reachability can split the decision"
  | Config.Three_phase | Config.Two_phase _ | Config.Quorum_commit _
  | Config.Paxos_commit _ ->
      None

let default_scenarios =
  [
    Scenario.calm;
    Scenario.lossy ();
    Scenario.gray ();
    Scenario.flapping ();
    Scenario.one_way ();
    Scenario.churn ();
    Scenario.coordinator_faults ();
  ]

(* Hash placement so the workload's keys spread over all shards (the
   crash sweep's range split is tuned to its two fixed keys). *)
let sharded_placement ~sites =
  Rt_placement.Placement.create
    ~map:(Rt_placement.Shard_map.hash ~shards:4)
    ~sites
    ~degree:(min 3 (sites - 1))
    ()

let default_placements ~sites =
  ("full", None)
  ::
  (if sites >= 4 then [ ("sharded", Some (sharded_placement ~sites)) ] else [])

type result = {
  r_scenario : string;
  r_protocol : string;
  r_placement : string;
  r_committed : int;
  r_aborted : int;
  r_retries : int;
  r_sent : int;
  r_dropped_link : int;
  r_dropped_partition : int;
  r_duplicated : int;
  r_torn : int;
      (* Torn WAL tails truncated by recovery's scan, summed over sites
         (cumulative across incarnations).  Always 0 with storage faults
         off. *)
  r_cp_fallbacks : int;
      (* Recoveries that found the latest checkpoint corrupt and fell
         back to the previous snapshot or a full log replay. *)
  r_corruption : int;
      (* Durable log records lost to corruption — every one is also a
         loud "storage" audit violation, so a clean campaign has 0. *)
  r_drain : Time.t option;
      (* Heal-to-quiet time: how long after the last fault until every
         site is hygiene-clean.  [None] = never within the drain cap. *)
  r_violations : Audit.violation list;
  r_envelope : string option;
      (* [Some reason] when this (protocol, scenario) cell lies outside
         the protocol's declared safety envelope — decided up front from
         the fault plan, never from what the audit happened to find. *)
  r_expected_divergence : Audit.violation list;
      (* Agreement/durability divergences observed while outside the
         envelope: rendered loudly in the report, excluded from the exit
         code.  Always empty when [r_envelope = None]. *)
}

let ordered_pairs sites =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if src = dst then None else Some (src, dst))
        (List.init sites Fun.id))
    (List.init sites Fun.id)

let apply_fault cluster fault =
  let net = Cluster.net cluster in
  let sites = (Cluster.config cluster).Config.sites in
  let resolve = function Some pairs -> pairs | None -> ordered_pairs sites in
  match fault with
  | Scenario.Lossy { pairs; drop; duplicate } ->
      List.iter
        (fun (src, dst) ->
          let cur = Net.link net ~src ~dst in
          Net.set_link net ~src ~dst { cur with drop; duplicate })
        (resolve pairs)
  | Scenario.Gray { pairs; factor } ->
      List.iter
        (fun (src, dst) ->
          let cur = Net.link net ~src ~dst in
          Net.set_link net ~src ~dst
            { cur with latency = Latency.scale cur.latency ~factor })
        (resolve pairs)
  | Scenario.Partition groups -> Cluster.partition cluster groups
  | Scenario.Sever edges ->
      List.iter
        (fun (src, dst) -> Partition.sever (Net.partition net) ~src ~dst)
        edges
  | Scenario.Restore edges ->
      List.iter
        (fun (src, dst) -> Partition.restore (Net.partition net) ~src ~dst)
        edges
  | Scenario.Heal_partition -> Cluster.heal cluster
  | Scenario.Reset_links -> Net.clear_links net
  | Scenario.Crash i ->
      if Site.is_up (Cluster.site cluster i) then Cluster.crash_site cluster i
  | Scenario.Recover i ->
      if not (Site.is_up (Cluster.site cluster i)) then
        Cluster.recover_site cluster i
  | Scenario.Torn_crash { site; keep } ->
      if Site.is_up (Cluster.site cluster site) then
        Cluster.crash_site ~torn:keep cluster site
  | Scenario.Corrupt_checkpoint i ->
      Site.corrupt_checkpoint (Cluster.site cluster i)
  | Scenario.Recrash i -> Site.crash_recovering (Cluster.site cluster i)

let drain_step = Time.ms 50
let drain_cap = Time.sec 5

let run_one ?(seed = 1) ?(sites = 5) ?(clients = 4) ?(duration = Time.ms 300)
    ?(rc = Rt_replica.Replica_control.rowa) ?(keys = 48) ?(tune = Fun.id)
    ~scenario ~protocol:(protocol_name, commit_protocol)
    ~placement:(placement_name, placement) () =
  let config =
    tune
      {
        (Config.default ~sites ()) with
        commit_protocol;
        replica_control = rc;
        placement;
        checkpoint_every = 50;
        seed;
      }
  in
  let cluster = Cluster.create config in
  let mix =
    { Mix.default with keys; read_fraction = 0.5; theta = 0.8; ops_per_txn = 3 }
  in
  Cluster.populate cluster mix;
  let fleet = Client.start_fleet ~cluster ~clients ~mix () in
  let steps = Scenario.steps scenario ~sites ~duration in
  (* Envelope verdict first, from the fault plan alone. *)
  let envelope = outside_safety_envelope ~protocol:commit_protocol ~steps in
  List.iter
    (fun (at, fault) ->
      ignore
        (Engine.schedule_at (Cluster.engine cluster) at (fun () ->
             apply_fault cluster fault)))
    steps;
  Cluster.run ~until:duration cluster;
  List.iter Client.stop fleet;
  (* End of the fault window: heal everything, revive everyone, then
     measure how long the protocols take to go quiet. *)
  Cluster.heal cluster;
  Net.clear_links (Cluster.net cluster);
  Array.iteri
    (fun i s -> if not (Site.is_up s) then Cluster.recover_site cluster i)
    (Cluster.sites cluster);
  let t_heal = Cluster.now cluster in
  let rec drain k =
    let elapsed = k * drain_step in
    if elapsed > drain_cap then None
    else begin
      Cluster.run ~until:(Time.add t_heal elapsed) cluster;
      if Audit.site_hygiene cluster = [] then Some elapsed else drain (k + 1)
    end
  in
  let r_drain = drain 1 in
  let violations =
    let vs = Audit.standard ~settle:(Time.sec 1) cluster in
    (* Quorum replica control reads past stale copies by design, so
       byte-level convergence of every up replica is not one of its
       promises (same policy as soak). *)
    match rc with
    | Rt_replica.Replica_control.Quorum _ ->
        List.filter
          (fun { Audit.detail; _ } ->
            detail <> "replica stores diverge within a shard")
          vs
    | _ -> vs
  in
  let violations =
    match r_drain with
    | Some _ -> violations
    | None ->
        { Audit.inv = "termination";
          detail =
            Printf.sprintf "cluster not hygiene-clean %ds after heal"
              (drain_cap / Time.sec 1) }
        :: violations
  in
  (* Outside the envelope only the declared divergence class
     (agreement splits and their data-level shadows) is reclassified;
     hygiene, termination and fork-freedom stay strict even there. *)
  let expected_divergence, violations =
    match envelope with
    | None -> ([], violations)
    | Some _ ->
        List.partition
          (fun { Audit.inv; _ } -> inv = "agreement" || inv = "durability")
          violations
  in
  let stats = Client.total fleet in
  let net = Cluster.net_stats cluster in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 (Cluster.sites cluster) in
  {
    r_scenario = Scenario.name scenario;
    r_protocol = protocol_name;
    r_placement = placement_name;
    r_committed = stats.committed;
    r_aborted = stats.aborted;
    r_retries = stats.retries;
    r_sent = net.sent;
    r_dropped_link = net.dropped_link;
    r_dropped_partition = net.dropped_partition;
    r_duplicated = net.duplicated;
    r_torn = sum Site.torn_truncated;
    r_cp_fallbacks = sum Site.checkpoint_fallbacks;
    r_corruption = sum Site.corruption_detected;
    r_drain;
    r_violations = violations;
    r_envelope = envelope;
    r_expected_divergence = expected_divergence;
  }

let run ?seed ?sites:(n = 5) ?clients ?duration ?rc ?tune
    ?(scenarios = default_scenarios) ?(protocols = default_protocols)
    ?placements () =
  let placements =
    match placements with
    | Some ps -> ps
    | None -> default_placements ~sites:n
  in
  List.concat_map
    (fun scenario ->
      List.concat_map
        (fun protocol ->
          List.map
            (fun placement ->
              run_one ?seed ~sites:n ?clients ?duration ?rc ?tune ~scenario
                ~protocol ~placement ())
            placements)
        protocols)
    scenarios

let pp_drain fmt = function
  | None -> Format.fprintf fmt "stuck"
  | Some d -> Format.fprintf fmt "%dms" (d / Time.ms 1)

let render results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "| scenario | protocol | placement | committed | aborted | retries | \
     sent | lost link | lost part | dup | drain | violations |\n";
  Buffer.add_string buf "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Format.asprintf "| %s | %s | %s | %d | %d | %d | %d | %d | %d | %d | %a | %d |\n"
           r.r_scenario r.r_protocol r.r_placement r.r_committed r.r_aborted
           r.r_retries r.r_sent r.r_dropped_link r.r_dropped_partition
           r.r_duplicated pp_drain r.r_drain
           (List.length r.r_violations)))
    results;
  let violation_lines =
    List.concat_map
      (fun r ->
        List.map
          (fun v ->
            Format.asprintf "[%s %s %s] %a" r.r_scenario r.r_protocol
              r.r_placement Audit.pp_violation v)
          r.r_violations)
      results
  in
  let envelope_cells =
    List.filter (fun r -> r.r_envelope <> None) results
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\ntotal: %d runs, %d violations, %d cells outside the safety \
        envelope\n"
       (List.length results)
       (List.length violation_lines)
       (List.length envelope_cells));
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    violation_lines;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "!! OUTSIDE SAFETY ENVELOPE [%s %s %s]: %s\n"
           r.r_scenario r.r_protocol r.r_placement
           (Option.value r.r_envelope ~default:""));
      match r.r_expected_divergence with
      | [] ->
          Buffer.add_string buf
            "!!   no divergence observed this run (the envelope bound is \
             about possibility, not certainty)\n"
      | vs ->
          List.iter
            (fun v ->
              Buffer.add_string buf
                (Format.asprintf "!!   divergence: %a\n" Audit.pp_violation v))
            vs)
    envelope_cells;
  Buffer.contents buf

let total_violations results =
  List.fold_left (fun acc r -> acc + List.length r.r_violations) 0 results
