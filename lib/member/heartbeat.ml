open Rt_sim
open Rt_types

type peer_state = { mutable last_heard : Time.t; mutable up : bool }

type t = {
  engine : Engine.t;
  self : Ids.site_id;
  (* Dense by site id ([None] = self or not a peer): membership is fixed
     at creation and site ids are dense, so ascending index order IS
     sorted site order — peer traversals on the tick path need no
     hash-table walk and no sort. *)
  peers : peer_state option array;
  interval : Time.t;
  miss_threshold : int;
  send_beat : Ids.site_id -> unit;
  on_down : Ids.site_id -> unit;
  on_up : Ids.site_id -> unit;
  mutable running : bool;
  mutable epoch : int;  (* invalidates scheduled ticks after stop *)
}

let create engine ~self ~peers ~interval ~miss_threshold ~send_beat ~on_down
    ~on_up =
  if miss_threshold < 1 then invalid_arg "Heartbeat: miss_threshold >= 1";
  List.iter
    (fun p -> if p < 0 then invalid_arg "Heartbeat: negative site id")
    peers;
  let limit = List.fold_left (fun acc p -> max acc (p + 1)) (self + 1) peers in
  let table = Array.make limit None in
  List.iter
    (fun p ->
      if p <> self then
        table.(p) <- Some { last_heard = Engine.now engine; up = true })
    peers;
  {
    engine;
    self;
    peers = table;
    interval;
    miss_threshold;
    send_beat;
    on_down;
    on_up;
    running = false;
    epoch = 0;
  }

let iter_peers t f =
  Array.iteri
    (fun peer st -> match st with None -> () | Some st -> f peer st)
    t.peers

let peer_state t site =
  if site < 0 || site >= Array.length t.peers then None else t.peers.(site)

(* Peers are visited in ascending site order so the on_down/on_up callback
   and beat-send sequences are a function of the membership — they
   schedule simulator events. *)
let check t =
  let now = Engine.now t.engine in
  let deadline = t.miss_threshold * t.interval in
  iter_peers t (fun peer st ->
      if st.up && Time.sub now st.last_heard > deadline then begin
        st.up <- false;
        t.on_down peer
      end)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    iter_peers t (fun peer _ -> t.send_beat peer);
    check t;
    ignore
      (Engine.schedule_after
         ~label:(Engine.Recurring { site = t.self; name = "heartbeat" })
         t.engine t.interval (tick t epoch))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    (* Reset suspicion so a restarted site gives peers a full window. *)
    let now = Engine.now t.engine in
    iter_peers t (fun _ st -> st.last_heard <- now);
    tick t t.epoch ()
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let beat_received t ~from =
  match peer_state t from with
  | None -> ()
  | Some st ->
      st.last_heard <- Engine.now t.engine;
      if not st.up then begin
        st.up <- true;
        t.on_up from
      end

let is_up t site =
  if site = t.self then t.running
  else match peer_state t site with Some st -> st.up | None -> false

let up_peers t =
  let acc = ref [] in
  iter_peers t (fun p st -> if st.up then acc := p :: !acc);
  List.rev !acc
