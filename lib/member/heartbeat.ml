open Rt_sim
open Rt_types

type peer_state = { mutable last_heard : Time.t; mutable up : bool }

type t = {
  engine : Engine.t;
  self : Ids.site_id;
  peers : (Ids.site_id, peer_state) Hashtbl.t;
  interval : Time.t;
  miss_threshold : int;
  send_beat : Ids.site_id -> unit;
  on_down : Ids.site_id -> unit;
  on_up : Ids.site_id -> unit;
  mutable running : bool;
  mutable epoch : int;  (* invalidates scheduled ticks after stop *)
}

let create engine ~self ~peers ~interval ~miss_threshold ~send_beat ~on_down
    ~on_up =
  if miss_threshold < 1 then invalid_arg "Heartbeat: miss_threshold >= 1";
  let table = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if p <> self then
        Hashtbl.replace table p { last_heard = Engine.now engine; up = true })
    peers;
  {
    engine;
    self;
    peers = table;
    interval;
    miss_threshold;
    send_beat;
    on_down;
    on_up;
    running = false;
    epoch = 0;
  }

(* Peers are visited in sorted site order so the on_down/on_up callback
   and beat-send sequences are a function of the membership, not of
   hash-table layout — they schedule simulator events. *)
let check t =
  let now = Engine.now t.engine in
  let deadline = t.miss_threshold * t.interval in
  Det.iter_sorted ~cmp:Int.compare
    (fun peer st ->
      if st.up && Time.sub now st.last_heard > deadline then begin
        st.up <- false;
        t.on_down peer
      end)
    t.peers

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    Det.iter_sorted ~cmp:Int.compare (fun peer _ -> t.send_beat peer) t.peers;
    check t;
    ignore
      (Engine.schedule_after
         ~label:(Engine.Recurring { site = t.self; name = "heartbeat" })
         t.engine t.interval (tick t epoch))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    (* Reset suspicion so a restarted site gives peers a full window. *)
    let now = Engine.now t.engine in
    Det.iter_sorted ~cmp:Int.compare (fun _ st -> st.last_heard <- now) t.peers;
    tick t t.epoch ()
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let beat_received t ~from =
  match Hashtbl.find_opt t.peers from with
  | None -> ()
  | Some st ->
      st.last_heard <- Engine.now t.engine;
      if not st.up then begin
        st.up <- true;
        t.on_up from
      end

let is_up t site =
  if site = t.self then t.running
  else match Hashtbl.find_opt t.peers site with
    | Some st -> st.up
    | None -> false

let up_peers t =
  Hashtbl.fold (fun p st acc -> if st.up then p :: acc else acc) t.peers []
  |> List.sort Int.compare
