open Rt_types

type quorum = Ids.site_id list
type t = { quorums : quorum list }

let normalise_quorum q =
  match List.sort_uniq Int.compare q with
  | [] -> invalid_arg "Coterie: empty quorum"
  | q -> q

let subset a b = List.for_all (fun x -> List.mem x b) a

let of_quorums qs =
  if qs = [] then invalid_arg "Coterie.of_quorums: empty family";
  let qs =
    List.map normalise_quorum qs |> List.sort_uniq (List.compare Int.compare)
  in
  (* Minimality: drop any quorum that strictly contains another. *)
  let minimal =
    List.filter
      (fun q ->
        not (List.exists (fun q' -> q' <> q && subset q' q) qs))
      qs
  in
  { quorums = minimal }

let quorums t = t.quorums

let subsets_of n =
  (* All subsets of 0..n-1 as sorted lists, by increasing bitmask. *)
  let rec members mask i acc =
    if i >= n then List.rev acc
    else members mask (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  List.init (1 lsl n) (fun mask -> members mask 0 [])

let quorums_of_votes votes ~threshold =
  let n = Votes.sites votes in
  if n > 20 then invalid_arg "Coterie: too many sites to enumerate";
  subsets_of n
  |> List.filter (fun s -> s <> [] && Votes.vote_count votes s >= threshold)
  |> of_quorums

let read_quorums_of_votes v = quorums_of_votes v ~threshold:(Votes.read_quorum v)
let write_quorums_of_votes v = quorums_of_votes v ~threshold:(Votes.write_quorum v)

let intersects a b = List.exists (fun x -> List.mem x b) a

let pairwise_intersecting t =
  let rec go = function
    | [] -> true
    | q :: rest -> List.for_all (intersects q) rest && go rest
  in
  go t.quorums

let cross_intersecting a b =
  List.for_all (fun qa -> List.for_all (intersects qa) b.quorums) a.quorums

let min_quorum_size t =
  List.fold_left (fun acc q -> min acc (List.length q)) max_int t.quorums

let contains_quorum t available =
  let available = List.sort_uniq Int.compare available in
  List.exists (fun q -> subset q available) t.quorums
