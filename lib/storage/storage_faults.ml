type t = {
  torn_writes : bool;
  corrupt_on_crash : float;
  checkpoint_corrupt : float;
}

let off = { torn_writes = false; corrupt_on_crash = 0.; checkpoint_corrupt = 0. }

let is_off t =
  (not t.torn_writes) && t.corrupt_on_crash = 0. && t.checkpoint_corrupt = 0.

let validate t =
  let probability name p =
    if p < 0. || p > 1. then
      invalid_arg
        (Printf.sprintf "Storage_faults: %s must be a probability in [0,1]"
           name)
  in
  probability "corrupt_on_crash" t.corrupt_on_crash;
  probability "checkpoint_corrupt" t.checkpoint_corrupt
