(** Log records written by the transaction and commitment machinery.

    The [Update] record carries both redo information (new value/version)
    and undo information (the previous item), so either policy can replay
    it.  Commit-protocol records ([Prepared], [Precommit], decision
    records) are what the termination protocols consult after a crash. *)

open Rt_types

type t =
  | Update of {
      txn : Ids.Txn_id.t;
      key : string;
      value : string;
      version : Kv.version;
      undo : Kv.item option;  (** Item before this update; [None] = absent. *)
    }
  | Prepared of { txn : Ids.Txn_id.t; participants : Ids.site_id list }
      (** Participant is ready to commit (2PC/3PC vote Yes).  The member
          list lets a recovering site rebuild its termination machinery. *)
  | Precommit of Ids.Txn_id.t  (** 3PC / quorum-commit pre-commit state. *)
  | Preabort of Ids.Txn_id.t  (** Quorum-commit pre-abort state. *)
  | Collecting of Ids.Txn_id.t
      (** Presumed-commit coordinator's begin record. *)
  | Commit of Ids.Txn_id.t
  | Abort of Ids.Txn_id.t
  | End of Ids.Txn_id.t
      (** Transaction fully resolved locally; allows log truncation. *)
  | Checkpoint_marker of { active : Ids.Txn_id.t list }

val txn_of : t -> Ids.Txn_id.t option
(** The transaction a record belongs to, if any. *)

val checksum : t -> int
(** Deterministic structural checksum of the record, covering every
    field.  The WAL stores it with the record (plus a sequence-chain
    field); a recovery scan recomputes it to detect torn or corrupt
    records. *)

val pp : Format.formatter -> t -> unit
