(** Versioned in-memory key-value store.

    Every item carries a version number that replica-control protocols use
    to detect stale copies (Gifford-style version currents).  Versions are
    supplied by the caller — the store itself never invents them — so the
    same engine backs both single-site and replicated deployments. *)

type version = int

type item = { value : string; version : version }

type t

val create : unit -> t

val get : t -> string -> item option

val version : t -> string -> version
(** Version of the current copy; 0 for a key never written. *)

val set : t -> key:string -> value:string -> version:version -> unit

val remove : t -> string -> unit

val mem : t -> string -> bool

val size : t -> int

val iter : t -> (string -> item -> unit) -> unit
(** Visits entries in ascending key order (replay-deterministic). *)

val keys : t -> string list
(** Sorted, for deterministic iteration in tests. *)

val snapshot : t -> (string * item) list
(** Sorted association list capturing the full state. *)

val restore : t -> (string * item) list -> unit
(** Replace the contents with a snapshot. *)

val copy : t -> t

val equal : t -> t -> bool
(** Structural equality of contents (used to check replica convergence). *)

val clear : t -> unit
