type shard_snapshot = (string * Kv.item) list

(* A snapshot plus its integrity checksum.  [cs_crc] is computed when the
   snapshot is taken; fault injection flips it to model a checkpoint
   whose sectors went stale or corrupt on disk. *)
type snap = {
  cs_shards : (int * shard_snapshot) list;
      (* Per-shard entry lists, sorted by shard id; entries sorted by key. *)
  cs_lsn : Wal.lsn;
  mutable cs_crc : int;
}

type t = {
  mutable snapshot : snap option;  (* latest *)
  mutable previous : snap option;  (* the one before, kept as fallback *)
  mutable taken : int;
}

let create () = { snapshot = None; previous = None; taken = 0 }

let snap_crc ~shards ~lsn =
  let d = Digest.string (Marshal.to_string (shards, lsn) []) in
  let h = ref 0 in
  String.iter (fun c -> h := (!h * 131) + Char.code c) d;
  !h land max_int

let partition_by_shard ~shard_of entries =
  let by_shard = Hashtbl.create 8 in
  (* Kv.snapshot is key-sorted; preserve that order within each shard. *)
  List.iter
    (fun ((key, _) as e) ->
      let shard = shard_of key in
      let prev = Option.value (Hashtbl.find_opt by_shard shard) ~default:[] in
      Hashtbl.replace by_shard shard (e :: prev))
    entries;
  Hashtbl.fold (fun shard es acc -> (shard, List.rev es) :: acc) by_shard []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let valid s = s.cs_crc = snap_crc ~shards:s.cs_shards ~lsn:s.cs_lsn

let take ?(shard_of = fun _ -> 0) t ~kv ~lsn =
  let shards = partition_by_shard ~shard_of (Kv.snapshot kv) in
  (* Demote the latest snapshot to the fallback slot only if it is
     intact: a corrupt snapshot is worthless as a fallback, and keeping
     the older valid one preserves the invariant that [previous], when
     present, can always be installed. *)
  (match t.snapshot with
  | Some s when valid s -> t.previous <- t.snapshot
  | Some _ | None -> ());
  t.snapshot <-
    Some { cs_shards = shards; cs_lsn = lsn; cs_crc = snap_crc ~shards ~lsn };
  t.taken <- t.taken + 1

let merged shards = List.concat_map snd shards

let latest t =
  Option.map (fun s -> (merged s.cs_shards, s.cs_lsn)) t.snapshot

let shards t =
  match t.snapshot with
  | None -> []
  | Some s -> List.map fst s.cs_shards

let shard_snapshot t ~shard =
  match t.snapshot with
  | None -> None
  | Some s -> List.assoc_opt shard s.cs_shards

let restore_latest t kv =
  match t.snapshot with
  | None ->
      Kv.clear kv;
      0
  | Some s ->
      Kv.restore kv (merged s.cs_shards);
      s.cs_lsn

let corrupt t =
  match t.snapshot with
  | None -> ()
  | Some s -> s.cs_crc <- lnot s.cs_crc

let has_previous t = Option.is_some t.previous
let previous_lsn t = Option.map (fun s -> s.cs_lsn) t.previous

type restored =
  | R_latest of Wal.lsn
  | R_previous of Wal.lsn
  | R_none

let restore_validated t kv =
  match t.snapshot with
  | Some s when valid s ->
      Kv.restore kv (merged s.cs_shards);
      R_latest s.cs_lsn
  | None ->
      Kv.clear kv;
      R_none
  | Some _ -> (
      (* Latest checkpoint fails validation: fall back to the previous
         snapshot, or to full log replay over an empty store. *)
      match t.previous with
      | Some p when valid p ->
          Kv.restore kv (merged p.cs_shards);
          R_previous p.cs_lsn
      | _ ->
          Kv.clear kv;
          R_none)

let count t = t.taken

let dump t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "taken=%d;" t.taken);
  (match t.snapshot with
  | None -> Buffer.add_string b "none"
  | Some { cs_shards = shards; cs_lsn = lsn; _ } ->
      Buffer.add_string b (Printf.sprintf "lsn=%d;" lsn);
      List.iter
        (fun (shard, entries) ->
          Buffer.add_string b (Printf.sprintf "s%d{" shard);
          List.iter
            (fun (k, { Kv.value; version }) ->
              Buffer.add_string b (Printf.sprintf "%s=%s@%d;" k value version))
            entries;
          Buffer.add_char b '}')
        shards);
  Buffer.contents b
