type shard_snapshot = (string * Kv.item) list

type t = {
  mutable snapshot : ((int * shard_snapshot) list * Wal.lsn) option;
      (* Per-shard entry lists, sorted by shard id; entries sorted by key. *)
  mutable taken : int;
}

let create () = { snapshot = None; taken = 0 }

let partition_by_shard ~shard_of entries =
  let by_shard = Hashtbl.create 8 in
  (* Kv.snapshot is key-sorted; preserve that order within each shard. *)
  List.iter
    (fun ((key, _) as e) ->
      let shard = shard_of key in
      let prev = Option.value (Hashtbl.find_opt by_shard shard) ~default:[] in
      Hashtbl.replace by_shard shard (e :: prev))
    entries;
  Hashtbl.fold (fun shard es acc -> (shard, List.rev es) :: acc) by_shard []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let take ?(shard_of = fun _ -> 0) t ~kv ~lsn =
  t.snapshot <- Some (partition_by_shard ~shard_of (Kv.snapshot kv), lsn);
  t.taken <- t.taken + 1

let merged shards = List.concat_map snd shards

let latest t =
  Option.map (fun (shards, lsn) -> (merged shards, lsn)) t.snapshot

let shards t =
  match t.snapshot with
  | None -> []
  | Some (shards, _) -> List.map fst shards

let shard_snapshot t ~shard =
  match t.snapshot with
  | None -> None
  | Some (shards, _) -> List.assoc_opt shard shards

let restore_latest t kv =
  match t.snapshot with
  | None ->
      Kv.clear kv;
      0
  | Some (shards, lsn) ->
      Kv.restore kv (merged shards);
      lsn

let count t = t.taken

let dump t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "taken=%d;" t.taken);
  (match t.snapshot with
  | None -> Buffer.add_string b "none"
  | Some (shards, lsn) ->
      Buffer.add_string b (Printf.sprintf "lsn=%d;" lsn);
      List.iter
        (fun (shard, entries) ->
          Buffer.add_string b (Printf.sprintf "s%d{" shard);
          List.iter
            (fun (k, { Kv.value; version }) ->
              Buffer.add_string b (Printf.sprintf "%s=%s@%d;" k value version))
            entries;
          Buffer.add_char b '}')
        shards);
  Buffer.contents b
