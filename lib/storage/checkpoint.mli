(** Checkpoints: durable snapshots of the store paired with the log position
    they capture.

    Taking a checkpoint lets the log be truncated up to the snapshot's LSN
    (minus any still-active transactions, which the caller must account
    for).  The snapshot is modelled as instantaneously durable; its cost
    shows up in experiments through the log-length/recovery-time trade-off
    rather than a write stall.

    Snapshots are kept per shard: the caller supplies the key→shard
    mapping and each shard's slice is stored (and inspectable)
    separately, so a partially-replicated site checkpoints exactly the
    shards it holds.  Under full replication everything is shard 0 and
    the behaviour is the classical whole-store snapshot. *)

type t

val create : unit -> t

val take : ?shard_of:(string -> int) -> t -> kv:Kv.t -> lsn:Wal.lsn -> unit
(** Record a snapshot of [kv] as of log position [lsn], partitioned by
    [shard_of] (default: a single shard 0). *)

val latest : t -> ((string * Kv.item) list * Wal.lsn) option
(** Most recent snapshot (all shards merged, in shard order) and its LSN,
    if any. *)

val shards : t -> int list
(** Shard ids present in the latest snapshot, ascending. *)

val shard_snapshot : t -> shard:int -> (string * Kv.item) list option
(** The latest snapshot's slice for one shard (key-sorted). *)

val restore_latest : t -> Kv.t -> Wal.lsn
(** Load the latest snapshot into the store (clearing it first) and return
    the LSN recovery should replay from; replays from LSN 1 over an empty
    store when no checkpoint exists. *)

val count : t -> int
(** Checkpoints taken so far. *)

val dump : t -> string
(** Canonical rendering (take count, LSN, per-shard entries in shard and
    key order), for state fingerprints. *)
