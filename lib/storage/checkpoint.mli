(** Checkpoints: durable snapshots of the store paired with the log position
    they capture.

    Taking a checkpoint lets the log be truncated up to the snapshot's LSN
    (minus any still-active transactions, which the caller must account
    for).  The snapshot is modelled as instantaneously durable; its cost
    shows up in experiments through the log-length/recovery-time trade-off
    rather than a write stall.

    Snapshots are kept per shard: the caller supplies the key→shard
    mapping and each shard's slice is stored (and inspectable)
    separately, so a partially-replicated site checkpoints exactly the
    shards it holds.  Under full replication everything is shard 0 and
    the behaviour is the classical whole-store snapshot. *)

type t

val create : unit -> t

val take : ?shard_of:(string -> int) -> t -> kv:Kv.t -> lsn:Wal.lsn -> unit
(** Record a snapshot of [kv] as of log position [lsn], partitioned by
    [shard_of] (default: a single shard 0). *)

val latest : t -> ((string * Kv.item) list * Wal.lsn) option
(** Most recent snapshot (all shards merged, in shard order) and its LSN,
    if any. *)

val shards : t -> int list
(** Shard ids present in the latest snapshot, ascending. *)

val shard_snapshot : t -> shard:int -> (string * Kv.item) list option
(** The latest snapshot's slice for one shard (key-sorted). *)

val restore_latest : t -> Kv.t -> Wal.lsn
(** Load the latest snapshot into the store (clearing it first) and return
    the LSN recovery should replay from; replays from LSN 1 over an empty
    store when no checkpoint exists.  Trusts the snapshot blindly — use
    {!restore_validated} when the storage fault profile is on. *)

type restored =
  | R_latest of Wal.lsn  (** Latest snapshot valid and restored. *)
  | R_previous of Wal.lsn
      (** Latest snapshot corrupt; previous restored instead. *)
  | R_none  (** No usable snapshot; store cleared, full log replay. *)

val restore_validated : t -> Kv.t -> restored
(** Corruption-aware install: validate the latest snapshot's checksum
    before restoring it; on failure fall back to the previous snapshot,
    and when that is also unusable clear the store so recovery replays
    the full log.  With no corruption this is exactly
    {!restore_latest}. *)

val corrupt : t -> unit
(** Fault injection: break the latest snapshot's stored checksum (no-op
    when no snapshot exists).  {!restore_validated} will then fall back;
    {!restore_latest} would restore it blindly. *)

val has_previous : t -> bool
(** Whether a previous (pre-latest) snapshot is retained.  Fault
    injectors gate checkpoint corruption on this: the bootstrap
    checkpoint can hold preloaded data that is in no log record, so
    corrupting it would model unrecoverable (out-of-scope) loss. *)

val previous_lsn : t -> Wal.lsn option
(** LSN of the retained previous snapshot, if any.  When checkpoint
    corruption is armed, log truncation must not pass this point or the
    fallback snapshot would have no covering log suffix. *)

val count : t -> int
(** Checkpoints taken so far. *)

val dump : t -> string
(** Canonical rendering (take count, LSN, per-shard entries in shard and
    key order), for state fingerprints. *)
