open Rt_types

type t =
  | Update of {
      txn : Ids.Txn_id.t;
      key : string;
      value : string;
      version : Kv.version;
      undo : Kv.item option;
    }
  | Prepared of { txn : Ids.Txn_id.t; participants : Ids.site_id list }
  | Precommit of Ids.Txn_id.t
  | Preabort of Ids.Txn_id.t
  | Collecting of Ids.Txn_id.t
  | Commit of Ids.Txn_id.t
  | Abort of Ids.Txn_id.t
  | End of Ids.Txn_id.t
  | Checkpoint_marker of { active : Ids.Txn_id.t list }

let txn_of = function
  | Update { txn; _ } -> Some txn
  | Prepared { txn; _ } -> Some txn
  | Precommit t | Preabort t | Collecting t | Commit t | Abort t | End t ->
      Some t
  | Checkpoint_marker _ -> None

(* Structural checksum over the whole record (digest of the marshalled
   bytes, folded to an int).  Stored alongside each record by the WAL so
   recovery can tell a validly-written record from a torn or corrupt
   sector. *)
let checksum t =
  let d = Digest.string (Marshal.to_string t []) in
  let h = ref 0 in
  String.iter (fun c -> h := (!h * 131) + Char.code c) d;
  !h land max_int

let pp fmt = function
  | Update { txn; key; version; _ } ->
      Format.fprintf fmt "Update(%a,%s,v%d)" Ids.Txn_id.pp txn key version
  | Prepared { txn; participants } ->
      Format.fprintf fmt "Prepared(%a,%d sites)" Ids.Txn_id.pp txn
        (List.length participants)
  | Precommit t -> Format.fprintf fmt "Precommit(%a)" Ids.Txn_id.pp t
  | Preabort t -> Format.fprintf fmt "Preabort(%a)" Ids.Txn_id.pp t
  | Collecting t -> Format.fprintf fmt "Collecting(%a)" Ids.Txn_id.pp t
  | Commit t -> Format.fprintf fmt "Commit(%a)" Ids.Txn_id.pp t
  | Abort t -> Format.fprintf fmt "Abort(%a)" Ids.Txn_id.pp t
  | End t -> Format.fprintf fmt "End(%a)" Ids.Txn_id.pp t
  | Checkpoint_marker { active } ->
      Format.fprintf fmt "Checkpoint(%d active)" (List.length active)
