(** Write-ahead log over a simulated stable-storage device.

    Appends go to a volatile buffer; a {!force} enqueues against a
    per-site group-commit controller: with a non-zero [group_window] the
    first force arms a flush timer and every force arriving before it
    fires shares one device write; with a zero window the device starts
    immediately.  Either way, forces issued while the device is busy
    coalesce into the next cycle, and one completed cycle releases every
    waiting continuation it covers — no continuation runs before the
    flush covering its records is durable.  A {!crash} discards the
    non-durable suffix and silences any outstanding completion
    callbacks.

    The record type is a parameter so the same engine backs both database
    logs and protocol-state logs in tests. *)

open Rt_sim

type 'r t

val create :
  ?owner:int ->
  ?group_window:Time.t ->
  Engine.t ->
  force_latency:Time.t ->
  unit ->
  'r t
(** [owner] is the id of the owning site; when given and a crash-point hook
    is installed on the engine, the log announces ["wal:force-volatile"]
    (force requested, records not yet durable) and ["wal:force-durable"]
    (device cycle completed, continuations about to run) so a fault
    injector can crash the site exactly at those boundaries.

    [group_window] (default zero) is the group-commit flush window: the
    first {!force} of a group arms a per-site flush timer (labelled
    ["wal-flush"]) and the device starts only when it fires, so every
    force arriving inside the window shares one device cycle.  Zero
    starts the device on the first force — the classical behaviour. *)

type lsn = int
(** Log sequence numbers are 1-based; 0 means "nothing". *)

val append : 'r t -> 'r -> lsn

val tail_lsn : 'r t -> lsn
(** LSN of the last appended record. *)

val durable_lsn : 'r t -> lsn

val force : 'r t -> ?upto:lsn -> (unit -> unit) -> unit
(** [force t ~upto k] calls [k] once every record with LSN ≤ [upto]
    (default: current tail) is durable.  If they already are, [k] runs
    via a zero-delay event.  Callbacks are dropped if the site crashes
    first. *)

val crash : 'r t -> unit
(** Lose the non-durable suffix and all pending force callbacks. *)

val durable_records : 'r t -> 'r list
(** Durable records in LSN order (after any truncation point). *)

val all_records : 'r t -> 'r list
(** Durable plus still-volatile records, in order. *)

val truncate : 'r t -> upto:lsn -> unit
(** Discard records with LSN ≤ [upto]; numbering is preserved. *)

val first_lsn : 'r t -> lsn
(** LSN of the earliest retained record; [tail_lsn + 1] if empty. *)

val length : 'r t -> int
(** Number of retained records. *)

val force_count : 'r t -> int
(** Device force cycles {e completed} so far (the forced-write cost
    measure).  Cycles that a crash interrupted are excluded — they made
    nothing durable — so the counter is crash-consistent: it never counts
    work whose effects were discarded. *)

type stats = {
  st_started : int;  (** Device cycles begun. *)
  st_completed : int;  (** Cycles whose completion event ran ([force_count]). *)
  st_lost : int;  (** Cycles interrupted by a crash before completing. *)
  st_pending : int;  (** Force continuations currently waiting. *)
}

val stats : 'r t -> stats
(** Crash-consistent cycle accounting.  Invariant, at every instant:
    [st_started = st_completed + st_lost + (1 if the device is busy)].
    At quiescence on a live site, [st_pending = 0].  The sweep audit
    asserts both. *)

val dump : 'r t -> record:('r -> string) -> string
(** Canonical rendering of the log state for structural fingerprinting:
    truncation base, durable point, device business, then every retained
    record in LSN order tagged [D] (durable) or [v] (volatile).  Two logs
    with the same dump behave identically under crash and recovery. *)
