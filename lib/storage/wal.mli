(** Write-ahead log over a simulated stable-storage device.

    Appends go to a volatile buffer; a {!force} starts a device write that
    takes the configured latency and, on completion, makes every record
    appended before the force started durable.  Forces issued while the
    device is busy coalesce into the next cycle, which yields group commit
    for free.  A {!crash} discards the non-durable suffix and silences any
    outstanding completion callbacks.

    The record type is a parameter so the same engine backs both database
    logs and protocol-state logs in tests. *)

open Rt_sim

type 'r t

val create : ?owner:int -> Engine.t -> force_latency:Time.t -> unit -> 'r t
(** [owner] is the id of the owning site; when given and a crash-point hook
    is installed on the engine, the log announces ["wal:force-volatile"]
    (force requested, records not yet durable) and ["wal:force-durable"]
    (device cycle completed, continuations about to run) so a fault
    injector can crash the site exactly at those boundaries. *)

type lsn = int
(** Log sequence numbers are 1-based; 0 means "nothing". *)

val append : 'r t -> 'r -> lsn

val tail_lsn : 'r t -> lsn
(** LSN of the last appended record. *)

val durable_lsn : 'r t -> lsn

val force : 'r t -> ?upto:lsn -> (unit -> unit) -> unit
(** [force t ~upto k] calls [k] once every record with LSN ≤ [upto]
    (default: current tail) is durable.  If they already are, [k] runs
    via a zero-delay event.  Callbacks are dropped if the site crashes
    first. *)

val crash : 'r t -> unit
(** Lose the non-durable suffix and all pending force callbacks. *)

val durable_records : 'r t -> 'r list
(** Durable records in LSN order (after any truncation point). *)

val all_records : 'r t -> 'r list
(** Durable plus still-volatile records, in order. *)

val truncate : 'r t -> upto:lsn -> unit
(** Discard records with LSN ≤ [upto]; numbering is preserved. *)

val first_lsn : 'r t -> lsn
(** LSN of the earliest retained record; [tail_lsn + 1] if empty. *)

val length : 'r t -> int
(** Number of retained records. *)

val force_count : 'r t -> int
(** Device force cycles completed so far (the forced-write cost measure). *)

val dump : 'r t -> record:('r -> string) -> string
(** Canonical rendering of the log state for structural fingerprinting:
    truncation base, durable point, device business, then every retained
    record in LSN order tagged [D] (durable) or [v] (volatile).  Two logs
    with the same dump behave identically under crash and recovery. *)
