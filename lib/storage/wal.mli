(** Write-ahead log over a simulated stable-storage device.

    Appends go to a volatile buffer; a {!force} enqueues against a
    per-site group-commit controller: with a non-zero [group_window] the
    first force arms a flush timer and every force arriving before it
    fires shares one device write; with a zero window the device starts
    immediately.  Either way, forces issued while the device is busy
    coalesce into the next cycle, and one completed cycle releases every
    waiting continuation it covers — no continuation runs before the
    flush covering its records is durable.  A {!crash} discards the
    non-durable suffix and silences any outstanding completion
    callbacks.

    Every record is stored with a checksum and a sequence-chain field
    (checksum chained to its predecessor's chain value).  With the
    default {!Storage_faults.off} profile these are write-only armour;
    with a fault profile a crash can leave a torn cycle suffix or
    corrupt records on disk, and {!scan} is the recovery-time pass that
    validates the log in LSN order and truncates at the first break.

    The record type is a parameter so the same engine backs both database
    logs and protocol-state logs in tests. *)

open Rt_sim

type 'r t

val create :
  ?owner:int ->
  ?group_window:Time.t ->
  ?faults:Storage_faults.t ->
  ?fault_rng:Rng.t ->
  ?checksum:('r -> int) ->
  Engine.t ->
  force_latency:Time.t ->
  unit ->
  'r t
(** [owner] is the id of the owning site; when given and a crash-point hook
    is installed on the engine, the log announces ["wal:force-volatile"]
    (force requested, records not yet durable) and ["wal:force-durable"]
    (device cycle completed, continuations about to run) so a fault
    injector can crash the site exactly at those boundaries.

    [group_window] (default zero) is the group-commit flush window: the
    first {!force} of a group arms a per-site flush timer (labelled
    ["wal-flush"]) and the device starts only when it fires, so every
    force arriving inside the window shares one device cycle.  Zero
    starts the device on the first force — the classical behaviour.

    [faults] (default {!Storage_faults.off}) arms the storage fault
    model; [fault_rng] drives the probabilistic knobs and is consulted
    only when the profile is on (it is discarded when the profile is
    off, so a faults-off log never draws from it).  [checksum] computes
    per-record checksums (default: digest of the marshalled record). *)

type lsn = int
(** Log sequence numbers are 1-based; 0 means "nothing". *)

val append : 'r t -> 'r -> lsn

val tail_lsn : 'r t -> lsn
(** LSN of the last appended record. *)

val durable_lsn : 'r t -> lsn

val force : 'r t -> ?upto:lsn -> (unit -> unit) -> unit
(** [force t ~upto k] calls [k] once every record with LSN ≤ [upto]
    (default: current tail) is durable.  If they already are, [k] runs
    via a zero-delay event.  Callbacks are dropped if the site crashes
    first. *)

val crash : ?torn:int -> 'r t -> unit
(** Lose the non-durable suffix and all pending force callbacks.

    [torn] (honoured only when the profile's [torn_writes] is on and a
    device cycle is in flight or just completing) tears the cycle:
    exactly [torn] of its records reach the platter and become durable,
    the rest of the cycle survives on disk as garbage with broken
    checksums — {!scan} must find and drop them — and records appended
    after the cycle are lost cleanly.  Without [torn] (or with the
    profile off) the crash is the classical atomic one.

    With [corrupt_on_crash] > 0, each record below the durable horizon
    is then independently corrupted with that probability. *)

type scan_result = {
  sc_torn : int;  (** Garbage records dropped from above the durable horizon. *)
  sc_corrupt : int;  (** Durable records dropped — loud data loss. *)
}

val scan : 'r t -> scan_result
(** Recovery-time integrity scan: validate checksum and chain in LSN
    order and truncate the log at the first break.  A break {e above}
    the durable horizon is a torn tail — dropped silently (clean
    truncation).  A break {e at or below} the horizon is corruption of
    supposedly-stable data: the log is truncated there, the durable
    point rolled back so the corrupt records are never replayed, and
    the damage reported in [sc_corrupt] for the caller to escalate
    loudly.  Idempotent: a second scan finds nothing.  With the fault
    profile off this is a no-op pass over valid records. *)

val corrupt_record : 'r t -> lsn:lsn -> unit
(** Deterministic fault injection: break the stored checksum of one
    retained record.  Raises [Invalid_argument] if [lsn] is not
    retained. *)

val durable_records : 'r t -> 'r list
(** Durable records in LSN order (after any truncation point). *)

val all_records : 'r t -> 'r list
(** Durable plus still-volatile records, in order. *)

val truncate : 'r t -> upto:lsn -> unit
(** Discard records with LSN ≤ [upto]; numbering is preserved. *)

val first_lsn : 'r t -> lsn
(** LSN of the earliest retained record; [tail_lsn + 1] if empty. *)

val length : 'r t -> int
(** Number of retained records. *)

val force_count : 'r t -> int
(** Device force cycles {e completed} so far (the forced-write cost
    measure).  Cycles that a crash interrupted are excluded — they made
    nothing durable — so the counter is crash-consistent: it never counts
    work whose effects were discarded. *)

val last_cycle_size : 'r t -> int
(** Number of records covered by the current (or most recently started)
    device cycle — the [n] in "crash after [k] of [n] records", so a
    sweep can enumerate every torn point of a cycle it observes. *)

type stats = {
  st_started : int;  (** Device cycles begun. *)
  st_completed : int;  (** Cycles whose completion event ran ([force_count]). *)
  st_lost : int;  (** Cycles interrupted by a crash before completing. *)
  st_torn : int;  (** Cycles a crash left partially durable (torn). *)
  st_pending : int;  (** Force continuations currently waiting. *)
}

val stats : 'r t -> stats
(** Crash-consistent cycle accounting.  Invariant, at every instant:
    [st_started = st_completed + st_lost + st_torn + (1 if the device is
    busy)].  At quiescence on a live site, [st_pending = 0].  The sweep
    audit asserts both. *)

val dump : 'r t -> record:('r -> string) -> string
(** Canonical rendering of the log state for structural fingerprinting:
    truncation base, durable point, device business, then every retained
    record in LSN order tagged [D] (durable) or [v] (volatile).  Two logs
    with the same dump behave identically under crash and recovery. *)
