type version = int
type item = { value : string; version : version }
type t = (string, item) Hashtbl.t

let create () = Hashtbl.create 128
let get t key = Hashtbl.find_opt t key

let version t key =
  match Hashtbl.find_opt t key with Some { version; _ } -> version | None -> 0

let set t ~key ~value ~version = Hashtbl.replace t key { value; version }
let remove t key = Hashtbl.remove t key
let mem t key = Hashtbl.mem t key
let size t = Hashtbl.length t

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Sorted key order: callers (soak divergence checks, dumps) compare
   and print what they visit, so the order must be reproducible. *)
let iter t f = List.iter (fun (k, v) -> f k v) (snapshot t)

let keys t = List.map fst (snapshot t)

let restore t entries =
  Hashtbl.reset t;
  List.iter (fun (k, v) -> Hashtbl.replace t k v) entries

let copy t = Hashtbl.copy t

let equal a b =
  Hashtbl.length a = Hashtbl.length b
  (* rt_lint: allow deterministic-iteration -- order-insensitive conjunction *)
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let clear t = Hashtbl.reset t
