(** Storage fault profile: what the simulated stable-storage device is
    allowed to do to the bytes it was trusted with.

    The default profile {!off} is the perfect device the paper assumes —
    every harness is byte-identical under it.  Turning a knob on arms the
    corresponding fault in {!Wal} and {!Checkpoint}:

    - [torn_writes]: a crash landing mid device cycle may leave only a
      prefix of the in-flight group-commit cycle durable; the rest of the
      cycle survives on disk as garbage (bad checksum) and everything
      appended after the cycle is lost.  The torn point is chosen by the
      injector ([Wal.crash ~torn:k]), not drawn at random, so sweeps stay
      deterministic.
    - [corrupt_on_crash]: at each crash, every record {e below} the
      durable horizon is independently corrupted with this probability
      (its stored checksum is flipped).  Recovery must detect this loudly
      — it is data loss, not a clean torn tail.
    - [checkpoint_corrupt]: at each crash, with this probability the
      latest checkpoint snapshot is corrupted; recovery must fall back to
      the previous snapshot or full log replay. *)

type t = {
  torn_writes : bool;
  corrupt_on_crash : float;
  checkpoint_corrupt : float;
}

val off : t
(** The perfect device: no torn writes, no corruption. *)

val is_off : t -> bool
(** True when every fault knob is disabled; fault-path code (extra RNG
    splits, corruption draws) must be gated on this so the default
    profile stays byte-identical to the pre-fault simulator. *)

val validate : t -> unit
(** Raises [Invalid_argument] when a probability lies outside [0,1]. *)
