open Rt_sim

type lsn = int

type stats = {
  st_started : int;
  st_completed : int;
  st_lost : int;
  st_pending : int;
}

type 'r t = {
  engine : Engine.t;
  force_latency : Time.t;
  group_window : Time.t;  (* zero = start the device on the first force *)
  owner : int;  (* owning site, for crash points; -1 = anonymous *)
  mutable records : 'r array;  (* index i holds LSN base + i + 1 *)
  mutable size : int;
  mutable base : lsn;  (* number of truncated records *)
  mutable durable : lsn;
  mutable waiting : (lsn * (unit -> unit)) list;  (* reversed *)
  mutable device_busy : bool;
  mutable flush_armed : bool;  (* group-commit window timer pending *)
  mutable epoch : int;  (* bumped on crash to silence in-flight completions *)
  (* Crash-consistent device-cycle accounting: a cycle is [started] when
     the device begins writing, [completed] when its completion event
     runs, and [lost] when a crash lands in between.  The invariant
     [started = completed + lost + (busy ? 1 : 0)] holds at every
     instant, so [force_count] (= completed) never counts a cycle whose
     effects a crash discarded. *)
  mutable started : int;
  mutable completed : int;
  mutable lost : int;
}

let create ?(owner = -1) ?(group_window = Time.zero) engine ~force_latency () =
  if Time.(group_window < zero) then
    invalid_arg "Wal.create: group_window must be non-negative";
  {
    engine;
    force_latency;
    group_window;
    owner;
    records = [||];
    size = 0;
    base = 0;
    durable = 0;
    waiting = [];
    device_busy = false;
    flush_armed = false;
    epoch = 0;
    started = 0;
    completed = 0;
    lost = 0;
  }

(* Announce a crash point and report whether the log is still alive: the
   hook may crash the owning site synchronously, which bumps our epoch. *)
let reach_crash_point t point =
  if t.owner >= 0 && Engine.crash_hook_installed t.engine then begin
    let epoch = t.epoch in
    Engine.crash_point t.engine ~site:t.owner ~point;
    t.epoch = epoch
  end
  else true

let tail_lsn t = t.base + t.size
let durable_lsn t = t.durable
let first_lsn t = t.base + 1
let length t = t.size
let force_count t = t.completed

let stats t =
  {
    st_started = t.started;
    st_completed = t.completed;
    st_lost = t.lost;
    st_pending = List.length t.waiting;
  }

let append t r =
  let cap = Array.length t.records in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nrecords = Array.make ncap r in
    Array.blit t.records 0 nrecords 0 t.size;
    t.records <- nrecords
  end;
  t.records.(t.size) <- r;
  t.size <- t.size + 1;
  tail_lsn t

let fire_satisfied t =
  let satisfied, still =
    List.partition (fun (upto, _) -> upto <= t.durable) t.waiting
  in
  t.waiting <- still;
  (* Fire in request order (list is reversed). *)
  List.iter (fun (_, k) -> k ()) (List.rev satisfied)

let rec start_device_cycle t =
  t.device_busy <- true;
  t.started <- t.started + 1;
  let target = tail_lsn t in
  let epoch = t.epoch in
  (* Device completion is a real scheduling choice for an explorer: its
     ordering against message deliveries decides which records survive a
     crash.  Anonymous logs stay internal. *)
  let label =
    if t.owner >= 0 then Engine.Timer { site = t.owner; name = "wal-device" }
    else Engine.Internal (-1)
  in
  ignore
    (Engine.schedule_after ~label t.engine t.force_latency (fun () ->
         if t.epoch = epoch then begin
           t.device_busy <- false;
           t.completed <- t.completed + 1;
           if target > t.durable then t.durable <- target;
           (* Crash here: the records are durable but every continuation
              waiting on them is lost. *)
           if reach_crash_point t "wal:force-durable" then begin
             fire_satisfied t;
             (* Anything still waiting targets records appended after this
                cycle started: run another cycle immediately — the cycle
                just finished already was the grouping window.  A fired
                continuation may itself have forced and restarted the
                device; starting a second overlapping cycle would
                double-count the flush (and leave a completion a crash
                can silence without marking it lost). *)
             if t.waiting <> [] && not t.device_busy then
               start_device_cycle t
           end
         end))

(* Group-commit controller: the first force inside a window arms a
   per-site flush timer; every force that arrives before it fires joins
   the same flush, so concurrent transactions share one device cycle.
   With a zero window the device starts immediately (the classical
   per-transaction force, modulo busy-device coalescing). *)
let arm_flush t =
  t.flush_armed <- true;
  let epoch = t.epoch in
  let label =
    if t.owner >= 0 then Engine.Timer { site = t.owner; name = "wal-flush" }
    else Engine.Internal (-1)
  in
  ignore
    (Engine.schedule_after ~label t.engine t.group_window (fun () ->
         if t.epoch = epoch then begin
           t.flush_armed <- false;
           if t.waiting <> [] && not t.device_busy then start_device_cycle t
         end))

let force t ?upto k =
  let upto = Option.value upto ~default:(tail_lsn t) in
  if upto <= t.durable then
    ignore
      (Engine.schedule_after ~label:(Engine.Internal t.owner) t.engine
         Time.zero (fun () -> k ()))
  else if
    (* Crash here: the forced records are still volatile and are lost. *)
    reach_crash_point t "wal:force-volatile"
  then begin
    t.waiting <- (upto, k) :: t.waiting;
    if not t.device_busy then
      if Time.(t.group_window = zero) then start_device_cycle t
      else if not t.flush_armed then arm_flush t
  end

let crash t =
  t.epoch <- t.epoch + 1;
  if t.device_busy then t.lost <- t.lost + 1;
  t.device_busy <- false;
  t.flush_armed <- false;
  t.waiting <- [];
  (* Drop the volatile suffix. *)
  let keep = t.durable - t.base in
  t.size <- max 0 keep

let records_from t ~count =
  List.init count (fun i -> t.records.(i))

let durable_records t = records_from t ~count:(max 0 (t.durable - t.base))
let all_records t = records_from t ~count:t.size

let dump t ~record =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "base=%d durable=%d busy=%b armed=%b;" t.base t.durable
       t.device_busy t.flush_armed);
  for i = 0 to t.size - 1 do
    let lsn = t.base + i + 1 in
    let tag = if lsn <= t.durable then 'D' else 'v' in
    Buffer.add_string buf
      (Printf.sprintf "%c%d:%s;" tag lsn (record t.records.(i)))
  done;
  Buffer.contents buf

let truncate t ~upto =
  if upto > t.durable then invalid_arg "Wal.truncate: beyond durable point";
  let drop = upto - t.base in
  if drop > 0 then begin
    let remaining = t.size - drop in
    let nrecords =
      if remaining = 0 then [||]
      else Array.sub t.records drop remaining
    in
    t.records <- nrecords;
    t.size <- remaining;
    t.base <- upto
  end
