open Rt_sim

type lsn = int

type stats = {
  st_started : int;
  st_completed : int;
  st_lost : int;
  st_torn : int;
  st_pending : int;
}

type scan_result = { sc_torn : int; sc_corrupt : int }

(* A stored record plus its on-disk integrity metadata.  [s_crc] is the
   record checksum as written; fault injection flips it to model a
   garbled sector.  [s_chain] chains the checksum to the predecessor's
   chain value, so a scan can detect a record that is individually valid
   but does not belong at its position. *)
type 'r slot = { s_rec : 'r; mutable s_crc : int; s_chain : int }

type 'r t = {
  engine : Engine.t;
  force_latency : Time.t;
  group_window : Time.t;  (* zero = start the device on the first force *)
  owner : int;  (* owning site, for crash points; -1 = anonymous *)
  faults : Storage_faults.t;
  fault_rng : Rng.t option;  (* present only when the profile is on *)
  checksum : 'r -> int;
  mutable records : 'r slot array;  (* index i holds LSN base + i + 1 *)
  mutable size : int;
  mutable base : lsn;  (* number of truncated records *)
  mutable base_chain : int;  (* chain value of the record at LSN [base] *)
  mutable durable : lsn;
  mutable waiting : (lsn * (unit -> unit)) list;  (* reversed *)
  mutable device_busy : bool;
  mutable flush_armed : bool;  (* group-commit window timer pending *)
  mutable epoch : int;  (* bumped on crash to silence in-flight completions *)
  (* The in-flight (or, while [completing], just-finished) device cycle
     covers LSNs (cycle_base, cycle_base + cycle_size]; a torn crash
     keeps a prefix of exactly that range. *)
  mutable cycle_base : lsn;
  mutable cycle_size : int;
  mutable completing : bool;  (* inside the "wal:force-durable" announce *)
  (* Crash-consistent device-cycle accounting: a cycle is [started] when
     the device begins writing, [completed] when its completion event
     runs, [lost] when a crash lands in between, and [torn] when a crash
     leaves only a prefix of it durable.  The invariant
     [started = completed + lost + torn + (busy ? 1 : 0)] holds at every
     instant, so [force_count] (= completed) never counts a cycle whose
     effects a crash discarded. *)
  mutable started : int;
  mutable completed : int;
  mutable lost : int;
  mutable torn : int;
}

(* Deterministic structural checksum.  [Hashtbl.hash] truncates deep
   structures (and polymorphic hashing of ids is linted against); a
   digest of the marshalled bytes covers the whole record. *)
let default_checksum r =
  let d = Digest.string (Marshal.to_string r []) in
  let h = ref 0 in
  String.iter (fun c -> h := (!h * 131) + Char.code c) d;
  !h land max_int

let chain_next prev crc = ((prev * 1000003) + crc + 1) land max_int

let create ?(owner = -1) ?(group_window = Time.zero)
    ?(faults = Storage_faults.off) ?fault_rng ?(checksum = default_checksum)
    engine ~force_latency () =
  if Time.(group_window < zero) then
    invalid_arg "Wal.create: group_window must be non-negative";
  Storage_faults.validate faults;
  {
    engine;
    force_latency;
    group_window;
    owner;
    faults;
    fault_rng = (if Storage_faults.is_off faults then None else fault_rng);
    checksum;
    records = [||];
    size = 0;
    base = 0;
    base_chain = 0;
    durable = 0;
    waiting = [];
    device_busy = false;
    flush_armed = false;
    epoch = 0;
    cycle_base = 0;
    cycle_size = 0;
    completing = false;
    started = 0;
    completed = 0;
    lost = 0;
    torn = 0;
  }

(* Announce a crash point and report whether the log is still alive: the
   hook may crash the owning site synchronously, which bumps our epoch. *)
let reach_crash_point t point =
  if t.owner >= 0 && Engine.crash_hook_installed t.engine then begin
    let epoch = t.epoch in
    Engine.crash_point t.engine ~site:t.owner ~point;
    t.epoch = epoch
  end
  else true

let tail_lsn t = t.base + t.size
let durable_lsn t = t.durable
let first_lsn t = t.base + 1
let length t = t.size
let force_count t = t.completed
let last_cycle_size t = t.cycle_size

let stats t =
  {
    st_started = t.started;
    st_completed = t.completed;
    st_lost = t.lost;
    st_torn = t.torn;
    st_pending = List.length t.waiting;
  }

let append t r =
  let crc = t.checksum r in
  let prev_chain =
    if t.size = 0 then t.base_chain else t.records.(t.size - 1).s_chain
  in
  let slot = { s_rec = r; s_crc = crc; s_chain = chain_next prev_chain crc } in
  let cap = Array.length t.records in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nrecords = Array.make ncap slot in
    Array.blit t.records 0 nrecords 0 t.size;
    t.records <- nrecords
  end;
  t.records.(t.size) <- slot;
  t.size <- t.size + 1;
  tail_lsn t

let fire_satisfied t =
  let satisfied, still =
    List.partition (fun (upto, _) -> upto <= t.durable) t.waiting
  in
  t.waiting <- still;
  (* Fire in request order (list is reversed). *)
  List.iter (fun (_, k) -> k ()) (List.rev satisfied)

let rec start_device_cycle t =
  t.device_busy <- true;
  t.started <- t.started + 1;
  let target = tail_lsn t in
  t.cycle_base <- t.durable;
  t.cycle_size <- target - t.durable;
  let epoch = t.epoch in
  (* Device completion is a real scheduling choice for an explorer: its
     ordering against message deliveries decides which records survive a
     crash.  Anonymous logs stay internal. *)
  let label =
    if t.owner >= 0 then Engine.Timer { site = t.owner; name = "wal-device" }
    else Engine.Internal (-1)
  in
  ignore
    (Engine.schedule_after ~label t.engine t.force_latency (fun () ->
         if t.epoch = epoch then begin
           t.device_busy <- false;
           t.completed <- t.completed + 1;
           if target > t.durable then t.durable <- target;
           (* Crash here: the records are durable but every continuation
              waiting on them is lost.  While the announcement runs the
              just-finished cycle can still tear ([completing]). *)
           t.completing <- true;
           let alive = reach_crash_point t "wal:force-durable" in
           if alive then begin
             t.completing <- false;
             fire_satisfied t;
             (* Anything still waiting targets records appended after this
                cycle started: run another cycle immediately — the cycle
                just finished already was the grouping window.  A fired
                continuation may itself have forced and restarted the
                device; starting a second overlapping cycle would
                double-count the flush (and leave a completion a crash
                can silence without marking it lost). *)
             if t.waiting <> [] && not t.device_busy then
               start_device_cycle t
           end
         end))

(* Group-commit controller: the first force inside a window arms a
   per-site flush timer; every force that arrives before it fires joins
   the same flush, so concurrent transactions share one device cycle.
   With a zero window the device starts immediately (the classical
   per-transaction force, modulo busy-device coalescing). *)
let arm_flush t =
  t.flush_armed <- true;
  let epoch = t.epoch in
  let label =
    if t.owner >= 0 then Engine.Timer { site = t.owner; name = "wal-flush" }
    else Engine.Internal (-1)
  in
  ignore
    (Engine.schedule_after ~label t.engine t.group_window (fun () ->
         if t.epoch = epoch then begin
           t.flush_armed <- false;
           if t.waiting <> [] && not t.device_busy then start_device_cycle t
         end))

let force t ?upto k =
  let upto = Option.value upto ~default:(tail_lsn t) in
  if upto <= t.durable then
    ignore
      (Engine.schedule_after ~label:(Engine.Internal t.owner) t.engine
         Time.zero (fun () -> k ()))
  else if
    (* Crash here: the forced records are still volatile and are lost. *)
    reach_crash_point t "wal:force-volatile"
  then begin
    t.waiting <- (upto, k) :: t.waiting;
    if not t.device_busy then
      if Time.(t.group_window = zero) then start_device_cycle t
      else if not t.flush_armed then arm_flush t
  end

let garble t ~lsn =
  let s = t.records.(lsn - t.base - 1) in
  s.s_crc <- lnot s.s_crc

let crash ?torn t =
  t.epoch <- t.epoch + 1;
  let torn_applied =
    match torn with
    | Some k
      when t.faults.Storage_faults.torn_writes
           && (t.device_busy || t.completing)
           && t.cycle_size > 0 ->
        (* The device was (or had just finished) writing LSNs
           (cycle_base, cycle_base + cycle_size]; exactly [k] of them
           reached the platter.  The rest of the cycle survives as
           garbage sectors — recovery's scan must find and drop them —
           and anything appended after the cycle never hit the device. *)
        let k = max 0 (min k t.cycle_size) in
        let target = t.cycle_base + t.cycle_size in
        if t.completing then t.completed <- t.completed - 1;
        t.torn <- t.torn + 1;
        t.durable <- t.cycle_base + k;
        for lsn = t.durable + 1 to target do
          garble t ~lsn
        done;
        t.size <- target - t.base;
        true
    | _ -> false
  in
  if not torn_applied then begin
    if t.device_busy then t.lost <- t.lost + 1;
    (* Drop the volatile suffix. *)
    let keep = t.durable - t.base in
    t.size <- max 0 keep
  end;
  (* Latent media decay below the durable horizon: each surviving
     durable record is independently corrupted.  Only ever exercised
     with the fault profile on (fault_rng is [None] otherwise). *)
  (match t.fault_rng with
  | Some rng when t.faults.Storage_faults.corrupt_on_crash > 0. ->
      for i = 0 to t.durable - t.base - 1 do
        if Rng.bernoulli rng ~p:t.faults.Storage_faults.corrupt_on_crash then
          garble t ~lsn:(t.base + i + 1)
      done
  | _ -> ());
  t.device_busy <- false;
  t.completing <- false;
  t.flush_armed <- false;
  t.waiting <- []

let corrupt_record t ~lsn =
  if lsn <= t.base || lsn > tail_lsn t then
    invalid_arg "Wal.corrupt_record: LSN not retained";
  garble t ~lsn

let scan t =
  let valid i chain =
    let s = t.records.(i) in
    s.s_crc = t.checksum s.s_rec && s.s_chain = chain_next chain s.s_crc
  in
  let rec first_break i chain =
    if i >= t.size then None
    else if valid i chain then first_break (i + 1) t.records.(i).s_chain
    else Some i
  in
  match first_break 0 t.base_chain with
  | None -> { sc_torn = 0; sc_corrupt = 0 }
  | Some i ->
      (* Truncate at the first checksum/chain break: everything from the
         break on is dropped, even later records that happen to verify —
         the chain is only trustworthy up to the break. *)
      let break_lsn = t.base + i + 1 in
      let dropped = t.size - i in
      let corrupt = max 0 (t.durable - (break_lsn - 1)) in
      t.size <- i;
      if t.durable > break_lsn - 1 then t.durable <- break_lsn - 1;
      { sc_torn = dropped - corrupt; sc_corrupt = corrupt }

let records_from t ~count = List.init count (fun i -> t.records.(i).s_rec)
let durable_records t = records_from t ~count:(max 0 (t.durable - t.base))
let all_records t = records_from t ~count:t.size

let dump t ~record =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "base=%d durable=%d busy=%b armed=%b;" t.base t.durable
       t.device_busy t.flush_armed);
  for i = 0 to t.size - 1 do
    let lsn = t.base + i + 1 in
    let tag = if lsn <= t.durable then 'D' else 'v' in
    Buffer.add_string buf
      (Printf.sprintf "%c%d:%s;" tag lsn (record t.records.(i).s_rec))
  done;
  Buffer.contents buf

let truncate t ~upto =
  if upto > t.durable then invalid_arg "Wal.truncate: beyond durable point";
  let drop = upto - t.base in
  if drop > 0 then begin
    t.base_chain <- t.records.(drop - 1).s_chain;
    let remaining = t.size - drop in
    let nrecords =
      if remaining = 0 then [||] else Array.sub t.records drop remaining
    in
    t.records <- nrecords;
    t.size <- remaining;
    t.base <- upto
  end
