(** Log-bucketed histogram for latency-style positive values.

    Buckets grow geometrically so that relative error is bounded by the
    configured precision while memory stays constant regardless of sample
    count.  Good for long simulations where storing every observation would
    be wasteful. *)

type t

val create : ?precision:float -> unit -> t
(** [precision] is the per-bucket relative width (default 0.02, i.e. 2%
    quantile error). *)

val add : t -> float -> unit
(** Adds a sample.  Zero lands in the underflow bucket (whose
    representative value is 0, so percentiles stay consistent with
    min/max).  Raises [Invalid_argument] on negative or NaN samples —
    they have no representable bucket and would otherwise surface as a
    silent 0 in percentile queries. *)

val count : t -> int

val mean : t -> float

val min : t -> float

val max : t -> float

val percentile : t -> float -> float
(** Bucket-midpoint estimate of the [p]-th percentile, [p] in [0, 100].
    Raises [Invalid_argument] when empty. *)

val merge : t -> t -> t
(** Both histograms must share the same precision. *)

val clear : t -> unit
