type t = {
  precision : float;
  log_base : float;  (* log (1 + precision) *)
  buckets : (int, int) Hashtbl.t;  (* bucket index -> count *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(precision = 0.02) () =
  if precision <= 0. then invalid_arg "Histogram.create: precision must be > 0";
  {
    precision;
    log_base = log (1. +. precision);
    buckets = Hashtbl.create 256;
    n = 0;
    sum = 0.;
    minv = infinity;
    maxv = neg_infinity;
  }

let bucket_of t x =
  if x <= 0. then min_int else int_of_float (Float.floor (log x /. t.log_base))

let value_of t b =
  if b = min_int then 0.
  else begin
    (* Midpoint of the bucket [base^b, base^(b+1)). *)
    let lo = exp (float_of_int b *. t.log_base) in
    let hi = lo *. (1. +. t.precision) in
    (lo +. hi) /. 2.
  end

let add t x =
  (* Negative (and NaN) samples would collapse into the underflow bucket,
     whose representative value is 0 — percentiles would then silently
     report 0 while min/max report the real values.  Reject them instead;
     an exact 0 is still accepted and bucketed at 0. *)
  if Float.is_nan x || x < 0. then
    invalid_arg "Histogram.add: sample must be a non-negative number";
  let b = bucket_of t x in
  let prev = Option.value (Hashtbl.find_opt t.buckets b) ~default:0 in
  Hashtbl.replace t.buckets b (prev + 1);
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n
let min t = if t.n = 0 then 0. else t.minv
let max t = if t.n = 0 then 0. else t.maxv

let percentile t p =
  if t.n = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
  let sorted =
    Hashtbl.fold (fun b c acc -> (b, c) :: acc) t.buckets []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let target = Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.n))) in
  let rec go acc = function
    | [] -> t.maxv
    | (b, c) :: rest ->
        let acc = acc + c in
        if acc >= target then
          (* Clamp the estimate into the observed range for stability. *)
          Float.min t.maxv (Float.max t.minv (value_of t b))
        else go acc rest
  in
  go 0 sorted

let merge a b =
  if a.precision <> b.precision then
    invalid_arg "Histogram.merge: mismatched precision";
  let t = create ~precision:a.precision () in
  let blend src =
    (* Sorted so the merged table's insertion order — and thus any later
       traversal — is independent of the source tables' layouts. *)
    Rt_sim.Det.iter_sorted ~cmp:Int.compare
      (fun bk c ->
        let prev = Option.value (Hashtbl.find_opt t.buckets bk) ~default:0 in
        Hashtbl.replace t.buckets bk (prev + c))
      src.buckets;
    t.n <- t.n + src.n;
    t.sum <- t.sum +. src.sum;
    if src.n > 0 then begin
      if src.minv < t.minv then t.minv <- src.minv;
      if src.maxv > t.maxv then t.maxv <- src.maxv
    end
  in
  blend a;
  blend b;
  t

let clear t =
  Hashtbl.reset t.buckets;
  t.n <- 0;
  t.sum <- 0.;
  t.minv <- infinity;
  t.maxv <- neg_infinity
