(** Basic timestamp ordering with deferred writes and the Thomas write
    rule at commit.

    Timestamps are the transaction ids themselves (total order with
    site tie-break).  A read at timestamp [ts] aborts if a committed
    write with a larger timestamp already installed a newer value; a
    write aborts if a later-stamped transaction already read or wrote
    the key; otherwise operations never block.  Buffered writes install
    at commit unless an even newer write landed first.

    Satisfies {!Scheduler.S}. *)

open Rt_types
open Rt_storage

type t

val name : string

val create : ?history:History.t -> Rt_sim.Engine.t -> Kv.t -> t

val begin_txn : t -> Ids.Txn_id.t -> unit

val read :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  k:(Scheduler.read_result -> unit) ->
  unit

val write :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  value:string ->
  k:(Scheduler.write_result -> unit) ->
  unit

val commit :
  t -> txn:Ids.Txn_id.t -> k:(Scheduler.commit_result -> unit) -> unit
(** Installs surviving buffered writes in sorted key order. *)

val abort : t -> txn:Ids.Txn_id.t -> unit
(** Voluntary abort; idempotent. *)

val stats : t -> Scheduler.stats
