(** Strict two-phase locking over {!Rt_lock.Lock_table}, with a choice
    of deadlock policy: cycle detection on the wait-for graph
    ([`Detect], the default), or the preemptive wound-wait / wait-die
    orderings driven by transaction timestamps.

    Satisfies {!Scheduler.S}; [create] uses the [`Detect] policy. *)

open Rt_types
open Rt_storage

type t

type policy = [ `Detect | `Wound_wait | `Wait_die ]

val name : string

val create : ?history:History.t -> Rt_sim.Engine.t -> Kv.t -> t

val create_with_policy : ?history:History.t -> policy:policy -> Kv.t -> t

val begin_txn : t -> Ids.Txn_id.t -> unit

val read :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  k:(Scheduler.read_result -> unit) ->
  unit

val write :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  value:string ->
  k:(Scheduler.write_result -> unit) ->
  unit

val commit :
  t -> txn:Ids.Txn_id.t -> k:(Scheduler.commit_result -> unit) -> unit
(** Applies buffered writes in sorted key order, then releases all
    locks. *)

val abort : t -> txn:Ids.Txn_id.t -> unit
(** Voluntary abort; idempotent. *)

val stats : t -> Scheduler.stats
