(* Basic timestamp ordering with deferred writes and the Thomas write
   rule at commit.

   Every transaction carries its start timestamp (embedded in the id).
   Reads of a key are rejected when a younger... precisely: a read at
   timestamp ts aborts if a committed write with a larger timestamp
   already installed a newer value (ts < wts); otherwise it reads the
   committed value and advances the key's read timestamp.  A write aborts
   if a later-stamped transaction already read or wrote the key
   (ts < rts or ts < wts); otherwise it is buffered.  At commit, buffered
   writes install unless an even newer write landed first (Thomas write
   rule skips them).  No operation ever blocks. *)

open Rt_types
open Rt_storage
module Tid = Ids.Txn_id

let name = "TO"

(* Timestamps are the transaction ids themselves: total order with site
   tie-break, exactly the classical scheme.  [None] is the initial
   timestamp, smaller than everything. *)
module Time_ts = struct
  type t = Tid.t option

  let compare a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Tid.compare x y

  let ( < ) a b = compare a b < 0
end

type key_ts = {
  mutable rts : Time_ts.t;
  mutable wts : Time_ts.t;  (* committed *)
  mutable pending : Tid.t list;  (* uncommitted buffered writes *)
}

type ctx = {
  writes : (string, string) Hashtbl.t;
  mutable alive : bool;
}

type t = {
  kv : Kv.t;
  table : (string, key_ts) Hashtbl.t;
  ctxs : ctx Ids.Txn_map.t;
  stats : Scheduler.stats;
  history : History.t option;
}

let create ?history _engine kv =
  {
    kv;
    table = Hashtbl.create 256;
    ctxs = Ids.Txn_map.create 64;
    stats = Scheduler.fresh_stats ();
    history;
  }

let stats t = t.stats

let key_ts t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { rts = None; wts = None; pending = [] } in
      Hashtbl.add t.table key e;
      e

let begin_txn t txn =
  t.stats.started <- t.stats.started + 1;
  Ids.Txn_map.replace t.ctxs txn { writes = Hashtbl.create 8; alive = true }

let ctx_of t txn =
  match Ids.Txn_map.find_opt t.ctxs txn with
  | Some c -> c
  | None -> invalid_arg "Timestamp_order: unknown transaction"

let clear_pending t txn ctx =
  Rt_sim.Det.iter_sorted ~cmp:String.compare
    (fun key _ ->
      let e = key_ts t key in
      e.pending <- List.filter (fun p -> not (Tid.equal p txn)) e.pending)
    ctx.writes

let do_abort t txn ctx ~order =
  if ctx.alive then begin
    ctx.alive <- false;
    t.stats.aborted <- t.stats.aborted + 1;
    if order then t.stats.order_aborts <- t.stats.order_aborts + 1;
    Option.iter (fun h -> History.abort h txn) t.history;
    clear_pending t txn ctx;
    Ids.Txn_map.remove t.ctxs txn
  end

let read t ~txn ~key ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Abort
  else
    match Hashtbl.find_opt ctx.writes key with
    | Some v -> k (`Value (Some v))
    | None ->
        let e = key_ts t key in
        let ts = Some txn in
        (* A pending (uncommitted) write with a timestamp at or below ours
           means the value we ought to read is not yet available: restart
           rather than read stale (keeps histories serializable with
           deferred writes). *)
        let blocked_by_pending =
          List.exists (fun p -> Tid.compare p txn <= 0) e.pending
        in
        if Time_ts.(ts < e.wts) || blocked_by_pending then begin
          do_abort t txn ctx ~order:true;
          k `Abort
        end
        else begin
          if Time_ts.(e.rts < ts) then e.rts <- ts;
          Option.iter
            (fun h -> History.read h txn ~key ~version:(Kv.version t.kv key))
            t.history;
          k (`Value (Option.map (fun (i : Kv.item) -> i.value) (Kv.get t.kv key)))
        end

let write t ~txn ~key ~value ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Abort
  else begin
    let e = key_ts t key in
    let ts = Some txn in
    if Time_ts.(ts < e.rts) || Time_ts.(ts < e.wts) then begin
      do_abort t txn ctx ~order:true;
      k `Abort
    end
    else begin
      if not (Hashtbl.mem ctx.writes key) then e.pending <- txn :: e.pending;
      Hashtbl.replace ctx.writes key value;
      k `Ok
    end
  end

let commit t ~txn ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Aborted
  else begin
    let ts = Some txn in
    clear_pending t txn ctx;
    Rt_sim.Det.iter_sorted ~cmp:String.compare
      (fun key value ->
        let e = key_ts t key in
        (* Thomas write rule: skip writes already superseded. *)
        if not Time_ts.(ts < e.wts) then begin
          e.wts <- ts;
          let version = Kv.version t.kv key + 1 in
          Kv.set t.kv ~key ~value ~version;
          Option.iter (fun h -> History.write h txn ~key ~version) t.history
        end)
      ctx.writes;
    t.stats.committed <- t.stats.committed + 1;
    Option.iter (fun h -> History.commit h txn) t.history;
    Ids.Txn_map.remove t.ctxs txn;
    k `Committed
  end

let abort t ~txn =
  match Ids.Txn_map.find_opt t.ctxs txn with
  | Some ctx -> do_abort t txn ctx ~order:false
  | None -> ()
