(** Optimistic concurrency control with backward validation.

    Transactions run against a private buffer, recording the version of
    every item read (and of every item they intend to overwrite).
    Validation at commit re-checks that those versions are still
    current; any change means a conflicting transaction committed in
    the window and the validator aborts.  Validation plus write phase
    is one atomic step — the classical critical-section assumption,
    which holds because the simulator is single-threaded per site.

    Satisfies {!Scheduler.S}. *)

open Rt_types
open Rt_storage

type t

val name : string

val create : ?history:History.t -> Rt_sim.Engine.t -> Kv.t -> t

val begin_txn : t -> Ids.Txn_id.t -> unit

val read :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  k:(Scheduler.read_result -> unit) ->
  unit

val write :
  t ->
  txn:Ids.Txn_id.t ->
  key:string ->
  value:string ->
  k:(Scheduler.write_result -> unit) ->
  unit

val commit :
  t -> txn:Ids.Txn_id.t -> k:(Scheduler.commit_result -> unit) -> unit
(** Validates, then applies buffered writes in sorted key order (replay
    determinism) before reporting [`Committed]. *)

val abort : t -> txn:Ids.Txn_id.t -> unit
(** Voluntary abort; idempotent. *)

val stats : t -> Scheduler.stats
