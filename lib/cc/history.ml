open Rt_types
module Tid = Ids.Txn_id

type access = { txn : Tid.t; version : int }

type t = {
  mutable reads : (string * access) list;  (* key, reader, version read *)
  mutable writes : (string * access) list;  (* key, writer, version made *)
  mutable committed : Tid.t list;
  mutable aborted : Tid.t list;
}

let create () = { reads = []; writes = []; committed = []; aborted = [] }
let read t txn ~key ~version = t.reads <- (key, { txn; version }) :: t.reads
let write t txn ~key ~version = t.writes <- (key, { txn; version }) :: t.writes
let commit t txn = t.committed <- txn :: t.committed
let abort t txn = t.aborted <- txn :: t.aborted
let committed t = List.sort_uniq Tid.compare t.committed

module Tid_set = Set.Make (Tid)

(* Chain edges give the same reachability as the full conflict relation:
   per key, writers ordered by version form a ww chain; a read of version
   v hangs off its writer (wr) and points at the next writer (rw).  This
   keeps the check near-linear instead of quadratic in history size. *)
let conflict_edges t =
  let committed_set = Tid_set.of_list t.committed in
  let live (a : access) = Tid_set.mem a.txn committed_set in
  (* key -> sorted array of committed writes *)
  let writes_by_key : (string, access list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (k, w) ->
      if live w then
        match Hashtbl.find_opt writes_by_key k with
        | Some r -> r := w :: !r
        | None -> Hashtbl.add writes_by_key k (ref [ w ]))
    t.writes;
  let sorted_writes = Hashtbl.create 64 in
  Rt_sim.Det.iter_sorted ~cmp:String.compare
    (fun k r ->
      let arr = Array.of_list !r in
      Array.sort (fun a b -> Int.compare a.version b.version) arr;
      Hashtbl.replace sorted_writes k arr)
    writes_by_key;
  let edges = ref [] in
  let add a b = if not (Tid.equal a b) then edges := (a, b) :: !edges in
  (* ww chain per key. *)
  Rt_sim.Det.iter_sorted ~cmp:String.compare
    (fun _k arr ->
      for i = 0 to Array.length arr - 2 do
        add arr.(i).txn arr.(i + 1).txn
      done)
    sorted_writes;
  (* wr and rw per read: binary-search the key's write array. *)
  let next_write_after arr version =
    (* Smallest index with arr.(i).version > version. *)
    let lo = ref 0 and hi = ref (Array.length arr) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid).version > version then hi := mid else lo := mid + 1
    done;
    !lo
  in
  List.iter
    (fun (k, r) ->
      if live r then
        match Hashtbl.find_opt sorted_writes k with
        | None -> ()
        | Some arr ->
            (* wr: the writer of the version read (if committed/known). *)
            (match
               Array.find_opt (fun w -> w.version = r.version) arr
             with
            | Some w -> add w.txn r.txn
            | None -> ());
            (* rw: the first later writer (reaches the rest via ww). *)
            let i = next_write_after arr r.version in
            if i < Array.length arr then add r.txn arr.(i).txn)
    t.reads;
  let edge_compare (a1, b1) (a2, b2) =
    let c = Tid.compare a1 a2 in
    if c <> 0 then c else Tid.compare b1 b2
  in
  List.sort_uniq edge_compare !edges

let cycle t = Rt_lock.Wfg.find_cycle (Rt_lock.Wfg.of_edges (conflict_edges t))
let serializable t = cycle t = None
