(* Strict two-phase locking with a choice of deadlock-handling policy.

   Reads take shared locks, writes take exclusive locks (upgrading when
   the transaction already reads the key); everything is held to commit
   or abort.

   Policies (Rosenkrantz/Stearns/Lewis plus detection):
   - [`Detect] (default): when a request blocks, the wait-for graph is
     checked and the youngest transaction in any cycle aborts.
   - [`Wound_wait]: an older requester wounds (aborts) younger
     conflicting holders; a younger requester waits.  Deadlock-free.
   - [`Wait_die]: an older requester waits; a younger requester dies
     immediately.  Deadlock-free.

   Either way, the caller of a blocked operation gets exactly one of its
   grant continuation or an [`Abort]. *)

open Rt_types
open Rt_storage
module Tid = Ids.Txn_id

let name = "2PL"

type ctx = {
  writes : (string, string) Hashtbl.t;
  mutable alive : bool;
  (* Continuation to fire with an abort if this transaction is killed
     while waiting for a lock. *)
  mutable on_victim : (unit -> unit) option;
}

type policy = [ `Detect | `Wound_wait | `Wait_die ]

type t = {
  kv : Kv.t;
  locks : Rt_lock.Lock_table.t;
  ctxs : ctx Ids.Txn_map.t;
  stats : Scheduler.stats;
  history : History.t option;
  policy : policy;
}

let create_with_policy ?history ~policy kv =
  {
    kv;
    locks = Rt_lock.Lock_table.create ();
    ctxs = Ids.Txn_map.create 64;
    stats = Scheduler.fresh_stats ();
    history;
    policy;
  }

let create ?history _engine kv = create_with_policy ?history ~policy:`Detect kv

let stats t = t.stats

(* A transaction can be wounded (aborted and forgotten) while its client
   is between operations; the client discovers this on its next call, so
   an unknown transaction answers "aborted" rather than raising. *)
let ctx_of t txn = Ids.Txn_map.find_opt t.ctxs txn

let begin_txn t txn =
  t.stats.started <- t.stats.started + 1;
  Ids.Txn_map.replace t.ctxs txn
    { writes = Hashtbl.create 8; alive = true; on_victim = None }

let forget t txn = Ids.Txn_map.remove t.ctxs txn

let abort_internal t txn ~deadlock =
  match Ids.Txn_map.find_opt t.ctxs txn with
  | None -> ()
  | Some ctx when not ctx.alive -> ()
  | Some ctx ->
      ctx.alive <- false;
      t.stats.aborted <- t.stats.aborted + 1;
      if deadlock then t.stats.deadlock_aborts <- t.stats.deadlock_aborts + 1;
      Option.iter (fun h -> History.abort h txn) t.history;
      (* Releasing also drops any queued request, so the stored grant
         continuation can never fire afterwards. *)
      Rt_lock.Lock_table.release_all t.locks ~txn;
      let k = ctx.on_victim in
      ctx.on_victim <- None;
      forget t txn;
      Option.iter (fun k -> k ()) k

(* Run detection until no cycle remains (aborting one victim can reveal
   another cycle only in pathological cases, but be thorough). *)
let resolve_deadlocks t =
  let rec go () =
    match Rt_lock.Lock_table.detect_deadlock t.locks with
    | None -> ()
    | Some victim ->
        abort_internal t victim ~deadlock:true;
        go ()
  in
  go ()

(* Transactions a new request may end up waiting behind: holders whose
   mode conflicts, plus everything already queued (FIFO order makes any
   queued request a potential blocker regardless of mode). *)
let blockers t ~txn ~key ~mode =
  let holders =
    Rt_lock.Lock_table.holders t.locks ~key
    |> List.filter (fun (h, m) ->
           (not (Tid.equal h txn))
           &&
           match (mode, m) with
           | Rt_lock.Lock_table.Shared, Rt_lock.Lock_table.Shared -> false
           | _ -> true)
    |> List.map fst
  in
  let waiters =
    Rt_lock.Lock_table.waiters t.locks ~key
    |> List.map fst
    |> List.filter (fun w -> not (Tid.equal w txn))
  in
  holders @ waiters

let acquire t ctx ~txn ~key ~mode ~granted ~aborted =
  (* Prevention policies act before queuing: with them, every wait edge
     points from an older to a younger transaction (wound-wait) or from a
     younger to an older one (wait-die), so no cycle can ever form. *)
  (match t.policy with
  | `Detect -> ()
  | `Wound_wait ->
      (* The older requester wounds younger parties out of its way. *)
      List.iter
        (fun other ->
          if Tid.older txn other then abort_internal t other ~deadlock:true)
        (blockers t ~txn ~key ~mode)
  | `Wait_die -> ());
  let die_instead_of_wait () =
    match t.policy with
    | `Wait_die ->
        (* A younger requester facing an older party dies. *)
        List.exists (fun other -> Tid.older other txn)
          (blockers t ~txn ~key ~mode)
    | `Detect | `Wound_wait -> false
  in
  if ctx.alive && die_instead_of_wait () then begin
    abort_internal t txn ~deadlock:true;
    aborted ()
  end
  else if not ctx.alive then aborted ()
  else
    match
      Rt_lock.Lock_table.acquire t.locks ~txn ~key ~mode ~on_grant:(fun () ->
          ctx.on_victim <- None;
          if ctx.alive then granted ())
    with
    | Granted -> granted ()
    | Waiting -> (
        ctx.on_victim <- Some aborted;
        match t.policy with
        | `Detect -> resolve_deadlocks t
        | `Wound_wait | `Wait_die -> ())

let read t ~txn ~key ~k =
  match ctx_of t txn with
  | None -> k `Abort
  | Some ctx ->
  let granted () =
    let value =
      match Hashtbl.find_opt ctx.writes key with
      | Some v -> Some v
      | None ->
          let item = Kv.get t.kv key in
          Option.iter
            (fun h ->
              History.read h txn ~key ~version:(Kv.version t.kv key))
            t.history;
          Option.map (fun (i : Kv.item) -> i.value) item
    in
    k (`Value value)
  in
  acquire t ctx ~txn ~key ~mode:Shared ~granted ~aborted:(fun () -> k `Abort)

let write t ~txn ~key ~value ~k =
  match ctx_of t txn with
  | None -> k `Abort
  | Some ctx ->
  let granted () =
    Hashtbl.replace ctx.writes key value;
    k `Ok
  in
  acquire t ctx ~txn ~key ~mode:Exclusive ~granted ~aborted:(fun () ->
      k `Abort)

let commit t ~txn ~k =
  match ctx_of t txn with
  | None -> k `Aborted
  | Some ctx ->
  if not ctx.alive then k `Aborted
  else begin
    Rt_sim.Det.iter_sorted ~cmp:String.compare
      (fun key value ->
        let version = Kv.version t.kv key + 1 in
        Kv.set t.kv ~key ~value ~version;
        Option.iter (fun h -> History.write h txn ~key ~version) t.history)
      ctx.writes;
    t.stats.committed <- t.stats.committed + 1;
    Option.iter (fun h -> History.commit h txn) t.history;
    Rt_lock.Lock_table.release_all t.locks ~txn;
    forget t txn;
    k `Committed
  end

let abort t ~txn = abort_internal t txn ~deadlock:false
