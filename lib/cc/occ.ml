(* Optimistic concurrency control with backward validation.

   Transactions execute against a private buffer, recording the version
   of every item they read (and of every item they intend to overwrite).
   Validation at commit re-checks that all those versions are still
   current; any change means a conflicting transaction committed in the
   window, and the validating transaction aborts.  Validation plus write
   phase is a single atomic step (the simulator is single-threaded per
   site), which is the classical critical-section assumption. *)

open Rt_types
open Rt_storage
module Tid = Ids.Txn_id

let name = "OCC"

type ctx = {
  reads : (string, int) Hashtbl.t;  (* key -> version observed *)
  writes : (string, string) Hashtbl.t;
  mutable alive : bool;
}

type t = {
  kv : Kv.t;
  ctxs : ctx Ids.Txn_map.t;
  stats : Scheduler.stats;
  history : History.t option;
}

let create ?history _engine kv =
  {
    kv;
    ctxs = Ids.Txn_map.create 64;
    stats = Scheduler.fresh_stats ();
    history;
  }

let stats t = t.stats

let begin_txn t txn =
  t.stats.started <- t.stats.started + 1;
  Ids.Txn_map.replace t.ctxs txn
    { reads = Hashtbl.create 8; writes = Hashtbl.create 8; alive = true }

let ctx_of t txn =
  match Ids.Txn_map.find_opt t.ctxs txn with
  | Some c -> c
  | None -> invalid_arg "Occ: unknown transaction"

let observe ctx t key =
  if not (Hashtbl.mem ctx.reads key) then
    Hashtbl.replace ctx.reads key (Kv.version t.kv key)

let read t ~txn ~key ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Abort
  else
    match Hashtbl.find_opt ctx.writes key with
    | Some v -> k (`Value (Some v))
    | None ->
        observe ctx t key;
        k (`Value (Option.map (fun (i : Kv.item) -> i.value) (Kv.get t.kv key)))

let write t ~txn ~key ~value ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Abort
  else begin
    (* Record the overwritten version so blind write-write conflicts are
       also caught at validation (first committer wins). *)
    observe ctx t key;
    Hashtbl.replace ctx.writes key value;
    k `Ok
  end

let validate t ctx =
  (* rt_lint: allow deterministic-iteration -- order-insensitive conjunction *)
  Hashtbl.fold
    (fun key version ok -> ok && Kv.version t.kv key = version)
    ctx.reads true

let commit t ~txn ~k =
  let ctx = ctx_of t txn in
  if not ctx.alive then k `Aborted
  else if not (validate t ctx) then begin
    ctx.alive <- false;
    t.stats.aborted <- t.stats.aborted + 1;
    t.stats.validation_aborts <- t.stats.validation_aborts + 1;
    Option.iter (fun h -> History.abort h txn) t.history;
    Ids.Txn_map.remove t.ctxs txn;
    k `Aborted
  end
  else begin
    Option.iter
      (fun h ->
        Rt_sim.Det.iter_sorted ~cmp:String.compare
          (fun key version ->
            if not (Hashtbl.mem ctx.writes key) then
              History.read h txn ~key ~version)
          ctx.reads)
      t.history;
    Rt_sim.Det.iter_sorted ~cmp:String.compare
      (fun key value ->
        let version = Kv.version t.kv key + 1 in
        Kv.set t.kv ~key ~value ~version;
        Option.iter (fun h -> History.write h txn ~key ~version) t.history)
      ctx.writes;
    t.stats.committed <- t.stats.committed + 1;
    Option.iter (fun h -> History.commit h txn) t.history;
    Ids.Txn_map.remove t.ctxs txn;
    k `Committed
  end

let abort t ~txn =
  match Ids.Txn_map.find_opt t.ctxs txn with
  | None -> ()
  | Some ctx ->
      if ctx.alive then begin
        ctx.alive <- false;
        t.stats.aborted <- t.stats.aborted + 1;
        Option.iter (fun h -> History.abort h txn) t.history
      end;
      Ids.Txn_map.remove t.ctxs txn
