open Rt_sim
open Rt_types

type stats = {
  (* rt_lint: allow fingerprint-coverage -- workload-driver tallies, not simulated site state *)
  mutable committed : int;
  mutable aborted : int;
  mutable retries : int;
}

type t = {
  cluster : Cluster.t;
  site : Ids.site_id;
  gen : Rt_workload.Mix.gen;
  think : Time.t;
  retry_aborts : bool;
  ordered_keys : bool;
  route_by_shard : bool;
  rng : Rng.t;
  stats : stats;
  mutable running : bool;
}

let create ~cluster ~site ~mix ?(think = Time.zero) ?(retry_aborts = true)
    ?(ordered_keys = true) ?(route_by_shard = false) ?rng () =
  let rng =
    match rng with
    | Some r -> r
    | None -> Rng.split (Engine.rng (Cluster.engine cluster))
  in
  {
    cluster;
    site;
    gen = Rt_workload.Mix.generator mix (Rng.split rng);
    think;
    retry_aborts;
    ordered_keys;
    route_by_shard;
    rng;
    stats = { committed = 0; aborted = 0; retries = 0 };
    running = false;
  }

let stats t = t.stats
let stop t = t.running <- false

(* Capped exponential backoff with jitter: attempt [k] (1-based) waits a
   uniform draw from [delay/2, delay] where delay = min(cap, base * 2^(k-1)).
   The jitter comes from the client's own split RNG, so fleets stay
   deterministic per seed while avoiding retry convoys. *)
let backoff t ~attempt =
  let config = Cluster.config t.cluster in
  let base = config.Config.retry_backoff_base in
  let cap = config.Config.retry_backoff_cap in
  let delay =
    (* Shift-based doubling with an overflow guard: beyond the cap (or 62
       doublings) the exponential is irrelevant anyway. *)
    let exp = min (attempt - 1) 62 in
    if exp >= 62 || base > cap / (1 lsl exp) then cap
    else base * (1 lsl exp)
  in
  Rng.uniform_time t.rng ~lo:(delay / 2) ~hi:delay

(* Shard-aware routing: coordinate at a replica of the first key's
   shard, so single-shard transactions avoid cross-site data rounds.
   The client's home site spreads load deterministically over the
   shard's replicas.  Off by default — the classical experiments submit
   to the home site regardless of placement. *)
let coordinator_for t ops =
  if not t.route_by_shard then t.site
  else
    match ops with
    | [] -> t.site
    | op :: _ ->
        let replicas =
          Rt_placement.Placement.replicas_of_key
            (Cluster.placement t.cluster)
            (Rt_workload.Mix.op_key op)
        in
        List.nth replicas (t.site mod List.length replicas)

let rec run_txn t ~site ~attempt ops =
  if t.running then
    Cluster.submit t.cluster ~site ~ops ~k:(fun outcome ->
        let engine = Cluster.engine t.cluster in
        match outcome with
        | Site.Committed ->
            t.stats.committed <- t.stats.committed + 1;
            ignore
              (Engine.schedule_after engine t.think (fun () -> next_txn t))
        | Site.Aborted _ ->
            t.stats.aborted <- t.stats.aborted + 1;
            if t.retry_aborts then begin
              t.stats.retries <- t.stats.retries + 1;
              ignore
                (Engine.schedule_after engine (backoff t ~attempt) (fun () ->
                     run_txn t ~site ~attempt:(attempt + 1) ops))
            end
            else
              (* Aborts can complete synchronously (e.g. no quorum under a
                 partition), so always put simulated time between
                 attempts or a zero think time spins the clock. *)
              ignore
                (Engine.schedule_after engine
                   (Time.max t.think (backoff t ~attempt))
                   (fun () -> next_txn t)))

and next_txn t =
  if t.running then begin
    let ops =
      if t.ordered_keys then Rt_workload.Mix.next_txn t.gen
      else Rt_workload.Mix.next_txn_unordered t.gen
    in
    run_txn t ~site:(coordinator_for t ops) ~attempt:1 ops
  end

let start t =
  if not t.running then begin
    t.running <- true;
    (* Desynchronise client start instants. *)
    let jitter = Rng.uniform_time t.rng ~lo:0 ~hi:(Time.us 100) in
    ignore
      (Engine.schedule_after (Cluster.engine t.cluster) jitter (fun () ->
           next_txn t))
  end

let start_fleet ~cluster ~clients ~mix ?think ?retry_aborts ?ordered_keys
    ?route_by_shard () =
  let sites = (Cluster.config cluster).sites in
  List.init clients (fun i ->
      let c =
        create ~cluster ~site:(i mod sites) ~mix ?think ?retry_aborts
          ?ordered_keys ?route_by_shard ()
      in
      start c;
      c)

let total clients =
  let acc = { committed = 0; aborted = 0; retries = 0 } in
  List.iter
    (fun c ->
      acc.committed <- acc.committed + c.stats.committed;
      acc.aborted <- acc.aborted + c.stats.aborted;
      acc.retries <- acc.retries + c.stats.retries)
    clients;
  acc
