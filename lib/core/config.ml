open Rt_sim

type commit_protocol =
  | Two_phase of Rt_commit.Two_pc.variant
  | Three_phase
  | Quorum_commit of { commit_quorum : int option; abort_quorum : int option }
  | Paxos_commit of { f : int option }

let commit_protocol_name = function
  | Two_phase v -> Rt_commit.Two_pc.variant_name v
  | Three_phase -> "3PC"
  | Quorum_commit _ -> "QC"
  | Paxos_commit _ -> "Paxos"

type concurrency = Locking | Timestamp

let concurrency_name = function
  | Locking -> "2PL"
  | Timestamp -> "TO"

type t = {
  sites : int;
  concurrency : concurrency;
  commit_protocol : commit_protocol;
  replica_control : Rt_replica.Replica_control.t;
  placement : Rt_placement.Placement.t option;
  link : Rt_net.Net.link;
  force_latency : Time.t;
  group_commit_window : Time.t;
  batch_window : Time.t option;
  lock_wait_timeout : Time.t;
  op_timeout : Time.t;
  commit_timeouts : Rt_commit.Protocol.timeouts;
  retry_backoff_base : Time.t;
  retry_backoff_cap : Time.t;
  heartbeat_interval : Time.t;
  heartbeat_miss : int;
  recovery_per_record : Time.t;
  checkpoint_every : int;
  orphan_window_factor : int;
  probe_deadlocks : bool;
  read_only_optimization : bool;
  storage_faults : Rt_storage.Storage_faults.t;
  px_early_stash_cap : int;
  seed : int;
}

let default ?(sites = 3) () =
  {
    sites;
    concurrency = Locking;
    commit_protocol = Two_phase Rt_commit.Two_pc.Presumed_abort;
    replica_control = Rt_replica.Replica_control.rowa;
    placement = None;
    link =
      Rt_net.Net.reliable_link
        (Rt_net.Latency.Exponential { min = Time.us 20; mean = Time.us 100 });
    force_latency = Time.us 50;
    group_commit_window = Time.zero;
    batch_window = None;
    lock_wait_timeout = Time.ms 20;
    op_timeout = Time.ms 40;
    commit_timeouts =
      {
        vote_collect = Time.ms 50;
        decision_wait = Time.ms 50;
        resend_every = Time.ms 100;
      };
    retry_backoff_base = Time.us 400;
    retry_backoff_cap = Time.ms 25;
    heartbeat_interval = Time.ms 10;
    heartbeat_miss = 3;
    recovery_per_record = Time.us 5;
    checkpoint_every = 0;
    orphan_window_factor = 10;
    probe_deadlocks = false;
    read_only_optimization = false;
    storage_faults = Rt_storage.Storage_faults.off;
    px_early_stash_cap = 32;
    seed = 0;
  }

let placement t =
  match t.placement with
  | Some p -> p
  | None -> Rt_placement.Placement.full ~sites:t.sites

let validate t =
  if t.sites <= 0 then invalid_arg "Config: sites must be positive";
  if t.orphan_window_factor < 1 then
    invalid_arg "Config: orphan_window_factor must be at least 1";
  let non_negative name v =
    if Rt_sim.Time.(v < zero) then
      invalid_arg (Printf.sprintf "Config: %s must be non-negative" name)
  in
  non_negative "force_latency" t.force_latency;
  non_negative "group_commit_window" t.group_commit_window;
  (match t.batch_window with
  | None -> ()
  | Some w ->
      if Rt_sim.Time.(w <= zero) then
        invalid_arg "Config: batch_window must be positive when set");
  non_negative "lock_wait_timeout" t.lock_wait_timeout;
  non_negative "op_timeout" t.op_timeout;
  non_negative "commit_timeouts.vote_collect" t.commit_timeouts.vote_collect;
  non_negative "commit_timeouts.decision_wait" t.commit_timeouts.decision_wait;
  non_negative "commit_timeouts.resend_every" t.commit_timeouts.resend_every;
  non_negative "recovery_per_record" t.recovery_per_record;
  if Rt_sim.Time.(t.retry_backoff_base <= zero) then
    invalid_arg "Config: retry_backoff_base must be positive";
  if Rt_sim.Time.(t.retry_backoff_cap <= zero) then
    invalid_arg "Config: retry_backoff_cap must be positive";
  if Rt_sim.Time.(t.retry_backoff_cap < t.retry_backoff_base) then
    invalid_arg "Config: retry_backoff_cap must be at least retry_backoff_base";
  if Rt_sim.Time.(t.heartbeat_interval <= zero) then
    invalid_arg "Config: heartbeat_interval must be positive";
  if t.heartbeat_miss < 1 then
    invalid_arg "Config: heartbeat_miss must be at least 1";
  if t.checkpoint_every < 0 then
    invalid_arg "Config: checkpoint_every must be non-negative";
  Rt_storage.Storage_faults.validate t.storage_faults;
  if t.px_early_stash_cap <= 0 then
    invalid_arg "Config: px_early_stash_cap must be positive";
  (match t.placement with
  | None -> ()
  | Some p ->
      (* Placement.create already rejects degree < 1 and degree > sites of
         its own site count; here the placement must also describe *this*
         cluster. *)
      if Rt_placement.Placement.sites p <> t.sites then
        invalid_arg "Config: placement site count does not match sites";
      if Rt_placement.Placement.degree p > t.sites then
        invalid_arg "Config: replication degree exceeds site count";
      if Rt_placement.Placement.degree p < 1 then
        invalid_arg "Config: replication degree must be at least 1");
  (match t.replica_control with
  | Rt_replica.Replica_control.Primary_copy p ->
      if p < 0 || p >= t.sites then
        invalid_arg "Config: primary site out of range"
  | Rt_replica.Replica_control.Quorum v ->
      if Rt_quorum.Votes.sites v <> t.sites then
        invalid_arg "Config: quorum vote assignment does not match site count"
  | Rt_replica.Replica_control.Rowa
  | Rt_replica.Replica_control.Available_copies ->
      ());
  match t.commit_protocol with
  | Quorum_commit { commit_quorum; abort_quorum } ->
      let majority = (t.sites / 2) + 1 in
      let vc = Option.value commit_quorum ~default:majority in
      let va = Option.value abort_quorum ~default:majority in
      if vc < 1 || va < 1 then
        invalid_arg "Config: commit/abort quorums must be positive";
      if vc + va <= t.sites then
        invalid_arg "Config: commit/abort quorums must overlap"
  | Paxos_commit { f } -> (
      (* 2f+1 acceptors are drawn from the origin site plus the other
         participants; any two (f+1)-quorums of them intersect. *)
      match f with
      | None -> ()
      | Some f ->
          if f < 0 then invalid_arg "Config: paxos F must be non-negative";
          if (2 * f) + 1 > t.sites then
            invalid_arg
              "Config: paxos F needs 2F+1 acceptor sites (F <= (sites-1)/2)")
  | Two_phase _ | Three_phase -> ()
