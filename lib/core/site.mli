(** A replica site: the composition the paper's system runs at every node.

    Each site owns a versioned store, a write-ahead log on simulated
    stable storage, a strict-2PL lock table, a heartbeat failure detector,
    and — per transaction — commitment-protocol state machines (as both
    coordinator for locally submitted transactions and participant for
    everyone's).  The site interprets the pure machines' actions: it ships
    their messages, performs their forced log writes, runs their timers,
    and applies their decisions to the store.

    Crash/recovery follows the storage discipline: a crash discards the
    store, the lock table, and every in-memory machine; recovery restores
    the last checkpoint, replays the durable log (taking simulated time
    proportional to its length), rebuilds termination machines for
    in-doubt transactions, and — for replica-control protocols that need
    it — refuses reads until a catch-up transfer from a live peer
    completes. *)

open Rt_sim
open Rt_types

type abort_reason =
  | Unavailable  (** No read/write plan under the current up-set. *)
  | Lock_conflict  (** A participant refused: lock timeout. *)
  | Deadlock  (** Chosen as a local deadlock victim. *)
  | Order_conflict
      (** Timestamp-ordering rejection; restart acquires a newer stamp. *)
  | Op_timeout  (** A read/write round never completed. *)
  | Protocol_abort  (** The commit protocol decided abort. *)
  | Site_down  (** Submitted to a crashed site. *)

val abort_reason_label : abort_reason -> string

type outcome = Committed | Aborted of abort_reason

type t

val create :
  engine:Engine.t ->
  id:Ids.site_id ->
  config:Config.t ->
  send:(dst:Ids.site_id -> Msg.t -> unit) ->
  counters:Rt_metrics.Counter.t ->
  t
(** [send] is wired to the simulated network by the cluster; the site
    never sends to itself through it. *)

val id : t -> Ids.site_id

val placement : t -> Rt_placement.Placement.t
(** The effective placement this site routes by (the configured one, or
    degenerate full replication). *)

val all_site_ids : t -> Ids.site_id list
(** Every site id in the cluster, ascending.  Precomputed at [create];
    callers on hot paths may hold onto it freely. *)

val start : t -> unit
(** Begin heartbeating.  Call once after every site is registered. *)

val receive : t -> src:Ids.site_id -> Msg.t -> unit
(** Network delivery entry point. *)

val trace_deliveries : bool ref
(** When set, keep a small ring buffer of recent deliveries (all sites). *)

val dump_recent : unit -> string list
(** The ring buffer contents, oldest first (debugging aid). *)

val submit :
  t -> ops:Rt_workload.Mix.op list -> k:(outcome -> unit) -> unit
(** Run a transaction with this site as coordinator.  [k] fires exactly
    once, when the outcome is known at the coordinator. *)

(** {1 Interactive transactions}

    The batch [submit] executes a fixed operation list; interactive
    transactions let application code compute later operations from
    earlier reads (read-modify-write), which is what real clients need
    for e.g. balance transfers.  The handle is single-threaded: issue one
    operation at a time and wait for its continuation. *)

type txn

val begin_txn : t -> txn option
(** [None] when the site is down or catching up. *)

val txn_read :
  t -> txn -> key:string ->
  k:((string option, abort_reason) Result.t -> unit) -> unit
(** [Ok None] means the key does not exist.  [Error r]: the transaction
    has been aborted (resources already released); stop using the
    handle. *)

val txn_write :
  t -> txn -> key:string -> value:string ->
  k:((unit, abort_reason) Result.t -> unit) -> unit

val txn_commit : t -> txn -> k:(outcome -> unit) -> unit
(** Run the configured atomic-commitment protocol over every site the
    transaction touched. *)

val txn_abort : t -> txn -> unit
(** Voluntary abort; idempotent, and a no-op after commit. *)

val is_up : t -> bool

val serving : t -> bool
(** Up and not in the post-recovery catch-up window. *)

val up_view : t -> Ids.site_id list
(** Sites this site's failure detector believes operational (self
    included when up). *)

val crash : ?torn:int -> t -> unit
(** Power off: volatile state (store, locks, machines, timers) is lost;
    only the durable log prefix and checkpoints survive.

    [torn] (honoured only when [Config.storage_faults.torn_writes] is on
    and a WAL device cycle is in flight) tears the cycle: exactly [torn]
    of its records survive as durable, the rest remain on disk as
    garbage for the recovery scan to find.  With [checkpoint_corrupt]
    armed the crash may also corrupt the latest (non-bootstrap)
    checkpoint. *)

val crash_recovering : ?torn:int -> t -> unit
(** Crash a site that is still inside its recovery replay window: the
    pending up-transition is cancelled and the partially-replayed store
    discarded, so the next {!recover} starts from scratch (recovery is
    idempotent).  On an up site this is an ordinary {!crash}. *)

val recover : t -> unit
(** Restart a crashed site.  The WAL is integrity-scanned first (torn
    tails truncated, sub-horizon corruption counted loudly), the latest
    valid checkpoint is installed ({!Rt_storage.Checkpoint.restore_validated}),
    and the durable log is replayed.  Replay takes simulated time;
    termination for in-doubt transactions and any catch-up transfer
    start afterwards. *)

val corrupt_checkpoint : t -> unit
(** Deterministic fault injection: corrupt the latest checkpoint so the
    next recovery must fall back.  No-op when only the bootstrap
    checkpoint exists (its preloaded data is in no log record, so the
    loss would be unrecoverable by design). *)

val corrupt_wal_record : t -> lsn:Rt_storage.Wal.lsn -> unit
(** Deterministic fault injection: break the stored checksum of one
    retained log record.  If the record lies below the durable horizon,
    the next recovery scan truncates there and reports the loss via
    {!corruption_detected}. *)

val kv : t -> Rt_storage.Kv.t
(** The live store (test/verification access). *)

val preload : t -> entries:(string * string) list -> unit
(** Install initial data (version 1) directly into the store and record
    it as a checkpoint so it survives crashes — the simulated equivalent
    of a database that existed before the experiment. *)

val wal_forces : t -> int
(** Completed (crash-consistent) WAL device cycles. *)

val wal_stats : t -> Rt_storage.Wal.stats
(** Full device-cycle accounting; the sweep audit asserts its
    crash-consistency invariant. *)

val wal_last_cycle_size : t -> int
(** Records covered by the WAL's current (or most recent) device cycle;
    the [n] a torn-write sweep enumerates crash-after-[k] points from. *)

val torn_truncated : t -> int
(** Torn-tail records recovery scans have dropped (clean truncation). *)

val corruption_detected : t -> int
(** Durable log records recovery scans found corrupt and refused to
    replay.  Data loss: the audit reports any non-zero value as a
    storage violation. *)

val checkpoint_fallbacks : t -> int
(** Recoveries that could not install the latest checkpoint (fell back
    to the previous snapshot or full log replay). *)

val log_length : t -> int

val active_participants : t -> int

val participant_debug : t -> string list
(** One line per unresolved participant transaction (diagnostics). *)

val blocked_participants : t -> int
(** Participants currently reporting themselves blocked (2PC uncertainty
    window with a dead coordinator, or quorum-commit minority). *)

val decided_txns : t -> (Ids.Txn_id.t * Rt_commit.Protocol.decision) list
(** Transactions this site genuinely decided (delivered locally or settled
    from the durable log on recovery), in transaction-id order.  Excludes
    the abort pledges made for transactions the site never took part in,
    so cross-site comparison of these lists is exactly the agreement
    invariant. *)

val held_locks : t -> int
(** Keys with at least one lock holder or waiter (orphaned-lock audit). *)

val lock_debug : t -> string list
(** One line per locked key with its holders and waiters (diagnostics). *)

val pending_protocol_timers : t -> int
(** Commit-protocol timers currently scheduled across all live coordinator
    and participant contexts (undrained-timer audit). *)

val latencies : t -> Rt_metrics.Sample.t
(** Commit latencies (seconds) of transactions coordinated here. *)

val dump : t -> string
(** Canonical rendering of the complete behavioural state of the site —
    store, log, checkpoints, locks, timestamp-ordering stamps, every
    live commitment context including the full machine state, decision
    tables, and the failure-detector view — with every hash table in
    sorted order, so dumps are insertion-history-independent.  Two sites
    with equal dumps react identically to every future input. *)

val fingerprint : t -> string
(** Hex digest of {!dump}: the site's contribution to the explorer's
    state-dedup key. *)
