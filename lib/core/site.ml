open Rt_sim
open Rt_types
module P = Rt_commit.Protocol
module Erased = Rt_commit.Erased
module Two_pc = Rt_commit.Two_pc
module Three_pc = Rt_commit.Three_pc
module Quorum_commit = Rt_commit.Quorum_commit
module Paxos_commit = Rt_commit.Paxos_commit
module RC = Rt_replica.Replica_control
module Lock = Rt_lock.Lock_table
module Kv = Rt_storage.Kv
module Wal = Rt_storage.Wal
module Storage_faults = Rt_storage.Storage_faults
module LR = Rt_storage.Log_record
module Checkpoint = Rt_storage.Checkpoint
module Recovery = Rt_storage.Recovery
module Heartbeat = Rt_member.Heartbeat
module Counter = Rt_metrics.Counter
module Sample = Rt_metrics.Sample
module Placement = Rt_placement.Placement
module Tid = Ids.Txn_id
module Sset = Set.Make (Int)

type abort_reason =
  | Unavailable
  | Lock_conflict
  | Deadlock
  | Order_conflict
  | Op_timeout
  | Protocol_abort
  | Site_down

let abort_reason_label = function
  | Unavailable -> "unavailable"
  | Lock_conflict -> "lock_conflict"
  | Deadlock -> "deadlock"
  | Order_conflict -> "order_conflict"
  | Op_timeout -> "op_timeout"
  | Protocol_abort -> "protocol_abort"
  | Site_down -> "site_down"

type outcome = Committed | Aborted of abort_reason

(* An outstanding lock wait at a participant: fires exactly one of the
   grant path or the refusal path. *)
type wait = {
  mutable w_done : bool;
  w_refuse : Msg.refusal -> unit;
  mutable w_timer : Engine.event_id option;
}

type part_ctx = {
  pt_txn : Tid.t;
  mutable pt_writes : (string * string * int) list;
  mutable pt_participants : Ids.site_id list;
  mutable pt_machine : Erased.t option;
  mutable pt_doomed : Msg.refusal option;
  mutable pt_resolved : bool;
  mutable pt_sweep : Engine.event_id option;  (* orphan-sweep timer *)
  pt_timers : (P.timer, Engine.event_id) Hashtbl.t;
  mutable pt_waits : wait list;
  mutable pt_to_keys : string list;  (* keys carrying our TO pending mark *)
}

type op_wait =
  | W_read of {
      rw_key : string;
      mutable rw_pending : Sset.t;
      mutable rw_version : int;
      mutable rw_value : string option;
      rw_timer : Engine.event_id;
      rw_k : (string option, abort_reason) Result.t -> unit;
    }
  | W_write of {
      ww_key : string;
      ww_value : string;
      ww_plan : Ids.site_id list;
      mutable ww_pending : Sset.t;
      mutable ww_maxv : int;
      ww_timer : Engine.event_id;
      ww_k : (unit, abort_reason) Result.t -> unit;
    }

type to_entry = {
  mutable rts : Tid.t option;
  mutable wts : Tid.t option;
  mutable to_pending : Tid.t list;
}

type coord_ctx = {
  co_txn : Tid.t;
  co_started : Time.t;
  mutable co_ops : Rt_workload.Mix.op list;
  mutable co_touched : Sset.t;
  mutable co_shards : Sset.t;
      (* Shard ids touched by this transaction's reads/writes; the
         commit protocol's scope is the union of their replica sets. *)
  co_site_writes : (Ids.site_id, (string * string * int) list ref) Hashtbl.t;
  co_cache : (string, string) Hashtbl.t;
  mutable co_machine : Erased.t option;
  co_timers : (P.timer, Engine.event_id) Hashtbl.t;
  mutable co_wait : op_wait option;
  mutable co_finished : bool;
  mutable co_outcome : outcome option;
  mutable co_k : outcome -> unit;
  co_probes_seen : unit Ids.Txn_map.t;
      (* Initiators whose probes we already forwarded (CMH dedup). *)
}

type t = {
  engine : Engine.t;
  id : Ids.site_id;
  config : Config.t;
  placement : Placement.t;
  site_ids : Ids.site_id list;  (* [0; ..; sites-1], precomputed. *)
  others : Ids.site_id list;  (* site_ids minus self, precomputed. *)
  catchup_peers : Ids.site_id list;
      (* Sites sharing at least one shard with us — the only ones that
         can answer a catch-up request.  Equals [others] under full
         replication. *)
  (* rt_lint: allow fingerprint-coverage -- per-call scratch row for
     [txn_scope]; fully overwritten before every read, carries no state
     across events *)
  scope_scratch : bool array;
  send_raw : dst:Ids.site_id -> Msg.t -> unit;
  counters : Counter.t;
  kv : Kv.t;
  wal : LR.t Wal.t;
  cp : Checkpoint.t;
  fault_rng : Rng.t option;
      (* Drives probabilistic storage faults (checkpoint corruption on
         crash); [None] when the fault profile is off, so the default
         configuration never draws from the engine's RNG tree. *)
  mutable torn_truncated : int;  (* torn-tail records dropped by scans *)
  mutable corruption_detected : int;  (* durable records lost to corruption *)
  mutable cp_fallbacks : int;  (* recoveries that could not use the latest
                                  checkpoint *)
  mutable locks : Lock.t;
  mutable hb : Heartbeat.t option;
  mutable up : bool;
  mutable catching : bool;
  mutable incarnation : int;
  (* Timestamp-ordering state (used when config.concurrency = Timestamp):
     per-key committed read/write stamps plus pending uncommitted
     writers. *)
  to_table : (string, to_entry) Hashtbl.t;
  parts : part_ctx Ids.Txn_map.t;
  coords : coord_ctx Ids.Txn_map.t;
  presumed : P.decision Ids.Txn_map.t;
  (* Genuine outcomes only (local deliver / durable log), unlike
     [presumed] which also holds abort pledges for transactions this site
     never took part in.  The crash-sweep agreement audit reads this. *)
  decided : P.decision Ids.Txn_map.t;
  (* Paxos acceptor traffic that raced ahead of our own vote request:
     with independent per-link latencies another participant's phase-2a
     (or an early leader's phase-1a) can reach this site before the
     coordinator's Vote_req does.  Dropping it silently costs a full
     timeout round at the ballot-0 leader, so it is stashed (newest
     first, capped) and replayed once the participant machine exists.
     Deliberately volatile: a crash losing the stash is exactly the
     recovered-acceptor abstention the protocol already tolerates. *)
  px_early : (Ids.site_id * P.msg) list Ids.Txn_map.t;
  first_lsn : Wal.lsn Ids.Txn_map.t;
  mutable txn_seq : int;
  mutable commits_since_cp : int;
  lat : Sample.t;
}

let id t = t.id
let is_up t = t.up
let serving t = t.up && not t.catching
let kv t = t.kv
let wal_forces t = Wal.force_count t.wal
let wal_stats t = Wal.stats t.wal
let wal_last_cycle_size t = Wal.last_cycle_size t.wal
let log_length t = Wal.length t.wal
let torn_truncated t = t.torn_truncated
let corruption_detected t = t.corruption_detected
let checkpoint_fallbacks t = t.cp_fallbacks
let latencies t = t.lat

let active_participants t =
  (* rt_lint: allow deterministic-iteration -- commutative count *)
  Ids.Txn_map.fold
    (fun _ ctx acc -> if ctx.pt_resolved then acc else acc + 1)
    t.parts 0

let participant_debug t =
  Ids.Txn_map.fold
    (fun txn ctx acc ->
      if ctx.pt_resolved then acc
      else
        ( txn,
          Format.asprintf "%a: machine=%s doomed=%s state=%s blocked=%b"
            Tid.pp txn
            (if ctx.pt_machine = None then "none" else "yes")
            (match ctx.pt_doomed with
            | None -> "no"
            | Some r -> Format.asprintf "%a" Msg.pp_refusal r)
            (match ctx.pt_machine with
            | Some m ->
                Format.asprintf "%a" P.pp_participant_state m.Erased.pstate
            | None -> "-")
            (match ctx.pt_machine with
            | Some m -> m.Erased.blocked
            | None -> false) )
        :: acc)
    t.parts []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  |> List.map snd

let blocked_participants t =
  (* rt_lint: allow deterministic-iteration -- commutative count *)
  Ids.Txn_map.fold
    (fun _ ctx acc ->
      match ctx.pt_machine with
      | Some m when m.Erased.blocked && not ctx.pt_resolved -> acc + 1
      | _ -> acc)
    t.parts 0

let decided_txns t =
  Ids.Txn_map.fold (fun txn d acc -> (txn, d) :: acc) t.decided []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)

let held_locks t = Lock.locked_keys t.locks

let lock_debug t =
  List.map
    (fun (key, holders, waiting) ->
      let side tag = function
        | [] -> ""
        | l ->
            Format.asprintf " %s=%a" tag
              (Format.pp_print_list
                 ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
                 (fun fmt (txn, m) ->
                   Format.fprintf fmt "%a/%a" Tid.pp txn Lock.pp_mode m))
              l
      in
      Printf.sprintf "%s:%s%s" key (side "held" holders) (side "wait" waiting))
    (Lock.dump t.locks)

let pending_protocol_timers t =
  (* rt_lint: allow deterministic-iteration -- commutative count *)
  Ids.Txn_map.fold
    (fun _ ctx acc -> acc + Hashtbl.length ctx.pt_timers)
    t.parts 0
  + (* rt_lint: allow deterministic-iteration -- commutative count *)
  Ids.Txn_map.fold
    (fun _ ctx acc -> acc + Hashtbl.length ctx.co_timers)
    t.coords 0

let create ~engine ~id ~config ~send ~counters =
  Config.validate config;
  let placement = Config.placement config in
  let site_ids = List.init config.Config.sites (fun i -> i) in
  (* Split a fault stream only when the profile is on: [Rng.split]
     advances the engine's root generator, so the default (faults-off)
     configuration must not touch it. *)
  let fault_rng =
    if Storage_faults.is_off config.Config.storage_faults then None
    else Some (Rng.split (Engine.rng engine))
  in
  {
    engine;
    id;
    config;
    placement;
    site_ids;
    others = List.filter (fun s -> s <> id) site_ids;
    catchup_peers = Placement.co_replicas placement ~site:id;
    scope_scratch = Array.make config.Config.sites false;
    send_raw = send;
    counters;
    kv = Kv.create ();
    wal =
      Wal.create ~owner:id ~group_window:config.Config.group_commit_window
        ~faults:config.Config.storage_faults ?fault_rng
        ~checksum:LR.checksum engine ~force_latency:config.force_latency ();
    cp = Checkpoint.create ();
    fault_rng;
    torn_truncated = 0;
    corruption_detected = 0;
    cp_fallbacks = 0;
    locks = Lock.create ();
    to_table = Hashtbl.create 256;
    hb = None;
    up = true;
    catching = false;
    incarnation = 0;
    parts = Ids.Txn_map.create 64;
    coords = Ids.Txn_map.create 64;
    presumed = Ids.Txn_map.create 64;
    decided = Ids.Txn_map.create 64;
    px_early = Ids.Txn_map.create 8;
    first_lsn = Ids.Txn_map.create 64;
    txn_seq = 0;
    commits_since_cp = 0;
    lat = Sample.create ();
  }

let all_site_ids t = t.site_ids
let placement t = t.placement

let up_pred t s =
  if s = t.id then t.up
  else match t.hb with Some hb -> Heartbeat.is_up hb s | None -> true

let up_view t =
  if not t.up then []
  else
    t.id :: (match t.hb with
             | Some hb -> Heartbeat.up_peers hb
             | None -> t.others)
    |> List.sort_uniq Int.compare

(* Run [f] only if the site is still in the same incarnation (and up):
   the guard for every asynchronous continuation a site schedules. *)
let guarded t f =
  let inc = t.incarnation in
  fun () -> if t.up && t.incarnation = inc then f ()

(* Forward reference: [receive] is defined at the bottom but needed for
   local loop-back delivery. *)
let receive_ref : (t -> src:Ids.site_id -> Msg.t -> unit) ref =
  (* rt_lint: allow no-toplevel-mutable-state -- write-once forward declaration holding code, bound at module init; carries no per-cluster state *)
  ref (fun _ ~src:_ _ -> assert false)

(* Forward reference: when a participant machine resolves a transaction
   whose coordinator lives on the same site, the coordinator must learn
   the decision too — a termination protocol can out-decide a deposed
   coordinator, and its decision distribution never produces a network
   message for a machine on its own site.  Bound after [feed_coord]. *)
let notify_coord_decided_ref : (t -> Tid.t -> P.decision -> unit) ref =
  (* rt_lint: allow no-toplevel-mutable-state -- write-once forward declaration holding code, bound at module init; carries no per-cluster state *)
  ref (fun _ _ _ -> ())

let local_send t ~dst msg =
  if dst = t.id then begin
    (* Local loop-back: deliver through a zero-delay event so handling
       never re-enters the current call stack. *)
    let deliver = guarded t (fun () -> !receive_ref t ~src:t.id msg) in
    ignore
      (Engine.schedule_after ~label:(Engine.Internal t.id) t.engine Time.zero
         deliver)
  end
  else t.send_raw ~dst msg

(* ------------------------------------------------------------------ *)
(* Commitment machine construction                                     *)
(* ------------------------------------------------------------------ *)

let qc_quorums t ~n_participants =
  let majority = (n_participants / 2) + 1 in
  match t.config.commit_protocol with
  | Config.Quorum_commit { commit_quorum; abort_quorum } ->
      let clamp q = max 1 (min n_participants q) in
      let vc = clamp (Option.value commit_quorum ~default:majority) in
      let va = clamp (Option.value abort_quorum ~default:majority) in
      if vc + va > n_participants then (vc, va) else (majority, majority)
  | _ -> (majority, majority)

(* Like [qc_quorums], an out-of-range F is clamped to what the
   participant set supports rather than rejected: sharded transactions
   can touch fewer sites than the cluster-wide knob assumed. *)
let paxos_config t ~participants ~coordinator =
  let others =
    List.length (List.filter (fun s -> s <> coordinator) participants)
  in
  let max_f = others / 2 in
  let f =
    match t.config.commit_protocol with
    | Config.Paxos_commit { f = Some f } -> Some (max 0 (min max_f f))
    | _ -> None
  in
  Paxos_commit.config ~all:participants ~coordinator ?f ()

let make_coord_machine t ~participants =
  let timeouts = t.config.commit_timeouts in
  match t.config.commit_protocol with
  | Config.Two_phase variant ->
      Erased.of_2pc_coord (Two_pc.coordinator ~variant ~participants ~timeouts)
  | Config.Three_phase ->
      Erased.of_3pc_coord (Three_pc.coordinator ~participants ~timeouts)
  | Config.Quorum_commit _ ->
      let vc, va = qc_quorums t ~n_participants:(List.length participants) in
      let config =
        Quorum_commit.config ~all:participants ~commit_quorum:vc
          ~abort_quorum:va ()
      in
      Erased.of_qc_coord (Quorum_commit.coordinator ~config ~self:t.id ~timeouts)
  | Config.Paxos_commit _ ->
      let config = paxos_config t ~participants ~coordinator:t.id in
      Erased.of_paxos_coord
        (Paxos_commit.coordinator ~config ~self:t.id ~timeouts)

let make_part_machine t ~txn ~participants ~vote ~read_only =
  let timeouts = t.config.commit_timeouts in
  let coordinator = txn.Tid.origin in
  match t.config.commit_protocol with
  | Config.Two_phase variant ->
      let read_only = read_only && t.config.read_only_optimization in
      Erased.of_2pc_part
        (Two_pc.participant ~read_only ~variant ~self:t.id ~coordinator
           ~peers:participants ~vote ~timeouts ())
  | Config.Three_phase ->
      Erased.of_3pc_part
        (Three_pc.participant ~self:t.id ~coordinator ~all:participants ~vote
           ~timeouts)
  | Config.Quorum_commit _ ->
      let vc, va = qc_quorums t ~n_participants:(List.length participants) in
      let config =
        Quorum_commit.config ~all:participants ~commit_quorum:vc
          ~abort_quorum:va ()
      in
      Erased.of_qc_part
        (Quorum_commit.participant ~config ~self:t.id ~coordinator ~vote
           ~timeouts)
  | Config.Paxos_commit _ ->
      let config = paxos_config t ~participants ~coordinator in
      Erased.of_paxos_part
        (Paxos_commit.participant ~config ~self:t.id ~vote ~timeouts)

let make_recovered_part_machine t ~txn ~participants ~state =
  let timeouts = t.config.commit_timeouts in
  let coordinator = txn.Tid.origin in
  match t.config.commit_protocol with
  | Config.Two_phase variant ->
      Erased.of_2pc_part
        (Two_pc.participant_recovered ~variant ~self:t.id ~coordinator
           ~peers:participants ~timeouts)
  | Config.Three_phase ->
      Erased.of_3pc_part
        (Three_pc.participant_recovered ~self:t.id ~coordinator
           ~all:participants ~state ~timeouts)
  | Config.Quorum_commit _ ->
      let vc, va = qc_quorums t ~n_participants:(List.length participants) in
      let config =
        Quorum_commit.config ~all:participants ~commit_quorum:vc
          ~abort_quorum:va ()
      in
      Erased.of_qc_part
        (Quorum_commit.participant_recovered ~config ~self:t.id ~coordinator
           ~state ~timeouts)
  | Config.Paxos_commit _ ->
      let config = paxos_config t ~participants ~coordinator in
      Erased.of_paxos_part
        (Paxos_commit.participant_recovered ~config ~self:t.id ~state ~timeouts)

(* ------------------------------------------------------------------ *)
(* Participant side                                                     *)
(* ------------------------------------------------------------------ *)

let part_ctx t txn =
  match Ids.Txn_map.find_opt t.parts txn with
  | Some ctx -> Some ctx
  | None -> None

(* Forward reference for the orphan sweeper (doom_part is defined below). *)
let doom_part_ref :
    (t -> part_ctx -> Msg.refusal -> unit) ref =
  (* rt_lint: allow no-toplevel-mutable-state -- write-once forward declaration holding code, bound at module init; carries no per-cluster state *)
  ref (fun _ _ _ -> ())

(* Forward reference for probe initiation (defined with the probe
   machinery below). *)
let send_probe_ref : (t -> initiator:Tid.t -> target:Tid.t -> unit) ref =
  (* rt_lint: allow no-toplevel-mutable-state -- write-once forward declaration holding code, bound at module init; carries no per-cluster state *)
  ref (fun _ ~initiator:_ ~target:_ -> ())

let get_or_create_part t txn =
  match Ids.Txn_map.find_opt t.parts txn with
  | Some ctx -> ctx
  | None ->
      let ctx =
        {
          pt_txn = txn;
          pt_writes = [];
          pt_participants = [];
          pt_machine = None;
          pt_doomed = None;
          pt_resolved = false;
          pt_sweep = None;
          pt_timers = Hashtbl.create 4;
          pt_waits = [];
          pt_to_keys = [];
        }
      in
      Ids.Txn_map.replace t.parts txn ctx;
      (* Orphan sweep: if the coordinator dies before the commit protocol
         reaches us, no machine will ever resolve this context, and its
         locks would be held forever.  A machine-less context still
         unresolved after a generous window is aborted locally — the
         coordinator, if alive, sees refusals and aborts the whole
         transaction, so this is always safe.  The timer is cancelled as
         soon as the context resolves (see [cancel_sweep]); while a
         machine is attached but undecided it re-arms, since a recovered
         coordinator losing all memory can orphan us mid-protocol too. *)
      let orphan_window =
        t.config.orphan_window_factor * t.config.commit_timeouts.decision_wait
      in
      let rec sweep () =
        ctx.pt_sweep <-
          Some
            (Engine.schedule_after
               ~label:(Engine.Timer { site = t.id; name = "orphan-sweep" })
               t.engine orphan_window
               (guarded t (fun () ->
                    ctx.pt_sweep <- None;
                    if not ctx.pt_resolved then
                      if ctx.pt_machine = None then begin
                        !doom_part_ref t ctx Msg.R_doomed;
                        ctx.pt_resolved <- true;
                        Ids.Txn_map.replace t.presumed txn P.Abort;
                        Ids.Txn_map.replace t.decided txn P.Abort;
                        Ids.Txn_map.remove t.parts txn
                      end
                      else sweep ())))
      in
      sweep ();
      ctx

let cancel_sweep t ctx =
  match ctx.pt_sweep with
  | Some ev ->
      Engine.cancel t.engine ev;
      ctx.pt_sweep <- None
  | None -> ()

let note_first_lsn t txn lsn =
  if not (Ids.Txn_map.mem t.first_lsn txn) then
    Ids.Txn_map.replace t.first_lsn txn lsn

let to_entry_for t key =
  match Hashtbl.find_opt t.to_table key with
  | Some e -> e
  | None ->
      let e = { rts = None; wts = None; to_pending = [] } in
      Hashtbl.add t.to_table key e;
      e

let ts_lt a b =
  match (a, b) with
  | _, None -> false
  | None, Some _ -> true
  | Some x, Some y -> Tid.compare x y < 0

let to_clear_pending t ctx =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.to_table key with
      | Some e ->
          e.to_pending <-
            List.filter (fun p -> not (Tid.equal p ctx.pt_txn)) e.to_pending
      | None -> ())
    ctx.pt_to_keys;
  ctx.pt_to_keys <- []

(* Machine reclamation is a *delayed* cleanup, not a prompt continuation:
   it must be labelled as a timer, not [Internal], or an explorer that
   eagerly drains internal events reaps the machine ahead of in-flight
   protocol traffic (an ack then finds no machine, is dropped, and the
   reaped-but-live closure resends forever). *)
let gc_part t ctx =
  ignore
    (Engine.schedule_after
       ~label:(Engine.Timer { site = t.id; name = "gc" })
       t.engine (Time.sec 2)
       (guarded t (fun () ->
            if ctx.pt_resolved then Ids.Txn_map.remove t.parts ctx.pt_txn)))

let gc_coord t ctx =
  ignore
    (Engine.schedule_after
       ~label:(Engine.Timer { site = t.id; name = "gc" })
       t.engine (Time.sec 2)
       (guarded t (fun () ->
            if ctx.co_finished then Ids.Txn_map.remove t.coords ctx.co_txn)))

let set_timer t timers ~feed tm delay =
  (match Hashtbl.find_opt timers tm with
  | Some ev -> Engine.cancel t.engine ev
  | None -> ());
  let ev =
    Engine.schedule_after
      ~label:
        (Engine.Timer
           { site = t.id; name = Format.asprintf "%a" P.pp_timer tm })
      t.engine delay
      (guarded t (fun () ->
           Hashtbl.remove timers tm;
           feed (P.Timeout tm)))
  in
  Hashtbl.replace timers tm ev

let clear_timer t timers tm =
  match Hashtbl.find_opt timers tm with
  | Some ev ->
      Engine.cancel t.engine ev;
      Hashtbl.remove timers tm
  | None -> ()

let log_record_of_tag ctx tag : LR.t list =
  match (tag : P.log_tag) with
  | P.L_prepared ->
      List.map
        (fun (key, value, version) ->
          LR.Update { txn = ctx.pt_txn; key; value; version; undo = None })
        ctx.pt_writes
      @ [ LR.Prepared { txn = ctx.pt_txn; participants = ctx.pt_participants } ]
  | P.L_precommit -> [ LR.Precommit ctx.pt_txn ]
  | P.L_preabort -> [ LR.Preabort ctx.pt_txn ]
  | P.L_collecting -> [ LR.Collecting ctx.pt_txn ]
  | P.L_decision P.Commit -> [ LR.Commit ctx.pt_txn ]
  | P.L_decision P.Abort -> [ LR.Abort ctx.pt_txn ]
  | P.L_end -> [ LR.End ctx.pt_txn ]

let coord_log_records txn tag : LR.t list =
  match (tag : P.log_tag) with
  | P.L_collecting -> [ LR.Collecting txn ]
  | P.L_decision P.Commit -> [ LR.Commit txn ]
  | P.L_decision P.Abort -> [ LR.Abort txn ]
  | P.L_end -> [ LR.End txn ]
  | P.L_precommit -> [ LR.Precommit txn ]
  | P.L_preabort -> [ LR.Preabort txn ]
  | P.L_prepared -> []

let out_commit_msg t ctx_txn ~dst pmsg ~prepare =
  if dst <> t.id then Counter.incr t.counters "commit_protocol_msgs";
  local_send t ~dst (Msg.txn_msg ctx_txn (Msg.Commit_msg { pmsg; prepare }))

(* Interpret a participant machine's actions.  The per-action [t.up]
   check matters under fault injection: a forced log write can crash the
   site synchronously (wal crash points), and the rest of the action list
   must then be dropped exactly as if the site had died mid-step. *)
let rec interpret_part t ctx actions =
  List.iter
    (fun (action : P.action) ->
      if t.up then
      match action with
      | P.Send (dst, pmsg) -> out_commit_msg t ctx.pt_txn ~dst pmsg ~prepare:None
      | P.Log (tag, mode) -> (
          let records = log_record_of_tag ctx tag in
          let lsn =
            List.fold_left (fun _ r -> Wal.append t.wal r) (Wal.tail_lsn t.wal)
              records
          in
          note_first_lsn t ctx.pt_txn
            (lsn - List.length records + 1 |> max 1);
          match mode with
          | `Forced ->
              Wal.force t.wal ~upto:lsn
                (guarded t (fun () -> feed_part t ctx (P.Log_done tag)))
          | `Lazy -> ())
      | P.Deliver d -> resolve_part t ctx d
      | P.Set_timer (tm, delay) ->
          set_timer t ctx.pt_timers ~feed:(fun i -> feed_part t ctx i) tm delay
      | P.Clear_timer tm -> clear_timer t ctx.pt_timers tm
      | P.Blocked -> Counter.incr t.counters "blocked_reports"
      | P.Forget ->
          (* Read-only participant: release without remembering. *)
          if not ctx.pt_resolved then begin
            ctx.pt_resolved <- true;
            cancel_sweep t ctx;
            Counter.incr t.counters "readonly_releases";
            Ids.Txn_map.remove t.first_lsn ctx.pt_txn;
            Lock.release_all t.locks ~txn:ctx.pt_txn;
            gc_part t ctx
          end)
    actions

and feed_part t ctx input =
  if t.up then
    match ctx.pt_machine with
    | None -> ()
    | Some m ->
        let m', actions = m.Erased.step input in
        ctx.pt_machine <- Some m';
        interpret_part t ctx actions;
        (* Step boundary: the machine consumed [input] and its actions are
           fully interpreted — a crash here loses everything volatile the
           step produced but nothing of the step itself. *)
        if t.up && Engine.crash_hook_installed t.engine then
          Engine.crash_point t.engine ~site:t.id
            ~point:("part:" ^ P.input_point input)

and resolve_part t ctx (d : P.decision) =
  if not ctx.pt_resolved then begin
    ctx.pt_resolved <- true;
    cancel_sweep t ctx;
    Ids.Txn_map.replace t.presumed ctx.pt_txn d;
    Ids.Txn_map.replace t.decided ctx.pt_txn d;
    (match d with
    | P.Commit ->
        List.iter
          (fun (key, value, version) ->
            (* Under timestamp ordering, the Thomas write rule skips
               writes already superseded by a newer-stamped commit; the
               version guard expresses the same rule in version space and
               also protects recovery replays. *)
            let apply =
              match t.config.concurrency with
              | Config.Locking -> version > Kv.version t.kv key
              | Config.Timestamp ->
                  let e = to_entry_for t key in
                  if ts_lt (Some ctx.pt_txn) e.wts then false
                  else begin
                    e.wts <- Some ctx.pt_txn;
                    true
                  end
            in
            if apply then Kv.set t.kv ~key ~value ~version)
          ctx.pt_writes;
        Counter.incr t.counters "participant_commits";
        t.commits_since_cp <- t.commits_since_cp + 1;
        maybe_checkpoint t
    | P.Abort -> Counter.incr t.counters "participant_aborts");
    Ids.Txn_map.remove t.first_lsn ctx.pt_txn;
    to_clear_pending t ctx;
    Lock.release_all t.locks ~txn:ctx.pt_txn;
    !notify_coord_decided_ref t ctx.pt_txn d;
    gc_part t ctx
  end

and maybe_checkpoint t =
  let every = t.config.checkpoint_every in
  if every > 0 && t.commits_since_cp >= every then begin
    t.commits_since_cp <- 0;
    let durable = Wal.durable_lsn t.wal in
    Checkpoint.take t.cp ~kv:t.kv ~lsn:durable
      ~shard_of:(Placement.shard_of_key t.placement);
    (* Keep records needed by unresolved transactions. *)
    let floor =
      (* rt_lint: allow deterministic-iteration -- commutative minimum *)
      Ids.Txn_map.fold (fun _ lsn acc -> min lsn acc) t.first_lsn (durable + 1)
    in
    let upto = min durable (floor - 1) in
    let upto =
      (* With checkpoint corruption armed, recovery may have to install
         the previous snapshot instead of the latest; keep the log
         suffix that covers it, or the fallback would have nothing to
         replay.  Off-profile truncation is untouched. *)
      if Storage_faults.is_off t.config.Config.storage_faults then upto
      else
        match Checkpoint.previous_lsn t.cp with
        | Some prev -> min upto prev
        | None -> upto
    in
    if upto > Wal.first_lsn t.wal - 1 then Wal.truncate t.wal ~upto;
    Counter.incr t.counters "checkpoints"
  end

(* Kill a transaction's local execution (deadlock victim, lock timeout,
   coordinator abort).  Outstanding lock waits are refused; locks drop. *)
let doom_part t ctx reason =
  if ctx.pt_doomed = None && not ctx.pt_resolved then begin
    ctx.pt_doomed <- Some reason;
    (match reason with
    | Msg.R_deadlock -> Counter.incr t.counters "deadlock_victims"
    | Msg.R_lock_timeout -> Counter.incr t.counters "lock_timeouts"
    | Msg.R_order -> Counter.incr t.counters "order_conflicts"
    | Msg.R_doomed | Msg.R_down -> ());
    let waits = ctx.pt_waits in
    ctx.pt_waits <- [];
    List.iter
      (fun w ->
        if not w.w_done then begin
          w.w_done <- true;
          Option.iter (Engine.cancel t.engine) w.w_timer;
          w.w_refuse reason
        end)
      waits;
    to_clear_pending t ctx;
    Lock.release_all t.locks ~txn:ctx.pt_txn
  end

let () = doom_part_ref := doom_part

(* After a lock request queues, check for (local) deadlock and kill the
   victim immediately. *)
let resolve_local_deadlocks t =
  let rec go n =
    if n > 100_000 then
      failwith "resolve_local_deadlocks: livelock detected"
    else
      match Lock.detect_deadlock t.locks with
      | None -> ()
      | Some victim ->
          (match part_ctx t victim with
          | Some ctx -> doom_part t ctx Msg.R_deadlock
          | None ->
              (* A victim with no participant context can only be a stale
                 entry; drop its locks so the system moves on. *)
              Lock.release_all t.locks ~txn:victim);
          go (n + 1)
  in
  go 0

(* Acquire a lock on behalf of a remote (or local) operation, replying
   through [reply] exactly once. *)
let acquire_for_op t ctx ~mode ~key ~(on_granted : unit -> unit)
    ~(reply_refuse : Msg.refusal -> unit) =
  match ctx.pt_doomed with
  | Some r -> reply_refuse r
  (* A resolved context has already released its locks; a data op landing
     now is a network duplicate, and granting it would orphan the lock
     forever (nothing ever resolves this transaction again). *)
  | None when ctx.pt_resolved -> reply_refuse Msg.R_doomed
  | None -> (
      let wait =
        { w_done = false; w_refuse = reply_refuse; w_timer = None }
      in
      let granted () =
        if not wait.w_done then begin
          wait.w_done <- true;
          Option.iter (Engine.cancel t.engine) wait.w_timer;
          ctx.pt_waits <- List.filter (fun w -> w != wait) ctx.pt_waits;
          on_granted ()
        end
      in
      match Lock.acquire t.locks ~txn:ctx.pt_txn ~key ~mode ~on_grant:granted
      with
      | Lock.Granted -> on_granted ()
      | Lock.Waiting ->
          ctx.pt_waits <- wait :: ctx.pt_waits;
          let timer =
            Engine.schedule_after
              ~label:(Engine.Timer { site = t.id; name = "lock-wait" })
              t.engine t.config.lock_wait_timeout
              (guarded t (fun () ->
                   if not wait.w_done then doom_part t ctx Msg.R_lock_timeout))
          in
          wait.w_timer <- Some timer;
          resolve_local_deadlocks t;
          if t.config.probe_deadlocks && not wait.w_done then
            List.iter
              (fun blocker ->
                !send_probe_ref t ~initiator:ctx.pt_txn ~target:blocker)
              (Lock.blocking t.locks ~txn:ctx.pt_txn))

let handle_read_req t ~txn ~key ~(reply : (string option * int, Msg.refusal) Result.t -> unit) =
  if t.catching then reply (Error Msg.R_down)
  else if Ids.Txn_map.mem t.decided txn then
    (* Duplicate of an op from an already-decided transaction: refuse
       without resurrecting a participant context for it. *)
    reply (Error Msg.R_doomed)
  else begin
    let ctx = get_or_create_part t txn in
    match t.config.concurrency with
    | Config.Timestamp ->
        if ctx.pt_doomed <> None then reply (Error Msg.R_doomed)
        else begin
          let e = to_entry_for t key in
          let blocked_by_pending =
            List.exists
              (fun p -> (not (Tid.equal p txn)) && Tid.compare p txn <= 0)
              e.to_pending
          in
          if ts_lt (Some txn) e.wts || blocked_by_pending then begin
            doom_part t ctx Msg.R_order;
            reply (Error Msg.R_order)
          end
          else begin
            if ts_lt e.rts (Some txn) then e.rts <- Some txn;
            reply
              (Ok
                 ( Option.map (fun (i : Kv.item) -> i.value) (Kv.get t.kv key),
                   Kv.version t.kv key ))
          end
        end
    | Config.Locking ->
        acquire_for_op t ctx ~mode:Lock.Shared ~key
          ~on_granted:(fun () ->
            let item = Kv.get t.kv key in
            reply
              (Ok
                 ( Option.map (fun (i : Kv.item) -> i.value) item,
                   Kv.version t.kv key )))
          ~reply_refuse:(fun r -> reply (Error r))
  end

let handle_write_req t ~txn ~key ~(reply : (int, Msg.refusal) Result.t -> unit)
    =
  (* Writes are accepted even while catching up: a validating copy must
     not miss commits that land during its transfer (reads stay refused
     until validation completes). *)
  if Ids.Txn_map.mem t.decided txn then reply (Error Msg.R_doomed)
  else
  let ctx = get_or_create_part t txn in
  match t.config.concurrency with
  | Config.Timestamp ->
      if ctx.pt_doomed <> None then reply (Error Msg.R_doomed)
      else begin
        let e = to_entry_for t key in
        if ts_lt (Some txn) e.rts || ts_lt (Some txn) e.wts then begin
          doom_part t ctx Msg.R_order;
          reply (Error Msg.R_order)
        end
        else begin
          if not (List.exists (Tid.equal txn) e.to_pending) then begin
            e.to_pending <- txn :: e.to_pending;
            ctx.pt_to_keys <- key :: ctx.pt_to_keys
          end;
          reply (Ok (Kv.version t.kv key))
        end
      end
  | Config.Locking ->
      acquire_for_op t ctx ~mode:Lock.Exclusive ~key
        ~on_granted:(fun () -> reply (Ok (Kv.version t.kv key)))
        ~reply_refuse:(fun r -> reply (Error r))

let handle_abort_txn t txn =
  match part_ctx t txn with
  | None -> Ids.Txn_map.replace t.presumed txn P.Abort
  | Some ctx ->
      doom_part t ctx Msg.R_doomed;
      ctx.pt_resolved <- true;
      cancel_sweep t ctx;
      Ids.Txn_map.replace t.presumed txn P.Abort;
      Ids.Txn_map.replace t.decided txn P.Abort;
      Counter.incr t.counters "participant_aborts";
      gc_part t ctx

let handle_vote_req t ~src txn (prepare : Msg.prepare_info option) =
  if Ids.Txn_map.mem t.decided txn then
    (* Coordinators never re-solicit votes, so a vote request for a
       transaction we already decided is a network duplicate that
       outlived the participant context.  Re-running the protocol from a
       fresh machine would re-vote on a settled transaction; drop it. *)
    ()
  else
  let ctx = get_or_create_part t txn in
  if ctx.pt_machine <> None then
    (* Duplicate vote request: let the machine handle it. *)
    feed_part t ctx (P.Recv (src, P.Vote_req))
  else begin
    let validation_ok =
      match prepare with
      | Some { presumed_down; writes; _ } ->
          (* Available-copies validation: refuse to certify an update
             that skipped a copy we know to be alive (the coordinator's
             failure view is stale). *)
          writes = []
          || List.for_all (fun s -> not (up_pred t s)) presumed_down
      | None -> true
    in
    (match prepare with
    | Some { writes; participants; _ } ->
        ctx.pt_writes <- writes;
        ctx.pt_participants <- participants
    | None -> if ctx.pt_participants = [] then ctx.pt_participants <- all_site_ids t);
    let pledged_abort =
      match Ids.Txn_map.find_opt t.presumed txn with
      | Some P.Abort -> true
      | _ -> false
    in
    if not validation_ok then Counter.incr t.counters "validation_vetoes";
    let vote = ctx.pt_doomed = None && (not pledged_abort) && validation_ok in
    ctx.pt_machine <-
      Some
        (make_part_machine t ~txn ~participants:ctx.pt_participants ~vote
           ~read_only:(ctx.pt_writes = []));
    feed_part t ctx (P.Recv (src, P.Vote_req));
    (* Replay paxos acceptor traffic that arrived before the machine
       existed, in arrival order (see [px_early]). *)
    match Ids.Txn_map.find_opt t.px_early txn with
    | None -> ()
    | Some pending ->
        Ids.Txn_map.remove t.px_early txn;
        List.iter
          (fun (psrc, pmsg) ->
            if ctx.pt_machine <> None then
              feed_part t ctx (P.Recv (psrc, pmsg)))
          (List.rev pending)
  end

(* ------------------------------------------------------------------ *)
(* Coordinator side                                                     *)
(* ------------------------------------------------------------------ *)

let site_writes_for ctx dst =
  match Hashtbl.find_opt ctx.co_site_writes dst with
  | Some r -> List.rev !r
  | None -> []

(* Every replica of every shard this transaction touched — the full set
   of copies the commit protocol is answerable for, including down ones
   the plans skipped.  Under full replication this is all sites.  Built
   by marking a dense per-site scratch row instead of folding set unions:
   ascending index order yields the same sorted result. *)
let txn_scope t ctx =
  let seen = t.scope_scratch in
  Array.fill seen 0 (Array.length seen) false;
  Sset.iter
    (fun shard ->
      List.iter (fun s -> seen.(s) <- true)
        (Placement.replicas t.placement ~shard))
    ctx.co_shards;
  let acc = ref [] in
  for s = Array.length seen - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

let rec interpret_coord t ctx actions =
  List.iter
    (fun (action : P.action) ->
      if t.up then
      match action with
      | P.Send (dst, pmsg) ->
          let prepare =
            match pmsg with
            | P.Vote_req ->
                let presumed_down =
                  if
                    RC.needs_catchup_on_recovery t.config.replica_control
                  then
                    List.filter
                      (fun s -> not (up_pred t s))
                      (txn_scope t ctx)
                  else []
                in
                Some
                  {
                    Msg.writes = site_writes_for ctx dst;
                    participants = Sset.elements ctx.co_touched;
                    presumed_down;
                  }
            | _ -> None
          in
          out_commit_msg t ctx.co_txn ~dst pmsg ~prepare
      | P.Log (tag, mode) -> (
          let records = coord_log_records ctx.co_txn tag in
          let lsn =
            List.fold_left (fun _ r -> Wal.append t.wal r) (Wal.tail_lsn t.wal)
              records
          in
          match mode with
          | `Forced ->
              Wal.force t.wal ~upto:lsn
                (guarded t (fun () -> feed_coord t ctx (P.Log_done tag)))
          | `Lazy -> ())
      | P.Deliver d ->
          Ids.Txn_map.replace t.presumed ctx.co_txn d;
          Ids.Txn_map.replace t.decided ctx.co_txn d;
          finish_coord t ctx
            (match d with
            | P.Commit -> Committed
            | P.Abort -> Aborted Protocol_abort)
      | P.Set_timer (tm, delay) ->
          set_timer t ctx.co_timers ~feed:(fun i -> feed_coord t ctx i) tm delay
      | P.Clear_timer tm -> clear_timer t ctx.co_timers tm
      | P.Blocked -> Counter.incr t.counters "blocked_reports"
      | P.Forget -> ())
    actions

and feed_coord t ctx input =
  if t.up then
    match ctx.co_machine with
    | None -> ()
    | Some m ->
        let m', actions = m.Erased.step input in
        ctx.co_machine <- Some m';
        interpret_coord t ctx actions;
        if t.up && Engine.crash_hook_installed t.engine then
          Engine.crash_point t.engine ~site:t.id
            ~point:("coord:" ^ P.input_point input)

and finish_coord t ctx outcome =
  if not ctx.co_finished then begin
    ctx.co_finished <- true;
    ctx.co_outcome <- Some outcome;
    (match outcome with
    | Committed ->
        Counter.incr t.counters "commits";
        Sample.add t.lat
          (Time.to_float_s (Time.sub (Engine.now t.engine) ctx.co_started))
    | Aborted reason ->
        Counter.incr t.counters "aborts";
        Counter.incr t.counters ("aborts_" ^ abort_reason_label reason));
    ctx.co_k outcome;
    gc_coord t ctx
  end

let () =
  notify_coord_decided_ref :=
    fun t txn d ->
      if Ids.Txn_map.mem t.coords txn then
        (* Zero-delay loop-back so the coordinator steps outside the
           participant's interpretation, like any local delivery. *)
        ignore
          (Engine.schedule_after ~label:(Engine.Internal t.id) t.engine
             Time.zero
             (guarded t (fun () ->
                  match Ids.Txn_map.find_opt t.coords txn with
                  | Some ctx when ctx.co_machine <> None ->
                      feed_coord t ctx (P.Recv (t.id, P.Decision_msg d))
                  | Some _ | None -> ())))

(* Abort before the commit protocol started: tell every touched site and
   fail any operation the caller is still waiting on. *)
let abort_coord_early t ctx reason =
  if not ctx.co_finished then begin
    let pending_k =
      match ctx.co_wait with
      | Some (W_read { rw_timer; rw_k; _ }) ->
          Engine.cancel t.engine rw_timer;
          Some (fun () -> rw_k (Error reason))
      | Some (W_write { ww_timer; ww_k; _ }) ->
          Engine.cancel t.engine ww_timer;
          Some (fun () -> ww_k (Error reason))
      | None -> None
    in
    ctx.co_wait <- None;
    Ids.Txn_map.replace t.presumed ctx.co_txn P.Abort;
    Ids.Txn_map.replace t.decided ctx.co_txn P.Abort;
    Sset.iter
      (fun s ->
        if s = t.id then handle_abort_txn t ctx.co_txn
        else begin
          Counter.incr t.counters "commit_protocol_msgs";
          t.send_raw ~dst:s (Msg.txn_msg ctx.co_txn Msg.Abort_txn)
        end)
      ctx.co_touched;
    finish_coord t ctx (Aborted reason);
    Option.iter (fun k -> k ()) pending_k
  end

let reason_of_refusal = function
  | Msg.R_lock_timeout -> Lock_conflict
  | Msg.R_deadlock -> Deadlock
  | Msg.R_order -> Order_conflict
  | Msg.R_doomed -> Lock_conflict
  | Msg.R_down -> Unavailable

(* One logical read: assemble the plan, collect replies, resolve the
   newest version.  [k] fires exactly once. *)
let rec do_read t ctx ~key ~k =
  if ctx.co_finished then
    k (Error (match ctx.co_outcome with
              | Some (Aborted r) -> r
              | _ -> Protocol_abort))
  else
    match Hashtbl.find_opt ctx.co_cache key with
    | Some v -> k (Ok (Some v))  (* read-your-writes *)
    | None -> (
        match
          RC.read_plan t.config.replica_control ~self:t.id ~up:(up_pred t)
            ~replicas:(Placement.replicas_of_key t.placement key)
        with
        | None ->
            abort_coord_early t ctx Unavailable
        | Some plan ->
            ctx.co_shards <-
              Sset.add (Placement.shard_of_key t.placement key) ctx.co_shards;
            ctx.co_touched <- Sset.union ctx.co_touched (Sset.of_list plan);
            let timer =
              Engine.schedule_after
                ~label:(Engine.Timer { site = t.id; name = "op-timeout" })
                t.engine t.config.op_timeout
                (guarded t (fun () -> abort_coord_early t ctx Op_timeout))
            in
            let wait =
              W_read
                {
                  rw_key = key;
                  rw_pending = Sset.of_list plan;
                  rw_version = -1;
                  rw_value = None;
                  rw_timer = timer;
                  rw_k = k;
                }
            in
            ctx.co_wait <- Some wait;
            List.iter (fun s -> send_read t ctx ~dst:s ~key) plan)

and do_write t ctx ~key ~value ~k =
  if ctx.co_finished then
    k (Error (match ctx.co_outcome with
              | Some (Aborted r) -> r
              | _ -> Protocol_abort))
  else
    match
      RC.write_plan t.config.replica_control ~self:t.id ~up:(up_pred t)
        ~replicas:(Placement.replicas_of_key t.placement key)
    with
    | None -> abort_coord_early t ctx Unavailable
    | Some plan ->
        ctx.co_shards <-
          Sset.add (Placement.shard_of_key t.placement key) ctx.co_shards;
        ctx.co_touched <- Sset.union ctx.co_touched (Sset.of_list plan);
        let timer =
          Engine.schedule_after
            ~label:(Engine.Timer { site = t.id; name = "op-timeout" })
            t.engine t.config.op_timeout
            (guarded t (fun () -> abort_coord_early t ctx Op_timeout))
        in
        let wait =
          W_write
            {
              ww_key = key;
              ww_value = value;
              ww_plan = plan;
              ww_pending = Sset.of_list plan;
              ww_maxv = 0;
              ww_timer = timer;
              ww_k = k;
            }
        in
        ctx.co_wait <- Some wait;
        List.iter (fun s -> send_write t ctx ~dst:s ~key ~value) plan

and send_read t ctx ~dst ~key =
  if dst = t.id then
    handle_read_req t ~txn:ctx.co_txn ~key ~reply:(fun result ->
        (* Loop back asynchronously so reply handling never re-enters. *)
        ignore
          (Engine.schedule_after ~label:(Engine.Internal t.id) t.engine
             Time.zero
             (guarded t (fun () ->
                  coord_read_reply t ctx ~src:t.id ~key ~result))))
  else begin
    Counter.incr t.counters "data_msgs";
    t.send_raw ~dst (Msg.txn_msg ctx.co_txn (Msg.Read_req { key }))
  end

and send_write t ctx ~dst ~key ~value =
  if dst = t.id then
    handle_write_req t ~txn:ctx.co_txn ~key ~reply:(fun result ->
        ignore
          (Engine.schedule_after ~label:(Engine.Internal t.id) t.engine
             Time.zero
             (guarded t (fun () ->
                  coord_write_reply t ctx ~src:t.id ~key ~result))))
  else begin
    Counter.incr t.counters "data_msgs";
    t.send_raw ~dst (Msg.txn_msg ctx.co_txn (Msg.Write_req { key; value }))
  end

and coord_read_reply t ctx ~src ~key ~result =
  match ctx.co_wait with
  | Some (W_read rw) when String.equal rw.rw_key key -> (
      match result with
      | Error r -> abort_coord_early t ctx (reason_of_refusal r)
      | Ok (value, version) ->
          rw.rw_pending <- Sset.remove src rw.rw_pending;
          if version > rw.rw_version then begin
            rw.rw_version <- version;
            rw.rw_value <- value
          end;
          if Sset.is_empty rw.rw_pending then begin
            Engine.cancel t.engine rw.rw_timer;
            ctx.co_wait <- None;
            rw.rw_k (Ok rw.rw_value)
          end)
  | _ -> ()

and coord_write_reply t ctx ~src ~key ~result =
  match ctx.co_wait with
  | Some (W_write ww) when String.equal ww.ww_key key -> (
      match result with
      | Error r -> abort_coord_early t ctx (reason_of_refusal r)
      | Ok version ->
          ww.ww_pending <- Sset.remove src ww.ww_pending;
          if version > ww.ww_maxv then ww.ww_maxv <- version;
          if Sset.is_empty ww.ww_pending then begin
            Engine.cancel t.engine ww.ww_timer;
            let new_version = ww.ww_maxv + 1 in
            List.iter
              (fun s ->
                let r =
                  match Hashtbl.find_opt ctx.co_site_writes s with
                  | Some r -> r
                  | None ->
                      let r = ref [] in
                      Hashtbl.replace ctx.co_site_writes s r;
                      r
                in
                r := (ww.ww_key, ww.ww_value, new_version) :: !r)
              ww.ww_plan;
            Hashtbl.replace ctx.co_cache ww.ww_key ww.ww_value;
            ctx.co_wait <- None;
            ww.ww_k (Ok ())
          end)
  | _ -> ()

let begin_commit t ctx =
  if not ctx.co_finished then begin
    let participants = Sset.elements ctx.co_touched in
    if participants = [] then finish_coord t ctx Committed
    else begin
      ctx.co_machine <- Some (make_coord_machine t ~participants);
      feed_coord t ctx P.Start
    end
  end

(* Batch driver: execute a fixed operation list then commit. *)
let rec step_txn t ctx =
  if not ctx.co_finished then
    match ctx.co_ops with
    | [] -> begin_commit t ctx
    | op :: rest ->
        ctx.co_ops <- rest;
        let continue result =
          match result with Ok _ -> step_txn t ctx | Error _ -> ()
        in
        (match op with
        | Rt_workload.Mix.Read key -> do_read t ctx ~key ~k:continue
        | Rt_workload.Mix.Write (key, value) ->
            do_write t ctx ~key ~value ~k:(fun r -> continue r))

let new_coord_ctx t ~ops ~k =
  t.txn_seq <- t.txn_seq + 1;
  let txn =
    Tid.make ~origin:t.id ~seq:t.txn_seq ~start_ts:(Engine.now t.engine)
  in
  let ctx =
    {
      co_txn = txn;
      co_started = Engine.now t.engine;
      co_ops = ops;
      co_touched = Sset.empty;
      co_shards = Sset.empty;
      co_site_writes = Hashtbl.create 8;
      co_cache = Hashtbl.create 8;
      co_machine = None;
      co_timers = Hashtbl.create 4;
      co_wait = None;
      co_finished = false;
      co_outcome = None;
      co_k = k;
      co_probes_seen = Ids.Txn_map.create 4;
    }
  in
  Ids.Txn_map.replace t.coords txn ctx;
  Counter.incr t.counters "txns_started";
  ctx

let submit t ~ops ~k =
  if not (serving t) then k (Aborted Site_down)
  else step_txn t (new_coord_ctx t ~ops ~k)

(* --- interactive transactions ------------------------------------- *)

type txn = coord_ctx

let begin_txn t =
  if not (serving t) then None
  else Some (new_coord_ctx t ~ops:[] ~k:(fun _ -> ()))

let txn_read t h ~key ~k = do_read t h ~key ~k
let txn_write t h ~key ~value ~k = do_write t h ~key ~value ~k

let txn_commit t h ~k =
  match h.co_outcome with
  | Some outcome -> k outcome
  | None ->
      h.co_k <- k;
      begin_commit t h

let txn_abort t h =
  if not h.co_finished then abort_coord_early t h Protocol_abort

(* ------------------------------------------------------------------ *)
(* Distributed deadlock probes (Chandy–Misra–Haas edge chasing)         *)
(* ------------------------------------------------------------------ *)

(* Send a probe that chases the edge [initiator waits-for target]. *)
let rec send_probe t ~initiator ~(target : Tid.t) =
  if target.Tid.origin = t.id then handle_probe t ~initiator ~target
  else begin
    Counter.incr t.counters "probe_msgs";
    t.send_raw ~dst:target.Tid.origin
      (Msg.txn_msg target (Msg.Probe { initiator }))
  end

(* A probe has arrived for [target].  Two cases: at [target]'s home site
   we route it onward (or declare a cycle if it came back to its own
   initiator); elsewhere we fan it out to [target]'s local blockers. *)
and handle_probe t ~initiator ~target =
  if target.Tid.origin = t.id then begin
    if Tid.equal initiator target then begin
      (* The probe went round a cycle: the initiator is deadlocked. *)
      match Ids.Txn_map.find_opt t.coords target with
      | Some ctx when (not ctx.co_finished) && ctx.co_machine = None ->
          Counter.incr t.counters "probe_deadlocks";
          abort_coord_early t ctx Deadlock
      | _ -> ()
    end
    else
      match Ids.Txn_map.find_opt t.coords target with
      | Some ctx
        when (not ctx.co_finished)
             && not (Ids.Txn_map.mem ctx.co_probes_seen initiator) -> (
          Ids.Txn_map.replace ctx.co_probes_seen initiator ();
          (* Forward to every site the transaction is waiting on. *)
          match ctx.co_wait with
          | Some (W_read { rw_pending = pending; _ })
          | Some (W_write { ww_pending = pending; _ }) ->
              Sset.iter
                (fun site ->
                  if site = t.id then probe_local_blockers t ~initiator ~target
                  else begin
                    Counter.incr t.counters "probe_msgs";
                    t.send_raw ~dst:site
                      (Msg.txn_msg target (Msg.Probe { initiator }))
                  end)
                pending
          | None -> ())
      | _ -> ()
  end
  else probe_local_blockers t ~initiator ~target

and probe_local_blockers t ~initiator ~target =
  List.iter
    (fun blocker ->
      if Tid.equal blocker initiator then
        (* Cycle closed: tell the initiator's coordinator. *)
        send_probe t ~initiator ~target:initiator
      else send_probe t ~initiator ~target:blocker)
    (Lock.blocking t.locks ~txn:target)

let () = send_probe_ref := send_probe

(* ------------------------------------------------------------------ *)
(* Commit-message routing                                               *)
(* ------------------------------------------------------------------ *)

(* The presumption a site must apply for a transaction it knows nothing
   about.  Only the transaction's coordinator applies the 2PC variant's
   presumption.  A non-coordinator that remembers nothing answers
   [Decision_unknown]: it must not invent an authoritative outcome,
   because under the read-only optimization it may have voted read-only
   and forgotten a transaction that went on to commit — an invented
   "abort" reply would then contradict the real decision.  (State
   requests are different: a definite report is required for termination
   progress, and pledging abort before replying keeps it safe, since a
   site that pledged can never later vote yes.) *)
let answer_unknown t ~src txn (pmsg : P.msg) =
  let reply m = out_commit_msg t txn ~dst:src m ~prepare:None in
  let known = Ids.Txn_map.find_opt t.presumed txn in
  match pmsg with
  | P.Decision_req -> (
      match known with
      | Some d -> reply (P.Decision_msg d)
      | None ->
          if txn.Tid.origin = t.id then
            match t.config.commit_protocol with
            | Config.Two_phase variant ->
                reply (P.Decision_msg (Two_pc.presumption variant))
            | Config.Paxos_commit { f = Some 0 } ->
                (* F = 0: the origin was the sole acceptor, so its lost
                   memory IS the consensus state — the 2PC-PrN abort
                   presumption applies.  With F > 0 a recovery leader may
                   have decided from the surviving acceptors, so the
                   origin must stay uncertain. *)
                reply (P.Decision_msg P.Abort)
            | Config.Three_phase | Config.Quorum_commit _
            | Config.Paxos_commit _ ->
                reply P.Decision_unknown
          else reply P.Decision_unknown)
  | P.State_req | P.Pq_state_req _ -> (
      let state_of = function
        | P.Commit -> P.P_committed
        | P.Abort -> P.P_aborted
      in
      let st =
        match known with
        | Some d -> state_of d
        | None ->
            Ids.Txn_map.replace t.presumed txn P.Abort;
            P.P_aborted
      in
      match pmsg with
      | P.Pq_state_req e -> reply (P.Pq_state_report (e, st))
      | _ -> reply (P.State_report st))
  | P.Decision_msg d ->
      (* A decision reaching a site with no machine for the transaction
         (all memory of it lost in a crash, or already resolved and
         collected): record it if new, and always acknowledge — an
         ack-collecting coordinator would otherwise resend forever. *)
      (match known with
      | Some _ -> ()
      | None ->
          Ids.Txn_map.replace t.presumed txn d;
          Ids.Txn_map.replace t.decided txn d);
      Ids.Txn_map.remove t.px_early txn;
      reply P.Decision_ack
  | P.Px_p1a _ | P.Px_p2a _ -> (
      (* A paxos leader is probing; a remembered outcome terminates it.
         With no memory our acceptor died with us — abstain. *)
      match known with
      | Some d -> reply (P.Decision_msg d)
      | None -> ())
  | P.Decision_unknown | P.Vote_yes | P.Vote_no
  | P.Decision_ack | P.Precommit_msg | P.Precommit_ack | P.Pq_precommit _
  | P.Pq_precommit_ack _ | P.Pq_preabort _ | P.Pq_preabort_ack _
  | P.State_report _ | P.Pq_state_report _ | P.Vote_req
  | P.Vote_read_only | P.Px_p1b _ | P.Px_p2b _ | P.Px_nack _ ->
      ()

let route_commit_msg t ~src txn (pmsg : P.msg) prepare =
  let coord = Ids.Txn_map.find_opt t.coords txn in
  let coord_machine =
    match coord with
    | Some c when c.co_machine <> None -> Some c
    | _ -> None
  in
  let to_part () =
    match part_ctx t txn with
    | Some ctx when ctx.pt_machine <> None ->
        feed_part t ctx (P.Recv (src, pmsg))
    | Some _ | None -> answer_unknown t ~src txn pmsg
  in
  match pmsg with
  | P.Vote_req -> handle_vote_req t ~src txn prepare
  | P.Vote_yes | P.Vote_no | P.Vote_read_only | P.Decision_ack -> (
      match coord_machine with
      | Some c -> feed_coord t c (P.Recv (src, pmsg))
      | None -> ())
  | P.Precommit_ack | P.Pq_precommit_ack _ | P.Pq_preabort_ack _ -> (
      match coord_machine with
      | Some c -> feed_coord t c (P.Recv (src, pmsg))
      | None -> to_part ())
  | P.Px_p1a _ | P.Px_p2a _ | P.Px_p1b _ | P.Px_p2b _ | P.Px_nack _ -> (
      (* The origin site's acceptor and ballot-0 leadership live in the
         coordinator machine; participant leaders never use the origin's
         ballot identity, so origin-bound paxos traffic is the
         coordinator's iff it is alive.  Elsewhere (or after the
         coordinator machine is gone) the participant machine serves its
         acceptor or leader role. *)
      match coord_machine with
      | Some c -> feed_coord t c (P.Recv (src, pmsg))
      | None -> (
          match part_ctx t txn with
          | Some ctx when ctx.pt_machine <> None ->
              feed_part t ctx (P.Recv (src, pmsg))
          | Some _ | None -> (
              match pmsg with
              | P.Px_p1a _ | P.Px_p2a _
                when (not (Ids.Txn_map.mem t.presumed txn))
                     && not (Ids.Txn_map.mem t.decided txn) ->
                  (* Acceptor traffic ahead of our Vote_req: stash for
                     replay at machine creation (see [px_early]).  The
                     cap bounds abandoned transactions; a dropped
                     message is re-earned by the sender's own
                     termination timers, exactly as before. *)
                  let pending =
                    Option.value ~default:[]
                      (Ids.Txn_map.find_opt t.px_early txn)
                  in
                  let cap = t.config.Config.px_early_stash_cap in
                  let pending =
                    (* On overflow drop the oldest stash entry (list is
                       newest-first): recent acceptor traffic supersedes
                       it, and its sender retransmits anyway. *)
                    if List.length pending >= cap then
                      List.filteri (fun i _ -> i < cap - 1) pending
                    else pending
                  in
                  Ids.Txn_map.replace t.px_early txn ((src, pmsg) :: pending)
              | _ -> answer_unknown t ~src txn pmsg)))
  | P.State_report _ | P.Pq_state_report _ -> to_part ()
  | P.Decision_req -> (
      match coord_machine with
      | Some c when (match c.co_machine with
                     | Some m -> m.Erased.decision <> None
                     | None -> false) ->
          feed_coord t c (P.Recv (src, pmsg))
      | _ -> (
          (* A recorded outcome answers even when a local participant
             machine is itself still uncertain (e.g. a recovered
             coordinator-site participant asking around). *)
          match Ids.Txn_map.find_opt t.presumed txn with
          | Some d ->
              out_commit_msg t txn ~dst:src (P.Decision_msg d) ~prepare:None
          | None -> to_part ()))
  | P.Decision_msg _ | P.Decision_unknown | P.Precommit_msg
  | P.Pq_precommit _ | P.Pq_preabort _ | P.State_req | P.Pq_state_req _ ->
      to_part ()

(* ------------------------------------------------------------------ *)
(* Failure-detector wiring                                              *)
(* ------------------------------------------------------------------ *)

let all_machines_feed t input =
  (* Sorted by txn id: feeding a machine emits protocol actions, so the
     feed order is part of the replayed history. *)
  let coords =
    Ids.Txn_map.fold (fun txn c acc -> (txn, c) :: acc) t.coords []
    |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
    |> List.map snd
  in
  let parts =
    Ids.Txn_map.fold (fun txn p acc -> (txn, p) :: acc) t.parts []
    |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
    |> List.map snd
  in
  List.iter (fun c -> if c.co_machine <> None then feed_coord t c input) coords;
  List.iter (fun p -> if p.pt_machine <> None then feed_part t p input) parts

let on_peer_down t peer =
  Counter.incr t.counters "peer_down_events";
  all_machines_feed t (P.Peer_down peer)

let on_peer_up t _peer =
  let view = up_view t in
  all_machines_feed t (P.Peers_reachable view)

let start_hb t =
  match t.hb with
  | Some hb -> Heartbeat.start hb
  | None ->
      let hb =
        Heartbeat.create t.engine ~self:t.id ~peers:(all_site_ids t)
          ~interval:t.config.heartbeat_interval
          ~miss_threshold:t.config.heartbeat_miss
          ~send_beat:(fun peer ->
            if t.up then t.send_raw ~dst:peer (Msg.site_msg Msg.Heartbeat))
          ~on_down:(fun peer -> if t.up then on_peer_down t peer)
          ~on_up:(fun peer -> if t.up then on_peer_up t peer)
      in
      t.hb <- Some hb;
      Heartbeat.start hb

let start t = start_hb t

(* ------------------------------------------------------------------ *)
(* Catch-up                                                             *)
(* ------------------------------------------------------------------ *)

let inventory t =
  Kv.snapshot t.kv |> List.map (fun (k, (i : Kv.item)) -> (k, i.version))

let handle_catchup_req t ~src keys =
  (* Always answer: a copy that is itself validating marks its reply
     partial — the requester merges it (newer versions only, always
     safe) and keeps rotating until it has either a complete reply or a
     full cycle of merges (which together contain every survivor's
     data). *)
  let theirs = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace theirs k v) keys;
  let entries =
    Kv.snapshot t.kv
    |> List.filter_map (fun (k, (i : Kv.item)) ->
           let their_v = Option.value (Hashtbl.find_opt theirs k) ~default:0 in
           if i.version > their_v then Some (k, i.value, i.version) else None)
  in
  t.send_raw ~dst:src
    (Msg.site_msg (Msg.Catchup_reply { entries; complete = not t.catching }))

let handle_catchup_reply t entries ~complete =
  if t.catching then begin
    List.iter
      (fun (key, value, version) ->
        (* A peer may replicate shards we don't; install only our own. *)
        if
          Placement.owns_key t.placement ~site:t.id key
          && version > Kv.version t.kv key
        then Kv.set t.kv ~key ~value ~version)
      entries;
    if complete then begin
      t.catching <- false;
      Counter.incr t.counters "catchups"
    end
  end


(* ------------------------------------------------------------------ *)
(* Crash and recovery                                                   *)
(* ------------------------------------------------------------------ *)

let crash ?torn t =
  if t.up then begin
    t.up <- false;
    t.catching <- false;
    t.incarnation <- t.incarnation + 1;
    Counter.incr t.counters "crashes";
    Option.iter Heartbeat.stop t.hb;
    Wal.crash ?torn t.wal;
    (* Checkpoint sectors can go stale/corrupt in the same power loss.
       Gated on a previous snapshot existing: the bootstrap checkpoint
       holds preloaded data that is in no log record, so losing it would
       model unrecoverable damage outside this fault class. *)
    (match t.fault_rng with
    | Some rng
      when t.config.Config.storage_faults.Storage_faults.checkpoint_corrupt
           > 0.
           && Checkpoint.has_previous t.cp ->
        if
          Rng.bernoulli rng
            ~p:
              t.config.Config.storage_faults.Storage_faults.checkpoint_corrupt
        then Checkpoint.corrupt t.cp
    | _ -> ());
    Kv.clear t.kv;
    t.locks <- Lock.create ();
    Hashtbl.reset t.to_table;
    (* Clients waiting on this coordinator learn the site died. *)
    let pending =
      Ids.Txn_map.fold
        (fun txn ctx acc ->
          if ctx.co_finished then acc else (txn, ctx) :: acc)
        t.coords []
      |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
      |> List.map snd
    in
    List.iter
      (fun ctx ->
        ctx.co_finished <- true;
        Counter.incr t.counters "aborts";
        Counter.incr t.counters ("aborts_" ^ abort_reason_label Site_down);
        ctx.co_k (Aborted Site_down))
      pending;
    Ids.Txn_map.reset t.coords;
    Ids.Txn_map.reset t.parts;
    Ids.Txn_map.reset t.presumed;
    Ids.Txn_map.reset t.decided;
    Ids.Txn_map.reset t.px_early;
    Ids.Txn_map.reset t.first_lsn
  end

(* A crash landing inside the recovery replay window: the site is still
   down, but the scheduled up-transition (and any in-progress replay
   effects in the volatile store) must be discarded so a fresh [recover]
   starts over.  Bumping the incarnation cancels the pending
   up-transition; the store is cleared because replay had already begun
   filling it.  On an up site this is an ordinary crash. *)
let crash_recovering ?torn t =
  if t.up then crash ?torn t
  else begin
    t.incarnation <- t.incarnation + 1;
    Counter.incr t.counters "crashes";
    Wal.crash t.wal;
    Kv.clear t.kv
  end

(* Deterministic fault-injection entry points (nemesis / tests). *)

let corrupt_checkpoint t =
  (* Same bootstrap-checkpoint gate as the probabilistic path. *)
  if Checkpoint.has_previous t.cp then Checkpoint.corrupt t.cp

let corrupt_wal_record t ~lsn = Wal.corrupt_record t.wal ~lsn

let doubt_state_of (d : Recovery.doubt_state) : P.participant_state =
  match d with
  | Recovery.D_prepared -> P.P_uncertain
  | Recovery.D_precommitted -> P.P_precommitted
  | Recovery.D_preaborted -> P.P_preaborted

let recover t =
  if not t.up then begin
    t.incarnation <- t.incarnation + 1;
    Counter.incr t.counters "recoveries";
    (* Integrity scan first: validate checksums and the sequence chain in
       LSN order, truncating at the first break.  A torn group-commit
       tail is dropped cleanly; a break below the durable horizon is
       data loss — count it so the audit can report it loudly. *)
    let scan = Wal.scan t.wal in
    t.torn_truncated <- t.torn_truncated + scan.Wal.sc_torn;
    t.corruption_detected <- t.corruption_detected + scan.Wal.sc_corrupt;
    if scan.Wal.sc_torn > 0 then
      Counter.incr t.counters "torn_tails_truncated";
    if scan.Wal.sc_corrupt > 0 then
      Counter.incr t.counters "log_corruption_detected";
    (* Restore the checkpoint (validated: a corrupt latest snapshot falls
       back to the previous one, or to full log replay) and replay the
       durable log now; surface the result only after the simulated
       replay time has passed. *)
    (match Checkpoint.restore_validated t.cp t.kv with
    | Checkpoint.R_latest _ -> ()
    | Checkpoint.R_previous _ ->
        t.cp_fallbacks <- t.cp_fallbacks + 1;
        Counter.incr t.counters "checkpoint_fallbacks"
    | Checkpoint.R_none ->
        if Option.is_some (Checkpoint.latest t.cp) then begin
          t.cp_fallbacks <- t.cp_fallbacks + 1;
          Counter.incr t.counters "checkpoint_fallbacks"
        end);
    let log = Wal.durable_records t.wal in
    let outcome = Recovery.recover t.kv log in
    let duration =
      Recovery.replay_duration ~per_record:t.config.recovery_per_record
        ~scanned:outcome.scanned ~redone:outcome.redone
    in
    let inc = t.incarnation in
    ignore
      (Engine.schedule_after ~label:(Engine.Internal t.id) t.engine duration
         (fun () ->
           if t.incarnation = inc && not t.up then begin
             t.up <- true;
             let settle txn d =
               Ids.Txn_map.replace t.presumed txn d;
               Ids.Txn_map.replace t.decided txn d
             in
             List.iter (fun txn -> settle txn P.Commit) outcome.committed;
             List.iter (fun txn -> settle txn P.Abort) outcome.aborted;
             (* Presumed-commit coordinator records without a decision
                must abort. *)
             List.iter (fun txn -> settle txn P.Abort) outcome.collecting;
             (* Under 2PC, an in-doubt transaction coordinated *here* is
                settled by this site's own log: no decision record means
                no decision was ever distributed, so the variant's
                presumption (adjusted by any Collecting record, handled
                above) is the answer the coordinator side must give. *)
             (match t.config.commit_protocol with
             | Config.Two_phase variant ->
                 List.iter
                   (fun (d : Recovery.in_doubt) ->
                     if
                       d.txn.Tid.origin = t.id
                       && not (Ids.Txn_map.mem t.presumed d.txn)
                     then settle d.txn (Two_pc.presumption variant))
                   outcome.in_doubt
             | Config.Paxos_commit { f = Some 0 } ->
                 (* Degenerate paxos: the origin was the sole acceptor, so
                    an undistributed decision died with it — the 2PC-PrN
                    abort presumption.  With F > 0 surviving acceptors may
                    have let a recovery leader decide; the origin must
                    stay uncertain and learn the outcome like everyone
                    else. *)
                 List.iter
                   (fun (d : Recovery.in_doubt) ->
                     if
                       d.txn.Tid.origin = t.id
                       && not (Ids.Txn_map.mem t.presumed d.txn)
                     then settle d.txn P.Abort)
                   outcome.in_doubt
             | Config.Three_phase | Config.Quorum_commit _
             | Config.Paxos_commit _ -> ());
             (* Rebuild termination machinery for in-doubt transactions. *)
             List.iter
               (fun (d : Recovery.in_doubt) ->
                 let participants =
                   if d.participants = [] then all_site_ids t
                   else d.participants
                 in
                 let ctx = get_or_create_part t d.txn in
                 ctx.pt_writes <- d.writes;
                 ctx.pt_participants <- participants;
                 ctx.pt_machine <-
                   Some
                     (make_recovered_part_machine t ~txn:d.txn ~participants
                        ~state:(doubt_state_of d.state));
                 feed_part t ctx P.Start)
               outcome.in_doubt;
             (* Catch up missed committed updates when the replica-control
                protocol requires validated copies.  Until the transfer
                completes the site does not heartbeat, so peers keep
                treating it as down and exclude it from plans — the
                classical "validate before serving" discipline.  The
                request retries (rotating peers) until somebody answers. *)
             start_hb t;
             if
               RC.needs_catchup_on_recovery t.config.replica_control
               && t.catchup_peers <> []
             then begin
               t.catching <- true;
               (* Only sites sharing a shard hold data we need; a site
                  replicating nothing has nobody to ask (and nothing to
                  learn). *)
               let peers = t.catchup_peers in
               let n_peers = List.length peers in
               let attempt = ref 0 in
               let rec ask () =
                 if t.catching then
                   if !attempt >= (2 * n_peers) + 2 then begin
                     (* Merged with (or timed out against) every peer at
                        least twice: together with our own log that is the
                        element-wise max of every survivor's state. *)
                     t.catching <- false;
                     Counter.incr t.counters "catchups"
                   end
                   else begin
                     let peer = List.nth peers (!attempt mod n_peers) in
                     incr attempt;
                     t.send_raw ~dst:peer
                       (Msg.site_msg (Msg.Catchup_req { keys = inventory t }));
                     ignore
                       (Engine.schedule_after
                          ~label:
                            (Engine.Timer
                               { site = t.id; name = "catchup-retry" })
                          t.engine t.config.commit_timeouts.resend_every
                          (guarded t ask))
                   end
               in
               ask ()
             end
           end))
  end

let preload t ~entries =
  List.iter
    (fun (key, value) ->
      if Placement.owns_key t.placement ~site:t.id key then
        Kv.set t.kv ~key ~value ~version:1)
    entries;
  Checkpoint.take t.cp ~kv:t.kv ~lsn:(Wal.durable_lsn t.wal)
    ~shard_of:(Placement.shard_of_key t.placement)

(* ------------------------------------------------------------------ *)
(* Delivery entry point                                                 *)
(* ------------------------------------------------------------------ *)

(* Opt-in diagnostic ring buffer of recent deliveries (debugging aid). *)
(* rt_lint: allow no-toplevel-mutable-state -- opt-in debug tap, never read by simulation logic *)
let trace_deliveries = ref false

(* rt_lint: allow no-toplevel-mutable-state -- opt-in debug tap, never read by simulation logic *)
let recent : string list ref = ref []

let note_recent t ~src msg =
  if !trace_deliveries then
    recent :=
      Format.asprintf "site=%d src=%d %a" t.id src Msg.pp msg
      :: (if List.length !recent > 30 then
            List.filteri (fun i _ -> i < 29) !recent
          else !recent)

let dump_recent () = List.rev !recent

let receive t ~src (msg : Msg.t) =
  note_recent t ~src msg;
  if t.up then
    match (msg.txn, msg.payload) with
    | None, Msg.Heartbeat ->
        Option.iter (fun hb -> Heartbeat.beat_received hb ~from:src) t.hb
    | None, Msg.Catchup_req { keys } -> handle_catchup_req t ~src keys
    | None, Msg.Catchup_reply { entries; complete } ->
        handle_catchup_reply t entries ~complete
    | Some txn, Msg.Read_req { key } ->
        handle_read_req t ~txn ~key ~reply:(fun result ->
            t.send_raw ~dst:src
              (Msg.txn_msg txn (Msg.Read_reply { key; result })))
    | Some txn, Msg.Write_req { key; value } ->
        ignore value;
        handle_write_req t ~txn ~key ~reply:(fun result ->
            t.send_raw ~dst:src
              (Msg.txn_msg txn (Msg.Write_reply { key; result })))
    | Some txn, Msg.Read_reply { key; result } -> (
        match Ids.Txn_map.find_opt t.coords txn with
        | Some ctx -> coord_read_reply t ctx ~src ~key ~result
        | None -> ())
    | Some txn, Msg.Write_reply { key; result } -> (
        match Ids.Txn_map.find_opt t.coords txn with
        | Some ctx -> coord_write_reply t ctx ~src ~key ~result
        | None -> ())
    | Some txn, Msg.Abort_txn -> handle_abort_txn t txn
    | Some txn, Msg.Probe { initiator } ->
        handle_probe t ~initiator ~target:txn
    | Some txn, Msg.Commit_msg { pmsg; prepare } ->
        route_commit_msg t ~src txn pmsg prepare
    | Some _, (Msg.Heartbeat | Msg.Catchup_req _ | Msg.Catchup_reply _)
    | None,
      ( Msg.Read_req _ | Msg.Read_reply _ | Msg.Write_req _
      | Msg.Write_reply _ | Msg.Abort_txn | Msg.Commit_msg _ | Msg.Probe _ )
      ->
        ()

let () = receive_ref := receive

(* ------------------------------------------------------------------ *)
(* Canonical state dump / fingerprint (schedule explorer)              *)
(* ------------------------------------------------------------------ *)

let tid_str txn = Format.asprintf "%a" Tid.pp txn
let tid_opt = function None -> "-" | Some txn -> tid_str txn
let sset_str s = String.concat "," (List.map string_of_int (Sset.elements s))

let writes_str ws =
  List.sort
    (fun (k1, v1, n1) (k2, v2, n2) ->
      let c = String.compare k1 k2 in
      if c <> 0 then c
      else
        let c = String.compare v1 v2 in
        if c <> 0 then c else Int.compare n1 n2)
    ws
  |> List.map (fun (k, v, n) -> Printf.sprintf "%s=%s@%d" k v n)
  |> String.concat ","

let timers_str timers =
  Hashtbl.fold
    (fun tm _ acc -> Format.asprintf "%a" P.pp_timer tm :: acc)
    timers []
  |> List.sort String.compare |> String.concat ","

let machine_str = function
  | None -> "-"
  | Some m -> m.Erased.describe ()

(* Canonical rendering of everything that can influence future behaviour
   — store, log, checkpoints, locks, TO stamps, live protocol contexts
   (including the full machine state via [Erased.describe]), decision
   tables, and the failure-detector view.  Every hash table is rendered
   in sorted key order, so two states that differ only in insertion
   history dump identically.  Exploration-irrelevant bookkeeping
   (metrics, latency samples, engine event ids) is deliberately
   excluded. *)
let dump t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let item_str (k, { Kv.value; version }) =
    Printf.sprintf "%s=%s@%d;" k value version
  in
  add "site%d up=%b catching=%b seq=%d cp=%d\n" t.id t.up t.catching t.txn_seq
    t.commits_since_cp;
  add "kv:";
  List.iter (fun e -> add "%s" (item_str e)) (Kv.snapshot t.kv);
  add "\nwal:%s\n"
    (Wal.dump t.wal ~record:(fun r -> Format.asprintf "%a" LR.pp r));
  add "cp:%d" (Checkpoint.count t.cp);
  (match Checkpoint.latest t.cp with
  | None -> ()
  | Some (snap, lsn) ->
      add "@%d{" lsn;
      List.iter (fun e -> add "%s" (item_str e)) snap;
      add "}");
  add "\nlocks:";
  List.iter
    (fun (key, holders, waiting) ->
      let side l =
        String.concat ","
          (List.map
             (fun (txn, m) ->
               Format.asprintf "%a/%a" Tid.pp txn Lock.pp_mode m)
             l)
      in
      add "%s{h=%s;w=%s};" key (side holders) (side waiting))
    (Lock.dump t.locks);
  add "\nto:";
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.to_table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (k, e) ->
         add "%s{r=%s;w=%s;p=%s};" k (tid_opt e.rts) (tid_opt e.wts)
           (String.concat ","
              (List.map tid_str (List.sort Tid.compare e.to_pending))));
  add "\nparts:";
  Ids.Txn_map.fold (fun txn ctx acc -> (txn, ctx) :: acc) t.parts []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  |> List.iter (fun (txn, ctx) ->
         add "%s{w=%s;ps=%s;m=%s;d=%s;res=%b;swp=%b;tm=%s;waits=%d;tok=%s};"
           (tid_str txn) (writes_str ctx.pt_writes)
           (String.concat ","
              (List.map string_of_int
                 (List.sort Int.compare ctx.pt_participants)))
           (machine_str ctx.pt_machine)
           (match ctx.pt_doomed with
           | None -> "-"
           | Some r -> Format.asprintf "%a" Msg.pp_refusal r)
           ctx.pt_resolved
           (Option.is_some ctx.pt_sweep)
           (timers_str ctx.pt_timers)
           (List.length (List.filter (fun w -> not w.w_done) ctx.pt_waits))
           (String.concat "," (List.sort String.compare ctx.pt_to_keys)));
  add "\ncoords:";
  Ids.Txn_map.fold (fun txn ctx acc -> (txn, ctx) :: acc) t.coords []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  |> List.iter (fun (txn, ctx) ->
         let op_str = function
           | Rt_workload.Mix.Read k -> Printf.sprintf "r(%s)" k
           | Rt_workload.Mix.Write (k, v) -> Printf.sprintf "w(%s=%s)" k v
         in
         let wait_str =
           match ctx.co_wait with
           | None -> "-"
           | Some (W_read w) ->
               Printf.sprintf "read{%s;p=%s;v=%d}" w.rw_key
                 (sset_str w.rw_pending) w.rw_version
           | Some (W_write w) ->
               Printf.sprintf "write{%s=%s;p=%s;mv=%d}" w.ww_key w.ww_value
                 (sset_str w.ww_pending) w.ww_maxv
         in
         let site_writes =
           Hashtbl.fold (fun s ws acc -> (s, !ws) :: acc) ctx.co_site_writes []
           |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
           |> List.map (fun (s, ws) ->
                  Printf.sprintf "%d:%s" s (writes_str ws))
           |> String.concat "|"
         in
         let cache =
           Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.co_cache []
           |> List.sort (fun (a, _) (b, _) -> String.compare a b)
           |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
           |> String.concat ","
         in
         add
           "%s{ops=%s;tch=%s;sh=%s;m=%s;wait=%s;fin=%b;out=%s;tm=%s;sw=%s;\
            c=%s};"
           (tid_str txn)
           (String.concat "," (List.map op_str ctx.co_ops))
           (sset_str ctx.co_touched) (sset_str ctx.co_shards)
           (machine_str ctx.co_machine) wait_str ctx.co_finished
           (match ctx.co_outcome with
           | None -> "-"
           | Some Committed -> "C"
           | Some (Aborted r) -> "A:" ^ abort_reason_label r)
           (timers_str ctx.co_timers) site_writes cache);
  let decisions tag map =
    add "\n%s:" tag;
    Ids.Txn_map.fold (fun txn d acc -> (txn, d) :: acc) map []
    |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
    |> List.iter (fun (txn, d) ->
           add "%s=%s;" (tid_str txn)
             (match d with P.Commit -> "C" | P.Abort -> "A"))
  in
  decisions "presumed" t.presumed;
  decisions "decided" t.decided;
  add "\nfirst_lsn:";
  Ids.Txn_map.fold (fun txn l acc -> (txn, l) :: acc) t.first_lsn []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)
  |> List.iter (fun (txn, l) -> add "%s=%d;" (tid_str txn) l);
  add "\nview:%s\n"
    (String.concat "," (List.map string_of_int (up_view t)));
  Buffer.contents buf

let fingerprint t = Digest.to_hex (Digest.string (dump t))
