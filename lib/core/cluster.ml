open Rt_sim

type t = {
  engine : Engine.t;
  config : Config.t;
  net : Msg.t Rt_net.Net.t;
  sites : Site.t array;
  counters : Rt_metrics.Counter.t;
}

let create ?engine config =
  Config.validate config;
  let engine =
    match engine with Some e -> e | None -> Engine.create ~seed:config.seed ()
  in
  let net =
    Rt_net.Net.create ?batch:config.batch_window engine ~nodes:config.sites
      ~default:config.link
  in
  let counters = Rt_metrics.Counter.create () in
  let sites =
    Array.init config.sites (fun id ->
        Site.create ~engine ~id ~config
          ~send:(fun ~dst msg -> Rt_net.Net.send net ~src:id ~dst msg)
          ~counters)
  in
  Array.iter
    (fun site ->
      Rt_net.Net.register net (Site.id site) (fun ~src msg ->
          Site.receive site ~src msg))
    sites;
  Array.iter Site.start sites;
  { engine; config; net; sites; counters }

let engine t = t.engine
let config t = t.config
let placement t = Config.placement t.config

let site t i =
  if i < 0 || i >= Array.length t.sites then
    invalid_arg "Cluster.site: out of range";
  t.sites.(i)

let sites t = t.sites
let counters t = t.counters
let net t = t.net
let net_stats t = Rt_net.Net.stats t.net
let submit t ~site:i ~ops ~k = Site.submit (site t i) ~ops ~k
let run ?until t = Engine.run ?until t.engine
let now t = Engine.now t.engine
let crash_site ?torn t i = Site.crash ?torn (site t i)
let recover_site t i = Site.recover (site t i)
let partition t groups = Rt_net.Partition.split (Rt_net.Net.partition t.net) groups
let heal t = Rt_net.Partition.heal (Rt_net.Net.partition t.net)

let populate t mix =
  let entries = ref [] in
  Rt_workload.Mix.populate mix (fun ~key ~value ->
      entries := (key, value) :: !entries);
  let entries = !entries in
  Array.iter (fun site -> Site.preload site ~entries) t.sites

let latencies t =
  Array.fold_left
    (fun acc site -> Rt_metrics.Sample.merge acc (Site.latencies site))
    (Rt_metrics.Sample.create ()) t.sites

(* One shard's slice of a site's store, key-sorted. *)
let shard_slice placement ~shard kv =
  Rt_storage.Kv.snapshot kv
  |> List.filter (fun (key, _) ->
         Rt_placement.Placement.shard_of_key placement key = shard)

let converged t =
  let placement = Config.placement t.config in
  let shard_ids =
    List.init (Rt_placement.Placement.shards placement) (fun i -> i)
  in
  (* Convergence is per shard: every up replica of a shard must hold a
     byte-identical slice of it.  Non-replicas hold nothing of the shard
     and are not consulted.  Under full replication this degenerates to
     the classical whole-store comparison across all up sites. *)
  List.for_all
    (fun shard ->
      let up =
        Rt_placement.Placement.replicas placement ~shard
        |> List.map (fun i -> t.sites.(i))
        |> List.filter Site.is_up
      in
      match up with
      | [] | [ _ ] -> true
      | first :: rest ->
          let reference = shard_slice placement ~shard (Site.kv first) in
          List.for_all
            (fun s -> shard_slice placement ~shard (Site.kv s) = reference)
            rest)
    shard_ids
