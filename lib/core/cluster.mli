(** A cluster: N sites wired over the simulated network, plus the control
    surface experiments drive — transaction submission, failure and
    partition injection, and aggregate metrics. *)

open Rt_sim
open Rt_types

type t

val create : ?engine:Engine.t -> Config.t -> t
(** Builds the network and sites and starts heartbeats.  Supplying an
    [engine] lets several clusters share one virtual clock. *)

val engine : t -> Engine.t

val config : t -> Config.t

val placement : t -> Rt_placement.Placement.t
(** The effective key→shard→replica placement (degenerate full
    replication when the config sets none). *)

val site : t -> Ids.site_id -> Site.t

val sites : t -> Site.t array

val counters : t -> Rt_metrics.Counter.t

val net : t -> Msg.t Rt_net.Net.t
(** The cluster's network, exposed for fault injection (link overrides,
    directional severs).  Handlers are owned by the sites — don't
    re-register them. *)

val net_stats : t -> Rt_net.Net.Stats.t

val submit :
  t ->
  site:Ids.site_id ->
  ops:Rt_workload.Mix.op list ->
  k:(Site.outcome -> unit) ->
  unit

val run : ?until:Time.t -> t -> unit
(** Drive the simulation.  Heartbeats re-arm themselves forever, so
    always pass [until]; an unbounded run only returns once the event
    queue drains, which never happens while any site is up. *)

val now : t -> Time.t

val crash_site : ?torn:int -> t -> Ids.site_id -> unit
(** [torn] is forwarded to {!Site.crash}: with the storage fault
    profile's [torn_writes] on and a WAL device cycle in flight, exactly
    [torn] records of that cycle survive the crash as durable. *)

val recover_site : t -> Ids.site_id -> unit

val partition : t -> Ids.site_id list list -> unit
(** Install a network partition (groups as in {!Rt_net.Partition.split}). *)

val heal : t -> unit

val populate : t -> Rt_workload.Mix.t -> unit
(** Install the mix's initial keys directly into the stores and
    checkpoints, bypassing the transaction machinery (simulated initial
    state).  Each site keeps only the keys of shards it replicates. *)

val latencies : t -> Rt_metrics.Sample.t
(** Merged commit-latency samples (seconds) across every site. *)

val converged : t -> bool
(** Every up replica of each shard holds a byte-identical slice of that
    shard — the replica-consistency check used by integration tests.
    Under full replication this is the classical whole-store comparison
    across all up sites.  Quorum configurations legitimately diverge on
    stale copies, so this is meaningful for ROWA-style protocols (and
    for quorum after a write-all round). *)
