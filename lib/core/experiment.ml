open Rt_sim
module Table = Rt_metrics.Table
module Counter = Rt_metrics.Counter
module Sample = Rt_metrics.Sample
module Sandbox = Rt_commit.Sandbox
module Two_pc = Rt_commit.Two_pc
module RC = Rt_replica.Replica_control
module Mix = Rt_workload.Mix
module Availability = Rt_quorum.Availability
module Votes = Rt_quorum.Votes
module Workbench = Rt_cc.Workbench
module Placement = Rt_placement.Placement
module Shard_map = Rt_placement.Shard_map

type spec = {
  id : string;
  title : string;
  table : unit -> Table.t;
}

let f1dec = Table.cell_f ~decimals:1
let f2dec = Table.cell_f ~decimals:2
let f3dec = Table.cell_f ~decimals:3

let sandbox_protocols ~sites =
  let q = (sites / 2) + 1 in
  [
    Sandbox.P_two_pc Two_pc.Presumed_nothing;
    Sandbox.P_two_pc Two_pc.Presumed_abort;
    Sandbox.P_two_pc Two_pc.Presumed_commit;
    Sandbox.P_three_pc;
    Sandbox.P_quorum { commit_quorum = q; abort_quorum = q };
    Sandbox.P_paxos { f = (sites - 1) / 2 };
  ]

let cluster_protocols =
  [
    ("2PC-PrN", Config.Two_phase Two_pc.Presumed_nothing);
    ("2PC-PrA", Config.Two_phase Two_pc.Presumed_abort);
    ("2PC-PrC", Config.Two_phase Two_pc.Presumed_commit);
    ("3PC", Config.Three_phase);
    ("QC", Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
    ("Paxos", Config.Paxos_commit { f = None });
  ]

(* Run a closed-loop workload and report client stats plus the cluster. *)
let loaded_run ?(seed = 1) ?(retry_aborts = true) ?(ordered_keys = true)
    ?(route_by_shard = false) ~config ~mix ~clients ~duration () =
  let cluster = Cluster.create config in
  Cluster.populate cluster mix;
  let fleet =
    Client.start_fleet ~cluster ~clients ~mix ~retry_aborts ~ordered_keys
      ~route_by_shard ()
  in
  ignore seed;
  Cluster.run ~until:duration cluster;
  List.iter Client.stop fleet;
  (* Drain in-flight transactions. *)
  Cluster.run ~until:(Time.add duration (Time.ms 200)) cluster;
  (cluster, Client.total fleet)

(* ------------------------------------------------------------------ *)
(* T1: message and forced-write complexity                             *)
(* ------------------------------------------------------------------ *)

(* Closed-form costs for the commit case with N sites (coordinator site
   included; P = N-1 remote participants).  Derived from the protocol
   definitions; the sandbox measurement must match exactly. *)
let analytic_commit proto ~sites =
  let p = sites - 1 in
  match proto with
  | Sandbox.P_two_pc Two_pc.Presumed_nothing -> (4 * p, 1 + (2 * sites))
  | Sandbox.P_two_pc Two_pc.Presumed_abort -> (4 * p, 1 + (2 * sites))
  | Sandbox.P_two_pc Two_pc.Presumed_commit -> (3 * p, 2 + sites)
  | Sandbox.P_three_pc -> (5 * p, 2 + (3 * sites))
  | Sandbox.P_quorum _ -> (5 * p, 2 + (3 * sites))
  (* Paxos Commit: 2PC's message pattern plus, per extra acceptor pair,
     the vote fan-out (2P+1 instances reach 2F extra acceptors) and their
     phase-2b relays to the ballot-0 leader.  F = 0 is exactly 2PC-PrN. *)
  | Sandbox.P_paxos { f } -> ((4 * p) + (2 * f * ((2 * p) + 1)), 1 + (2 * sites))

let t1 =
  {
    id = "T1";
    title =
      "Messages and forced log writes per committed transaction (analytic \
       vs measured, failure-free)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "protocol"; "N"; "msgs (analytic)"; "msgs (measured)";
                "forced (analytic)"; "forced (measured)"; "lazy writes" ]
        in
        List.iter
          (fun sites ->
            List.iter
              (fun proto ->
                let o =
                  Sandbox.run_fifo ~proto ~sites
                    ~votes:(Array.make sites true) ()
                in
                let am, af = analytic_commit proto ~sites in
                Table.add_row table
                  [
                    Sandbox.proto_name proto;
                    Table.cell_i sites;
                    Table.cell_i am;
                    Table.cell_i o.messages;
                    Table.cell_i af;
                    Table.cell_i o.forced_writes;
                    Table.cell_i o.lazy_writes;
                  ])
              (sandbox_protocols ~sites);
            Table.add_rule table)
          [ 3; 5; 7 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* T2: commit latency by protocol and replication degree               *)
(* ------------------------------------------------------------------ *)

let t2 =
  {
    id = "T2";
    title =
      "Commit latency (ms) of update transactions by protocol and \
       replication degree (ROWA, single client)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:[ "protocol"; "N"; "mean"; "p50"; "p99"; "txns" ]
        in
        List.iter
          (fun sites ->
            List.iter
              (fun (name, commit_protocol) ->
                let config =
                  { (Config.default ~sites ()) with
                    commit_protocol;
                    link =
                      Rt_net.Net.reliable_link
                        (Rt_net.Latency.Exponential
                           { min = Time.us 100; mean = Time.us 500 });
                    force_latency = Time.us 100;
                    seed = 7 }
                in
                let mix =
                  { Mix.default with keys = 100; ops_per_txn = 2;
                    read_fraction = 0. }
                in
                let cluster, _ =
                  loaded_run ~config ~mix ~clients:1 ~duration:(Time.ms 800) ()
                in
                let lat = Cluster.latencies cluster in
                let ms p = Sample.percentile lat p *. 1e3 in
                Table.add_row table
                  [
                    name;
                    Table.cell_i sites;
                    f2dec (Sample.mean lat *. 1e3);
                    f2dec (ms 50.);
                    f2dec (ms 99.);
                    Table.cell_i (Sample.count lat);
                  ])
              cluster_protocols;
            Table.add_rule table)
          [ 3; 5; 7 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* T3: closed-form availability                                         *)
(* ------------------------------------------------------------------ *)

let t3 =
  {
    id = "T3";
    title =
      "Closed-form operation availability per replica-control scheme \
       (independent site up-probability p)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "scheme"; "N"; "p"; "read avail"; "write avail"; "update txn" ]
        in
        let row name n p read write txn =
          Table.add_row table
            [ name; Table.cell_i n; f2dec p; Table.cell_f ~decimals:4 read;
              Table.cell_f ~decimals:4 write; Table.cell_f ~decimals:4 txn ]
        in
        List.iter
          (fun p ->
            List.iter
              (fun n ->
                row "ROWA" n p
                  (Availability.rowa_read ~sites:n ~p)
                  (Availability.rowa_write ~sites:n ~p)
                  (Availability.rowa_write ~sites:n ~p);
                row "ROWA-A" n p
                  (Availability.rowa_read ~sites:n ~p)
                  (Availability.available_copies_write ~sites:n ~p)
                  (Availability.available_copies_write ~sites:n ~p);
                let v = Votes.majority ~sites:n in
                row "Majority" n p
                  (Availability.read_availability v ~p)
                  (Availability.write_availability v ~p)
                  (Availability.txn_availability v ~p))
              [ 3; 5; 7 ];
            (* A weighted assignment: one heavy site among five. *)
            let weighted =
              Votes.make ~votes:[| 3; 1; 1; 1; 1 |] ~read_quorum:3
                ~write_quorum:5
            in
            row "Weighted(3,1,1,1,1)" 5 p
              (Availability.read_availability weighted ~p)
              (Availability.write_availability weighted ~p)
              (Availability.txn_availability weighted ~p);
            (* Tree quorums (binary, height 2 = 7 sites): symmetric
               read/write quorums of logarithmic size. *)
            let tree = Rt_quorum.Tree_quorum.availability ~degree:2 ~height:2 ~p in
            row "Tree(2,h=2)" 7 p tree tree tree;
            Table.add_rule table)
          [ 0.90; 0.99 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* T4: throughput by replica control × read fraction                   *)
(* ------------------------------------------------------------------ *)

let replica_controls ~sites =
  [
    ("ROWA", RC.rowa);
    ("ROWA-A", RC.available_copies);
    ("Majority", RC.majority ~sites);
    ("Primary", RC.primary 0);
  ]

let t4 =
  {
    id = "T4";
    title =
      "Throughput by replica-control protocol and read fraction (N=5, 16 \
       clients, 2PC-PrA)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "replica control"; "read fraction"; "committed/s"; "abort %" ]
        in
        List.iter
          (fun rf ->
            List.iter
              (fun (name, rc) ->
                let config =
                  { (Config.default ~sites:5 ()) with
                    replica_control = rc; seed = 11 }
                in
                let mix =
                  { Mix.default with keys = 400; ops_per_txn = 3;
                    read_fraction = rf }
                in
                let duration = Time.ms 600 in
                let _, stats =
                  loaded_run ~config ~mix ~clients:16 ~duration ()
                in
                let total = stats.committed + stats.aborted in
                Table.add_row table
                  [
                    name;
                    f2dec rf;
                    f1dec
                      (float_of_int stats.committed /. Time.to_float_s duration);
                    f1dec
                      (if total = 0 then 0.
                       else 100. *. float_of_int stats.aborted
                            /. float_of_int total);
                  ])
              (replica_controls ~sites:5);
            Table.add_rule table)
          [ 0.5; 0.95 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* T5: recovery time vs log length                                     *)
(* ------------------------------------------------------------------ *)

let t5 =
  {
    id = "T5";
    title =
      "Restart time vs durable log length (replay model: 5µs per redone \
       record, 0.5µs per scanned record)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "log records"; "winners redone"; "in doubt"; "replay (ms)" ]
        in
        let txn seq =
          Rt_types.Ids.Txn_id.make ~origin:0 ~seq ~start_ts:(Time.us seq)
        in
        List.iter
          (fun n ->
            (* Two-thirds committed update txns of 2 records each, a tail
               of in-doubt ones. *)
            let log = ref [] in
            let i = ref 0 in
            while 3 * !i < n do
              incr i;
              let t = txn !i in
              let key = Printf.sprintf "k%d" (!i mod 1000) in
              log :=
                Rt_storage.Log_record.Commit t
                :: Rt_storage.Log_record.Prepared
                     { txn = t; participants = [ 0; 1; 2 ] }
                :: Rt_storage.Log_record.Update
                     { txn = t; key; value = "v"; version = !i; undo = None }
                :: !log
            done;
            let t = txn (!i + 1) in
            log :=
              Rt_storage.Log_record.Prepared
                { txn = t; participants = [ 0; 1; 2 ] }
              :: Rt_storage.Log_record.Update
                   { txn = t; key = "hot"; value = "v"; version = 1;
                     undo = None }
              :: !log;
            let log = List.rev !log in
            let kv = Rt_storage.Kv.create () in
            let o = Rt_storage.Recovery.recover kv log in
            let d =
              Rt_storage.Recovery.replay_duration ~per_record:(Time.us 5)
                ~scanned:o.scanned ~redone:o.redone
            in
            Table.add_row table
              [
                Table.cell_i o.scanned;
                Table.cell_i o.redone;
                Table.cell_i (List.length o.in_doubt);
                f2dec (Time.to_float_ms d);
              ])
          [ 1_000; 5_000; 20_000; 100_000 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* T6: local CC comparison                                              *)
(* ------------------------------------------------------------------ *)

let t6 =
  {
    id = "T6";
    title =
      "Local concurrency control under contention (16 clients, 4 ops/txn, \
       50% reads, 200 keys)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "scheme"; "zipf theta"; "committed/s"; "abort %";
                "deadlock"; "order"; "validation" ]
        in
        List.iter
          (fun theta ->
            List.iter
              (fun scheme ->
                let mix =
                  { Mix.default with keys = 200; ops_per_txn = 4;
                    read_fraction = 0.5; theta }
                in
                let r =
                  Workbench.run ~seed:3 ~scheme ~clients:16 ~mix
                    ~duration:(Time.ms 200) ()
                in
                Table.add_row table
                  [
                    r.scheme;
                    f2dec theta;
                    f1dec r.throughput;
                    f1dec (100. *. r.abort_rate);
                    Table.cell_i r.deadlock_aborts;
                    Table.cell_i r.order_aborts;
                    Table.cell_i r.validation_aborts;
                  ])
              Workbench.all_schemes;
            Table.add_rule table)
          [ 0.0; 0.8; 1.2 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F1: latency percentiles vs multiprogramming level                   *)
(* ------------------------------------------------------------------ *)

let f1 =
  {
    id = "F1";
    title =
      "Latency percentiles vs multiprogramming level (N=3, ROWA, 2PC-PrA): \
       tail growth under load";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "clients"; "committed/s"; "mean ms"; "p50 ms"; "p95 ms";
                "p99 ms" ]
        in
        List.iter
          (fun clients ->
            let config = { (Config.default ~sites:3 ()) with seed = 5 } in
            let mix =
              { Mix.default with keys = 500; ops_per_txn = 3;
                read_fraction = 0.5 }
            in
            let duration = Time.ms 500 in
            let cluster, stats =
              loaded_run ~config ~mix ~clients ~duration ()
            in
            let lat = Cluster.latencies cluster in
            let ms p = Sample.percentile lat p *. 1e3 in
            Table.add_row table
              [
                Table.cell_i clients;
                f1dec (float_of_int stats.committed /. Time.to_float_s duration);
                f2dec (Sample.mean lat *. 1e3);
                f2dec (ms 50.);
                f2dec (ms 95.);
                f2dec (ms 99.);
              ])
          [ 1; 4; 16; 64 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F2: throughput vs number of sites                                    *)
(* ------------------------------------------------------------------ *)

let f2 =
  {
    id = "F2";
    title =
      "Throughput vs replication degree: ROWA vs majority quorum, \
       read-heavy (95%) and write-heavy (0%) (16 clients)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "sites"; "ROWA read-heavy"; "Quorum read-heavy";
                "ROWA write-heavy"; "Quorum write-heavy" ]
        in
        List.iter
          (fun sites ->
            let cell rc rf =
              let config =
                { (Config.default ~sites ()) with replica_control = rc;
                  seed = 13 }
              in
              let mix =
                { Mix.default with keys = 400; ops_per_txn = 3;
                  read_fraction = rf }
              in
              let duration = Time.ms 400 in
              let _, stats = loaded_run ~config ~mix ~clients:16 ~duration () in
              float_of_int stats.committed /. Time.to_float_s duration
            in
            Table.add_row table
              [
                Table.cell_i sites;
                f1dec (cell RC.rowa 0.95);
                f1dec (cell (RC.majority ~sites) 0.95);
                f1dec (cell RC.rowa 0.0);
                f1dec (cell (RC.majority ~sites) 0.0);
              ])
          [ 1; 3; 5; 7 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F3: abort rate vs skew                                               *)
(* ------------------------------------------------------------------ *)

let f3 =
  {
    id = "F3";
    title = "Abort rate (%) vs access skew per CC scheme (16 clients)";
    table =
      (fun () ->
        let table =
          Table.create ~columns:[ "zipf theta"; "2PL"; "TO"; "OCC" ] in
        List.iter
          (fun theta ->
            let rate scheme =
              let mix =
                { Mix.default with keys = 200; ops_per_txn = 4;
                  read_fraction = 0.5; theta }
              in
              let r =
                Workbench.run ~seed:9 ~scheme ~clients:16 ~mix
                  ~duration:(Time.ms 150) ()
              in
              100. *. r.abort_rate
            in
            Table.add_row table
              [
                f2dec theta;
                f2dec (rate Workbench.Two_pl);
                f2dec (rate Workbench.Timestamp);
                f2dec (rate Workbench.Optimistic);
              ])
          [ 0.0; 0.4; 0.8; 1.0; 1.2; 1.4 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F4: availability vs site failure rate                                *)
(* ------------------------------------------------------------------ *)

let f4 =
  {
    id = "F4";
    title =
      "Update-transaction availability vs site MTTF (N=3, MTTR=100ms): \
       measured success fraction vs closed-form prediction";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "scheme"; "MTTF"; "p(up)"; "measured"; "analytic" ]
        in
        let mttr = Time.ms 100 in
        List.iter
          (fun mttf ->
            let p =
              Time.to_float_s mttf /. (Time.to_float_s mttf +. Time.to_float_s mttr)
            in
            List.iter
              (fun (name, rc, commit_protocol, analytic) ->
                let config =
                  { (Config.default ~sites:3 ()) with
                    replica_control = rc; commit_protocol; seed = 21 }
                in
                let mix =
                  { Mix.default with keys = 300; ops_per_txn = 2;
                    read_fraction = 0. }
                in
                let cluster = Cluster.create config in
                Cluster.populate cluster mix;
                let fleet =
                  Client.start_fleet ~cluster ~clients:6 ~mix
                    ~retry_aborts:false ~think:(Time.us 200) ()
                in
                let proc =
                  Failure.random_crashes cluster ~mttf ~mttr ()
                in
                Cluster.run ~until:(Time.sec 4) cluster;
                Failure.stop proc;
                List.iter Client.stop fleet;
                (* Availability conditions on the coordinator being up
                   (the analytic model does too): exclude submissions to a
                   dead home site and mid-crash client notifications. *)
                let c = Cluster.counters cluster in
                let started = Counter.get c "txns_started" in
                let mid_crash = Counter.get c "aborts_site_down" in
                let commits = Counter.get c "commits" in
                let denom = started - mid_crash in
                let measured =
                  if denom <= 0 then 0.
                  else float_of_int commits /. float_of_int denom
                in
                Table.add_row table
                  [
                    name;
                    Format.asprintf "%a" Time.pp mttf;
                    f3dec p;
                    f3dec measured;
                    f3dec (analytic p);
                  ])
              [
                ( "ROWA", RC.rowa,
                  Config.Two_phase Two_pc.Presumed_abort,
                  fun p -> Availability.rowa_write ~sites:3 ~p );
                ( "ROWA-A", RC.available_copies,
                  Config.Two_phase Two_pc.Presumed_abort,
                  fun p -> Availability.available_copies_write ~sites:3 ~p );
                ( "Majority", RC.majority ~sites:3,
                  Config.Quorum_commit
                    { commit_quorum = None; abort_quorum = None },
                  fun p -> Availability.majority_txn ~sites:3 ~p );
              ];
            Table.add_rule table)
          [ Time.sec 2; Time.ms 500; Time.ms 200 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F5: blocking after coordinator crash                                 *)
(* ------------------------------------------------------------------ *)

let f5 =
  {
    id = "F5";
    title =
      "Coordinator crash during commit (no recovery): fraction of runs \
       with a blocked survivor, across crash points (N=3, all-yes)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "protocol"; "runs"; "blocked %"; "undecided %"; "agreement %" ]
        in
        List.iter
          (fun proto ->
            let runs = ref 0
            and blocked = ref 0
            and undecided = ref 0
            and agree = ref 0 in
            for k = 1 to 15 do
              for seed = 1 to 10 do
                incr runs;
                let o =
                  Sandbox.run ~seed ~crashes:[ (0, 2 * k) ] ~max_steps:1500
                    ~proto ~sites:3 ~votes:(Array.make 3 true) ()
                in
                if o.blocked then incr blocked;
                if not o.all_decided then incr undecided;
                if o.agreement then incr agree
              done
            done;
            let pct x = 100. *. float_of_int x /. float_of_int !runs in
            Table.add_row table
              [
                Sandbox.proto_name proto;
                Table.cell_i !runs;
                f1dec (pct !blocked);
                f1dec (pct !undecided);
                f1dec (pct !agree);
              ])
          [
            Sandbox.P_two_pc Two_pc.Presumed_abort;
            Sandbox.P_three_pc;
            Sandbox.P_quorum { commit_quorum = 2; abort_quorum = 2 };
            (* The Gray–Lamport contrast: at F = 0 Paxos Commit blocks
               exactly like 2PC (the sole acceptor died with the
               coordinator); at F = 1 the surviving acceptor quorum
               elects a new leader and every run terminates. *)
            Sandbox.P_paxos { f = 0 };
            Sandbox.P_paxos { f = 1 };
          ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F6: read-quorum sizing crossover                                     *)
(* ------------------------------------------------------------------ *)

let f6 =
  {
    id = "F6";
    title =
      "Throughput by read-quorum size r (N=7, w=8-r) across read \
       fractions: the weighted-voting crossover";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:[ "read fraction"; "r=1,w=7"; "r=2,w=6"; "r=3,w=5";
                       "r=4,w=4" ]
        in
        List.iter
          (fun rf ->
            let cells =
              List.map
                (fun r ->
                  let rc =
                    RC.quorum ~read_quorum:r ~write_quorum:(8 - r) ~sites:7
                  in
                  let config =
                    { (Config.default ~sites:7 ()) with
                      replica_control = rc; seed = 31 }
                  in
                  let mix =
                    { Mix.default with keys = 400; ops_per_txn = 3;
                      read_fraction = rf }
                  in
                  let duration = Time.ms 400 in
                  let _, stats =
                    loaded_run ~config ~mix ~clients:16 ~duration ()
                  in
                  float_of_int stats.committed /. Time.to_float_s duration)
                [ 1; 2; 3; 4 ]
            in
            Table.add_row table (f2dec rf :: List.map f1dec cells))
          [ 0.0; 0.2; 0.5; 0.8; 0.95 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F7: deadlocks vs multiprogramming                                    *)
(* ------------------------------------------------------------------ *)

let f7 =
  {
    id = "F7";
    title =
      "Deadlock victims and lock-wait timeouts vs multiprogramming level \
       (N=3, unordered key access, 20 hot keys, 80% writes)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "clients"; "committed/s"; "deadlocks/1k txns";
                "lock timeouts/1k txns" ]
        in
        List.iter
          (fun clients ->
            let config = { (Config.default ~sites:3 ()) with seed = 23 } in
            let mix =
              { Mix.default with keys = 20; ops_per_txn = 4;
                read_fraction = 0.2 }
            in
            let duration = Time.ms 400 in
            let cluster, stats =
              loaded_run ~config ~mix ~clients ~duration ~ordered_keys:false ()
            in
            let c = Cluster.counters cluster in
            let per_1k n =
              if stats.committed = 0 then 0.
              else 1000. *. float_of_int n /. float_of_int stats.committed
            in
            Table.add_row table
              [
                Table.cell_i clients;
                f1dec (float_of_int stats.committed /. Time.to_float_s duration);
                f2dec (per_1k (Counter.get c "deadlock_victims"));
                f2dec (per_1k (Counter.get c "lock_timeouts"));
              ])
          [ 2; 8; 16; 32; 64 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* F8: partition timeline                                               *)
(* ------------------------------------------------------------------ *)

let f8 =
  {
    id = "F8";
    title =
      "Network partition {0,1} | {2,3,4} from 300ms to 800ms (N=5): \
       commits per side per phase, and consistency after healing";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "configuration"; "phase"; "majority-side commits";
                "minority-side commits"; "split-brain" ]
        in
        let run_config name rc commit_protocol =
          let config =
            { (Config.default ~sites:5 ()) with
              replica_control = rc; commit_protocol; seed = 41 }
          in
          let cluster = Cluster.create config in
          let mix =
            { Mix.default with keys = 100; ops_per_txn = 2;
              read_fraction = 0.2 }
          in
          Cluster.populate cluster mix;
          (* Minority clients on sites 0-1, majority clients on 2-4. *)
          let minority =
            List.map
              (fun s ->
                let c =
                  Client.create ~cluster ~site:s ~mix ~retry_aborts:false
                    ~think:(Time.us 500) ()
                in
                Client.start c;
                c)
              [ 0; 1 ]
          in
          let majority =
            List.map
              (fun s ->
                let c =
                  Client.create ~cluster ~site:s ~mix ~retry_aborts:false
                    ~think:(Time.us 500) ()
                in
                Client.start c;
                c)
              [ 2; 3; 4 ]
          in
          let snap clients = (Client.total clients).committed in
          let phases = ref [] in
          let mark label at =
            ignore
              (Engine.schedule_at (Cluster.engine cluster) at (fun () ->
                   phases := (label, snap majority, snap minority) :: !phases))
          in
          (* Stop traffic before healing so post-heal writes cannot mask
             what happened during the partition. *)
          ignore
            (Engine.schedule_at (Cluster.engine cluster) (Time.ms 760)
               (fun () -> List.iter Client.stop (minority @ majority)));
          let conflicts = ref (-1) in
          ignore
            (Engine.schedule_at (Cluster.engine cluster) (Time.ms 799)
               (fun () ->
                 (* A fork is the same version number carrying different
                    values on the two sides: divergent histories.  Mere
                    staleness (different versions) is legal under
                    quorums. *)
                 let item_of snapshot key = List.assoc_opt key snapshot in
                 let now_min =
                   Rt_storage.Kv.snapshot (Site.kv (Cluster.site cluster 0))
                 in
                 let now_maj =
                   Rt_storage.Kv.snapshot (Site.kv (Cluster.site cluster 2))
                 in
                 let keys = List.map fst now_maj in
                 conflicts :=
                   List.length
                     (List.filter
                        (fun k ->
                          match (item_of now_min k, item_of now_maj k) with
                          | Some a, Some b ->
                              a.Rt_storage.Kv.version = b.Rt_storage.Kv.version
                              && a.value <> b.value
                          | _ -> false)
                        keys)));
          Failure.schedule cluster
            [
              (Time.ms 300, Failure.Partition [ [ 0; 1 ]; [ 2; 3; 4 ] ]);
              (Time.ms 800, Failure.Heal);
            ];
          mark "pre-partition" (Time.ms 300);
          mark "partitioned" (Time.ms 800);
          Cluster.run ~until:(Time.ms 1000) cluster;
          let rows = List.rev !phases in
          let prev_maj = ref 0 and prev_min = ref 0 in
          List.iter
            (fun (label, maj, mino) ->
              Table.add_row table
                [
                  name;
                  label;
                  Table.cell_i (maj - !prev_maj);
                  Table.cell_i (mino - !prev_min);
                  (if label = "partitioned" then
                     Printf.sprintf "%d forked keys" !conflicts
                   else "-");
                ];
              prev_maj := maj;
              prev_min := mino)
            rows;
          Table.add_rule table
        in
        run_config "ROWA-A + 2PC-PrA (not partition-safe)"
          RC.available_copies (Config.Two_phase Two_pc.Presumed_abort);
        run_config "Majority quorum + QC (partition-safe)"
          (RC.majority ~sites:5)
          (Config.Quorum_commit { commit_quorum = None; abort_quorum = None });
        table);
  }


(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let a1 =
  {
    id = "A1";
    title =
      "Ablation: group commit — forced-write batching as concurrent \
       commits share log-force cycles (N=3, 2PC-PrA, write-only)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "clients"; "committed"; "log forces (site 0)";
                "commits per force" ]
        in
        List.iter
          (fun clients ->
            let config =
              { (Config.default ~sites:3 ()) with
                force_latency = Time.us 200; seed = 47 }
            in
            let mix =
              { Mix.default with keys = 500; ops_per_txn = 2;
                read_fraction = 0. }
            in
            let cluster, stats =
              loaded_run ~config ~mix ~clients ~duration:(Time.ms 300) ()
            in
            let forces = Site.wal_forces (Cluster.site cluster 0) in
            Table.add_row table
              [
                Table.cell_i clients;
                Table.cell_i stats.committed;
                Table.cell_i forces;
                f2dec
                  (if forces = 0 then 0.
                   else float_of_int stats.committed /. float_of_int forces);
              ])
          [ 1; 4; 16; 64 ];
        table);
  }

let a2 =
  {
    id = "A2";
    title =
      "Ablation: 2PC read-only optimization — cost of one transaction \
       with k read-only participants out of 5 (presumed abort)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "read-only sites"; "msgs (off)"; "msgs (on)";
                "forced (off)"; "forced (on)" ]
        in
        let sites = 5 in
        let votes = Array.make sites true in
        List.iter
          (fun k ->
            let ro = Array.init sites (fun i -> i >= sites - k) in
            let proto = Sandbox.P_two_pc Two_pc.Presumed_abort in
            let off = Sandbox.run ~proto ~sites ~votes () in
            let on = Sandbox.run ~read_only:ro ~proto ~sites ~votes () in
            Table.add_row table
              [
                Table.cell_i k;
                Table.cell_i off.messages;
                Table.cell_i on.messages;
                Table.cell_i off.forced_writes;
                Table.cell_i on.forced_writes;
              ])
          [ 0; 1; 2; 3; 4 ];
        table);
  }

let a3 =
  {
    id = "A3";
    title =
      "Ablation: deadlock handling — detection vs wound-wait vs wait-die \
       (16 clients, hot 30-key set, 70% writes, unordered key access)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "policy"; "zipf theta"; "committed/s"; "abort %";
                "victim aborts" ]
        in
        List.iter
          (fun theta ->
            List.iter
              (fun scheme ->
                let mix =
                  { Mix.default with keys = 30; ops_per_txn = 4;
                    read_fraction = 0.3; theta }
                in
                let r =
                  Workbench.run ~seed:51 ~ordered:false ~scheme ~clients:16
                    ~mix ~duration:(Time.ms 150) ()
                in
                Table.add_row table
                  [
                    r.scheme;
                    f2dec theta;
                    f1dec r.throughput;
                    f1dec (100. *. r.abort_rate);
                    Table.cell_i r.deadlock_aborts;
                  ])
              Workbench.all_2pl_policies;
            Table.add_rule table)
          [ 0.0; 1.0 ];
        table);
  }


let a4 =
  {
    id = "A4";
    title =
      "Ablation: distributed deadlock handling — lock-wait timeout vs \
       Chandy-Misra-Haas probes (N=3, unordered access, hot keys)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "resolution"; "committed/s"; "lock timeouts";
                "probe detections"; "mean latency ms" ]
        in
        List.iter
          (fun (name, probe_deadlocks) ->
            let config =
              { (Config.default ~sites:3 ()) with probe_deadlocks; seed = 61 }
            in
            let mix =
              { Mix.default with keys = 15; ops_per_txn = 4;
                read_fraction = 0.3 }
            in
            let duration = Time.ms 400 in
            let cluster, stats =
              loaded_run ~config ~mix ~clients:12 ~duration
                ~ordered_keys:false ()
            in
            let c = Cluster.counters cluster in
            let lat = Cluster.latencies cluster in
            Table.add_row table
              [
                name;
                f1dec
                  (float_of_int stats.committed /. Time.to_float_s duration);
                Table.cell_i (Counter.get c "lock_timeouts");
                Table.cell_i (Counter.get c "probe_deadlocks");
                f2dec (Sample.mean lat *. 1e3);
              ])
          [ ("timeout only", false); ("CMH probes", true) ];
        table);
  }


let a5 =
  {
    id = "A5";
    title =
      "Ablation: distributed concurrency control — strict 2PL vs \
       timestamp ordering at the replicas (N=3, ROWA, 12 clients)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "scheme"; "zipf theta"; "committed/s"; "abort %";
                "order conflicts"; "lock timeouts" ]
        in
        List.iter
          (fun theta ->
            List.iter
              (fun (name, concurrency) ->
                let config =
                  { (Config.default ~sites:3 ()) with concurrency; seed = 71 }
                in
                let mix =
                  { Mix.default with keys = 60; ops_per_txn = 3;
                    read_fraction = 0.5; theta }
                in
                let duration = Time.ms 400 in
                let cluster, stats =
                  loaded_run ~config ~mix ~clients:12 ~duration ()
                in
                let c = Cluster.counters cluster in
                let total = stats.committed + stats.aborted in
                Table.add_row table
                  [
                    name;
                    f2dec theta;
                    f1dec
                      (float_of_int stats.committed /. Time.to_float_s duration);
                    f1dec
                      (if total = 0 then 0.
                       else 100. *. float_of_int stats.aborted
                            /. float_of_int total);
                    Table.cell_i (Counter.get c "order_conflicts");
                    Table.cell_i (Counter.get c "lock_timeouts");
                  ])
              [ ("2PL", Config.Locking); ("TO", Config.Timestamp) ];
            Table.add_rule table)
          [ 0.0; 0.9 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* S1: throughput vs shard count                                        *)
(* ------------------------------------------------------------------ *)

let s1 =
  {
    id = "S1";
    title =
      "Sharding: throughput vs shard count (N=9 fixed, 3 replicas per \
       shard, round-robin placement, shard-routed clients, write-heavy)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "shards"; "degree"; "committed/s"; "abort %";
                "msgs per commit" ]
        in
        let sites = 9 in
        List.iter
          (fun shards ->
            let placement =
              Placement.create ~map:(Shard_map.hash ~shards) ~sites ~degree:3
                ()
            in
            let config =
              { (Config.default ~sites ()) with
                placement = Some placement; seed = 83 }
            in
            (* Single-operation (hence single-shard) transactions: the
               pure partitioning claim.  S2 prices the cross-shard
               mixture separately. *)
            let mix =
              { Mix.default with keys = 360; ops_per_txn = 1;
                read_fraction = 0. }
            in
            let duration = Time.ms 400 in
            let cluster, stats =
              loaded_run ~config ~mix ~clients:18 ~duration
                ~route_by_shard:true ()
            in
            let c = Counter.get (Cluster.counters cluster) in
            let total = stats.committed + stats.aborted in
            Table.add_row table
              [
                Table.cell_i shards;
                Table.cell_i 3;
                f1dec
                  (float_of_int stats.committed /. Time.to_float_s duration);
                f1dec
                  (if total = 0 then 0.
                   else 100. *. float_of_int stats.aborted
                        /. float_of_int total);
                f1dec
                  (if stats.committed = 0 then 0.
                   else
                     float_of_int (c "data_msgs" + c "commit_protocol_msgs")
                     /. float_of_int stats.committed);
              ])
          [ 1; 2; 4; 8 ];
        table);
  }

(* ------------------------------------------------------------------ *)
(* S2: commit cost vs cross-shard fraction                              *)
(* ------------------------------------------------------------------ *)

let s2 =
  {
    id = "S2";
    title =
      "Sharding: commit cost vs cross-shard fraction (N=6, two range \
       shards on disjoint replica triples, single client at a shard-0 \
       replica, 2PC-PrA, write-only)";
    table =
      (fun () ->
        let table =
          Table.create
            ~columns:
              [ "cross-shard fraction"; "committed"; "mean ms"; "p99 ms";
                "msgs per txn"; "forces per txn" ]
        in
        List.iter
          (fun frac ->
            let sites = 6 in
            (* Range split at "b": "a…" keys → shard 0 on {0,1,2},
               "b…" keys → shard 1 on {3,4,5} (Spread layout). *)
            let placement =
              Placement.create ~layout:Placement.Spread
                ~map:(Shard_map.range ~boundaries:[ "b" ])
                ~sites ~degree:3 ()
            in
            let config =
              { (Config.default ~sites ()) with
                placement = Some placement; seed = 89 }
            in
            let cluster = Cluster.create config in
            let n = 200 in
            (* Bresenham spread of cross-shard transactions through the
               sequence: txn i is cross-shard iff the running integral of
               [frac] steps. *)
            let cross i =
              int_of_float (frac *. float_of_int (i + 1))
              > int_of_float (frac *. float_of_int i)
            in
            let key p i = Printf.sprintf "%s%02d" p (i mod 20) in
            let ops i =
              if cross i then
                [ Mix.Write (key "a" i, "v"); Mix.Write (key "b" i, "v") ]
              else
                [ Mix.Write (key "a" i, "v"); Mix.Write (key "a" (i + 7), "v") ]
            in
            let committed = ref 0 in
            let engine = Cluster.engine cluster in
            let rec go i =
              if i < n then
                Cluster.submit cluster ~site:0 ~ops:(ops i) ~k:(fun o ->
                    if o = Site.Committed then incr committed;
                    ignore
                      (Engine.schedule_after engine (Time.us 10) (fun () ->
                           go (i + 1))))
            in
            go 0;
            Cluster.run ~until:(Time.sec 2) cluster;
            let c = Counter.get (Cluster.counters cluster) in
            let lat = Cluster.latencies cluster in
            let forces =
              Array.fold_left
                (fun acc site -> acc + Site.wal_forces site)
                0 (Cluster.sites cluster)
            in
            let per_txn x =
              if !committed = 0 then 0.
              else float_of_int x /. float_of_int !committed
            in
            Table.add_row table
              [
                f2dec frac;
                Table.cell_i !committed;
                f2dec (Sample.mean lat *. 1e3);
                f2dec (Sample.percentile lat 99. *. 1e3);
                f1dec (per_txn (c "data_msgs" + c "commit_protocol_msgs"));
                f2dec (per_txn forces);
              ])
          [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
        table);
  }

let all =
  [ t1; t2; t3; t4; t5; t6; f1; f2; f3; f4; f5; f6; f7; f8; a1; a2; a3; a4;
    a5; s1; s2 ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun s -> String.lowercase_ascii s.id = id) all
