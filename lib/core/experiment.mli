(** The reconstructed evaluation: one function per table/figure.

    Each experiment returns a rendered {!Rt_metrics.Table.t} plus enough
    context for EXPERIMENTS.md.  Everything is deterministic given the
    built-in seeds; runs take simulated time, not wall-clock time.  See
    DESIGN.md for the experiment index and EXPERIMENTS.md for expected
    shapes. *)

type spec = {
  id : string;  (** "T1" ... "F8" *)
  title : string;
  table : unit -> Rt_metrics.Table.t;
}

val t1 : spec
(** Messages and forced log writes per transaction: analytic vs measured,
    per protocol and replication degree. *)

val t2 : spec
(** Commit latency by protocol and replication degree. *)

val t3 : spec
(** Closed-form read/write/update availability per replica-control
    scheme. *)

val t4 : spec
(** Throughput by replica-control protocol and read fraction. *)

val t5 : spec
(** Recovery time vs durable log length. *)

val t6 : spec
(** Local concurrency control (2PL/TO/OCC) under varying contention. *)

val f1 : spec
(** Latency percentiles vs multiprogramming level. *)

val f2 : spec
(** Throughput vs number of sites, ROWA vs majority quorum. *)

val f3 : spec
(** Abort rate vs access skew per CC scheme. *)

val f4 : spec
(** Transaction availability vs site failure rate, per replica-control
    scheme, with the analytic prediction alongside. *)

val f5 : spec
(** Blocking after coordinator crash: 2PC vs 3PC vs quorum commit. *)

val f6 : spec
(** Read-quorum size vs read fraction: the weighted-voting cost
    crossover. *)

val f7 : spec
(** Deadlock and lock-timeout rates vs multiprogramming level. *)

val f8 : spec
(** Partition timeline: who commits on each side, and consistency after
    healing. *)

val a1 : spec
(** Ablation: group commit — commits amortized per log force. *)

val a2 : spec
(** Ablation: the 2PC read-only optimization's message/force savings. *)

val a3 : spec
(** Ablation: deadlock detection vs wound-wait vs wait-die. *)

val a4 : spec
(** Ablation: distributed deadlock resolution — timeout vs CMH probes. *)

val a5 : spec
(** Ablation: distributed concurrency control — 2PL vs timestamp
    ordering. *)

val s1 : spec
(** Sharding: throughput vs shard count at fixed cluster size — the
    placement layer's scaling claim. *)

val s2 : spec
(** Sharding: commit cost vs cross-shard fraction — single-shard fast
    path vs cross-shard 2PC over disjoint replica sets. *)

val all : spec list
(** In presentation order T1..T6, F1..F8, A1..A5, S1..S2. *)

val find : string -> spec option
(** Case-insensitive lookup by id. *)
