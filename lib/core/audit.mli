(** Shared invariant auditor.

    The single implementation of the end-of-run checks every harness runs
    against a cluster — soak, the crash-point sweep, and the nemesis
    fault campaigns all consume these, so a new invariant lands in one
    place.  All functions expect a drained cluster: faults healed,
    crashed sites recovered, and the engine run past the last client
    submission. *)

open Rt_sim
open Rt_types

type violation = { inv : string; detail : string }
(** [inv] names the invariant class ("agreement", "durability",
    "termination", "recovery", "locks", "timers"); [detail] is a
    human-readable description including the offending site/txn. *)

val pp_violation : Format.formatter -> violation -> unit

val forked_keys : Cluster.t -> (string * Ids.site_id * Ids.site_id) list
(** Keys holding the same version with different values on two sites —
    split-brain evidence.  Sorted, deduplicated. *)

val fork_freedom : Cluster.t -> violation list
(** [forked_keys] as an agreement violation (empty when fork-free). *)

val site_hygiene : Cluster.t -> violation list
(** Every site is serving, with no unresolved or blocked commit
    participants, no held locks, and no pending protocol timers. *)

val decisions :
  Cluster.t -> (Ids.Txn_id.t * (Ids.site_id * Rt_commit.Protocol.decision) list) list
(** Every site's recorded commit decisions, grouped by transaction and
    sorted by transaction id. *)

val agreement : Cluster.t -> violation list
(** No transaction both committed at one site and aborted at another. *)

val any_committed : Cluster.t -> bool
(** Whether any site recorded a commit decision for any transaction. *)

val durability : Cluster.t -> writes:(string * string) list -> violation list
(** Each (key, value) write is present on every replica of the key's
    shard.  Only meaningful for writes known to have committed — gate on
    {!any_committed} (or the client outcome) before calling. *)

val convergence : Cluster.t -> violation list
(** Per-shard replica convergence ({!Cluster.converged}) as a durability
    violation.  Callers may downgrade this to a note for replica-control
    schemes that document divergence under partitions (ROWA-A). *)

val quiescence : Cluster.t -> settle:Time.t -> violation list
(** Runs the cluster [settle] further and fails if any commit-protocol
    message was sent during the window: a machine still resending after
    the drain horizon is an undrained protocol. *)

val standard :
  ?writes:(string * string) list -> ?settle:Time.t -> Cluster.t -> violation list
(** The full battery: optional {!quiescence} (when [settle] is given),
    then hygiene, agreement, fork-freedom, durability of [writes] (when
    something committed), and convergence, in that order. *)
