(** Cluster configuration: which protocols run and what everything costs. *)

open Rt_sim

type commit_protocol =
  | Two_phase of Rt_commit.Two_pc.variant
  | Three_phase
  | Quorum_commit of { commit_quorum : int option; abort_quorum : int option }
      (** [None] thresholds default to majority. *)
  | Paxos_commit of { f : int option }
      (** Paxos Commit with 2F+1 acceptors and F+1 quorums; [None] picks
          the largest F the participant count supports.  [F = 0] is the
          2PC-degenerate configuration. *)

val commit_protocol_name : commit_protocol -> string

type concurrency = Locking | Timestamp
(** Distributed concurrency control at the replicas: strict two-phase
    locking (waits, deadlock handling), or basic timestamp ordering with
    the Thomas write rule (never waits, restarts on conflict). *)

val concurrency_name : concurrency -> string

type t = {
  sites : int;
  concurrency : concurrency;
  commit_protocol : commit_protocol;
  replica_control : Rt_replica.Replica_control.t;
  placement : Rt_placement.Placement.t option;
      (** Key→shard→replica-set assignment.  [None] (the default) is full
          replication: one shard held by every site, the paper's classical
          setting.  A sharded placement makes every read/write plan,
          commit participant set, checkpoint, and catch-up transfer
          per-shard; cross-shard transactions run the configured commit
          protocol over the union of the touched shards' replica sets. *)
  link : Rt_net.Net.link;  (** Default link between every pair of sites. *)
  force_latency : Time.t;  (** Stable-storage force cost. *)
  group_commit_window : Time.t;
      (** WAL group-commit flush window: a force request arms a per-site
          flush timer instead of starting the device immediately, so every
          force arriving within the window shares one device cycle.  Zero
          (the default) starts the device on the first force, which is the
          classical per-transaction behaviour (busy-device coalescing
          still applies either way). *)
  batch_window : Time.t option;
      (** Per-link message batching: messages to the same destination
          within the window travel as one wire envelope (one latency
          sample and one loss/duplication roll for the whole envelope,
          FIFO unpack at delivery).  [None] (the default) sends every
          message as its own envelope. *)
  lock_wait_timeout : Time.t;
      (** A lock request waiting longer than this is refused (distributed
          deadlocks resolve by timeout; local ones by cycle detection). *)
  op_timeout : Time.t;
      (** Coordinator gives up on a read/write round after this long. *)
  commit_timeouts : Rt_commit.Protocol.timeouts;
  retry_backoff_base : Time.t;
      (** First client retry delay after an abort; later attempts double it
          (capped, jittered).  Must be positive. *)
  retry_backoff_cap : Time.t;
      (** Ceiling on the exponential retry delay.  Must be positive and at
          least [retry_backoff_base]. *)
  heartbeat_interval : Time.t;
  heartbeat_miss : int;
  recovery_per_record : Time.t;  (** Restart replay cost per log record. *)
  checkpoint_every : int;
      (** Take a checkpoint every n committed transactions (0 = never). *)
  orphan_window_factor : int;
      (** A participant context whose commit machine never arrives is
          aborted locally after [orphan_window_factor * decision_wait]
          (the coordinator died before phase 1 reached us).  Must be at
          least 1; default 10. *)
  probe_deadlocks : bool;
      (** Detect distributed deadlocks with Chandy–Misra–Haas edge-chasing
          probes instead of waiting out the lock timeout (which remains as
          a backstop).  Default off. *)
  read_only_optimization : bool;
      (** 2PC only: participants that performed no writes vote read-only,
          release immediately, and skip phase 2 (default off so the
          baseline experiments measure the unoptimized protocol). *)
  storage_faults : Rt_storage.Storage_faults.t;
      (** What the stable-storage device may do to its bytes: torn
          group-commit cycles on crash, latent corruption below the
          durable horizon, corrupt checkpoints.  Default
          {!Rt_storage.Storage_faults.off} — the perfect device; every
          harness is byte-identical under it. *)
  px_early_stash_cap : int;
      (** Maximum early (pre-machine) Paxos messages stashed per
          transaction at a participant; on overflow the oldest stashed
          message is dropped (the sender retransmits).  Must be
          positive; default 32. *)
  seed : int;
}

val default : ?sites:int -> unit -> t
(** Three sites, 2PC presumed-abort, ROWA, full replication, exponential
    100µs links, 50µs log force. *)

val placement : t -> Rt_placement.Placement.t
(** The effective placement: the configured one, or the degenerate
    full-replication placement over [sites] when none is set. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent settings: non-positive site
    count, a placement whose site count or replication degree disagrees
    with [sites], a primary site out of range, quorum thresholds that
    violate intersection or don't match the site count, negative
    latencies/timeouts, a non-positive heartbeat interval, retry
    backoff knobs that are non-positive or cap below base, a storage
    fault probability outside [0,1], or a non-positive
    [px_early_stash_cap]. *)
