(** Failure injection: scripted schedules and random crash/recover
    processes, driven by the cluster's virtual clock. *)

open Rt_sim
open Rt_types

type event =
  | Crash of Ids.site_id
  | Recover of Ids.site_id
  | Partition of Ids.site_id list list
  | Heal

val schedule : Cluster.t -> (Time.t * event) list -> unit
(** Install a fixed schedule of failure events (absolute virtual times). *)

val isolate_shard : Cluster.t -> shard:int -> unit
(** Partition the network so one shard's replica set is cut off from
    every other site.  Cross-shard transactions coordinated outside the
    island must then abort (no split-brain); heal with {!Cluster.heal}. *)

type process

val random_crashes :
  Cluster.t ->
  mttf:Time.t ->
  mttr:Time.t ->
  ?protect:Ids.site_id list ->
  unit ->
  process
(** Each unprotected site independently alternates up/down with
    exponentially distributed times to failure ([mttf]) and repair
    ([mttr]).  Deterministic given the engine's seed.  Runs until
    {!stop}. *)

val stop : process -> unit

(** {1 Crash-point fault injection}

    Instrumented components announce named execution points (see
    {!Rt_sim.Engine.crash_point}); these helpers install the engine hook
    that either records the stream of points (discovery pass) or crashes a
    site at an exact occurrence of one (injection pass).  At most one hook
    is active per engine — installing a new one replaces the old. *)

val observe_crash_points : Cluster.t -> unit -> (Ids.site_id * string) list
(** [observe_crash_points cluster] starts recording every announced point;
    the returned thunk yields the stream so far, in announcement order. *)

val observe_crash_points_sized :
  Cluster.t -> unit -> (Ids.site_id * string * int) list
(** Like {!observe_crash_points}, additionally recording the announcing
    site's WAL device-cycle size at each point — for
    ["wal:force-durable"], the number of records [n] in the cycle that
    just flushed, from which a torn-write sweep enumerates every
    crash-after-[k] variant. *)

val crash_at_point :
  Cluster.t ->
  ?torn:int ->
  site:Ids.site_id ->
  point:string ->
  occurrence:int ->
  recover_after:Time.t ->
  unit ->
  unit ->
  bool
(** [crash_at_point cluster ~site ~point ~occurrence ~recover_after ()]
    crashes [site] the [occurrence]-th time (1-based) it announces
    [point], then schedules its recovery [recover_after] later.  Fires at
    most once per installation.  [torn] is forwarded to the crash (see
    {!Cluster.crash_site}).  The returned thunk reports whether the
    injection happened — a discovery-pass point that is never reached
    again under the same seed is a determinism violation. *)

val clear_crash_points : Cluster.t -> unit
(** Remove the engine's crash-point hook. *)
