(* Shared invariant auditor.  One implementation of the end-of-run checks
   that every harness (soak, crash sweep, nemesis campaigns) runs against a
   cluster: agreement, durability, fork-freedom, per-site hygiene, protocol
   quiescence, and per-shard convergence. *)

open Rt_sim
open Rt_types
module Kv = Rt_storage.Kv
module P = Rt_commit.Protocol
module Tid = Ids.Txn_id

type violation = { inv : string; detail : string }

let v inv detail = { inv; detail }
let pp_violation fmt x = Format.fprintf fmt "%s: %s" x.inv x.detail

let forked_keys cluster =
  let sites = Cluster.sites cluster in
  let forks = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            Kv.iter (Site.kv a) (fun key (ia : Kv.item) ->
                match Kv.get (Site.kv b) key with
                | Some ib when ia.version = ib.version && ia.value <> ib.value
                  ->
                    forks := (key, i, j) :: !forks
                | _ -> ()))
        sites)
    sites;
  let fork_compare (k1, a1, b1) (k2, a2, b2) =
    let c = String.compare k1 k2 in
    if c <> 0 then c
    else
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare b1 b2
  in
  List.sort_uniq fork_compare !forks

let fork_freedom cluster =
  match forked_keys cluster with
  | [] -> []
  | fs ->
      [
        v "agreement"
          (Printf.sprintf "%d forked keys (split brain!)" (List.length fs));
      ]

let site_hygiene cluster =
  let out = ref [] in
  let add inv detail = out := v inv detail :: !out in
  Array.iter
    (fun s ->
      let id = Site.id s in
      if not (Site.serving s) then
        add "recovery" (Printf.sprintf "site %d not serving" id);
      let ap = Site.active_participants s in
      if ap > 0 then
        add "termination"
          (Printf.sprintf "site %d: %d unresolved participants" id ap);
      let bp = Site.blocked_participants s in
      if bp > 0 then
        add "termination"
          (Printf.sprintf "site %d: %d blocked participants" id bp);
      let hl = Site.held_locks s in
      if hl > 0 then
        add "locks"
          (Printf.sprintf "site %d: %d keys still locked (%s)" id hl
             (String.concat "; " (Site.lock_debug s)));
      let pt = Site.pending_protocol_timers s in
      if pt > 0 then
        add "timers"
          (Printf.sprintf "site %d: %d protocol timers still pending" id pt);
      (* WAL group-commit accounting must be crash-consistent: every
         device cycle ever started either completed, was lost entirely
         to a crash, or was left torn by one (the device cannot still be
         busy at quiescence), and no force continuation is left waiting
         on a live site. *)
      let ws = Site.wal_stats s in
      if ws.Rt_storage.Wal.st_started
         <> ws.Rt_storage.Wal.st_completed + ws.Rt_storage.Wal.st_lost
            + ws.Rt_storage.Wal.st_torn
      then
        add "wal-stats"
          (Printf.sprintf
             "site %d: force cycles unaccounted (started=%d completed=%d \
              lost=%d torn=%d)"
             id ws.Rt_storage.Wal.st_started ws.Rt_storage.Wal.st_completed
             ws.Rt_storage.Wal.st_lost ws.Rt_storage.Wal.st_torn);
      if ws.Rt_storage.Wal.st_pending > 0 then
        add "wal-stats"
          (Printf.sprintf "site %d: %d force continuations still waiting" id
             ws.Rt_storage.Wal.st_pending);
      (* Corruption below the durable horizon is silent data loss the
         moment recovery accepts it; the scan refuses the records, and
         this check makes the refusal loud. *)
      let cd = Site.corruption_detected s in
      if cd > 0 then
        add "storage"
          (Printf.sprintf
             "site %d: %d durable log records lost to corruption" id cd))
    (Cluster.sites cluster);
  List.rev !out

let decisions cluster =
  let by_txn = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      List.iter
        (fun (txn, d) ->
          let prev = Option.value (Hashtbl.find_opt by_txn txn) ~default:[] in
          Hashtbl.replace by_txn txn ((Site.id s, d) :: prev))
        (Site.decided_txns s))
    (Cluster.sites cluster);
  Hashtbl.fold (fun txn ds acc -> (txn, ds) :: acc) by_txn []
  |> List.sort (fun (a, _) (b, _) -> Tid.compare a b)

let agreement cluster =
  List.filter_map
    (fun (txn, ds) ->
      let commits = List.filter (fun (_, d) -> P.decision_equal d P.Commit) ds in
      let aborts = List.filter (fun (_, d) -> P.decision_equal d P.Abort) ds in
      if commits <> [] && aborts <> [] then
        Some
          (v "agreement"
             (Format.asprintf "txn %a: commit at %s, abort at %s" Tid.pp txn
                (String.concat ","
                   (List.map (fun (s, _) -> string_of_int s) commits))
                (String.concat ","
                   (List.map (fun (s, _) -> string_of_int s) aborts))))
      else None)
    (decisions cluster)

let any_committed cluster =
  List.exists
    (fun (_, ds) ->
      List.exists (fun (_, d) -> P.decision_equal d P.Commit) ds)
    (decisions cluster)

let durability cluster ~writes =
  let placement = Cluster.placement cluster in
  List.concat_map
    (fun (key, value) ->
      List.filter_map
        (fun id ->
          let s = Cluster.site cluster id in
          let have =
            Option.map (fun (i : Kv.item) -> i.value) (Kv.get (Site.kv s) key)
          in
          if have <> Some value then
            Some
              (v "durability"
                 (Printf.sprintf
                    "site %d: committed write %s=%s missing (found %s)"
                    (Site.id s) key value
                    (Option.value have ~default:"nothing")))
          else None)
        (Rt_placement.Placement.replicas_of_key placement key))
    writes

let convergence cluster =
  if Cluster.converged cluster then []
  else [ v "durability" "replica stores diverge within a shard" ]

let quiescence cluster ~settle =
  let msgs () =
    Rt_metrics.Counter.get (Cluster.counters cluster) "commit_protocol_msgs"
  in
  let before = msgs () in
  Cluster.run ~until:(Time.add (Cluster.now cluster) settle) cluster;
  let after = msgs () in
  if after > before then
    [
      v "termination"
        (Printf.sprintf "commit protocol not quiescent: %d messages after settle"
           (after - before));
    ]
  else []

let standard ?(writes = []) ?settle cluster =
  let quiescent =
    match settle with None -> [] | Some s -> quiescence cluster ~settle:s
  in
  quiescent @ site_hygiene cluster @ agreement cluster @ fork_freedom cluster
  @ (if any_committed cluster then durability cluster ~writes else [])
  @ convergence cluster
