open Rt_sim
open Rt_types

type event =
  | Crash of Ids.site_id
  | Recover of Ids.site_id
  | Partition of Ids.site_id list list
  | Heal

let apply cluster = function
  | Crash s -> Cluster.crash_site cluster s
  | Recover s -> Cluster.recover_site cluster s
  | Partition groups -> Cluster.partition cluster groups
  | Heal -> Cluster.heal cluster

let schedule cluster events =
  let engine = Cluster.engine cluster in
  List.iter
    (fun (at, event) ->
      ignore (Engine.schedule_at engine at (fun () -> apply cluster event)))
    events

let isolate_shard cluster ~shard =
  let placement = Cluster.placement cluster in
  let members = Rt_placement.Placement.replicas placement ~shard in
  let rest =
    List.init (Cluster.config cluster).sites (fun i -> i)
    |> List.filter (fun s -> not (List.mem s members))
  in
  Cluster.partition cluster
    (if rest = [] then [ members ] else [ members; rest ])

(* rt_lint: allow fingerprint-coverage -- fault-injector toggle, not simulated site state *)
type process = { mutable running : bool }

let random_crashes cluster ~mttf ~mttr ?(protect = []) () =
  let engine = Cluster.engine cluster in
  let rng = Rng.split (Engine.rng engine) in
  let p = { running = true } in
  let sites = (Cluster.config cluster).sites in
  let rec cycle site =
    if p.running then begin
      let up_for = Rng.exponential_time rng ~mean:mttf in
      ignore
        (Engine.schedule_after engine up_for (fun () ->
             if p.running then begin
               Cluster.crash_site cluster site;
               let down_for = Rng.exponential_time rng ~mean:mttr in
               ignore
                 (Engine.schedule_after engine down_for (fun () ->
                      if p.running then begin
                        Cluster.recover_site cluster site;
                        cycle site
                      end))
             end))
    end
  in
  for site = 0 to sites - 1 do
    if not (List.mem site protect) then cycle site
  done;
  p

let stop p = p.running <- false

(* --- crash-point fault injection ------------------------------------- *)

let observe_crash_points cluster =
  let engine = Cluster.engine cluster in
  let seen = ref [] in
  Engine.set_crash_hook engine
    (Some (fun ~site ~point -> seen := (site, point) :: !seen));
  fun () -> List.rev !seen

let observe_crash_points_sized cluster =
  let engine = Cluster.engine cluster in
  let seen = ref [] in
  Engine.set_crash_hook engine
    (Some
       (fun ~site ~point ->
         (* Snapshot the WAL's cycle size at announcement time: for
            "wal:force-durable" this is the [n] of "crash after [k] of
            [n] records", letting a sweep enumerate every torn point of
            the cycle it just observed. *)
         let cycle =
           Site.wal_last_cycle_size (Cluster.site cluster site)
         in
         seen := (site, point, cycle) :: !seen));
  fun () -> List.rev !seen

let clear_crash_points cluster =
  Engine.set_crash_hook (Cluster.engine cluster) None

let crash_at_point cluster ?torn ~site ~point ~occurrence ~recover_after () =
  let engine = Cluster.engine cluster in
  let count = ref 0 in
  let fired = ref false in
  Engine.set_crash_hook engine
    (Some
       (fun ~site:s ~point:p ->
         if (not !fired) && s = site && String.equal p point then begin
           incr count;
           if !count = occurrence then begin
             fired := true;
             Cluster.crash_site ?torn cluster site;
             ignore
               (Engine.schedule_after engine recover_after (fun () ->
                    Cluster.recover_site cluster site))
           end
         end));
  fun () -> !fired
