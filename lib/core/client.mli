(** Closed-loop clients: each repeatedly generates a transaction, submits
    it to its home site, optionally retries aborts after a randomized
    backoff, thinks, and goes again.  The classical multiprogramming-level
    knob is simply the number of clients started. *)

open Rt_sim
open Rt_types

type t

type stats = {
  mutable committed : int;
  mutable aborted : int;
  mutable retries : int;
}

val create :
  cluster:Cluster.t ->
  site:Ids.site_id ->
  mix:Rt_workload.Mix.t ->
  ?think:Time.t ->
  ?retry_aborts:bool ->
  ?ordered_keys:bool ->
  ?route_by_shard:bool ->
  ?rng:Rng.t ->
  unit ->
  t
(** [think] (default 0) is the delay between a completion and the next
    submission.  [retry_aborts] (default true) resubmits the same
    operations as a fresh transaction after a randomized backoff.
    [ordered_keys] (default true) sorts each transaction's keys — the
    deadlock-avoidance discipline; turn it off to measure deadlocks.
    [route_by_shard] (default false) coordinates each transaction at a
    replica of its first key's shard instead of the fixed home site, so
    single-shard transactions under a sharded placement avoid remote
    data rounds. *)

val start : t -> unit

val stop : t -> unit

val stats : t -> stats

val start_fleet :
  cluster:Cluster.t ->
  clients:int ->
  mix:Rt_workload.Mix.t ->
  ?think:Time.t ->
  ?retry_aborts:bool ->
  ?ordered_keys:bool ->
  ?route_by_shard:bool ->
  unit ->
  t list
(** [clients] closed-loop clients spread round-robin over the sites, each
    with an independent RNG split from the engine's. *)

val total : t list -> stats
