open Rt_types
open Protocol
module Sset = Set.Make (Int)

let send_to set msg = List.map (fun p -> Send (p, msg)) (Sset.elements set)

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type coord_phase =
  | C_init
  | C_collecting of { pending : Sset.t; yes : Sset.t }
  | C_logging_precommit
  | C_precommit_wait of { await : Sset.t }
  | C_logging_decision of { d : decision; notify : Sset.t; await : Sset.t }
  | C_abort_wait of { await : Sset.t }
  | C_done of decision

type coord = {
  c_participants : Sset.t;
  c_timeouts : timeouts;
  c_phase : coord_phase;
}

let coordinator ~participants ~timeouts =
  if participants = [] then invalid_arg "Three_pc.coordinator: no participants";
  { c_participants = Sset.of_list participants; c_timeouts = timeouts;
    c_phase = C_init }

let coord_decision c =
  match c.c_phase with
  | C_logging_decision { d; _ } | C_done d -> Some d
  | C_abort_wait _ -> Some Abort
  | _ -> None

let coord_abort c ~yes ~pending =
  (* Notify everyone whose Yes might be in flight; expect acks only from
     known yes-voters (they are the ones holding a prepared record). *)
  ( { c with
      c_phase = C_logging_decision
          { d = Abort; notify = Sset.union yes pending; await = yes } },
    [ Clear_timer T_votes; Clear_timer T_precommit_ack;
      Log (L_decision Abort, `Forced) ] )

let coord_commit_logged c =
  (* Commit is final: broadcast and finish; recovering sites learn the
     outcome by asking around. *)
  ( { c with c_phase = C_done Commit },
    send_to c.c_participants (Decision_msg Commit)
    @ [ Deliver Commit; Log (L_end, `Lazy) ] )

let coord_step c input =
  match (c.c_phase, input) with
  | C_init, Start ->
      ( { c with c_phase = C_collecting { pending = c.c_participants;
                                          yes = Sset.empty } },
        send_to c.c_participants Vote_req
        @ [ Set_timer (T_votes, c.c_timeouts.vote_collect) ] )
  | C_collecting { pending; yes }, Recv (src, Vote_yes) ->
      let pending = Sset.remove src pending in
      let yes = Sset.add src yes in
      if Sset.is_empty pending then
        ( { c with c_phase = C_logging_precommit },
          [ Clear_timer T_votes; Log (L_precommit, `Forced) ] )
      else ({ c with c_phase = C_collecting { pending; yes } }, [])
  | C_collecting { pending; yes }, Recv (src, Vote_no) ->
      coord_abort c ~yes:(Sset.remove src yes)
        ~pending:(Sset.remove src pending)
  | C_collecting { pending; yes }, Timeout T_votes -> coord_abort c ~yes ~pending
  | C_collecting { pending; yes }, Peer_down p when Sset.mem p pending ->
      coord_abort c ~yes ~pending:(Sset.remove p pending)
  | C_logging_precommit, Log_done L_precommit ->
      ( { c with c_phase = C_precommit_wait { await = c.c_participants } },
        send_to c.c_participants Precommit_msg
        @ [ Set_timer (T_precommit_ack, c.c_timeouts.decision_wait) ] )
  | C_precommit_wait { await }, Recv (src, Precommit_ack) ->
      let await = Sset.remove src await in
      if Sset.is_empty await then
        ( { c with c_phase = C_logging_decision
                       { d = Commit; notify = c.c_participants;
                         await = Sset.empty } },
          [ Clear_timer T_precommit_ack; Log (L_decision Commit, `Forced) ] )
      else ({ c with c_phase = C_precommit_wait { await } }, [])
  | C_precommit_wait { await }, Peer_down p when Sset.mem p await ->
      (* Crashed sites recover into the pre-commit state and will learn the
         outcome; proceed with the operational ones. *)
      let await = Sset.remove p await in
      if Sset.is_empty await then
        ( { c with c_phase = C_logging_decision
                       { d = Commit; notify = c.c_participants;
                         await = Sset.empty } },
          [ Clear_timer T_precommit_ack; Log (L_decision Commit, `Forced) ] )
      else ({ c with c_phase = C_precommit_wait { await } }, [])
  | C_precommit_wait _, Timeout T_precommit_ack ->
      ( { c with c_phase = C_logging_decision
                     { d = Commit; notify = c.c_participants;
                       await = Sset.empty } },
        [ Log (L_decision Commit, `Forced) ] )
  | C_logging_decision { d = Commit; _ }, Log_done (L_decision Commit) ->
      coord_commit_logged c
  | C_logging_decision { d = Abort; notify; await }, Log_done (L_decision Abort)
    ->
      if Sset.is_empty await then
        ( { c with c_phase = C_done Abort },
          send_to notify (Decision_msg Abort)
          @ [ Deliver Abort; Log (L_end, `Lazy) ] )
      else
        ( { c with c_phase = C_abort_wait { await } },
          send_to notify (Decision_msg Abort)
          @ [ Set_timer (T_resend, c.c_timeouts.resend_every); Deliver Abort ] )
  | C_abort_wait { await }, Recv (src, Decision_ack) ->
      let await = Sset.remove src await in
      if Sset.is_empty await then
        ( { c with c_phase = C_done Abort },
          [ Clear_timer T_resend; Log (L_end, `Lazy) ] )
      else ({ c with c_phase = C_abort_wait { await } }, [])
  | C_abort_wait { await }, Timeout T_resend ->
      ( c,
        send_to await (Decision_msg Abort)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | C_abort_wait { await }, Peer_down p when Sset.mem p await ->
      let await = Sset.remove p await in
      if Sset.is_empty await then
        ( { c with c_phase = C_done Abort },
          [ Clear_timer T_resend; Log (L_end, `Lazy) ] )
      else ({ c with c_phase = C_abort_wait { await } }, [])
  | (C_done d | C_logging_decision { d; _ }), Recv (src, Decision_req) ->
      (c, [ Send (src, Decision_msg d) ])
  | C_abort_wait _, Recv (src, Decision_req) ->
      (c, [ Send (src, Decision_msg Abort) ])
  (* Still undecided: stay silent rather than answer [Decision_unknown].
     Our own timeouts will terminate us, so the asker loses nothing by
     waiting — whereas "unknown" is the participants' cue to usurp the
     election, which is only warranted when the asked site has no memory
     of the transaction at all. *)
  | _, Recv (_, Decision_req) -> (c, [])
  (* An elected termination leader can out-decide a coordinator that is
     still collecting votes or precommit acks (false suspicion: its
     timeout fired while the coordinator was merely slow).  The deposed
     coordinator adopts the decision instead of driving its own round to
     a stall — or, worse, to a conflicting outcome. *)
  | (C_init | C_collecting _ | C_logging_precommit | C_precommit_wait _),
    Recv (_, Decision_msg d) ->
      ( { c with c_phase = C_done d },
        [ Clear_timer T_votes; Clear_timer T_precommit_ack;
          Clear_timer T_resend; Deliver d; Log (L_decision d, `Lazy) ] )
  | _, (Recv _ | Timeout _ | Log_done _ | Peer_down _ | Peers_reachable _
        | Start) ->
      (c, [])

(* ------------------------------------------------------------------ *)
(* Participant (including the elected termination leader)              *)
(* ------------------------------------------------------------------ *)

type leader_phase =
  | L_collect of { awaiting : Sset.t; reports : (Ids.site_id * participant_state) list }
  | L_precommit_acks of { awaiting : Sset.t }
  | L_deciding of decision

type role =
  | R_normal  (** Following the original coordinator. *)
  | R_follower  (** In termination, waiting for an elected leader. *)
  | R_leader of leader_phase

type base =
  | B_idle
  | B_logging_prepared
  | B_uncertain
  | B_logging_precommit of { ack_to : Ids.site_id option }
  | B_precommitted
  | B_logging_outcome of decision
  | B_finished of decision

type part = {
  p_self : Ids.site_id;
  p_coordinator : Ids.site_id;
  p_all : Sset.t;  (* every participant site, self included *)
  p_vote : bool;
  p_timeouts : timeouts;
  p_up : Sset.t;  (* sites believed operational (participants only) *)
  p_coord_up : bool;
  p_base : base;
  p_role : role;
}

let participant ~self ~coordinator ~all ~vote ~timeouts =
  let all_set = Sset.of_list all in
  if not (Sset.mem self all_set) then
    invalid_arg "Three_pc.participant: self not in participant set";
  {
    p_self = self;
    p_coordinator = coordinator;
    p_all = all_set;
    p_vote = vote;
    p_timeouts = timeouts;
    p_up = all_set;
    p_coord_up = true;
    p_base = B_idle;
    p_role = R_normal;
  }

let part_decision p =
  match p.p_base with
  | B_logging_outcome d | B_finished d -> Some d
  | _ -> None

let part_state p =
  match p.p_base with
  | B_idle | B_logging_prepared | B_uncertain -> P_uncertain
  | B_logging_precommit _ | B_precommitted -> P_precommitted
  | B_logging_outcome Commit | B_finished Commit -> P_committed
  | B_logging_outcome Abort | B_finished Abort -> P_aborted

let part_blocked _ = false

let peers_up p = Sset.remove p.p_self p.p_up

(* The termination leader is the smallest operational participant id. *)
let leader_candidate p = Sset.min_elt_opt p.p_up

let finish p d =
  ({ p with p_base = B_finished d; p_role = R_normal }, [ Deliver d ])

let log_outcome p d =
  match p.p_base with
  | B_finished d' when decision_equal d d' -> (p, [])
  | B_logging_outcome _ | B_finished _ -> (p, [])
  | _ ->
      ( { p with p_base = B_logging_outcome d },
        [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
          Clear_timer T_precommit_ack; Log (L_decision d, `Forced) ] )

(* --- leader logic ------------------------------------------------- *)

let leader_outcome reports =
  let has s = List.exists (fun (_, st) -> st = s) reports in
  if has P_committed then `Decide Commit
  else if has P_aborted then `Decide Abort
  else if has P_precommitted then `Drive_precommit
  else `Decide Abort

let rec leader_apply p reports =
  match leader_outcome reports with
  | `Decide d ->
      let p, actions = log_outcome p d in
      ({ p with p_role = R_leader (L_deciding d) }, actions)
  | `Drive_precommit ->
      let uncertain =
        List.filter_map
          (fun (s, st) ->
            if st = P_uncertain && s <> p.p_self then Some s else None)
          reports
        |> Sset.of_list
      in
      let sends = send_to uncertain Precommit_msg in
      if part_state p = P_uncertain then begin
        (* Move self through pre-commit first; the ack is implicit. *)
        let p =
          { p with p_base = B_logging_precommit { ack_to = None };
                   p_role = R_leader (L_precommit_acks { awaiting = uncertain }) }
        in
        (p, sends @ [ Log (L_precommit, `Forced);
                      Set_timer (T_precommit_ack, p.p_timeouts.decision_wait) ])
      end
      else if Sset.is_empty uncertain then
        let p, actions = log_outcome p Commit in
        ({ p with p_role = R_leader (L_deciding Commit) }, actions)
      else
        ( { p with p_role = R_leader (L_precommit_acks { awaiting = uncertain }) },
          sends @ [ Set_timer (T_precommit_ack, p.p_timeouts.decision_wait) ] )

and leader_collect_done p ~awaiting ~reports =
  (* Treat non-responders as crashed (crash-stop model). *)
  ignore awaiting;
  leader_apply p reports

let become_leader p =
  let awaiting = peers_up p in
  let reports = [ (p.p_self, part_state p) ] in
  if Sset.is_empty awaiting then leader_apply p reports
  else
    ( { p with p_role = R_leader (L_collect { awaiting; reports }) },
      send_to awaiting State_req
      @ [ Set_timer (T_state, p.p_timeouts.decision_wait) ] )

let start_termination p =
  match leader_candidate p with
  | Some l when l = p.p_self -> become_leader p
  | Some _ | None ->
      (* Wait for the leader to drive us, but also ask around directly:
         a peer that already knows the outcome (e.g. one that decided
         before we joined the termination) answers immediately. *)
      ( { p with p_role = R_follower },
        send_to (peers_up p) Decision_req
        @ [ Set_timer (T_resend, p.p_timeouts.resend_every) ] )

(* --- main transition ----------------------------------------------- *)

let part_step p input =
  match (p.p_base, p.p_role, input) with
  (* Failure-detector updates are tracked in every state. *)
  | _, _, Peer_down s ->
      let p =
        { p with p_up = Sset.remove s p.p_up;
                 p_coord_up = p.p_coord_up && s <> p.p_coordinator }
      in
      (match (p.p_base, p.p_role) with
      | (B_uncertain | B_precommitted), R_normal
        when s = p.p_coordinator ->
          start_termination p
      | (B_uncertain | B_precommitted), R_follower -> (
          (* If the presumptive leader died, re-elect. *)
          match leader_candidate p with
          | Some l when l = p.p_self -> become_leader p
          | _ -> (p, []))
      | _, R_leader (L_collect { awaiting; reports }) when Sset.mem s awaiting
        ->
          let awaiting = Sset.remove s awaiting in
          if Sset.is_empty awaiting then
            leader_collect_done p ~awaiting ~reports
          else
            ( { p with
                p_role = R_leader (L_collect { awaiting; reports }) },
              [] )
      | _, R_leader (L_precommit_acks { awaiting }) when Sset.mem s awaiting ->
          let awaiting = Sset.remove s awaiting in
          if Sset.is_empty awaiting && p.p_base = B_precommitted then
            let p, actions = log_outcome p Commit in
            ({ p with p_role = R_leader (L_deciding Commit) }, actions)
          else
            ({ p with p_role = R_leader (L_precommit_acks { awaiting }) }, [])
      | _ -> (p, []))
  (* Normal phase 1. *)
  | B_idle, R_normal, Recv (_, Vote_req) ->
      if p.p_vote then
        ({ p with p_base = B_logging_prepared }, [ Log (L_prepared, `Forced) ])
      else
        ( { p with p_base = B_finished Abort },
          [ Send (p.p_coordinator, Vote_no); Log (L_decision Abort, `Lazy);
            Deliver Abort ] )
  | B_logging_prepared, R_normal, Log_done L_prepared ->
      ( { p with p_base = B_uncertain },
        [ Send (p.p_coordinator, Vote_yes);
          Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
  (* Pre-commit from the original coordinator or a termination leader. *)
  | B_uncertain, _, Recv (src, Precommit_msg) ->
      ( { p with p_base = B_logging_precommit { ack_to = Some src } },
        [ Clear_timer T_decision; Log (L_precommit, `Forced) ] )
  | B_logging_precommit { ack_to }, _, Log_done L_precommit -> (
      let p = { p with p_base = B_precommitted } in
      match (ack_to, p.p_role) with
      | Some src, _ ->
          ( p,
            [ Send (src, Precommit_ack);
              Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
      | None, R_leader (L_precommit_acks { awaiting })
        when Sset.is_empty awaiting ->
          let p, actions = log_outcome p Commit in
          ({ p with p_role = R_leader (L_deciding Commit) }, actions)
      | None, _ -> (p, []))
  | B_precommitted, _, Recv (src, Precommit_msg) ->
      (* Duplicate (e.g. new leader re-driving, or our ack was lost):
         re-ack so the sender stops waiting on us. *)
      (p, [ Send (src, Precommit_ack) ])
  (* Decisions — also accepted while a prepared/precommit log write is
     still in flight (the stale Log_done is ignored afterwards). *)
  | ( (B_uncertain | B_precommitted | B_logging_prepared
      | B_logging_precommit _),
      _,
      Recv (_, Decision_msg d) ) ->
      log_outcome p d
  | B_logging_outcome d, _, Log_done (L_decision d') when decision_equal d d'
    ->
      let p, actions = finish p d in
      let ack =
        if decision_equal d Abort && p.p_coord_up then
          [ Send (p.p_coordinator, Decision_ack) ]
        else []
      in
      (p, ack @ actions)
  (* Timeout paths. *)
  | ( (B_uncertain | B_precommitted),
      (R_normal | R_follower),
      Timeout (T_decision | T_resend) ) ->
      start_termination p
  (* Leader: state collection. *)
  | _, R_leader (L_collect { awaiting; reports }), Recv (src, State_report st)
    when Sset.mem src awaiting ->
      let awaiting = Sset.remove src awaiting in
      let reports = (src, st) :: reports in
      if Sset.is_empty awaiting then leader_collect_done p ~awaiting ~reports
      else ({ p with p_role = R_leader (L_collect { awaiting; reports }) }, [])
  | _, R_leader (L_collect { awaiting; reports }), Timeout T_state ->
      leader_collect_done p ~awaiting ~reports
  | _, R_leader (L_precommit_acks { awaiting }), Recv (src, Precommit_ack)
    when Sset.mem src awaiting ->
      let awaiting = Sset.remove src awaiting in
      if Sset.is_empty awaiting && p.p_base <> B_uncertain
         && (match p.p_base with B_logging_precommit _ -> false | _ -> true)
      then
        let p, actions = log_outcome p Commit in
        ({ p with p_role = R_leader (L_deciding Commit) }, actions)
      else ({ p with p_role = R_leader (L_precommit_acks { awaiting }) }, [])
  | _, R_leader (L_precommit_acks _), Timeout T_precommit_ack ->
      if (match p.p_base with B_precommitted -> true | _ -> false) then
        let p, actions = log_outcome p Commit in
        ({ p with p_role = R_leader (L_deciding Commit) }, actions)
      else (p, [])
  (* Everyone answers state and decision queries. *)
  | _, _, Recv (src, State_req) ->
      (p, [ Send (src, State_report (part_state p)) ])
  | (B_finished d | B_logging_outcome d), _, Recv (src, Decision_req) ->
      (p, [ Send (src, Decision_msg d) ])
  (* Undecided but holding live protocol state: stay silent.  We can run
     (or already are running) the election ourselves, so "unknown" — the
     cue for the asker to usurp the election — would only cause churn. *)
  | ( (B_uncertain | B_precommitted | B_logging_prepared
      | B_logging_precommit _),
      _,
      Recv (_, Decision_req) ) ->
      (p, [])
  | _, _, Recv (src, Decision_req) -> (p, [ Send (src, Decision_unknown) ])
  (* A presumptive leader that answers "unknown" lost every trace of the
     transaction in a crash and will never start the election we are
     waiting for.  Usurp it: under reliable delivery concurrent usurpers
     collect identical state reports and reach the same outcome, and the
     amnesiac site pledges abort when a [State_req] reaches it, so the
     round terminates. *)
  | ( (B_uncertain | B_precommitted),
      (R_normal | R_follower),
      Recv (src, Decision_unknown) )
    when leader_candidate p = Some src ->
      become_leader p
  | B_finished _, _, Recv (src, Decision_msg _) ->
      (* Our decision ack was lost and the coordinator is resending:
         without this re-ack an abort-wait coordinator resends forever
         and the protocol never quiesces. *)
      (p, [ Send (src, Decision_ack) ])
  | _, _, Peers_reachable up ->
      let up = Sset.inter (Sset.of_list (p.p_self :: up)) p.p_all in
      ({ p with p_up = up; p_coord_up = Sset.mem p.p_coordinator up
                          || not (Sset.mem p.p_coordinator p.p_all) }, [])
  | _, _, (Recv _ | Timeout _ | Log_done _ | Start) -> (p, [])

(* After finishing, a leader broadcasts the decision so followers and
   late-recovering sites converge.  We hook this into [finish] by giving
   the leader's decision distribution in [log_outcome]'s completion: the
   [B_logging_outcome] case above fires [finish]; to distribute, leaders
   wrap it here. *)
let part_step p input =
  let p', actions = part_step p input in
  (* When a leader's own decision record becomes durable, broadcast the
     outcome to the remaining up sites. *)
  match (p.p_role, input) with
  | R_leader (L_deciding d), Log_done (L_decision d')
    when decision_equal d d' ->
      let targets = Sset.remove p'.p_self p'.p_up in
      (p', actions @ send_to targets (Decision_msg d))
  | _ -> (p', actions)

let participant_recovered ~self ~coordinator ~all ~state ~timeouts =
  let base =
    match state with
    | P_uncertain -> B_uncertain
    | P_precommitted -> B_precommitted
    | P_committed -> B_finished Commit
    | P_aborted | P_preaborted -> B_finished Abort
  in
  let p = participant ~self ~coordinator ~all ~vote:true ~timeouts in
  { p with p_base = base }

(* A recovered participant starts its own inquiry on [Start]. *)
let part_step p input =
  match (input, p.p_base, p.p_role) with
  | Start, (B_uncertain | B_precommitted), R_normal ->
      (* Ask around rather than wait for a timeout. *)
      let asks = send_to (peers_up p) Decision_req in
      ( { p with p_role = R_normal },
        asks @ [ Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
  | _ -> part_step p input

(* ------------------------------------------------------------------ *)
(* Canonical description (explorer state fingerprinting)               *)
(* ------------------------------------------------------------------ *)

let set_str s = String.concat "," (List.map string_of_int (Sset.elements s))
let dec_str = function Commit -> "C" | Abort -> "A"

let pstate_str st = Format.asprintf "%a" pp_participant_state st

let reports_str rs =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) rs
  |> List.map (fun (s, st) -> Printf.sprintf "%d=%s" s (pstate_str st))
  |> String.concat ","

let describe_coord c =
  let phase =
    match c.c_phase with
    | C_init -> "init"
    | C_collecting { pending; yes } ->
        Printf.sprintf "collecting{p=%s;y=%s}" (set_str pending) (set_str yes)
    | C_logging_precommit -> "logging-precommit"
    | C_precommit_wait { await } ->
        Printf.sprintf "precommit-wait{a=%s}" (set_str await)
    | C_logging_decision { d; notify; await } ->
        Printf.sprintf "logging-decision{%s;n=%s;a=%s}" (dec_str d)
          (set_str notify) (set_str await)
    | C_abort_wait { await } ->
        Printf.sprintf "abort-wait{a=%s}" (set_str await)
    | C_done d -> Printf.sprintf "done{%s}" (dec_str d)
  in
  Printf.sprintf "3pc-coord:parts=%s:%s" (set_str c.c_participants) phase

let describe_part p =
  let base =
    match p.p_base with
    | B_idle -> "idle"
    | B_logging_prepared -> "logging-prepared"
    | B_uncertain -> "uncertain"
    | B_logging_precommit { ack_to } ->
        Printf.sprintf "logging-precommit{ack=%s}"
          (match ack_to with None -> "-" | Some s -> string_of_int s)
    | B_precommitted -> "precommitted"
    | B_logging_outcome d -> Printf.sprintf "logging-outcome{%s}" (dec_str d)
    | B_finished d -> Printf.sprintf "finished{%s}" (dec_str d)
  in
  let role =
    match p.p_role with
    | R_normal -> "normal"
    | R_follower -> "follower"
    | R_leader (L_collect { awaiting; reports }) ->
        Printf.sprintf "leader-collect{a=%s;r=%s}" (set_str awaiting)
          (reports_str reports)
    | R_leader (L_precommit_acks { awaiting }) ->
        Printf.sprintf "leader-precommit-acks{a=%s}" (set_str awaiting)
    | R_leader (L_deciding d) ->
        Printf.sprintf "leader-deciding{%s}" (dec_str d)
  in
  Printf.sprintf "3pc-part:%d<-%d:all=%s:v=%b:up=%s:cu=%b:%s:%s" p.p_self
    p.p_coordinator (set_str p.p_all) p.p_vote (set_str p.p_up) p.p_coord_up
    base role
