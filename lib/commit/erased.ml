open Protocol

type t = {
  step : input -> t * action list;
  decision : decision option;
  pstate : participant_state;
  blocked : bool;
  describe : unit -> string;
}

let rec of_2pc_coord c =
  {
    step =
      (fun i ->
        let c', a = Two_pc.coord_step c i in
        (of_2pc_coord c', a));
    decision = Two_pc.coord_decision c;
    pstate = P_uncertain;
    blocked = false;
    describe = (fun () -> Two_pc.describe_coord c);
  }

let rec of_2pc_part p =
  {
    step =
      (fun i ->
        let p', a = Two_pc.part_step p i in
        (of_2pc_part p', a));
    decision = Two_pc.part_decision p;
    pstate = Two_pc.part_state p;
    blocked = Two_pc.part_blocked p;
    describe = (fun () -> Two_pc.describe_part p);
  }

let rec of_3pc_coord c =
  {
    step =
      (fun i ->
        let c', a = Three_pc.coord_step c i in
        (of_3pc_coord c', a));
    decision = Three_pc.coord_decision c;
    pstate = P_uncertain;
    blocked = false;
    describe = (fun () -> Three_pc.describe_coord c);
  }

let rec of_3pc_part p =
  {
    step =
      (fun i ->
        let p', a = Three_pc.part_step p i in
        (of_3pc_part p', a));
    decision = Three_pc.part_decision p;
    pstate = Three_pc.part_state p;
    blocked = Three_pc.part_blocked p;
    describe = (fun () -> Three_pc.describe_part p);
  }

let rec of_qc_coord c =
  {
    step =
      (fun i ->
        let c', a = Quorum_commit.coord_step c i in
        (of_qc_coord c', a));
    decision = Quorum_commit.coord_decision c;
    pstate = P_uncertain;
    blocked = Quorum_commit.coord_blocked c;
    describe = (fun () -> Quorum_commit.describe_coord c);
  }

let rec of_qc_part p =
  {
    step =
      (fun i ->
        let p', a = Quorum_commit.part_step p i in
        (of_qc_part p', a));
    decision = Quorum_commit.part_decision p;
    pstate = Quorum_commit.part_state p;
    blocked = Quorum_commit.part_blocked p;
    describe = (fun () -> Quorum_commit.describe_part p);
  }

let rec of_paxos_coord c =
  {
    step =
      (fun i ->
        let c', a = Paxos_commit.coord_step c i in
        (of_paxos_coord c', a));
    decision = Paxos_commit.coord_decision c;
    pstate = P_uncertain;
    blocked = Paxos_commit.coord_blocked c;
    describe = (fun () -> Paxos_commit.describe_coord c);
  }

let rec of_paxos_part p =
  {
    step =
      (fun i ->
        let p', a = Paxos_commit.part_step p i in
        (of_paxos_part p', a));
    decision = Paxos_commit.part_decision p;
    pstate = Paxos_commit.part_state p;
    blocked = Paxos_commit.part_blocked p;
    describe = (fun () -> Paxos_commit.describe_part p);
  }

let rec finished d =
  {
    step =
      (fun i ->
        match i with
        | Recv (src, Decision_req) -> (finished d, [ Send (src, Decision_msg d) ])
        | Recv (src, State_req) ->
            let st = match d with Commit -> P_committed | Abort -> P_aborted in
            (finished d, [ Send (src, State_report st) ])
        | Recv (src, Pq_state_req e) ->
            let st = match d with Commit -> P_committed | Abort -> P_aborted in
            (finished d, [ Send (src, Pq_state_report (e, st)) ])
        | Recv (src, (Px_p1a _ | Px_p2a _)) ->
            (* A paxos recovery leader is probing a settled transaction:
               the decision supersedes any ballot. *)
            (finished d, [ Send (src, Decision_msg d) ])
        | _ -> (finished d, []));
    decision = Some d;
    pstate = (match d with Commit -> P_committed | Abort -> P_aborted);
    blocked = false;
    describe =
      (fun () ->
        Printf.sprintf "finished{%s}"
          (match d with Commit -> "C" | Abort -> "A"));
  }
