(** Quorum commit (Skeen's quorum-based three-phase commit).

    Like 3PC, the protocol interposes pre-decision states before the final
    outcome, but termination is governed by quorums: committing requires
    [commit_quorum] (Vc) sites in the pre-commit state, aborting requires
    [abort_quorum] (Va) sites in the pre-abort state, with
    [Vc + Va > sites] so the two ack quorums always intersect.  A network
    partition can therefore block the minority side, but no two sides can
    ever decide differently — the property experiment F8 demonstrates and
    the property tests check.

    Termination rules applied by an elected leader over the states it can
    collect (each site one vote):
    - any committed site ⇒ commit; any aborted ⇒ abort;
    - at least one pre-committed, {e no} pre-aborted, and ≥ Vc reachable ⇒
      drive the uncertain ones to pre-commit, and once ≥ Vc sites are
      pre-committed, commit;
    - no pre-committed and ≥ Va reachable ⇒ drive pre-abort, and once
      ≥ Va sites are pre-aborted, abort;
    - otherwise the group is blocked until connectivity improves.

    Election epochs (round, site-id) order competing leaders: sites obey
    only the highest epoch seen, so stale leaders cannot assemble a
    quorum. *)

open Rt_types
open Protocol

type config = {
  all : Ids.site_id list;  (** Every participant site. *)
  commit_quorum : int;
  abort_quorum : int;
}

val config : all:Ids.site_id list -> ?commit_quorum:int -> ?abort_quorum:int ->
  unit -> config
(** Defaults to majority for both; validates [Vc + Va > n] and bounds. *)

(** {1 Coordinator} *)

type coord

val coordinator : config:config -> self:Ids.site_id -> timeouts:timeouts -> coord

val coord_step : coord -> input -> coord * action list

val coord_decision : coord -> decision option

val coord_blocked : coord -> bool

(** {1 Participant} *)

type part

val participant :
  config:config ->
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  vote:bool ->
  timeouts:timeouts ->
  part

val participant_recovered :
  config:config ->
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  state:participant_state ->
  timeouts:timeouts ->
  part
(** Rebuilt from the log after a crash; feed it [Start] to begin inquiry. *)

val part_step : part -> input -> part * action list

val part_decision : part -> decision option

val part_state : part -> participant_state

val part_blocked : part -> bool
(** True while the participant knows it cannot terminate with current
    connectivity (its last termination attempt failed the quorum rules). *)

val part_reachable_update : part -> up:Ids.site_id list -> part
(** Replace the reachability view (partitions heal as well as form, so a
    plain [Peer_down] stream is not enough).  The next timeout acts on the
    new view. *)

val describe_coord : coord -> string
(** Canonical single-line rendering of the full coordinator state for
    explorer fingerprinting (every set in sorted order). *)

val describe_part : part -> string
(** Canonical rendering of the full participant state, including epoch,
    termination role, and reachability view. *)
