open Rt_types

type decision = Commit | Abort

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort -> Format.pp_print_string fmt "abort"

let decision_equal (a : decision) b = a = b
let decision_rank = function Commit -> 0 | Abort -> 1
let decision_compare a b = Int.compare (decision_rank a) (decision_rank b)

type msg =
  | Vote_req
  | Vote_yes
  | Vote_no
  | Vote_read_only
  | Precommit_msg
  | Precommit_ack
  | Decision_msg of decision
  | Decision_ack
  | Decision_req
  | Decision_unknown
  | State_req
  | State_report of participant_state
  | Pq_state_req of epoch
  | Pq_state_report of epoch * participant_state
  | Pq_precommit of epoch
  | Pq_precommit_ack of epoch
  | Pq_preabort of epoch
  | Pq_preabort_ack of epoch
  | Px_p1a of epoch
  | Px_p1b of epoch * (Ids.site_id * epoch * decision) list
  | Px_p2a of epoch * Ids.site_id * decision
  | Px_p2b of epoch * Ids.site_id * decision
  | Px_nack of epoch

and participant_state =
  | P_uncertain
  | P_precommitted
  | P_preaborted
  | P_committed
  | P_aborted

and epoch = int * Ids.site_id

let epoch_compare (r1, s1) (r2, s2) =
  let c = Int.compare r1 r2 in
  if c <> 0 then c else Int.compare s1 s2

let pp_participant_state fmt = function
  | P_uncertain -> Format.pp_print_string fmt "uncertain"
  | P_precommitted -> Format.pp_print_string fmt "precommitted"
  | P_preaborted -> Format.pp_print_string fmt "preaborted"
  | P_committed -> Format.pp_print_string fmt "committed"
  | P_aborted -> Format.pp_print_string fmt "aborted"

let pp_epoch fmt (r, s) = Format.fprintf fmt "%d.%d" r s

let pp_msg fmt = function
  | Vote_req -> Format.pp_print_string fmt "vote-req"
  | Vote_yes -> Format.pp_print_string fmt "vote-yes"
  | Vote_no -> Format.pp_print_string fmt "vote-no"
  | Vote_read_only -> Format.pp_print_string fmt "vote-read-only"
  | Precommit_msg -> Format.pp_print_string fmt "precommit"
  | Precommit_ack -> Format.pp_print_string fmt "precommit-ack"
  | Decision_msg d -> Format.fprintf fmt "decision(%a)" pp_decision d
  | Decision_ack -> Format.pp_print_string fmt "decision-ack"
  | Decision_req -> Format.pp_print_string fmt "decision-req"
  | Decision_unknown -> Format.pp_print_string fmt "decision-unknown"
  | State_req -> Format.pp_print_string fmt "state-req"
  | State_report s -> Format.fprintf fmt "state(%a)" pp_participant_state s
  | Pq_state_req e -> Format.fprintf fmt "pq-state-req(%a)" pp_epoch e
  | Pq_state_report (e, s) ->
      Format.fprintf fmt "pq-state(%a,%a)" pp_epoch e pp_participant_state s
  | Pq_precommit e -> Format.fprintf fmt "pq-precommit(%a)" pp_epoch e
  | Pq_precommit_ack e -> Format.fprintf fmt "pq-precommit-ack(%a)" pp_epoch e
  | Pq_preabort e -> Format.fprintf fmt "pq-preabort(%a)" pp_epoch e
  | Pq_preabort_ack e -> Format.fprintf fmt "pq-preabort-ack(%a)" pp_epoch e
  | Px_p1a b -> Format.fprintf fmt "px-p1a(%a)" pp_epoch b
  | Px_p1b (b, accs) ->
      Format.fprintf fmt "px-p1b(%a,[%a])" pp_epoch b
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ";")
           (fun fmt (rm, ab, v) ->
             Format.fprintf fmt "%a@%a=%a" Ids.pp_site rm pp_epoch ab
               pp_decision v))
        accs
  | Px_p2a (b, rm, v) ->
      Format.fprintf fmt "px-p2a(%a,%a,%a)" pp_epoch b Ids.pp_site rm
        pp_decision v
  | Px_p2b (b, rm, v) ->
      Format.fprintf fmt "px-p2b(%a,%a,%a)" pp_epoch b Ids.pp_site rm
        pp_decision v
  | Px_nack b -> Format.fprintf fmt "px-nack(%a)" pp_epoch b

type log_tag =
  | L_collecting
  | L_prepared
  | L_precommit
  | L_preabort
  | L_decision of decision
  | L_end

let pp_log_tag fmt = function
  | L_collecting -> Format.pp_print_string fmt "collecting"
  | L_prepared -> Format.pp_print_string fmt "prepared"
  | L_precommit -> Format.pp_print_string fmt "precommit"
  | L_preabort -> Format.pp_print_string fmt "preabort"
  | L_decision d -> Format.fprintf fmt "decision(%a)" pp_decision d
  | L_end -> Format.pp_print_string fmt "end"

type timer = T_votes | T_decision | T_precommit_ack | T_state | T_resend

let timer_rank = function
  | T_votes -> 0
  | T_decision -> 1
  | T_precommit_ack -> 2
  | T_state -> 3
  | T_resend -> 4

let timer_compare a b = Int.compare (timer_rank a) (timer_rank b)

let pp_timer fmt = function
  | T_votes -> Format.pp_print_string fmt "votes"
  | T_decision -> Format.pp_print_string fmt "decision"
  | T_precommit_ack -> Format.pp_print_string fmt "precommit-ack"
  | T_state -> Format.pp_print_string fmt "state"
  | T_resend -> Format.pp_print_string fmt "resend"

type action =
  | Send of Ids.site_id * msg
  | Log of log_tag * [ `Forced | `Lazy ]
  | Deliver of decision
  | Set_timer of timer * Rt_sim.Time.t
  | Clear_timer of timer
  | Blocked
  | Forget

let pp_action fmt = function
  | Send (dst, m) -> Format.fprintf fmt "send(%a,%a)" Ids.pp_site dst pp_msg m
  | Log (tag, `Forced) -> Format.fprintf fmt "log!(%a)" pp_log_tag tag
  | Log (tag, `Lazy) -> Format.fprintf fmt "log(%a)" pp_log_tag tag
  | Deliver d -> Format.fprintf fmt "deliver(%a)" pp_decision d
  | Set_timer (t, d) ->
      Format.fprintf fmt "set-timer(%a,%a)" pp_timer t Rt_sim.Time.pp d
  | Clear_timer t -> Format.fprintf fmt "clear-timer(%a)" pp_timer t
  | Blocked -> Format.pp_print_string fmt "blocked"
  | Forget -> Format.pp_print_string fmt "forget"

type input =
  | Start
  | Recv of Ids.site_id * msg
  | Log_done of log_tag
  | Timeout of timer
  | Peer_down of Ids.site_id
  | Peers_reachable of Ids.site_id list

let pp_input fmt = function
  | Start -> Format.pp_print_string fmt "start"
  | Recv (src, m) -> Format.fprintf fmt "recv(%a,%a)" Ids.pp_site src pp_msg m
  | Log_done tag -> Format.fprintf fmt "log-done(%a)" pp_log_tag tag
  | Timeout t -> Format.fprintf fmt "timeout(%a)" pp_timer t
  | Peer_down s -> Format.fprintf fmt "peer-down(%a)" Ids.pp_site s
  | Peers_reachable l ->
      Format.fprintf fmt "peers-reachable(%d)" (List.length l)

let msg_point = function
  | Vote_req -> "vote-req"
  | Vote_yes -> "vote-yes"
  | Vote_no -> "vote-no"
  | Vote_read_only -> "vote-read-only"
  | Precommit_msg -> "precommit"
  | Precommit_ack -> "precommit-ack"
  | Decision_msg Commit -> "decision-commit"
  | Decision_msg Abort -> "decision-abort"
  | Decision_ack -> "decision-ack"
  | Decision_req -> "decision-req"
  | Decision_unknown -> "decision-unknown"
  | State_req -> "state-req"
  | State_report _ -> "state-report"
  | Pq_state_req _ -> "pq-state-req"
  | Pq_state_report _ -> "pq-state-report"
  | Pq_precommit _ -> "pq-precommit"
  | Pq_precommit_ack _ -> "pq-precommit-ack"
  | Pq_preabort _ -> "pq-preabort"
  | Pq_preabort_ack _ -> "pq-preabort-ack"
  | Px_p1a _ -> "px-p1a"
  | Px_p1b _ -> "px-p1b"
  | Px_p2a _ -> "px-p2a"
  | Px_p2b _ -> "px-p2b"
  | Px_nack _ -> "px-nack"

let log_tag_point = function
  | L_collecting -> "collecting"
  | L_prepared -> "prepared"
  | L_precommit -> "precommit"
  | L_preabort -> "preabort"
  | L_decision Commit -> "decision-commit"
  | L_decision Abort -> "decision-abort"
  | L_end -> "end"

let timer_point = function
  | T_votes -> "votes"
  | T_decision -> "decision"
  | T_precommit_ack -> "precommit-ack"
  | T_state -> "state"
  | T_resend -> "resend"

let input_point = function
  | Start -> "start"
  | Recv (_, m) -> "recv-" ^ msg_point m
  | Log_done tag -> "logged-" ^ log_tag_point tag
  | Timeout t -> "timeout-" ^ timer_point t
  | Peer_down _ -> "peer-down"
  | Peers_reachable _ -> "peers-reachable"

type timeouts = {
  vote_collect : Rt_sim.Time.t;
  decision_wait : Rt_sim.Time.t;
  resend_every : Rt_sim.Time.t;
}

let default_timeouts =
  {
    vote_collect = Rt_sim.Time.ms 50;
    decision_wait = Rt_sim.Time.ms 50;
    resend_every = Rt_sim.Time.ms 100;
  }
