open Rt_types
open Protocol
module Sset = Set.Make (Int)

type config = {
  all : Ids.site_id list;
  commit_quorum : int;
  abort_quorum : int;
}

let config ~all ?commit_quorum ?abort_quorum () =
  let n = List.length all in
  if n = 0 then invalid_arg "Quorum_commit.config: no participants";
  let majority = (n / 2) + 1 in
  let vc = Option.value commit_quorum ~default:majority in
  let va = Option.value abort_quorum ~default:majority in
  if vc <= 0 || va <= 0 || vc > n || va > n then
    invalid_arg "Quorum_commit.config: quorum out of range";
  if vc + va <= n then
    invalid_arg "Quorum_commit.config: Vc + Va must exceed the site count";
  { all; commit_quorum = vc; abort_quorum = va }

let send_to set msg = List.map (fun p -> Send (p, msg)) (Sset.elements set)

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type coord_phase =
  | C_init
  | C_collecting of { pending : Sset.t; yes : Sset.t }
  | C_logging_precommit
  | C_precommit_wait of { pc : Sset.t; pending : Sset.t; blocked : bool }
  | C_logging_decision of { d : decision; yes : Sset.t }
  | C_abort_wait of { await : Sset.t }
  | C_done of decision

type coord = {
  c_cfg : config;
  c_self : Ids.site_id;
  c_all : Sset.t;
  c_timeouts : timeouts;
  c_phase : coord_phase;
}

let coordinator ~config ~self ~timeouts =
  {
    c_cfg = config;
    c_self = self;
    c_all = Sset.of_list config.all;
    c_timeouts = timeouts;
    c_phase = C_init;
  }

let coord_decision c =
  match c.c_phase with
  | C_logging_decision { d; _ } | C_done d -> Some d
  | C_abort_wait _ -> Some Abort
  | _ -> None

let coord_blocked c =
  match c.c_phase with
  | C_precommit_wait { blocked; _ } -> blocked
  | _ -> false

let epoch0 c : epoch = (0, c.c_self)

let coord_abort c ~yes =
  ( { c with c_phase = C_logging_decision { d = Abort; yes } },
    [ Clear_timer T_votes; Log (L_decision Abort, `Forced) ] )

let coord_check_commit c ~pc ~pending =
  if Sset.cardinal pc >= c.c_cfg.commit_quorum then
    ( { c with c_phase = C_logging_decision { d = Commit; yes = c.c_all } },
      [ Clear_timer T_precommit_ack; Clear_timer T_resend;
        Log (L_decision Commit, `Forced) ] )
  else
    ({ c with c_phase = C_precommit_wait { pc; pending; blocked = false } }, [])

let coord_step c input =
  match (c.c_phase, input) with
  | C_init, Start ->
      ( { c with c_phase = C_collecting { pending = c.c_all; yes = Sset.empty } },
        send_to c.c_all Vote_req
        @ [ Set_timer (T_votes, c.c_timeouts.vote_collect) ] )
  | C_collecting { pending; yes }, Recv (src, Vote_yes) ->
      let pending = Sset.remove src pending in
      let yes = Sset.add src yes in
      if Sset.is_empty pending then
        ( { c with c_phase = C_logging_precommit },
          [ Clear_timer T_votes; Log (L_precommit, `Forced) ] )
      else ({ c with c_phase = C_collecting { pending; yes } }, [])
  | C_collecting { yes; _ }, Recv (src, Vote_no) ->
      coord_abort c ~yes:(Sset.remove src yes)
  | C_collecting { yes; _ }, Timeout T_votes -> coord_abort c ~yes
  | C_collecting { pending; yes }, Peer_down p when Sset.mem p pending ->
      coord_abort c ~yes
  | C_logging_precommit, Log_done L_precommit ->
      ( { c with
          c_phase = C_precommit_wait
              { pc = Sset.empty; pending = c.c_all; blocked = false } },
        send_to c.c_all (Pq_precommit (epoch0 c))
        @ [ Set_timer (T_precommit_ack, c.c_timeouts.decision_wait) ] )
  | C_precommit_wait { pc; pending; _ }, Recv (src, Pq_precommit_ack e)
    when epoch_compare e (epoch0 c) = 0 ->
      coord_check_commit c ~pc:(Sset.add src pc) ~pending:(Sset.remove src pending)
  | C_precommit_wait { pc; pending; blocked }, Timeout (T_precommit_ack | T_resend)
    ->
      if Sset.cardinal pc >= c.c_cfg.commit_quorum then
        coord_check_commit c ~pc ~pending
      else
        (* Quorum not reachable: keep trying; the blocked flag is the
           measurement hook for experiment F5/F8. *)
        ( { c with c_phase = C_precommit_wait { pc; pending; blocked = true } },
          send_to pending (Pq_precommit (epoch0 c))
          @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ]
          @ (if blocked then [] else [ Blocked ]) )
  | C_logging_decision { d = Commit; _ }, Log_done (L_decision Commit) ->
      ( { c with c_phase = C_done Commit },
        send_to c.c_all (Decision_msg Commit)
        @ [ Deliver Commit; Log (L_end, `Lazy) ] )
  | C_logging_decision { d = Abort; yes }, Log_done (L_decision Abort) ->
      if Sset.is_empty yes then
        ({ c with c_phase = C_done Abort }, [ Deliver Abort; Log (L_end, `Lazy) ])
      else
        ( { c with c_phase = C_abort_wait { await = yes } },
          send_to yes (Decision_msg Abort)
          @ [ Set_timer (T_resend, c.c_timeouts.resend_every); Deliver Abort ] )
  | C_abort_wait { await }, Recv (src, Decision_ack) ->
      let await = Sset.remove src await in
      if Sset.is_empty await then
        ( { c with c_phase = C_done Abort },
          [ Clear_timer T_resend; Log (L_end, `Lazy) ] )
      else ({ c with c_phase = C_abort_wait { await } }, [])
  | C_abort_wait { await }, Timeout T_resend ->
      ( c,
        send_to await (Decision_msg Abort)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | (C_done d | C_logging_decision { d; _ }), Recv (src, Decision_req) ->
      (c, [ Send (src, Decision_msg d) ])
  (* Still undecided: stay silent rather than answer [Decision_unknown].
     Our own timeouts will terminate us, so the asker loses nothing by
     waiting — whereas "unknown" is the participants' cue to usurp the
     election, which is only warranted when the asked site has no memory
     of the transaction at all. *)
  | _, Recv (_, Decision_req) -> (c, [])
  (* A termination protocol elected at a higher epoch can out-decide a
     coordinator that is still collecting votes or precommit acks.  The
     deposed coordinator must adopt the decision: its own pre-decision
     messages are epoch-fenced by every participant, so without adoption
     it resends them forever and the client never gets an outcome. *)
  | (C_init | C_collecting _ | C_logging_precommit | C_precommit_wait _),
    Recv (_, Decision_msg d) ->
      ( { c with c_phase = C_done d },
        [ Clear_timer T_votes; Clear_timer T_precommit_ack;
          Clear_timer T_resend; Deliver d; Log (L_decision d, `Lazy) ] )
  | C_abort_wait _, Recv (_, Decision_msg Abort) ->
      (* Our own abort came back via a peer; keep waiting for acks. *)
      (c, [])
  | _, (Recv _ | Timeout _ | Log_done _ | Peer_down _ | Peers_reachable _
        | Start) ->
      (c, [])

(* ------------------------------------------------------------------ *)
(* Participant                                                         *)
(* ------------------------------------------------------------------ *)

type base =
  | B_idle
  | B_logging_prepared
  | B_uncertain
  | B_logging_precommit of { ack_to : Ids.site_id option; at : epoch }
  | B_precommitted
  | B_logging_preabort of { ack_to : Ids.site_id option; at : epoch }
  | B_preaborted
  | B_logging_outcome of decision
  | B_finished of decision

type leader_phase =
  | L_collect of {
      awaiting : Sset.t;
      reports : (Ids.site_id * participant_state) list;
    }
  | L_drive_commit of { pc : Sset.t; awaiting : Sset.t }
  | L_drive_abort of { pa : Sset.t; awaiting : Sset.t }
  | L_decided of decision

type role = R_normal | R_follower | R_leader of leader_phase

type part = {
  p_cfg : config;
  p_self : Ids.site_id;
  p_coordinator : Ids.site_id;
  p_vote : bool;
  p_timeouts : timeouts;
  p_up : Sset.t;  (* participants currently reachable, self included *)
  p_epoch : epoch;  (* highest epoch seen *)
  p_base : base;
  p_role : role;
  p_blocked : bool;
}

let participant ~config ~self ~coordinator ~vote ~timeouts =
  {
    p_cfg = config;
    p_self = self;
    p_coordinator = coordinator;
    p_vote = vote;
    p_timeouts = timeouts;
    p_up = Sset.of_list config.all;
    p_epoch = (0, coordinator);
    p_base = B_idle;
    p_role = R_normal;
    p_blocked = false;
  }

let part_decision p =
  match p.p_base with
  | B_logging_outcome d | B_finished d -> Some d
  | _ -> None

let part_state p =
  match p.p_base with
  | B_idle | B_logging_prepared | B_uncertain -> P_uncertain
  | B_logging_precommit _ | B_precommitted -> P_precommitted
  | B_logging_preabort _ | B_preaborted -> P_preaborted
  | B_logging_outcome Commit | B_finished Commit -> P_committed
  | B_logging_outcome Abort | B_finished Abort -> P_aborted

let part_blocked p = p.p_blocked

let part_reachable_update p ~up =
  let up = Sset.add p.p_self (Sset.of_list up) in
  { p with p_up = Sset.inter up (Sset.of_list p.p_cfg.all) }

let log_outcome p d =
  match p.p_base with
  | B_logging_outcome _ | B_finished _ -> (p, [])
  | _ ->
      ( { p with p_base = B_logging_outcome d; p_blocked = false },
        [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
          Clear_timer T_precommit_ack; Log (L_decision d, `Forced) ] )

(* --- leader logic -------------------------------------------------- *)

let next_epoch p : epoch = (fst p.p_epoch + 1, p.p_self)

let leader_blocked p =
  ( { p with p_role = R_follower; p_blocked = true },
    [ Set_timer (T_resend, p.p_timeouts.resend_every) ]
    @ (if p.p_blocked then [] else [ Blocked ]) )

let leader_decided p d =
  let p, actions = log_outcome p d in
  ({ p with p_role = R_leader (L_decided d) }, actions)

(* Apply the quorum termination rules to collected reports. *)
let leader_apply p reports =
  let some st = List.exists (fun (_, s) -> s = st) reports in
  let sites st =
    List.filter_map (fun (s, s') -> if s' = st then Some s else None) reports
    |> Sset.of_list
  in
  if some P_committed then leader_decided p Commit
  else if some P_aborted then leader_decided p Abort
  else begin
    let pc = sites P_precommitted and pa = sites P_preaborted in
    let uncertain = sites P_uncertain in
    (* Quorum termination counts potential quorum members: sites already
       pre-decided our way plus uncertain sites we can still drive.  Sites
       pre-decided the *other* way are not obstacles — quorum intersection
       (Vc + Va > N) plus epoch fencing guarantees that if the rival
       decision had actually been reached, at least one reporting site
       would be finished or pre-decided against us in every quorum we can
       assemble, making the count fall short.  Requiring the rival set to
       be empty (as this code once did) livelocks on mixed reports: one
       pre-committed survivor plus a pre-aborted majority matched neither
       rule, so every elected leader blocked, timed out, and re-elected
       forever. *)
    let pc_w = Sset.cardinal (Sset.union pc uncertain) in
    let pa_w = Sset.cardinal (Sset.union pa uncertain) in
    if (not (Sset.is_empty pc)) && pc_w >= p.p_cfg.commit_quorum then begin
      (* Drive the uncertain sites to pre-commit. *)
      let targets = Sset.remove p.p_self uncertain in
      let sends = send_to targets (Pq_precommit p.p_epoch) in
      let timer = [ Set_timer (T_precommit_ack, p.p_timeouts.decision_wait) ] in
      if Sset.mem p.p_self uncertain then
        ( { p with
            p_base = B_logging_precommit { ack_to = None; at = p.p_epoch };
            p_role = R_leader (L_drive_commit { pc; awaiting = targets }) },
          sends @ timer @ [ Log (L_precommit, `Forced) ] )
      else if Sset.cardinal pc >= p.p_cfg.commit_quorum then
        leader_decided p Commit
      else
        ( { p with p_role = R_leader (L_drive_commit { pc; awaiting = targets }) },
          sends @ timer )
    end
    else if pa_w >= p.p_cfg.abort_quorum then begin
      let targets = Sset.remove p.p_self uncertain in
      let sends = send_to targets (Pq_preabort p.p_epoch) in
      let timer = [ Set_timer (T_precommit_ack, p.p_timeouts.decision_wait) ] in
      if Sset.mem p.p_self uncertain then
        ( { p with
            p_base = B_logging_preabort { ack_to = None; at = p.p_epoch };
            p_role = R_leader (L_drive_abort { pa; awaiting = targets }) },
          sends @ timer @ [ Log (L_preabort, `Forced) ] )
      else if Sset.cardinal pa >= p.p_cfg.abort_quorum then
        leader_decided p Abort
      else
        ( { p with p_role = R_leader (L_drive_abort { pa; awaiting = targets }) },
          sends @ timer )
    end
    else leader_blocked p
  end

let become_leader p =
  let e = next_epoch p in
  let p = { p with p_epoch = e } in
  let awaiting = Sset.remove p.p_self p.p_up in
  let reports = [ (p.p_self, part_state p) ] in
  if Sset.is_empty awaiting then leader_apply p reports
  else
    ( { p with p_role = R_leader (L_collect { awaiting; reports }) },
      send_to awaiting (Pq_state_req e)
      @ [ Set_timer (T_state, p.p_timeouts.decision_wait) ] )

let start_termination p =
  match Sset.min_elt_opt p.p_up with
  | Some l when l = p.p_self -> become_leader p
  | Some _ | None ->
      (* Follow the presumptive leader, but also ask peers directly in
         case one of them already knows the outcome. *)
      ( { p with p_role = R_follower },
        send_to (Sset.remove p.p_self p.p_up) Decision_req
        @ [ Set_timer (T_resend, p.p_timeouts.resend_every) ] )

let leader_check_commit p ~pc ~awaiting =
  if Sset.cardinal pc >= p.p_cfg.commit_quorum then leader_decided p Commit
  else if Sset.is_empty awaiting then leader_blocked p
  else ({ p with p_role = R_leader (L_drive_commit { pc; awaiting }) }, [])

let leader_check_abort p ~pa ~awaiting =
  if Sset.cardinal pa >= p.p_cfg.abort_quorum then leader_decided p Abort
  else if Sset.is_empty awaiting then leader_blocked p
  else ({ p with p_role = R_leader (L_drive_abort { pa; awaiting }) }, [])

(* --- main transition ------------------------------------------------ *)

let part_step p input =
  match (p.p_base, p.p_role, input) with
  | _, _, Peer_down s ->
      let p = { p with p_up = Sset.remove s p.p_up } in
      (match (p.p_base, p.p_role) with
      | (B_uncertain | B_precommitted | B_preaborted), R_normal
        when s = p.p_coordinator ->
          start_termination p
      | _ -> (p, []))
  (* Phase 1. *)
  | B_idle, R_normal, Recv (_, Vote_req) ->
      if p.p_vote then
        ({ p with p_base = B_logging_prepared }, [ Log (L_prepared, `Forced) ])
      else
        ( { p with p_base = B_finished Abort },
          [ Send (p.p_coordinator, Vote_no); Log (L_decision Abort, `Lazy);
            Deliver Abort ] )
  | B_logging_prepared, R_normal, Log_done L_prepared ->
      ( { p with p_base = B_uncertain },
        [ Send (p.p_coordinator, Vote_yes);
          Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
  (* Pre-decisions (epoch-guarded). *)
  | B_uncertain, _, Recv (src, Pq_precommit e)
    when epoch_compare e p.p_epoch >= 0 ->
      ( { p with p_epoch = e; p_role = R_follower;
                 p_base = B_logging_precommit { ack_to = Some src; at = e } },
        [ Clear_timer T_decision; Log (L_precommit, `Forced) ] )
  | B_precommitted, _, Recv (src, Pq_precommit e)
    when epoch_compare e p.p_epoch >= 0 ->
      (* Already pre-committed: re-ack at the new epoch. *)
      ({ p with p_epoch = e }, [ Send (src, Pq_precommit_ack e) ])
  | B_uncertain, _, Recv (src, Pq_preabort e)
    when epoch_compare e p.p_epoch >= 0 ->
      ( { p with p_epoch = e; p_role = R_follower;
                 p_base = B_logging_preabort { ack_to = Some src; at = e } },
        [ Clear_timer T_decision; Log (L_preabort, `Forced) ] )
  | B_preaborted, _, Recv (src, Pq_preabort e)
    when epoch_compare e p.p_epoch >= 0 ->
      ({ p with p_epoch = e }, [ Send (src, Pq_preabort_ack e) ])
  | B_logging_precommit { ack_to; at }, _, Log_done L_precommit -> (
      let p = { p with p_base = B_precommitted } in
      match (ack_to, p.p_role) with
      | Some src, _ ->
          ( p,
            [ Send (src, Pq_precommit_ack at);
              Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
      | None, R_leader (L_drive_commit { pc; awaiting }) ->
          leader_check_commit p ~pc:(Sset.add p.p_self pc) ~awaiting
      | None, _ -> (p, []))
  | B_logging_preabort { ack_to; at }, _, Log_done L_preabort -> (
      let p = { p with p_base = B_preaborted } in
      match (ack_to, p.p_role) with
      | Some src, _ ->
          ( p,
            [ Send (src, Pq_preabort_ack at);
              Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
      | None, R_leader (L_drive_abort { pa; awaiting }) ->
          leader_check_abort p ~pa:(Sset.add p.p_self pa) ~awaiting
      | None, _ -> (p, []))
  (* Final decisions are accepted from anyone, any epoch — including
     while a pre-state log write is still in flight (its stale Log_done
     is ignored later). *)
  | ( ( B_uncertain | B_precommitted | B_preaborted | B_logging_prepared
      | B_logging_precommit _ | B_logging_preabort _ ),
      _,
      Recv (_, Decision_msg d) ) ->
      log_outcome p d
  | B_logging_outcome d, _, Log_done (L_decision d') when decision_equal d d'
    ->
      let finish = { p with p_base = B_finished d } in
      let ack =
        if decision_equal d Abort then [ Send (p.p_coordinator, Decision_ack) ]
        else []
      in
      let broadcast =
        match p.p_role with
        | R_leader _ ->
            send_to (Sset.remove p.p_self p.p_up) (Decision_msg d)
        | _ -> []
      in
      ({ finish with p_role = R_normal }, ack @ broadcast @ [ Deliver d ])
  (* Timeouts drive termination, whether we were following the original
     coordinator or an elected leader that went quiet. *)
  | ( (B_uncertain | B_precommitted | B_preaborted),
      (R_normal | R_follower),
      Timeout (T_decision | T_resend) ) ->
      start_termination p
  | _, R_leader (L_collect { awaiting = _; reports }), Timeout T_state ->
      if reports = [] then leader_blocked p else leader_apply p reports
  | _, R_leader (L_drive_commit { pc; awaiting = _ }), Timeout T_precommit_ack
    ->
      leader_check_commit p ~pc ~awaiting:Sset.empty
  | _, R_leader (L_drive_abort { pa; awaiting = _ }), Timeout T_precommit_ack
    ->
      leader_check_abort p ~pa ~awaiting:Sset.empty
  (* Leader: collection and acks. *)
  | _, R_leader (L_collect { awaiting; reports }),
    Recv (src, Pq_state_report (e, st))
    when epoch_compare e p.p_epoch = 0 && Sset.mem src awaiting ->
      let awaiting = Sset.remove src awaiting in
      let reports = (src, st) :: reports in
      if Sset.is_empty awaiting then leader_apply p reports
      else ({ p with p_role = R_leader (L_collect { awaiting; reports }) }, [])
  | _, R_leader (L_drive_commit { pc; awaiting }),
    Recv (src, Pq_precommit_ack e)
    when epoch_compare e p.p_epoch = 0 ->
      leader_check_commit p ~pc:(Sset.add src pc)
        ~awaiting:(Sset.remove src awaiting)
  | _, R_leader (L_drive_abort { pa; awaiting }), Recv (src, Pq_preabort_ack e)
    when epoch_compare e p.p_epoch = 0 ->
      leader_check_abort p ~pa:(Sset.add src pa)
        ~awaiting:(Sset.remove src awaiting)
  (* Everyone answers state requests at current-or-higher epochs; doing so
     dethrones any stale local leadership. *)
  | _, _, Recv (src, Pq_state_req e) when epoch_compare e p.p_epoch >= 0 ->
      let role =
        match p.p_role with
        | R_leader _ when src <> p.p_self -> R_follower
        | r -> r
      in
      ( { p with p_epoch = e; p_role = role },
        [ Send (src, Pq_state_report (e, part_state p)) ]
        @
        match role with
        | R_follower -> [ Set_timer (T_resend, p.p_timeouts.resend_every) ]
        | _ -> [] )
  | (B_finished d | B_logging_outcome d), _, Recv (src, Decision_req) ->
      (p, [ Send (src, Decision_msg d) ])
  (* Undecided but holding live protocol state: stay silent.  We can run
     (or already are running) the election ourselves, so "unknown" — the
     cue for the asker to usurp the election — would only cause churn. *)
  | ( ( B_uncertain | B_precommitted | B_preaborted | B_logging_prepared
      | B_logging_precommit _ | B_logging_preabort _ ),
      _,
      Recv (_, Decision_req) ) ->
      (p, [])
  | _, _, Recv (src, Decision_req) -> (p, [ Send (src, Decision_unknown) ])
  (* A presumptive leader that answers "unknown" cannot terminate the
     transaction for us — typically it lost every trace of it in a crash
     (nothing in its recovered WAL to rebuild a machine from), so the
     election we are waiting for will never start.  Usurp it.  Concurrent
     leaders are harmless (epoch fencing), and collection terminates even
     through the amnesiac site: a memoryless site pledges abort when our
     [Pq_state_req] reaches it. *)
  | ( (B_uncertain | B_precommitted | B_preaborted),
      (R_normal | R_follower),
      Recv (src, Decision_unknown) )
    when Sset.min_elt_opt p.p_up = Some src ->
      become_leader p
  | B_finished _, _, Recv (src, Decision_msg _) ->
      (* Our decision ack was lost and the sender is resending: re-ack
         so an abort-wait coordinator can retire its resend loop. *)
      (p, [ Send (src, Decision_ack) ])
  | _, _, Peers_reachable up -> (part_reachable_update p ~up, [])
  | _, _, (Recv _ | Timeout _ | Log_done _ | Start) -> (p, [])

let participant_recovered ~config ~self ~coordinator ~state ~timeouts =
  let base =
    match state with
    | P_uncertain -> B_uncertain
    | P_precommitted -> B_precommitted
    | P_preaborted -> B_preaborted
    | P_committed -> B_finished Commit
    | P_aborted -> B_finished Abort
  in
  let p = participant ~config ~self ~coordinator ~vote:true ~timeouts in
  { p with p_base = base }

(* Recovered participants begin termination on [Start]. *)
let part_step p input =
  match (input, p.p_base, p.p_role) with
  | Start, (B_uncertain | B_precommitted | B_preaborted), R_normal ->
      start_termination p
  | _ -> part_step p input

(* ------------------------------------------------------------------ *)
(* Canonical description (explorer state fingerprinting)               *)
(* ------------------------------------------------------------------ *)

let set_str s = String.concat "," (List.map string_of_int (Sset.elements s))
let dec_str = function Commit -> "C" | Abort -> "A"
let epoch_str (r, s) = Printf.sprintf "%d.%d" r s

let pstate_str st = Format.asprintf "%a" pp_participant_state st

let reports_str rs =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) rs
  |> List.map (fun (s, st) -> Printf.sprintf "%d=%s" s (pstate_str st))
  |> String.concat ","

let cfg_str c =
  Printf.sprintf "all=%s;vc=%d;va=%d"
    (String.concat "," (List.map string_of_int (List.sort Int.compare c.all)))
    c.commit_quorum c.abort_quorum

let describe_coord c =
  let phase =
    match c.c_phase with
    | C_init -> "init"
    | C_collecting { pending; yes } ->
        Printf.sprintf "collecting{p=%s;y=%s}" (set_str pending) (set_str yes)
    | C_logging_precommit -> "logging-precommit"
    | C_precommit_wait { pc; pending; blocked } ->
        Printf.sprintf "precommit-wait{pc=%s;p=%s;b=%b}" (set_str pc)
          (set_str pending) blocked
    | C_logging_decision { d; yes } ->
        Printf.sprintf "logging-decision{%s;y=%s}" (dec_str d) (set_str yes)
    | C_abort_wait { await } ->
        Printf.sprintf "abort-wait{a=%s}" (set_str await)
    | C_done d -> Printf.sprintf "done{%s}" (dec_str d)
  in
  Printf.sprintf "qc-coord:%s:self=%d:%s" (cfg_str c.c_cfg) c.c_self phase

let describe_part p =
  let ack_str = function None -> "-" | Some s -> string_of_int s in
  let base =
    match p.p_base with
    | B_idle -> "idle"
    | B_logging_prepared -> "logging-prepared"
    | B_uncertain -> "uncertain"
    | B_logging_precommit { ack_to; at } ->
        Printf.sprintf "logging-precommit{ack=%s;at=%s}" (ack_str ack_to)
          (epoch_str at)
    | B_precommitted -> "precommitted"
    | B_logging_preabort { ack_to; at } ->
        Printf.sprintf "logging-preabort{ack=%s;at=%s}" (ack_str ack_to)
          (epoch_str at)
    | B_preaborted -> "preaborted"
    | B_logging_outcome d -> Printf.sprintf "logging-outcome{%s}" (dec_str d)
    | B_finished d -> Printf.sprintf "finished{%s}" (dec_str d)
  in
  let role =
    match p.p_role with
    | R_normal -> "normal"
    | R_follower -> "follower"
    | R_leader (L_collect { awaiting; reports }) ->
        Printf.sprintf "leader-collect{a=%s;r=%s}" (set_str awaiting)
          (reports_str reports)
    | R_leader (L_drive_commit { pc; awaiting }) ->
        Printf.sprintf "leader-drive-commit{pc=%s;a=%s}" (set_str pc)
          (set_str awaiting)
    | R_leader (L_drive_abort { pa; awaiting }) ->
        Printf.sprintf "leader-drive-abort{pa=%s;a=%s}" (set_str pa)
          (set_str awaiting)
    | R_leader (L_decided d) -> Printf.sprintf "leader-decided{%s}" (dec_str d)
  in
  Printf.sprintf "qc-part:%s:%d<-%d:v=%b:up=%s:e=%s:b=%b:%s:%s"
    (cfg_str p.p_cfg) p.p_self p.p_coordinator p.p_vote (set_str p.p_up)
    (epoch_str p.p_epoch) p.p_blocked base role
