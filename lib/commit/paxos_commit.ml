open Rt_types
open Protocol
module Sset = Set.Make (Int)

(* Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"): one
   Paxos consensus instance per participant vote, all instances sharing a
   single ballot space led by the transaction coordinator at ballot 0.
   2F+1 acceptors with F+1 quorums make the commit/abort outcome survive
   any F failures; with F = 0 the coordinator is the sole acceptor and
   the protocol degenerates, message for message, into 2PC-PrN — the
   degenerate branches below are deliberately written to be step-aligned
   with [Two_pc] so the equivalence suite can drive both through shared
   schedules. *)

type config = {
  all : Ids.site_id list;  (* participants, ascending *)
  coordinator : Ids.site_id;
  f : int;
  acceptors : Ids.site_id list;  (* 2f+1: coordinator first, rest ascending *)
}

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let config ~all ~coordinator ?f () =
  (match all with
  | [] -> invalid_arg "Paxos_commit.config: no participants"
  | _ :: _ -> ());
  let all = List.sort_uniq Int.compare all in
  let others = List.filter (fun s -> s <> coordinator) all in
  let max_f = List.length others / 2 in
  let f = match f with None -> max_f | Some f -> f in
  if f < 0 then invalid_arg "Paxos_commit.config: negative F";
  if f > max_f then
    invalid_arg "Paxos_commit.config: not enough sites for 2F+1 acceptors";
  let acceptors = coordinator :: take (2 * f) others in
  { all; coordinator; f; acceptors }

let quorum cfg = cfg.f + 1
let degenerate cfg = cfg.f = 0
let ballot0 cfg : epoch = (0, cfg.coordinator)
let send_to set msg = List.map (fun p -> Send (p, msg)) (Sset.elements set)

(* ------------------------------------------------------------------ *)
(* Acceptor (embedded in the coordinator and in acceptor participants) *)
(* ------------------------------------------------------------------ *)

type acceptor = {
  ax_promised : epoch;  (* highest ballot promised (maxBal) *)
  ax_accepted : (Ids.site_id * (epoch * decision)) list;
      (* per instance, the last accepted (ballot, value); ascending rm *)
}

let acc_init cfg = { ax_promised = ballot0 cfg; ax_accepted = [] }
let acc_triples a = List.map (fun (rm, (b, v)) -> (rm, b, v)) a.ax_accepted
let acc_accepted = acc_triples

let acc_p1a a ~ballot =
  if epoch_compare ballot a.ax_promised >= 0 then
    ({ a with ax_promised = ballot }, `P1b (acc_triples a))
  else (a, `Nack a.ax_promised)

(* Accept (ballot, v) for instance [rm] iff the ballot is not stale.  At
   an equal ballot a previously accepted value is never overwritten — the
   duplicate is re-acknowledged with the original value (the ballot-safety
   property the qcheck suite pins). *)
let acc_p2a a ~ballot ~rm ~v =
  if epoch_compare ballot a.ax_promised < 0 then (a, `Nack a.ax_promised)
  else
    let a = { a with ax_promised = ballot } in
    match List.assoc_opt rm a.ax_accepted with
    | Some (b', v') when epoch_compare b' ballot = 0 -> (a, `P2b v')
    | _ ->
        let accepted =
          (rm, (ballot, v)) :: List.remove_assoc rm a.ax_accepted
          |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
        in
        ({ a with ax_accepted = accepted }, `P2b v)

(* ------------------------------------------------------------------ *)
(* Vote tallies and phase-1 merges                                     *)
(* ------------------------------------------------------------------ *)

(* Per instance: which acceptors acknowledged Commit / Abort at the
   tallying leader's current ballot. *)
type tally = (Ids.site_id * (Sset.t * Sset.t)) list

let tally_init cfg : tally =
  List.map (fun rm -> (rm, (Sset.empty, Sset.empty))) cfg.all

let tally_add (t : tally) ~rm ~acc ~v : tally =
  List.map
    (fun (r, (cs, ab)) ->
      if r = rm then
        match (v : decision) with
        | Commit -> (r, (Sset.add acc cs, ab))
        | Abort -> (r, (cs, Sset.add acc ab))
      else (r, (cs, ab)))
    t

let tally_commit_chosen cfg (t : tally) =
  List.filter_map
    (fun (rm, (cs, _)) ->
      if Sset.cardinal cs >= quorum cfg then Some rm else None)
    t
  |> Sset.of_list

let tally_abort_chosen cfg (t : tally) =
  List.exists (fun (_, (_, ab)) -> Sset.cardinal ab >= quorum cfg) t

let tally_all_commit cfg (t : tally) =
  List.for_all (fun (_, (cs, _)) -> Sset.cardinal cs >= quorum cfg) t

(* Highest-ballot accepted value per instance across phase-1 reports. *)
let merge_found found triples =
  List.fold_left
    (fun acc (rm, b, v) ->
      match List.assoc_opt rm acc with
      | Some (b', _) when epoch_compare b' b >= 0 -> acc
      | _ -> (rm, (b, v)) :: List.remove_assoc rm acc)
    found triples
  |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)

(* A recovery leader proposes the highest accepted value for each
   instance, and Abort for free instances. *)
let proposal_of_found cfg found =
  List.map
    (fun rm ->
      match List.assoc_opt rm found with
      | Some (_, v) -> (rm, v)
      | None -> (rm, Abort))
    cfg.all

(* ------------------------------------------------------------------ *)
(* Coordinator (ballot-0 leader, with embedded acceptor)               *)
(* ------------------------------------------------------------------ *)

type coord_phase =
  | C_init
  | C_collecting of { tally : tally }
  | C_electing of {
      ballot : epoch;
      heard : Sset.t;
      found : (Ids.site_id * (epoch * decision)) list;
      blocked : bool;
    }
  | C_proposing of {
      ballot : epoch;
      proposal : (Ids.site_id * decision) list;
      tally : tally;
      blocked : bool;
    }
  | C_deposed  (* a higher ballot exists: poll for its outcome *)
  | C_logging_decision of { d : decision; notify : Sset.t; ackers : Sset.t }
  | C_decided of { d : decision; await_acks : Sset.t }
  | C_done of decision

type coord = {
  c_cfg : config;
  c_self : Ids.site_id;
  c_timeouts : timeouts;
  c_acc : acceptor;
  c_refused : Sset.t;  (* participants whose own ballot-0 vote was Abort *)
  c_phase : coord_phase;
}

let c_parts c = Sset.of_list c.c_cfg.all

let coordinator ~config ~self ~timeouts =
  if self <> config.coordinator then
    invalid_arg "Paxos_commit.coordinator: self is not the configured leader";
  {
    c_cfg = config;
    c_self = self;
    c_timeouts = timeouts;
    c_acc = acc_init config;
    c_refused = Sset.empty;
    c_phase = C_init;
  }

let coord_decision c =
  match c.c_phase with
  | C_logging_decision { d; _ } | C_decided { d; _ } | C_done d -> Some d
  | _ -> None

let coord_blocked c =
  match c.c_phase with
  | C_electing { blocked; _ } | C_proposing { blocked; _ } -> blocked
  | _ -> false

(* Move to the decision: forced log, then distribute.  [skip] holds
   participants that must not be notified — refusers already aborted
   locally, and a participant whose failure triggered the abort is down
   (exactly 2PC's recipients = yes U pending discipline). *)
let coord_decide c ~tally d ~skip =
  let chosen = tally_commit_chosen c.c_cfg tally in
  let notify =
    match (d : decision) with
    | Commit -> c_parts c
    | Abort -> Sset.diff (c_parts c) skip
  in
  let ackers =
    match (d : decision) with Commit -> c_parts c | Abort -> chosen
  in
  ( { c with c_phase = C_logging_decision { d; notify; ackers } },
    [ Clear_timer T_votes; Clear_timer T_state; Clear_timer T_precommit_ack;
      Log (L_decision d, `Forced) ] )

let coord_check c ~tally ~mk =
  if tally_abort_chosen c.c_cfg tally then
    coord_decide c ~tally Abort ~skip:c.c_refused
  else if tally_all_commit c.c_cfg tally then
    coord_decide c ~tally Commit ~skip:Sset.empty
  else (mk tally, [])

(* Begin phase 2 of a recovery ballot: propose every instance, accepting
   our own proposals through the embedded acceptor.  With F = 0 we are
   the only acceptor, so this decides in the same step. *)
let coord_propose c ~ballot ~found =
  let proposal = proposal_of_found c.c_cfg found in
  let others = List.filter (fun a -> a <> c.c_self) c.c_cfg.acceptors in
  let sends =
    List.concat_map
      (fun (rm, v) ->
        List.map (fun a -> Send (a, Px_p2a (ballot, rm, v))) others)
      proposal
  in
  let acc, tally =
    List.fold_left
      (fun (acc, tally) (rm, v) ->
        match acc_p2a acc ~ballot ~rm ~v with
        | acc, `P2b v' -> (acc, tally_add tally ~rm ~acc:c.c_self ~v:v')
        | acc, `Nack _ -> (acc, tally))
      (c.c_acc, tally_init c.c_cfg)
      proposal
  in
  let c = { c with c_acc = acc } in
  let c, actions =
    coord_check c ~tally ~mk:(fun tally ->
        { c with
          c_phase = C_proposing { ballot; proposal; tally; blocked = false } })
  in
  match c.c_phase with
  | C_proposing _ ->
      ( c,
        sends
        @ [ Set_timer (T_precommit_ack, c.c_timeouts.decision_wait) ]
        @ actions )
  | _ -> (c, sends @ actions)

(* Usurp our own stalled ballot: run phase 1 at the next round.  With
   F = 0 the self-promise is the whole quorum and the election, proposal
   and decision all collapse into this one step — exactly 2PC's
   timeout-abort. *)
let coord_elect c =
  let ballot = (fst c.c_acc.ax_promised + 1, c.c_self) in
  let acc, rep = acc_p1a c.c_acc ~ballot in
  let c = { c with c_acc = acc } in
  let found =
    match rep with `P1b triples -> merge_found [] triples | `Nack _ -> []
  in
  let heard = Sset.singleton c.c_self in
  if Sset.cardinal heard >= quorum c.c_cfg then coord_propose c ~ballot ~found
  else
    let others = List.filter (fun a -> a <> c.c_self) c.c_cfg.acceptors in
    ( { c with c_phase = C_electing { ballot; heard; found; blocked = false } },
      List.map (fun a -> Send (a, Px_p1a ballot)) others
      @ [ Set_timer (T_state, c.c_timeouts.decision_wait) ] )

(* Yield to a higher-ballot leader: keep polling for the outcome so the
   origin's client still learns it even if the rival's broadcast to us is
   lost. *)
let coord_yield c =
  ( { c with c_phase = C_deposed },
    [ Clear_timer T_votes; Clear_timer T_state; Clear_timer T_precommit_ack ]
    @ send_to (c_parts c) Decision_req
    @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )

let coord_our_ballot c =
  match c.c_phase with
  | C_electing { ballot; _ } | C_proposing { ballot; _ } -> ballot
  | _ -> ballot0 c.c_cfg

(* Serve the embedded acceptor for a rival leader's phase-1 message and
   step aside ([coord_yield]) if its ballot beats ours. *)
let coord_acc_p1a c src b =
  let acc, rep = acc_p1a c.c_acc ~ballot:b in
  let our = coord_our_ballot c in
  let c = { c with c_acc = acc } in
  match rep with
  | `P1b triples ->
      let reply = [ Send (src, Px_p1b (b, triples)) ] in
      if epoch_compare b our > 0 then
        let c, actions = coord_yield c in
        (c, reply @ actions)
      else (c, reply)
  | `Nack promised -> (c, [ Send (src, Px_nack promised) ])

let coord_acc_p2a c src (b, rm, v) =
  let acc, rep = acc_p2a c.c_acc ~ballot:b ~rm ~v in
  let our = coord_our_ballot c in
  let c = { c with c_acc = acc } in
  match rep with
  | `P2b v' ->
      let reply = [ Send (snd b, Px_p2b (b, rm, v')) ] in
      if epoch_compare b our > 0 then
        let c, actions = coord_yield c in
        (c, reply @ actions)
      else (c, reply)
  | `Nack promised -> (c, [ Send (src, Px_nack promised) ])

let coord_step c input =
  match (c.c_phase, input) with
  | C_init, Start ->
      ( { c with c_phase = C_collecting { tally = tally_init c.c_cfg } },
        send_to (c_parts c) Vote_req
        @ [ Set_timer (T_votes, c.c_timeouts.vote_collect) ] )
  (* Ballot 0: participants drive their own instances.  Their phase-2a
     reaches us directly (we are an acceptor); other acceptors forward
     phase-2b acknowledgements. *)
  | C_collecting { tally }, Recv (_src, Px_p2a (b, rm, v))
    when epoch_compare b (ballot0 c.c_cfg) = 0 -> (
      match (v : decision) with
      | Abort ->
          (* The participant refused: it already aborted locally, exactly
             like a 2PC No-voter — decide without waiting for a quorum
             (no Commit can ever enter its instance). *)
          let c = { c with c_refused = Sset.add rm c.c_refused } in
          coord_decide c ~tally Abort ~skip:c.c_refused
      | Commit -> (
          match acc_p2a c.c_acc ~ballot:b ~rm ~v with
          | acc, `P2b v' ->
              let c = { c with c_acc = acc } in
              let tally = tally_add tally ~rm ~acc:c.c_self ~v:v' in
              coord_check c ~tally ~mk:(fun tally ->
                  { c with c_phase = C_collecting { tally } })
          | _, `Nack _ ->
              (* A recovery ballot already fenced ballot 0; our own
                 timeout will terminate the transaction. *)
              (c, [])))
  | C_collecting { tally }, Recv (src, Px_p2b (b, rm, v))
    when epoch_compare b (ballot0 c.c_cfg) = 0 -> (
      match (v : decision) with
      | Abort ->
          let c = { c with c_refused = Sset.add rm c.c_refused } in
          coord_decide c ~tally Abort ~skip:c.c_refused
      | Commit ->
          let tally = tally_add tally ~rm ~acc:src ~v in
          coord_check c ~tally ~mk:(fun tally ->
              { c with c_phase = C_collecting { tally } }))
  | C_collecting _, Timeout T_votes -> coord_elect c
  | C_collecting { tally }, Peer_down p
    when (not (Sset.mem p (tally_commit_chosen c.c_cfg tally)))
         && not (Sset.mem p c.c_refused) -> (
      (* A participant with an undecided instance died: abort now rather
         than wait out the vote timer (2PC's pending-peer rule).  Its
         instance is free, so the election chooses Abort for it. *)
      let c, actions = coord_elect c in
      match c.c_phase with
      | C_logging_decision { d = Abort; notify; ackers } ->
          ( { c with
              c_phase =
                C_logging_decision
                  { d = Abort; notify = Sset.remove p notify; ackers } },
            actions )
      | _ -> (c, actions))
  (* Recovery-ballot phases. *)
  | ( C_electing { ballot; heard; found; blocked },
      Recv (src, Px_p1b (b, triples)) )
    when epoch_compare b ballot = 0
         && List.mem src c.c_cfg.acceptors
         && not (Sset.mem src heard) ->
      let heard = Sset.add src heard in
      let found = merge_found found triples in
      if Sset.cardinal heard >= quorum c.c_cfg then
        coord_propose c ~ballot ~found
      else
        ({ c with c_phase = C_electing { ballot; heard; found; blocked } }, [])
  | C_electing ({ ballot; heard; blocked; _ } as e), Timeout T_state ->
      let unheard =
        List.filter
          (fun a -> a <> c.c_self && not (Sset.mem a heard))
          c.c_cfg.acceptors
      in
      ( { c with c_phase = C_electing { e with blocked = true } },
        List.map (fun a -> Send (a, Px_p1a ballot)) unheard
        @ [ Set_timer (T_state, c.c_timeouts.decision_wait) ]
        @ (if blocked then [] else [ Blocked ]) )
  | ( C_proposing { ballot; proposal; tally; blocked },
      Recv (src, Px_p2b (b, rm, v)) )
    when epoch_compare b ballot = 0 && List.mem src c.c_cfg.acceptors ->
      let tally = tally_add tally ~rm ~acc:src ~v in
      coord_check c ~tally ~mk:(fun tally ->
          { c with c_phase = C_proposing { ballot; proposal; tally; blocked } })
  | C_proposing { ballot; proposal; tally; blocked }, Timeout T_precommit_ack
    ->
      let resend =
        List.concat_map
          (fun (rm, v) ->
            let cs, ab = List.assoc rm tally in
            List.filter_map
              (fun a ->
                if a = c.c_self || Sset.mem a cs || Sset.mem a ab then None
                else Some (Send (a, Px_p2a (ballot, rm, v))))
              c.c_cfg.acceptors)
          proposal
      in
      ( { c with
          c_phase = C_proposing { ballot; proposal; tally; blocked = true } },
        resend
        @ [ Set_timer (T_precommit_ack, c.c_timeouts.decision_wait) ]
        @ (if blocked then [] else [ Blocked ]) )
  (* Rival leaders: serve the embedded acceptor and step aside when their
     ballot beats ours.  (Ballot-0 phase-2a is matched above.) *)
  | (C_collecting _ | C_electing _ | C_proposing _ | C_deposed),
    Recv (src, Px_p1a b) ->
      coord_acc_p1a c src b
  | (C_collecting _ | C_electing _ | C_proposing _ | C_deposed),
    Recv (src, Px_p2a (b, rm, v)) ->
      coord_acc_p2a c src (b, rm, v)
  | (C_electing _ | C_proposing _), Recv (_, Px_nack b)
    when epoch_compare b (coord_our_ballot c) > 0 ->
      coord_yield c
  (* Decision plumbing (2PC-shaped). *)
  | C_logging_decision { d; notify; ackers }, Log_done (L_decision d')
    when decision_equal d d' ->
      let sends = send_to notify (Decision_msg d) in
      if Sset.is_empty ackers then
        ( { c with c_phase = C_done d },
          sends @ [ Log (L_end, `Lazy); Deliver d ] )
      else
        ( { c with c_phase = C_decided { d; await_acks = ackers } },
          sends
          @ [ Set_timer (T_resend, c.c_timeouts.resend_every); Deliver d ] )
  | C_decided { d; await_acks }, Recv (src, Decision_ack) ->
      let await_acks = Sset.remove src await_acks in
      if Sset.is_empty await_acks then
        ( { c with c_phase = C_done d },
          [ Clear_timer T_resend; Log (L_end, `Lazy) ] )
      else ({ c with c_phase = C_decided { d; await_acks } }, [])
  | C_decided { d; await_acks }, Timeout T_resend ->
      ( c,
        send_to await_acks (Decision_msg d)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | C_deposed, Timeout T_resend ->
      ( c,
        send_to (c_parts c) Decision_req
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | C_deposed, Recv (_, Decision_msg d) ->
      ( { c with c_phase = C_done d },
        [ Clear_timer T_resend; Deliver d; Log (L_decision d, `Lazy) ] )
  (* A recovery leader out-decided us while we were still on ballot 0 or
     mid-election: adopt the outcome (our pre-decision traffic is ballot-
     fenced, so without adoption we would resend forever). *)
  | ( (C_init | C_collecting _ | C_electing _ | C_proposing _),
      Recv (_, Decision_msg d) ) ->
      ( { c with c_phase = C_done d },
        [ Clear_timer T_votes; Clear_timer T_state; Clear_timer T_precommit_ack;
          Clear_timer T_resend; Deliver d; Log (L_decision d, `Lazy) ] )
  | (C_decided { d; _ } | C_done d), Recv (src, Decision_req) ->
      (c, [ Send (src, Decision_msg d) ])
  | (C_decided _ | C_done _), Recv (_, Px_p2a (b, _, _))
    when epoch_compare b (ballot0 c.c_cfg) = 0 ->
      (* A straggling ballot-0 vote after the decision: ignore it, like
         2PC ignores a late Vote_yes (the voter learns the outcome from
         the normal distribution). *)
      (c, [])
  | (C_decided { d; _ } | C_done d), Recv (src, (Px_p1a _ | Px_p2a _))
    when not (degenerate c.c_cfg) ->
      (* Help a stale recovery leader terminate.  (With F = 0 there are
         no rival leaders; stay 2PC-aligned and ignore late votes.) *)
      (c, [ Send (src, Decision_msg d) ])
  | _, Recv (src, Decision_req) ->
      if degenerate c.c_cfg then (c, [ Send (src, Decision_unknown) ])
      else
        (* Undecided but alive: our own timeouts will terminate us, and
           "unknown" is the participants' cue to usurp — reserve it for
           genuinely amnesiac sites. *)
        (c, [])
  | _, (Recv _ | Timeout _ | Log_done _ | Peer_down _ | Peers_reachable _
       | Start) ->
      (c, [])

(* Rebuild from the write-ahead log.  A logged decision is redistributed
   until acknowledged.  Nothing logged means no decision was ever
   distributed; with F = 0 the lost acceptor state was ours alone, so the
   2PC-PrN presumption (abort) is sound.  With F > 0 the caller must NOT
   rebuild a coordinator from an empty log: a recovery leader may have
   decided meanwhile, so the site must answer [Decision_unknown] and let
   the participants' election terminate the transaction. *)
let coordinator_recovered ~config ~self ~timeouts ~logged =
  let c = coordinator ~config ~self ~timeouts in
  match logged with
  | `Decision (d : decision) ->
      { c with c_phase = C_decided { d; await_acks = c_parts c } }
  | `Nothing ->
      if not (degenerate config) then
        invalid_arg "Paxos_commit.coordinator_recovered: empty log with F > 0";
      { c with c_phase = C_done Abort }

(* Kick a recovered coordinator: re-distribute the pending decision. *)
let coord_step c input =
  match (c.c_phase, input) with
  | C_decided { d; await_acks }, Start ->
      ( c,
        send_to await_acks (Decision_msg d)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | _ -> coord_step c input

(* ------------------------------------------------------------------ *)
(* Participant (resource manager, optionally an acceptor)              *)
(* ------------------------------------------------------------------ *)

type base =
  | B_idle
  | B_logging_prepared
  | B_uncertain
  | B_logging_outcome of { d : decision; ack : bool }
  | B_finished of decision

type leader_phase =
  | L_electing of {
      heard : Sset.t;
      found : (Ids.site_id * (epoch * decision)) list;
    }
  | L_proposing of { proposal : (Ids.site_id * decision) list; tally : tally }

type role = R_normal | R_follower | R_leader of leader_phase

type part = {
  x_cfg : config;
  x_self : Ids.site_id;
  x_vote : bool;
  x_timeouts : timeouts;
  x_up : Sset.t;  (* participants currently reachable, self included *)
  x_ballot : epoch;  (* highest ballot seen; ours while leading *)
  x_base : base;
  x_role : role;
  x_blocked : bool;
  x_acc : acceptor option;  (* Some iff an acceptor (volatile: lost on crash) *)
}

let participant ~config ~self ~vote ~timeouts =
  {
    x_cfg = config;
    x_self = self;
    x_vote = vote;
    x_timeouts = timeouts;
    x_up = Sset.of_list config.all;
    x_ballot = ballot0 config;
    x_base = B_idle;
    x_role = R_normal;
    x_blocked = false;
    x_acc =
      (if List.mem self config.acceptors && self <> config.coordinator then
         Some (acc_init config)
       else None);
  }

let part_decision p =
  match p.x_base with
  | B_logging_outcome { d; _ } | B_finished d -> Some d
  | _ -> None

let part_state p =
  match p.x_base with
  | B_idle | B_logging_prepared | B_uncertain -> P_uncertain
  | B_logging_outcome { d = Commit; _ } | B_finished Commit -> P_committed
  | B_logging_outcome { d = Abort; _ } | B_finished Abort -> P_aborted

let part_blocked p = p.x_blocked

let part_reachable_update p ~up =
  let up = Sset.add p.x_self (Sset.of_list up) in
  { p with x_up = Sset.inter up (Sset.of_list p.x_cfg.all) }

(* Eligible election leaders: reachable participants other than the
   coordinator's own site (its leadership runs in the coordinator
   machine; keeping the two separated keeps ballot identities unique). *)
let candidates p = Sset.remove p.x_cfg.coordinator p.x_up

let log_outcome p d ~ack =
  match p.x_base with
  | B_logging_outcome _ | B_finished _ -> (p, [])
  | B_idle | B_logging_prepared | B_uncertain ->
      ( { p with x_base = B_logging_outcome { d; ack }; x_blocked = false },
        [ Clear_timer T_decision; Clear_timer T_resend; Clear_timer T_state;
          Clear_timer T_precommit_ack; Log (L_decision d, `Forced) ] )

(* Cooperative termination for F = 0: ask the coordinator and every peer
   (2PC's discipline, verbatim). *)
let ask_around p =
  Send (p.x_cfg.coordinator, Decision_req)
  :: List.filter_map
       (fun peer ->
         if peer = p.x_self || peer = p.x_cfg.coordinator then None
         else Some (Send (peer, Decision_req)))
       p.x_cfg.all

let leader_blocked p =
  ( { p with x_role = R_follower; x_blocked = true },
    [ Set_timer (T_resend, p.x_timeouts.resend_every) ]
    @ (if p.x_blocked then [] else [ Blocked ]) )

let leader_decided p d = log_outcome p d ~ack:false

let leader_check p ~tally ~mk =
  if tally_abort_chosen p.x_cfg tally then leader_decided p Abort
  else if tally_all_commit p.x_cfg tally then leader_decided p Commit
  else (mk tally, [])

let part_propose p ~found =
  let ballot = p.x_ballot in
  let proposal = proposal_of_found p.x_cfg found in
  let others = List.filter (fun a -> a <> p.x_self) p.x_cfg.acceptors in
  let sends =
    List.concat_map
      (fun (rm, v) ->
        List.map (fun a -> Send (a, Px_p2a (ballot, rm, v))) others)
      proposal
  in
  let acc, tally =
    match p.x_acc with
    | None -> (None, tally_init p.x_cfg)
    | Some a ->
        let a, tally =
          List.fold_left
            (fun (a, tally) (rm, v) ->
              match acc_p2a a ~ballot ~rm ~v with
              | a, `P2b v' -> (a, tally_add tally ~rm ~acc:p.x_self ~v:v')
              | a, `Nack _ -> (a, tally))
            (a, tally_init p.x_cfg)
            proposal
        in
        (Some a, tally)
  in
  let p = { p with x_acc = acc } in
  let p, actions =
    leader_check p ~tally ~mk:(fun tally ->
        { p with x_role = R_leader (L_proposing { proposal; tally }) })
  in
  match p.x_role with
  | R_leader (L_proposing _) ->
      ( p,
        sends
        @ [ Set_timer (T_precommit_ack, p.x_timeouts.decision_wait) ]
        @ actions )
  | _ -> (p, sends @ actions)

let become_leader p =
  let ballot = (fst p.x_ballot + 1, p.x_self) in
  let p = { p with x_ballot = ballot } in
  let p, heard, found =
    match p.x_acc with
    | None -> (p, Sset.empty, [])
    | Some a ->
        let a, rep = acc_p1a a ~ballot in
        let found =
          match rep with `P1b t -> merge_found [] t | `Nack _ -> []
        in
        ({ p with x_acc = Some a }, Sset.singleton p.x_self, found)
  in
  if Sset.cardinal heard >= quorum p.x_cfg then part_propose p ~found
  else
    let others = List.filter (fun a -> a <> p.x_self) p.x_cfg.acceptors in
    ( { p with x_role = R_leader (L_electing { heard; found }) },
      List.map (fun a -> Send (a, Px_p1a ballot)) others
      @ [ Set_timer (T_state, p.x_timeouts.decision_wait) ] )

let start_termination p =
  match Sset.min_elt_opt (candidates p) with
  | Some l when l = p.x_self -> become_leader p
  | Some _ | None ->
      ( { p with x_role = R_follower },
        send_to
          (Sset.add p.x_cfg.coordinator (Sset.remove p.x_self p.x_up))
          Decision_req
        @ [ Set_timer (T_resend, p.x_timeouts.resend_every) ] )

(* Serve the embedded acceptor; a rival ballot at or above ours dethrones
   any local leadership (mirroring quorum commit's epoch rule). *)
let part_acc_demote p src b =
  let p =
    if epoch_compare b p.x_ballot > 0 then { p with x_ballot = b } else p
  in
  match p.x_role with
  | R_leader _ when src <> p.x_self && epoch_compare b p.x_ballot >= 0 ->
      ( { p with x_role = R_follower },
        [ Clear_timer T_state; Clear_timer T_precommit_ack;
          Set_timer (T_resend, p.x_timeouts.resend_every) ] )
  | _ -> (p, [])

let part_acc_p1a p src b =
  match p.x_acc with
  | None -> (p, [])
  | Some a -> (
      let a, rep = acc_p1a a ~ballot:b in
      let p = { p with x_acc = Some a } in
      match rep with
      | `P1b triples ->
          let p, demote = part_acc_demote p src b in
          (p, Send (src, Px_p1b (b, triples)) :: demote)
      | `Nack promised -> (p, [ Send (src, Px_nack promised) ]))

let part_acc_p2a p src (b, rm, v) =
  match p.x_acc with
  | None -> (p, [])
  | Some a -> (
      let a, rep = acc_p2a a ~ballot:b ~rm ~v in
      let p = { p with x_acc = Some a } in
      match rep with
      | `P2b v' ->
          let p, demote = part_acc_demote p src b in
          (p, Send (snd b, Px_p2b (b, rm, v')) :: demote)
      | `Nack promised -> (p, [ Send (src, Px_nack promised) ]))

(* Broadcast our own vote as ballot-0 phase 2a.  If we are ourselves an
   acceptor, accept it locally and acknowledge straight to ballot 0's
   leader (the coordinator); otherwise the coordinator-site acceptor is
   included in the fan-out (with F = 0 it is the only acceptor, so this
   is exactly 2PC's single vote message). *)
let cast_vote p (v : decision) =
  let b0 = ballot0 p.x_cfg in
  let targets =
    match p.x_acc with
    | Some _ -> List.filter (fun a -> a <> p.x_self) p.x_cfg.acceptors
    | None -> p.x_cfg.acceptors
  in
  let sends = List.map (fun a -> Send (a, Px_p2a (b0, p.x_self, v))) targets in
  match p.x_acc with
  | None -> (p, sends)
  | Some a -> (
      match acc_p2a a ~ballot:b0 ~rm:p.x_self ~v with
      | a, `P2b v' ->
          ( { p with x_acc = Some a },
            sends @ [ Send (p.x_cfg.coordinator, Px_p2b (b0, p.x_self, v')) ] )
      | a, `Nack _ -> ({ p with x_acc = Some a }, sends))

let part_step p input =
  match (p.x_base, p.x_role, input) with
  | base, role, Peer_down s -> (
      let p = { p with x_up = Sset.remove s p.x_up } in
      match (base, role) with
      | B_uncertain, R_normal
        when (not (degenerate p.x_cfg)) && s = p.x_cfg.coordinator ->
          start_termination p
      | _ -> (p, []))
  | _, _, Peers_reachable up -> (part_reachable_update p ~up, [])
  (* Voting. *)
  | B_idle, R_normal, Recv (_, Vote_req) ->
      if p.x_vote then
        ({ p with x_base = B_logging_prepared }, [ Log (L_prepared, `Forced) ])
      else
        (* Refuse: our instance gets Abort and we abort unilaterally —
           no recovery leader can ever choose Commit for it. *)
        let p, sends = cast_vote p Abort in
        ( { p with x_base = B_finished Abort },
          sends @ [ Log (L_decision Abort, `Lazy); Deliver Abort ] )
  | B_logging_prepared, R_normal, Log_done L_prepared ->
      let p, sends = cast_vote p Commit in
      ( { p with x_base = B_uncertain },
        sends @ [ Set_timer (T_decision, p.x_timeouts.decision_wait) ] )
  (* The outcome. *)
  | (B_idle | B_logging_prepared | B_uncertain), _, Recv (_, Decision_msg d)
    ->
      log_outcome p d ~ack:true
  | B_logging_outcome { d; ack }, _, Log_done (L_decision d')
    when decision_equal d d' ->
      (* Acks always go to the origin coordinator — it is the only
         distributor that awaits them (a recovered one resends until the
         full roster answers); leaders broadcast without collecting. *)
      let ack =
        if ack then [ Send (p.x_cfg.coordinator, Decision_ack) ] else []
      in
      let broadcast =
        match p.x_role with
        | R_leader _ ->
            send_to
              (Sset.add p.x_cfg.coordinator (Sset.remove p.x_self p.x_up))
              (Decision_msg d)
        | R_normal | R_follower -> []
      in
      ( { p with x_base = B_finished d; x_role = R_normal },
        ack @ broadcast @ [ Deliver d ] )
  | B_finished d, _, Recv (_, Decision_msg d') when decision_equal d d' ->
      (* The coordinator missed our ack and is resending: re-ack. *)
      (p, [ Send (p.x_cfg.coordinator, Decision_ack) ])
  (* Uncertainty timeouts. *)
  | B_uncertain, (R_normal | R_follower), Timeout T_decision ->
      if degenerate p.x_cfg then
        ( { p with x_blocked = true },
          ask_around p
          @ [ Set_timer (T_resend, p.x_timeouts.resend_every); Blocked ] )
      else start_termination p
  | B_uncertain, (R_normal | R_follower), Timeout T_resend ->
      if degenerate p.x_cfg then
        (p, ask_around p @ [ Set_timer (T_resend, p.x_timeouts.resend_every) ])
      else start_termination p
  (* Leader: phase 1 and phase 2 bookkeeping. *)
  | _, R_leader (L_electing { heard; found }), Recv (src, Px_p1b (b, triples))
    when epoch_compare b p.x_ballot = 0
         && List.mem src p.x_cfg.acceptors
         && not (Sset.mem src heard) ->
      let heard = Sset.add src heard in
      let found = merge_found found triples in
      if Sset.cardinal heard >= quorum p.x_cfg then part_propose p ~found
      else ({ p with x_role = R_leader (L_electing { heard; found }) }, [])
  | ( _,
      R_leader (L_proposing { proposal; tally }),
      Recv (src, Px_p2b (b, rm, v)) )
    when epoch_compare b p.x_ballot = 0 && List.mem src p.x_cfg.acceptors ->
      let tally = tally_add tally ~rm ~acc:src ~v in
      leader_check p ~tally ~mk:(fun tally ->
          { p with x_role = R_leader (L_proposing { proposal; tally }) })
  | _, R_leader _, Timeout (T_state | T_precommit_ack) -> leader_blocked p
  | _, R_leader _, Recv (_, Px_nack b) when epoch_compare b p.x_ballot > 0 ->
      ( { p with x_ballot = b; x_role = R_follower },
        [ Clear_timer T_state; Clear_timer T_precommit_ack;
          Set_timer (T_resend, p.x_timeouts.resend_every) ] )
  (* Acceptor duties are independent of the RM's own progress: serving a
     ballot is always safe, and keeps replies deterministic no matter
     when straggling traffic arrives.  (Acceptor-less participants stay
     silent — leaders only ever address acceptors.) *)
  | _, _, Recv (src, Px_p1a b) -> part_acc_p1a p src b
  | _, _, Recv (src, Px_p2a (b, rm, v)) -> part_acc_p2a p src (b, rm, v)
  (* Termination inquiries. *)
  | B_finished d, _, Recv (src, Decision_req) ->
      (p, [ Send (src, Decision_msg d) ])
  | B_idle, _, Recv (src, Decision_req) ->
      (p, [ Send (src, Decision_unknown) ])
  | (B_logging_prepared | B_uncertain), _, Recv (src, Decision_req) ->
      if degenerate p.x_cfg then (p, [ Send (src, Decision_unknown) ])
      else
        (* Holding live protocol state: stay silent; we can run (or are
           running) the election ourselves, and "unknown" would only
           cause usurpation churn. *)
        (p, [])
  (* An amnesiac presumptive leader cannot terminate the transaction for
     us — usurp it (quorum commit's hardened rule). *)
  | B_uncertain, (R_normal | R_follower), Recv (src, Decision_unknown)
    when (not (degenerate p.x_cfg))
         && Sset.min_elt_opt (candidates p) = Some src ->
      become_leader p
  | _, _, (Recv _ | Timeout _ | Log_done _ | Start) -> (p, [])

let participant_recovered ~config ~self ~state ~timeouts =
  let base =
    match state with
    | P_uncertain | P_precommitted | P_preaborted -> B_uncertain
    | P_committed -> B_finished Commit
    | P_aborted -> B_finished Abort
  in
  let p = participant ~config ~self ~vote:true ~timeouts in
  (* Acceptor state was volatile: a recovered acceptor must abstain
     forever (it may have promised or accepted before the crash), which
     is indistinguishable from staying down — 2F+1 acceptors tolerate F
     such losses. *)
  { p with x_base = base; x_acc = None }

(* A recovered participant starts termination on [Start]. *)
let part_step p input =
  match (input, p.x_base, p.x_role) with
  | Start, B_uncertain, R_normal ->
      if degenerate p.x_cfg then
        (p, ask_around p @ [ Set_timer (T_resend, p.x_timeouts.resend_every) ])
      else start_termination p
  | _ -> part_step p input

(* ------------------------------------------------------------------ *)
(* Canonical description (explorer state fingerprinting)               *)
(* ------------------------------------------------------------------ *)

let set_str s = String.concat "," (List.map string_of_int (Sset.elements s))
let dec_str = function Commit -> "C" | Abort -> "A"
let epoch_str (r, s) = Printf.sprintf "%d.%d" r s

let cfg_str c =
  Printf.sprintf "all=%s;co=%d;f=%d;acc=%s"
    (String.concat "," (List.map string_of_int c.all))
    c.coordinator c.f
    (String.concat "," (List.map string_of_int c.acceptors))

let acc_str a =
  Printf.sprintf "pr=%s;acc=%s" (epoch_str a.ax_promised)
    (String.concat ","
       (List.map
          (fun (rm, (b, v)) ->
            Printf.sprintf "%d@%s=%s" rm (epoch_str b) (dec_str v))
          a.ax_accepted))

let tally_str (t : tally) =
  String.concat ","
    (List.map
       (fun (rm, (cs, ab)) ->
         Printf.sprintf "%d:c=%s;a=%s" rm (set_str cs) (set_str ab))
       t)

let found_str found =
  String.concat ","
    (List.map
       (fun (rm, (b, v)) ->
         Printf.sprintf "%d@%s=%s" rm (epoch_str b) (dec_str v))
       found)

let proposal_str prop =
  String.concat ","
    (List.map (fun (rm, v) -> Printf.sprintf "%d=%s" rm (dec_str v)) prop)

let describe_coord c =
  let phase =
    match c.c_phase with
    | C_init -> "init"
    | C_collecting { tally } ->
        Printf.sprintf "collecting{%s}" (tally_str tally)
    | C_electing { ballot; heard; found; blocked } ->
        Printf.sprintf "electing{b=%s;h=%s;f=%s;bl=%b}" (epoch_str ballot)
          (set_str heard) (found_str found) blocked
    | C_proposing { ballot; proposal; tally; blocked } ->
        Printf.sprintf "proposing{b=%s;p=%s;t=%s;bl=%b}" (epoch_str ballot)
          (proposal_str proposal) (tally_str tally) blocked
    | C_deposed -> "deposed"
    | C_logging_decision { d; notify; ackers } ->
        Printf.sprintf "logging-decision{%s;n=%s;a=%s}" (dec_str d)
          (set_str notify) (set_str ackers)
    | C_decided { d; await_acks } ->
        Printf.sprintf "decided{%s;a=%s}" (dec_str d) (set_str await_acks)
    | C_done d -> Printf.sprintf "done{%s}" (dec_str d)
  in
  Printf.sprintf "px-coord:%s:self=%d:acc=%s:ref=%s:%s" (cfg_str c.c_cfg)
    c.c_self (acc_str c.c_acc) (set_str c.c_refused) phase

let describe_part p =
  let base =
    match p.x_base with
    | B_idle -> "idle"
    | B_logging_prepared -> "logging-prepared"
    | B_uncertain -> "uncertain"
    | B_logging_outcome { d; ack } ->
        Printf.sprintf "logging-outcome{%s;ack=%b}" (dec_str d) ack
    | B_finished d -> Printf.sprintf "finished{%s}" (dec_str d)
  in
  let role =
    match p.x_role with
    | R_normal -> "normal"
    | R_follower -> "follower"
    | R_leader (L_electing { heard; found }) ->
        Printf.sprintf "leader-electing{h=%s;f=%s}" (set_str heard)
          (found_str found)
    | R_leader (L_proposing { proposal; tally }) ->
        Printf.sprintf "leader-proposing{p=%s;t=%s}" (proposal_str proposal)
          (tally_str tally)
  in
  Printf.sprintf "px-part:%s:%d:v=%b:up=%s:b=%s:bl=%b:acc=%s:%s:%s"
    (cfg_str p.x_cfg) p.x_self p.x_vote (set_str p.x_up)
    (epoch_str p.x_ballot) p.x_blocked
    (match p.x_acc with None -> "-" | Some a -> acc_str a)
    base role
