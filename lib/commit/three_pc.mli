(** Three-phase commit (Skeen), non-blocking under site crashes.

    Phase 1 collects votes as in 2PC; a unanimous Yes moves the group
    through an explicit {e pre-commit} phase before anyone commits, which
    removes the 2PC uncertainty window: a recovering group can always
    deduce a safe outcome from its members' states.

    Termination protocol: when a participant times out waiting for the
    coordinator, the operational site with the smallest id elects itself
    leader, collects everyone's state, and applies Skeen's rules — any
    committed ⇒ commit; any aborted ⇒ abort; any pre-committed ⇒ drive the
    rest through pre-commit then commit; all uncertain ⇒ abort.  This is
    correct for crash-stop failures with reliable failure detection (the
    classical 3PC assumption); it is {e not} partition-safe — that is
    quorum commit's job ({!Quorum_commit}). *)

open Rt_types
open Protocol

(** {1 Coordinator} *)

type coord

val coordinator :
  participants:Ids.site_id list -> timeouts:timeouts -> coord

val coord_step : coord -> input -> coord * action list

val coord_decision : coord -> decision option

(** {1 Participant} *)

type part

val participant :
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  all:Ids.site_id list ->
  vote:bool ->
  timeouts:timeouts ->
  part
(** [all] is the full participant set, [self] included. *)

val participant_recovered :
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  all:Ids.site_id list ->
  state:participant_state ->
  timeouts:timeouts ->
  part
(** Rebuild a participant after a crash from its logged state
    ([P_uncertain] if prepared, [P_precommitted] if pre-committed); it
    immediately runs the termination protocol.  Feed it [Start]. *)

val part_step : part -> input -> part * action list

val part_decision : part -> decision option

val part_state : part -> participant_state

val part_blocked : part -> bool
(** 3PC participants never stay blocked while any peer is up; exposed for
    symmetric measurement against 2PC in experiment F5. *)

val describe_coord : coord -> string
(** Canonical single-line rendering of the full coordinator state for
    explorer fingerprinting (every set in sorted order). *)

val describe_part : part -> string
(** Canonical rendering of the full participant state, including
    termination role and reachability view. *)
