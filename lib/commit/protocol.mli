(** Shared vocabulary for atomic-commitment state machines.

    Every protocol (2PC and its presumption variants, 3PC, quorum commit)
    is expressed as pure transition functions from [input] to a new state
    plus a list of [action]s.  The environment — a simulated site, or a
    test driver — interprets actions: it ships messages, performs (forced)
    log writes and reports their completion, runs timers, and surfaces the
    final decision to the transaction manager.

    Keeping the machines pure makes them directly checkable: unit tests
    drive exact interleavings, property tests assert agreement/validity
    across randomly generated schedules, and a small exhaustive explorer
    covers every crash point. *)

open Rt_types

type decision = Commit | Abort

val pp_decision : Format.formatter -> decision -> unit

val decision_equal : decision -> decision -> bool

val decision_compare : decision -> decision -> int
(** Total order on outcomes (replay-deterministic sorting of decision
    lists; never compare decisions polymorphically). *)

(** Protocol messages.  The transaction id is carried by the envelope at
    the transport layer, not here. *)
type msg =
  | Vote_req  (** Coordinator solicits votes (2PC/3PC phase 1). *)
  | Vote_yes
  | Vote_no
  | Vote_read_only
      (** 2PC read-only optimization: the participant performed no writes,
          releases immediately, and skips phase 2 entirely. *)
  | Precommit_msg  (** 3PC / quorum commit: enter the pre-commit state. *)
  | Precommit_ack
  | Decision_msg of decision
  | Decision_ack
  | Decision_req  (** Termination: "what was decided?" *)
  | Decision_unknown
      (** Reply when the asked site is itself uncertain. *)
  | State_req  (** 3PC termination: new coordinator collects states. *)
  | State_report of participant_state
  | Pq_state_req of epoch
      (** Quorum-commit termination: epoch-tagged state collection. *)
  | Pq_state_report of epoch * participant_state
  | Pq_precommit of epoch
  | Pq_precommit_ack of epoch
  | Pq_preabort of epoch
  | Pq_preabort_ack of epoch
  | Px_p1a of epoch
      (** Paxos Commit: a new leader's prepare, covering every consensus
          instance of the transaction at once (one ballot space is shared
          by all per-participant instances). *)
  | Px_p1b of epoch * (Ids.site_id * epoch * decision) list
      (** Acceptor's promise: for each instance (keyed by the participant
          whose vote it decides, ascending site order) the highest-ballot
          value it has accepted.  Free instances are omitted. *)
  | Px_p2a of epoch * Ids.site_id * decision
      (** Phase 2a for one instance.  At ballot [(0, origin)] this is the
          participant's own vote (Commit = "prepared", Abort = "refused");
          at higher ballots it is a recovery leader's proposal. *)
  | Px_p2b of epoch * Ids.site_id * decision
      (** Acceptor acknowledges accepting [decision] for the instance. *)
  | Px_nack of epoch
      (** Acceptor refuses a stale ballot and reports the highest ballot
          it has promised, so deposed leaders learn about their demotion
          instead of re-bidding blindly. *)

and participant_state =
  | P_uncertain
  | P_precommitted
  | P_preaborted  (** Quorum commit only. *)
  | P_committed
  | P_aborted
      (** Abstract state a participant reports during termination. *)

and epoch = int * Ids.site_id
(** Election epochs order competing termination coordinators: a round
    counter with the coordinator's site id as tie-break.  Sites only obey
    the highest epoch they have seen, which is what makes quorum-commit
    decisions safe under partitions. *)

val epoch_compare : epoch -> epoch -> int

val pp_participant_state : Format.formatter -> participant_state -> unit

val pp_msg : Format.formatter -> msg -> unit

(** Log records the machines ask the environment to write.  [`Forced]
    means the action's continuation input ([Log_done]) must only be fed
    back once the record is durable. *)
type log_tag =
  | L_collecting  (** Presumed-commit coordinator's begin record. *)
  | L_prepared
  | L_precommit
  | L_preabort  (** Quorum commit only. *)
  | L_decision of decision
  | L_end

val pp_log_tag : Format.formatter -> log_tag -> unit

type timer = T_votes | T_decision | T_precommit_ack | T_state | T_resend

val timer_compare : timer -> timer -> int
(** Total order on timer kinds, for deterministic timer scheduling. *)

val pp_timer : Format.formatter -> timer -> unit

type action =
  | Send of Ids.site_id * msg
  | Log of log_tag * [ `Forced | `Lazy ]
      (** For [`Forced], the environment must deliver [Log_done tag] when
          durable; [`Lazy] writes need no completion input. *)
  | Deliver of decision
      (** Surface the outcome to the local transaction manager (commit or
          roll back the local effects, release locks). Emitted exactly
          once per machine run. *)
  | Set_timer of timer * Rt_sim.Time.t
  | Clear_timer of timer
  | Blocked
      (** The machine cannot make progress until some site recovers —
          emitted when 2PC termination exhausts its options.  Purely
          informational, used to measure blocking. *)
  | Forget
      (** Local involvement is over with no decision to remember: release
          locks and buffers (read-only participants after voting). *)

val pp_action : Format.formatter -> action -> unit

type input =
  | Start  (** Kick off the protocol (coordinator only). *)
  | Recv of Ids.site_id * msg
  | Log_done of log_tag
  | Timeout of timer
  | Peer_down of Ids.site_id
      (** Failure detector hint; machines may use it to short-circuit
          waiting for a dead site. *)
  | Peers_reachable of Ids.site_id list
      (** Full replacement of the reachability view (partitions heal as
          well as form).  Used by the 3PC and quorum-commit termination
          machinery; other machines ignore it. *)

val pp_input : Format.formatter -> input -> unit

val input_point : input -> string
(** Stable, site-free name of the step boundary an input represents, e.g.
    ["recv-decision-commit"], ["logged-prepared"], ["timeout-votes"].  The
    crash-point sweep keys injections on these names (plus an occurrence
    index, since the same point can recur). *)

(** Timeout configuration shared by all machines. *)
type timeouts = {
  vote_collect : Rt_sim.Time.t;  (** Coordinator waits for votes. *)
  decision_wait : Rt_sim.Time.t;  (** Participant waits for the outcome. *)
  resend_every : Rt_sim.Time.t;  (** Termination retry period. *)
}

val default_timeouts : timeouts
