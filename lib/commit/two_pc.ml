open Rt_types
open Protocol
module Sset = Set.Make (Int)

type variant = Presumed_nothing | Presumed_abort | Presumed_commit

let variant_name = function
  | Presumed_nothing -> "2PC-PrN"
  | Presumed_abort -> "2PC-PrA"
  | Presumed_commit -> "2PC-PrC"

let pp_variant fmt v = Format.pp_print_string fmt (variant_name v)

let presumption = function
  | Presumed_nothing | Presumed_abort -> Abort
  | Presumed_commit -> Commit

(* Which decisions the coordinator requires acknowledgements for. *)
let needs_acks variant (d : decision) =
  match (variant, d) with
  | Presumed_nothing, _ -> true
  | Presumed_abort, Commit -> true
  | Presumed_abort, Abort -> false
  | Presumed_commit, Abort -> true
  | Presumed_commit, Commit -> false

(* Is the coordinator's decision record forced?  Aborts under presumed
   abort need no record at all (we write a lazy one for the archive). *)
let coord_decision_force variant (d : decision) =
  match (variant, d) with
  | Presumed_abort, Abort -> `Lazy
  | _ -> `Forced

(* Participant-side decision-record discipline. *)
let part_decision_force variant (d : decision) =
  match (variant, d) with
  | Presumed_nothing, _ -> `Forced
  | Presumed_abort, Commit -> `Forced
  | Presumed_abort, Abort -> `Lazy
  | Presumed_commit, Commit -> `Lazy
  | Presumed_commit, Abort -> `Forced

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type coord_phase =
  | C_init
  | C_logging_collecting
  | C_collecting of { pending : Sset.t; yes : Sset.t }
  | C_logging_decision of { d : decision; yes : Sset.t; pending : Sset.t }
  | C_decided of { d : decision; await_acks : Sset.t }
  | C_done of decision

type coord = {
  c_variant : variant;
  c_participants : Sset.t;
  c_timeouts : timeouts;
  c_phase : coord_phase;
}

let coordinator ~variant ~participants ~timeouts =
  if participants = [] then invalid_arg "Two_pc.coordinator: no participants";
  {
    c_variant = variant;
    c_participants = Sset.of_list participants;
    c_timeouts = timeouts;
    c_phase = C_init;
  }

let coord_decision c =
  match c.c_phase with
  | C_logging_decision { d; _ } | C_decided { d; _ } | C_done d -> Some d
  | C_init | C_logging_collecting | C_collecting _ -> None

let coord_done c = match c.c_phase with C_done _ -> true | _ -> false

let send_to set msg = List.map (fun p -> Send (p, msg)) (Sset.elements set)

let start_voting c =
  let phase = C_collecting { pending = c.c_participants; yes = Sset.empty } in
  ( { c with c_phase = phase },
    send_to c.c_participants Vote_req
    @ [ Set_timer (T_votes, c.c_timeouts.vote_collect) ] )

(* Move to a decision: write the decision record with the variant's
   forcing discipline.  [yes] tracks who voted yes (these must be notified
   and, when the variant requires, acknowledge); [pending] are sites whose
   vote never arrived — they are notified too in case their Yes was in
   flight, but no ack is expected of them. *)
let rec begin_decision c ~yes ~pending d =
  let force = coord_decision_force c.c_variant d in
  let actions = [ Clear_timer T_votes; Log (L_decision d, force) ] in
  match force with
  | `Forced ->
      ({ c with c_phase = C_logging_decision { d; yes; pending } }, actions)
  | `Lazy ->
      (* No durable wait: proceed straight to distribution. *)
      let c = { c with c_phase = C_logging_decision { d; yes; pending } } in
      let c, more = distribute c ~d ~yes ~pending in
      (c, actions @ more)

and distribute c ~d ~yes ~pending =
  (* Decisions concern yes-voters only: read-only participants have
     already released and forgotten. *)
  let recipients =
    match d with Commit -> yes | Abort -> Sset.union yes pending
  in
  let sends = send_to recipients (Decision_msg d) in
  let ackers = (match d with Commit -> yes | Abort -> yes) in
  if needs_acks c.c_variant d && not (Sset.is_empty ackers) then
    ( { c with c_phase = C_decided { d; await_acks = ackers } },
      sends @ [ Set_timer (T_resend, c.c_timeouts.resend_every); Deliver d ] )
  else
    ( { c with c_phase = C_done d },
      sends @ [ Log (L_end, `Lazy); Deliver d ] )

let coord_step c input =
  match (c.c_phase, input) with
  | C_init, Start -> (
      match c.c_variant with
      | Presumed_commit ->
          ( { c with c_phase = C_logging_collecting },
            [ Log (L_collecting, `Forced) ] )
      | Presumed_nothing | Presumed_abort -> start_voting c)
  | C_logging_collecting, Log_done L_collecting -> start_voting c
  | C_collecting { pending; yes }, Recv (src, Vote_yes) ->
      let pending = Sset.remove src pending in
      let yes = Sset.add src yes in
      if Sset.is_empty pending then begin_decision c ~yes ~pending Commit
      else ({ c with c_phase = C_collecting { pending; yes } }, [])
  | C_collecting { pending; yes }, Recv (src, Vote_read_only) ->
      let pending = Sset.remove src pending in
      if Sset.is_empty pending then
        if Sset.is_empty yes then
          (* Everyone was read-only: nothing to decide or log. *)
          ({ c with c_phase = C_done Commit },
           [ Clear_timer T_votes; Deliver Commit ])
        else begin_decision c ~yes ~pending Commit
      else ({ c with c_phase = C_collecting { pending; yes } }, [])
  | C_collecting { pending; yes }, Recv (src, Vote_no) ->
      begin_decision c ~yes:(Sset.remove src yes)
        ~pending:(Sset.remove src pending) Abort
  | C_collecting { pending; yes }, Timeout T_votes ->
      begin_decision c ~yes ~pending Abort
  | C_collecting { pending; yes }, Peer_down p when Sset.mem p pending ->
      begin_decision c ~yes ~pending:(Sset.remove p pending) Abort
  | C_logging_decision { d; yes; pending }, Log_done (L_decision d')
    when decision_equal d d' ->
      distribute c ~d ~yes ~pending
  | C_decided { d; await_acks }, Recv (src, Decision_ack) ->
      let await_acks = Sset.remove src await_acks in
      if Sset.is_empty await_acks then
        ( { c with c_phase = C_done d },
          [ Clear_timer T_resend; Log (L_end, `Lazy) ] )
      else ({ c with c_phase = C_decided { d; await_acks } }, [])
  | C_decided { d; await_acks }, Timeout T_resend ->
      ( c,
        send_to await_acks (Decision_msg d)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | (C_decided { d; _ } | C_done d), Recv (src, Decision_req) ->
      (c, [ Send (src, Decision_msg d) ])
  | C_logging_decision { d; _ }, Recv (src, Decision_req) ->
      (* Decision made but not yet stable; answering early is safe for
         commit only once durable, so tell the asker we are undecided. *)
      ignore d;
      (c, [ Send (src, Decision_unknown) ])
  | (C_init | C_logging_collecting | C_collecting _), Recv (src, Decision_req)
    ->
      (c, [ Send (src, Decision_unknown) ])
  (* Stale/duplicate traffic is ignored. *)
  | _, (Recv _ | Timeout _ | Log_done _ | Peer_down _ | Peers_reachable _ | Start) -> (c, [])

let coordinator_recovered ~variant ~participants ~timeouts ~logged =
  let c = coordinator ~variant ~participants ~timeouts in
  match logged with
  | `Decision (d : decision) ->
      if needs_acks variant d then
        (* Must re-distribute until everyone acknowledges. *)
        { c with c_phase = C_decided { d; await_acks = c.c_participants } }
      else { c with c_phase = C_done d }
  | `Collecting ->
      (* Presumed commit: votes were being collected but no decision was
         logged — the transaction must abort, with acknowledgements. *)
      { c with
        c_phase = C_logging_decision
            { d = Abort; yes = c.c_participants; pending = Sset.empty } }
  | `Nothing ->
      (* The presumption answers any future inquiry. *)
      { c with c_phase = C_done (presumption variant) }

(* Kick a recovered coordinator: re-send pending decisions or restart the
   abort logging. *)
let coord_step c input =
  match (c.c_phase, input) with
  | C_decided { d; await_acks }, Start ->
      ( c,
        send_to await_acks (Decision_msg d)
        @ [ Set_timer (T_resend, c.c_timeouts.resend_every) ] )
  | C_logging_decision { d; _ }, Start -> (c, [ Log (L_decision d, `Forced) ])
  | _ -> coord_step c input

(* ------------------------------------------------------------------ *)
(* Participant                                                         *)
(* ------------------------------------------------------------------ *)

type part_phase =
  | P_idle
  | P_logging_prepared
  | P_wait_decision of { blocked : bool }
  | P_logging_outcome of decision
  | P_finished of decision
  | P_forgotten
      (** Voted read-only and released; knows nothing about the outcome. *)

type part = {
  p_variant : variant;
  p_self : Ids.site_id;
  p_coordinator : Ids.site_id;
  p_peers : Ids.site_id list;
  p_vote : bool;
  p_read_only : bool;
  p_timeouts : timeouts;
  p_phase : part_phase;
}

let participant ?(read_only = false) ~variant ~self ~coordinator ~peers ~vote
    ~timeouts () =
  {
    p_variant = variant;
    p_self = self;
    p_coordinator = coordinator;
    p_peers = List.filter (fun p -> p <> self) peers;
    p_vote = vote;
    p_read_only = read_only;
    p_timeouts = timeouts;
    p_phase = P_idle;
  }

let part_decision p =
  match p.p_phase with
  | P_logging_outcome d | P_finished d -> Some d
  | P_idle | P_logging_prepared | P_wait_decision _ | P_forgotten -> None

let part_state p =
  match p.p_phase with
  | P_idle | P_logging_prepared -> P_uncertain
  | P_wait_decision _ | P_forgotten -> P_uncertain
  | P_logging_outcome d | P_finished d -> (
      match d with Commit -> P_committed | Abort -> P_aborted)

let part_blocked p =
  match p.p_phase with P_wait_decision { blocked } -> blocked | _ -> false

let finish p d ~ack =
  let acks = if ack then [ Send (p.p_coordinator, Decision_ack) ] else [] in
  ({ p with p_phase = P_finished d }, acks @ [ Deliver d ])

let receive_decision p d =
  let ack = needs_acks p.p_variant d in
  match part_decision_force p.p_variant d with
  | `Forced ->
      ( { p with p_phase = P_logging_outcome d },
        [ Clear_timer T_decision; Clear_timer T_resend;
          Log (L_decision d, `Forced) ] )
  | `Lazy ->
      let p, actions = finish p d ~ack in
      ( p,
        [ Clear_timer T_decision; Clear_timer T_resend;
          Log (L_decision d, `Lazy) ]
        @ actions )

let ask_around p =
  (* Cooperative termination: ask the coordinator and every peer (the
     coordinator may itself appear in the peer list; ask it once). *)
  Send (p.p_coordinator, Decision_req)
  :: List.filter_map
       (fun peer ->
         if peer = p.p_coordinator then None
         else Some (Send (peer, Decision_req)))
       p.p_peers

let part_step p input =
  match (p.p_phase, input) with
  | P_idle, Recv (_, Vote_req) ->
      if p.p_vote && p.p_read_only then
        (* Read-only optimization: vote, release, drop out of phase 2. *)
        ( { p with p_phase = P_forgotten },
          [ Send (p.p_coordinator, Vote_read_only); Forget ] )
      else if p.p_vote then
        ({ p with p_phase = P_logging_prepared }, [ Log (L_prepared, `Forced) ])
      else
        (* A No vote lets the participant abort unilaterally; the
           coordinator presumes nothing further from us. *)
        let p, actions = finish p Abort ~ack:false in
        (p, (Send (p.p_coordinator, Vote_no) :: Log (L_decision Abort, `Lazy)
             :: actions))
  | P_idle, Recv (_, Decision_msg d) ->
      (* A decision can reach us before any vote request does — a
         recovered coordinator redistributes its logged decision to every
         participant, including ones whose vote request died with it.
         The coordinator is authoritative: adopt the outcome (and ack per
         the variant) instead of dropping it, or its resends never
         stop. *)
      receive_decision p d
  | P_logging_prepared, Log_done L_prepared ->
      ( { p with p_phase = P_wait_decision { blocked = false } },
        [ Send (p.p_coordinator, Vote_yes);
          Set_timer (T_decision, p.p_timeouts.decision_wait) ] )
  | (P_wait_decision _ | P_logging_prepared), Recv (_, Decision_msg d) ->
      receive_decision p d
  | P_wait_decision _, Timeout T_decision ->
      ( { p with p_phase = P_wait_decision { blocked = true } },
        ask_around p
        @ [ Set_timer (T_resend, p.p_timeouts.resend_every); Blocked ] )
  | P_wait_decision { blocked }, Timeout T_resend ->
      ( { p with p_phase = P_wait_decision { blocked } },
        ask_around p @ [ Set_timer (T_resend, p.p_timeouts.resend_every) ] )
  | P_wait_decision _, Recv (_, Decision_unknown) -> (p, [])
  | P_wait_decision _, Recv (src, Decision_req) ->
      (* A peer is also uncertain; we cannot help. *)
      (p, [ Send (src, Decision_unknown) ])
  | P_logging_outcome d, Log_done (L_decision d') when decision_equal d d' ->
      finish p d ~ack:(needs_acks p.p_variant d)
  | P_finished d, Recv (src, Decision_req) -> (p, [ Send (src, Decision_msg d) ])
  | P_forgotten, Recv (src, Decision_req) ->
      (p, [ Send (src, Decision_unknown) ])
  | (P_idle | P_logging_prepared), Recv (src, Decision_req) ->
      (* Asked before we have anything to say. *)
      (p, [ Send (src, Decision_unknown) ])
  | P_finished d, Recv (_, Decision_msg d') when decision_equal d d' ->
      (* Duplicate decision: the coordinator missed our ack; re-ack. *)
      if needs_acks p.p_variant d then
        (p, [ Send (p.p_coordinator, Decision_ack) ])
      else (p, [])
  | P_forgotten, Recv (_, Decision_msg d) ->
      (* Voted read-only and released: nothing to apply, but an
         ack-collecting coordinator cannot know that — acknowledge so it
         stops resending. *)
      if needs_acks p.p_variant d then
        (p, [ Send (p.p_coordinator, Decision_ack) ])
      else (p, [])
  | _, (Recv _ | Timeout _ | Log_done _ | Peer_down _ | Peers_reachable _ | Start) -> (p, [])

let participant_recovered ~variant ~self ~coordinator ~peers ~timeouts =
  let p =
    participant ~variant ~self ~coordinator ~peers ~vote:true ~timeouts ()
  in
  { p with p_phase = P_wait_decision { blocked = false } }

(* A recovered participant immediately asks around on [Start]. *)
let part_step p input =
  match (p.p_phase, input) with
  | P_wait_decision { blocked }, Start ->
      ( { p with p_phase = P_wait_decision { blocked } },
        ask_around p @ [ Set_timer (T_resend, p.p_timeouts.resend_every) ] )
  | _ -> part_step p input

(* ------------------------------------------------------------------ *)
(* Canonical description (explorer state fingerprinting)               *)
(* ------------------------------------------------------------------ *)

let set_str s = String.concat "," (List.map string_of_int (Sset.elements s))
let dec_str = function Commit -> "C" | Abort -> "A"

let describe_coord c =
  let phase =
    match c.c_phase with
    | C_init -> "init"
    | C_logging_collecting -> "logging-collecting"
    | C_collecting { pending; yes } ->
        Printf.sprintf "collecting{p=%s;y=%s}" (set_str pending) (set_str yes)
    | C_logging_decision { d; yes; pending } ->
        Printf.sprintf "logging-decision{%s;y=%s;p=%s}" (dec_str d)
          (set_str yes) (set_str pending)
    | C_decided { d; await_acks } ->
        Printf.sprintf "decided{%s;a=%s}" (dec_str d) (set_str await_acks)
    | C_done d -> Printf.sprintf "done{%s}" (dec_str d)
  in
  Printf.sprintf "2pc-coord:%s:parts=%s:%s" (variant_name c.c_variant)
    (set_str c.c_participants) phase

let describe_part p =
  let phase =
    match p.p_phase with
    | P_idle -> "idle"
    | P_logging_prepared -> "logging-prepared"
    | P_wait_decision { blocked } ->
        Printf.sprintf "wait-decision{b=%b}" blocked
    | P_logging_outcome d -> Printf.sprintf "logging-outcome{%s}" (dec_str d)
    | P_finished d -> Printf.sprintf "finished{%s}" (dec_str d)
    | P_forgotten -> "forgotten"
  in
  Printf.sprintf "2pc-part:%s:%d<-%d:peers=%s:v=%b:ro=%b:%s"
    (variant_name p.p_variant) p.p_self p.p_coordinator
    (String.concat ","
       (List.map string_of_int (List.sort Int.compare p.p_peers)))
    p.p_vote p.p_read_only phase
