(** Two-phase commit: coordinator and participant state machines.

    Three presumption variants are supported, differing in which log
    records are forced and which decisions are acknowledged — the classic
    trade-off measured in experiment T1:

    - {b Presumed nothing} (PrN): both decisions force-logged by the
      coordinator and every participant; both decisions acknowledged, and
      the coordinator writes [End] only after all acks.
    - {b Presumed abort} (PrA): no coordinator abort record and no abort
      acks — a site finding no information presumes abort.  Commits are
      forced and acknowledged as in PrN.
    - {b Presumed commit} (PrC): the coordinator force-writes a
      [Collecting] record before soliciting votes; commit needs no acks
      (missing information presumes commit), aborts are forced and
      acknowledged.

    The coordinator site is also a participant: it runs both machines and
    the environment loops messages addressed to itself locally.  2PC
    blocks: a participant in the uncertain window whose coordinator has
    crashed emits [Blocked] and keeps asking (cooperatively) until someone
    who knows the outcome answers. *)

open Rt_types
open Protocol

type variant = Presumed_nothing | Presumed_abort | Presumed_commit

val pp_variant : Format.formatter -> variant -> unit

val variant_name : variant -> string

(** {1 Coordinator} *)

type coord

val coordinator :
  variant:variant ->
  participants:Ids.site_id list ->
  timeouts:timeouts ->
  coord
(** [participants] are every site that must vote, including the
    coordinator's own site if it holds data. *)

val coordinator_recovered :
  variant:variant ->
  participants:Ids.site_id list ->
  timeouts:timeouts ->
  logged:[ `Decision of decision | `Collecting | `Nothing ] ->
  coord
(** Rebuild a coordinator from its log after a crash.  [`Decision d]: the
    decision record was durable — re-distribute if the variant requires
    acks.  [`Collecting]: presumed-commit's begin record with no decision —
    abort.  [`Nothing]: answer inquiries with the variant's presumption.
    Feed the machine [Start] to kick off any re-distribution. *)

val coord_step : coord -> input -> coord * action list

val coord_decision : coord -> decision option

val coord_done : coord -> bool
(** The coordinator has written [End] (or needs nothing more). *)

(** [presumption variant] is the reply a site must give for a transaction
    it has no information about. *)
val presumption : variant -> decision

(** {1 Participant} *)

type part

val participant :
  ?read_only:bool ->
  variant:variant ->
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  peers:Ids.site_id list ->
  vote:bool ->
  timeouts:timeouts ->
  unit ->
  part
(** [peers] are the other participants, consulted by cooperative
    termination when the coordinator does not answer.  [read_only]
    (default false) enables the read-only optimization: a yes vote
    becomes [Vote_read_only], the participant releases immediately
    ([Forget] action) and takes no part in phase 2. *)

val participant_recovered :
  variant:variant ->
  self:Ids.site_id ->
  coordinator:Ids.site_id ->
  peers:Ids.site_id list ->
  timeouts:timeouts ->
  part
(** Rebuild a prepared-but-undecided participant after a crash; it is in
    the uncertain window and asks around when fed [Start]. *)

val part_step : part -> input -> part * action list

val part_decision : part -> decision option

val part_state : part -> participant_state

val part_blocked : part -> bool
(** Currently in the uncertain window with no way to decide. *)

val describe_coord : coord -> string
(** Canonical single-line rendering of the full coordinator state —
    phase constructor plus every vote/ack set in sorted order — used by
    the schedule explorer to fingerprint protocol machines.  Equal
    descriptions imply behaviourally identical machines. *)

val describe_part : part -> string
(** Canonical rendering of the full participant state (see
    {!describe_coord}). *)
