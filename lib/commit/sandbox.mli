(** Schedule-exploring interpreter for the commitment state machines.

    The sandbox runs one transaction's worth of machines (a coordinator
    plus a participant per site) over an abstract event soup: message
    deliveries, forced-log completions, and timer firings.  A seeded RNG
    picks the next event, so one seed is one totally-ordered schedule;
    sweeping seeds explores many interleavings.  Crash points are
    expressed as "site s crashes after the k-th processed event", and
    recovery rebuilds machines from the records that were durable at the
    crash, exactly as a real site would.

    Timers only fire at quiescence (no deliveries or log completions
    pending), which models the usual "timeouts are long relative to
    message delay" assumption and keeps runs finite.

    This is the engine behind the agreement/validity property tests and
    the message/forced-write accounting of experiment T1. *)

open Rt_types
open Protocol

type proto =
  | P_two_pc of Two_pc.variant
  | P_three_pc
  | P_quorum of { commit_quorum : int; abort_quorum : int }
  | P_paxos of { f : int }
      (** Paxos Commit with 2F+1 acceptors drawn from the lowest site ids;
          [f = 0] degenerates to 2PC presumed-nothing. *)

val proto_name : proto -> string

type outcome = {
  decisions : (Ids.site_id * decision) list;
      (** Final decision delivered at each site that decided (sorted). *)
  agreement : bool;  (** No two sites decided differently. *)
  all_decided : bool;  (** Every live site reached a decision. *)
  messages : int;  (** Protocol messages sent. *)
  forced_writes : int;
  lazy_writes : int;
  blocked : bool;  (** Some machine reported itself blocked. *)
  steps : int;  (** Events processed. *)
  timeouts_fired : int;
}

val debug_hook : (string -> unit) option ref
(** When set, every processed event is described through the callback —
    a development aid for reproducing property-test counterexamples. *)

val run :
  ?seed:int ->
  ?crashes:(Ids.site_id * int) list ->
  ?recoveries:(Ids.site_id * int) list ->
  ?max_steps:int ->
  ?read_only:bool array ->
  proto:proto ->
  sites:int ->
  votes:bool array ->
  unit ->
  outcome
(** [run ~proto ~sites ~votes ()] executes one transaction with site 0 as
    coordinator.  [votes.(i)] is site [i]'s phase-1 vote.  [crashes] kills
    a site after the given number of processed events (its machines and
    queued events vanish; peers get failure-detector notice).
    [recoveries] rebuilds a crashed site's machines from its durable log
    records at the given event count.  [max_steps] (default 10_000) bounds
    runaway retry loops; hitting it leaves [all_decided] false.
    [read_only.(i)] marks site [i]'s participant as having performed no
    writes (enables the 2PC read-only optimization; other protocols
    ignore it). *)

val run_fifo :
  proto:proto -> sites:int -> votes:bool array -> unit -> outcome
(** Deterministic failure-free run with strict FIFO event processing; the
    canonical cost-measurement mode for T1. *)
