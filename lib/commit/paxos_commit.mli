(** Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit").

    One Paxos consensus instance per participant decides that
    participant's vote (Commit = "prepared", Abort = "refused"); the
    transaction commits iff every instance chooses Commit.  All instances
    share one ballot space whose ballot-0 leader is the transaction
    coordinator, so the failure-free path costs the same message pattern
    as 2PC plus the extra acceptor fan-out.  A set of 2F+1 acceptors with
    F+1 quorums makes the outcome survive any F simultaneous failures:
    when the coordinator stalls, a participant usurps leadership at a
    higher ballot, collects phase-1 reports from a quorum, proposes each
    instance's highest accepted value (Abort for free instances), and
    decides once each instance has a phase-2 quorum.

    With [f = 0] the coordinator is the sole acceptor and the machines
    degenerate, message for message, into {!Two_pc} with presumed
    nothing — the property the cross-protocol equivalence suite pins. *)

open Rt_types
open Protocol

type config = private {
  all : Ids.site_id list;  (** Participants, ascending. *)
  coordinator : Ids.site_id;
  f : int;  (** Tolerated faults; quorums have [f + 1] acceptors. *)
  acceptors : Ids.site_id list;
      (** The [2f + 1] acceptor sites: the coordinator first, then the
          lowest-numbered other participants ascending. *)
}

val config :
  all:Ids.site_id list -> coordinator:Ids.site_id -> ?f:int -> unit -> config
(** Validates and builds a configuration.  [f] defaults to the maximum
    the site count supports ([(n-1)/2] for [n] participants including
    the coordinator's site).  Raises [Invalid_argument] if [f < 0] or
    there are fewer than [2f+1] candidate acceptor sites. *)

val quorum : config -> int
(** [f + 1]. *)

val degenerate : config -> bool
(** [f = 0]: the 2PC-equivalent configuration. *)

(** {1 Acceptor core}

    Exposed for the property-test suite: ballot safety and quorum
    intersection are checked directly against these transitions. *)

type acceptor

val acc_init : config -> acceptor

val acc_p1a :
  acceptor ->
  ballot:epoch ->
  acceptor
  * [ `P1b of (Ids.site_id * epoch * decision) list | `Nack of epoch ]
(** Phase 1a: promise [ballot] (and report all accepted values) iff it is
    at least the highest ballot promised so far. *)

val acc_p2a :
  acceptor ->
  ballot:epoch ->
  rm:Ids.site_id ->
  v:decision ->
  acceptor * [ `P2b of decision | `Nack of epoch ]
(** Phase 2a for instance [rm].  A value accepted at an equal ballot is
    never overwritten; the duplicate is re-acknowledged with the original
    value. *)

val acc_accepted : acceptor -> (Ids.site_id * epoch * decision) list
(** The accepted (instance, ballot, value) triples, ascending instance. *)

(** {1 Coordinator} *)

type coord

val coordinator : config:config -> self:Ids.site_id -> timeouts:timeouts -> coord
(** Raises [Invalid_argument] if [self] is not [config.coordinator]. *)

val coordinator_recovered :
  config:config ->
  self:Ids.site_id ->
  timeouts:timeouts ->
  logged:[ `Decision of decision | `Nothing ] ->
  coord
(** Rebuild after a crash.  [`Decision d] resumes redistribution of [d]
    to every participant.  [`Nothing] is only meaningful with [f = 0]
    (the 2PC abort presumption: no decision was distributed, the sole
    acceptor's state died with us); with [f > 0] it raises
    [Invalid_argument] — a recovery leader may have decided meanwhile, so
    the site must stay amnesiac and let the election terminate. *)

val coord_step : coord -> input -> coord * action list
val coord_decision : coord -> decision option
val coord_blocked : coord -> bool

(** {1 Participant} *)

type part

val participant :
  config:config -> self:Ids.site_id -> vote:bool -> timeouts:timeouts -> part

val participant_recovered :
  config:config ->
  self:Ids.site_id ->
  state:participant_state ->
  timeouts:timeouts ->
  part
(** Rebuild from the durable log.  The volatile acceptor state is gone,
    so a recovered acceptor abstains from every future ballot (2F+1
    acceptors tolerate F such losses).  Feed [Start] to begin
    termination. *)

val part_step : part -> input -> part * action list
val part_decision : part -> decision option
val part_state : part -> participant_state
val part_blocked : part -> bool

val part_reachable_update : part -> up:Ids.site_id list -> part
(** Replace the reachability view (self is always included). *)

(** {1 Canonical descriptions (explorer fingerprints)} *)

val describe_coord : coord -> string
val describe_part : part -> string
