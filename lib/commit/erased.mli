(** Type-erased commitment machines.

    The cluster engine and the sandbox both need to hold "some protocol
    machine" without caring which protocol it is; this module wraps each
    concrete machine in a record of closures exposing the uniform step
    function and the observable facets (decision, participant state,
    blockedness). *)

open Protocol

type t = {
  step : input -> t * action list;
  decision : decision option;
  pstate : participant_state;
  blocked : bool;
  describe : unit -> string;
      (** Canonical single-line rendering of the {e complete} underlying
          machine state — not just the observable facets — so a schedule
          explorer can fingerprint it.  Closures hide the concrete state;
          this is the one sanctioned window into it.  Equal descriptions
          imply machines that behave identically on every input. *)
}

val of_2pc_coord : Two_pc.coord -> t

val of_2pc_part : Two_pc.part -> t

val of_3pc_coord : Three_pc.coord -> t

val of_3pc_part : Three_pc.part -> t

val of_qc_coord : Quorum_commit.coord -> t

val of_qc_part : Quorum_commit.part -> t

val of_paxos_coord : Paxos_commit.coord -> t

val of_paxos_part : Paxos_commit.part -> t

val finished : decision -> t
(** A site that already knows the outcome: answers [Decision_req], state
    requests, and paxos leader probes, ignores everything else. *)
