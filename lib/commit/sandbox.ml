open Rt_types
open Protocol

type proto =
  | P_two_pc of Two_pc.variant
  | P_three_pc
  | P_quorum of { commit_quorum : int; abort_quorum : int }
  | P_paxos of { f : int }

let proto_name = function
  | P_two_pc v -> Two_pc.variant_name v
  | P_three_pc -> "3PC"
  | P_quorum { commit_quorum; abort_quorum } ->
      Printf.sprintf "QC(%d,%d)" commit_quorum abort_quorum
  | P_paxos { f } -> Printf.sprintf "Paxos(F=%d)" f

type outcome = {
  decisions : (Ids.site_id * decision) list;
  agreement : bool;
  all_decided : bool;
  messages : int;
  forced_writes : int;
  lazy_writes : int;
  blocked : bool;
  steps : int;
  timeouts_fired : int;
}

type machine = Erased.t

let wrap_2pc_coord = Erased.of_2pc_coord
let wrap_2pc_part = Erased.of_2pc_part
let wrap_3pc_coord = Erased.of_3pc_coord
let wrap_3pc_part = Erased.of_3pc_part
let wrap_qc_coord = Erased.of_qc_coord
let wrap_qc_part = Erased.of_qc_part
let wrap_paxos_coord = Erased.of_paxos_coord
let wrap_paxos_part = Erased.of_paxos_part
let finished_machine = Erased.finished

type mrole = Coord | Part

let mrole_rank = function Coord -> 0 | Part -> 1

(* Total order on timer keys so the enabled-timer list is a function of
   the timer set, not of hash-table layout. *)
let timer_key_compare (s1, r1, t1) (s2, r2, t2) =
  let c = Int.compare s1 s2 in
  if c <> 0 then c
  else
    let c = Int.compare (mrole_rank r1) (mrole_rank r2) in
    if c <> 0 then c else timer_compare t1 t2

type event =
  | Deliver of { src : Ids.site_id; dst : Ids.site_id; msg : msg }
  | Log_complete of { site : Ids.site_id; role : mrole; tag : log_tag }
  | Notice_down of { dst : Ids.site_id; down : Ids.site_id }
  | Kick of { site : Ids.site_id; role : mrole }  (* Start for recovery *)

type sim = {
  proto : proto;
  sites : int;
  votes : bool array;
  rng : Rt_sim.Rng.t option;  (* None = FIFO deterministic *)
  (* rt_lint: allow fingerprint-coverage -- self-contained protocol sandbox with its own crash-sweep harness; never part of the cluster the explorer digests *)
  mutable coord : machine option;  (* lives at site 0 *)
  parts : machine option array;
  mutable pending : event list;  (* in arrival order *)
  timers : (Ids.site_id * mrole * timer, unit) Hashtbl.t;
  durable : (Ids.site_id, log_tag list ref) Hashtbl.t;
  mutable crashed : bool array;
  mutable messages : int;
  mutable forced_writes : int;
  mutable lazy_writes : int;
  mutable blocked : bool;
  mutable timeouts_fired : int;
  mutable decisions_delivered : (Ids.site_id * decision) list;
  forgotten : bool array;  (* read-only participants that released *)
}

let coordinator_site = 0

let timeouts = Protocol.default_timeouts

let all_sites sim = List.init sim.sites (fun i -> i)

let paxos_config ~sites ~f =
  Paxos_commit.config
    ~all:(List.init sites (fun i -> i))
    ~coordinator:coordinator_site ~f ()

let make_coord proto ~sites =
  match proto with
  | P_two_pc variant ->
      wrap_2pc_coord
        (Two_pc.coordinator ~variant
           ~participants:(List.init sites (fun i -> i))
           ~timeouts)
  | P_three_pc ->
      wrap_3pc_coord
        (Three_pc.coordinator
           ~participants:(List.init sites (fun i -> i))
           ~timeouts)
  | P_quorum { commit_quorum; abort_quorum } ->
      let config =
        Quorum_commit.config
          ~all:(List.init sites (fun i -> i))
          ~commit_quorum ~abort_quorum ()
      in
      wrap_qc_coord
        (Quorum_commit.coordinator ~config ~self:coordinator_site ~timeouts)
  | P_paxos { f } ->
      wrap_paxos_coord
        (Paxos_commit.coordinator
           ~config:(paxos_config ~sites ~f)
           ~self:coordinator_site ~timeouts)

let make_part proto ~sites ~self ~vote ~read_only =
  let all = List.init sites (fun i -> i) in
  match proto with
  | P_two_pc variant ->
      wrap_2pc_part
        (Two_pc.participant ~read_only ~variant ~self
           ~coordinator:coordinator_site ~peers:all ~vote ~timeouts ())
  | P_three_pc ->
      wrap_3pc_part
        (Three_pc.participant ~self ~coordinator:coordinator_site ~all ~vote
           ~timeouts)
  | P_quorum { commit_quorum; abort_quorum } ->
      let config =
        Quorum_commit.config ~all ~commit_quorum ~abort_quorum ()
      in
      wrap_qc_part
        (Quorum_commit.participant ~config ~self
           ~coordinator:coordinator_site ~vote ~timeouts)
  | P_paxos { f } ->
      (* The participant co-located with the coordinator does not own an
         acceptor ([participant] gives it none): the coordinator machine
         holds site 0's acceptor, and ballots stay unique per machine. *)
      wrap_paxos_part
        (Paxos_commit.participant
           ~config:(paxos_config ~sites ~f)
           ~self ~vote ~timeouts)

let durable_tags sim site =
  match Hashtbl.find_opt sim.durable site with Some r -> !r | None -> []

let mark_durable sim site tag =
  match Hashtbl.find_opt sim.durable site with
  | Some r -> r := tag :: !r
  | None -> Hashtbl.add sim.durable site (ref [ tag ])

(* Route an incoming message to the coordinator or participant machine. *)
let routed_to_coord sim ~dst msg =
  dst = coordinator_site
  &&
  match sim.coord with
  | None -> false
  | Some coord -> (
      match msg with
      | Vote_yes | Vote_no | Vote_read_only | Decision_ack | Precommit_ack
      | Pq_precommit_ack _ | Pq_preabort_ack _ ->
          true
      | Px_p1a _ | Px_p2a _ | Px_p1b _ | Px_p2b _ | Px_nack _ ->
          (* Site 0's acceptor and any (r, 0) ballot leadership live in
             the coordinator machine; participant leaders never use
             ballot site 0.  With the coordinator gone the participant
             machine receives these and ignores them (it owns no
             acceptor at site 0). *)
          true
      | Decision_req ->
          (* A coordinator that knows the outcome (including by
             presumption after recovery) answers inquiries; otherwise the
             local participant does. *)
          coord.Erased.decision <> None
      | _ -> false)

let clear_timers_for sim site role =
  (* rt_lint: allow deterministic-iteration -- collects keys to delete; removal is order-insensitive *)
  Hashtbl.fold
    (fun (s, r, t) () acc -> if s = site && r = role then (s, r, t) :: acc else acc)
    sim.timers []
  |> List.iter (fun key -> Hashtbl.remove sim.timers key)

let rec interpret sim ~site ~role actions =
  List.iter
    (fun action ->
      match action with
      | Send (dst, msg) ->
          if dst <> site then sim.messages <- sim.messages + 1;
          if dst >= 0 && dst < sim.sites && not sim.crashed.(dst) then
            sim.pending <- sim.pending @ [ Deliver { src = site; dst; msg } ]
      | Log (tag, `Forced) ->
          sim.forced_writes <- sim.forced_writes + 1;
          sim.pending <- sim.pending @ [ Log_complete { site; role; tag } ]
      | Log (_, `Lazy) -> sim.lazy_writes <- sim.lazy_writes + 1
      | Deliver d ->
          if role = Part then
            sim.decisions_delivered <- (site, d) :: sim.decisions_delivered
      | Set_timer (t, _) -> Hashtbl.replace sim.timers (site, role, t) ()
      | Clear_timer t -> Hashtbl.remove sim.timers (site, role, t)
      | Blocked -> sim.blocked <- true
      | Forget ->
          if role = Part then sim.forgotten.(site) <- true)
    actions

and feed sim ~site ~role input =
  if not sim.crashed.(site) then
    match role with
    | Coord -> (
        match sim.coord with
        | Some m when site = coordinator_site ->
            let m', actions = m.Erased.step input in
            sim.coord <- Some m';
            interpret sim ~site ~role actions
        | _ -> ())
    | Part -> (
        match sim.parts.(site) with
        | Some m ->
            let m', actions = m.Erased.step input in
            sim.parts.(site) <- Some m';
            interpret sim ~site ~role actions
        | None -> ())

let crash sim site =
  if not sim.crashed.(site) then begin
    sim.crashed.(site) <- true;
    if site = coordinator_site then sim.coord <- None;
    sim.parts.(site) <- None;
    clear_timers_for sim site Coord;
    clear_timers_for sim site Part;
    (* Queued work for the site dies with it. *)
    sim.pending <-
      List.filter
        (function
          | Deliver { dst; _ } -> dst <> site
          | Log_complete { site = s; _ } -> s <> site
          | Notice_down { dst; _ } -> dst <> site
          | Kick { site = s; _ } -> s <> site)
        sim.pending;
    (* Failure detectors at the other sites notice. *)
    for other = 0 to sim.sites - 1 do
      if other <> site && not sim.crashed.(other) then
        sim.pending <- sim.pending @ [ Notice_down { dst = other; down = site } ]
    done
  end

let recover sim site =
  if sim.crashed.(site) then begin
    sim.crashed.(site) <- false;
    let tags = durable_tags sim site in
    let decided =
      List.find_map
        (function L_decision d -> Some d | _ -> None)
        tags
    in
    let all = all_sites sim in
    (match decided with
    | Some d -> sim.parts.(site) <- Some (finished_machine d)
    | None ->
        let has tag = List.mem tag tags in
        if has L_precommit || has L_preabort || has L_prepared then begin
          let state =
            if has L_precommit then P_precommitted
            else if has L_preabort then P_preaborted
            else P_uncertain
          in
          match sim.proto with
          | P_two_pc variant ->
              sim.parts.(site) <-
                Some
                  (wrap_2pc_part
                     (Two_pc.participant_recovered ~variant ~self:site
                        ~coordinator:coordinator_site ~peers:all ~timeouts))
          | P_three_pc ->
              sim.parts.(site) <-
                Some
                  (wrap_3pc_part
                     (Three_pc.participant_recovered ~self:site
                        ~coordinator:coordinator_site ~all ~state ~timeouts))
          | P_quorum { commit_quorum; abort_quorum } ->
              let config =
                Quorum_commit.config ~all ~commit_quorum ~abort_quorum ()
              in
              sim.parts.(site) <-
                Some
                  (wrap_qc_part
                     (Quorum_commit.participant_recovered ~config ~self:site
                        ~coordinator:coordinator_site ~state ~timeouts))
          | P_paxos { f } ->
              sim.parts.(site) <-
                Some
                  (wrap_paxos_part
                     (Paxos_commit.participant_recovered
                        ~config:(paxos_config ~sites:sim.sites ~f)
                        ~self:site ~state ~timeouts))
        end
        else
          (* Never prepared: the site may abort unilaterally. *)
          sim.parts.(site) <- Some (finished_machine Abort));
    sim.pending <- sim.pending @ [ Kick { site; role = Part } ];
    (* A recovered 2PC coordinator resumes from its log. *)
    if site = coordinator_site then
      match sim.proto with
      | P_two_pc variant ->
          let logged =
            match decided with
            | Some d -> `Decision d
            | None ->
                if List.mem L_collecting tags then `Collecting else `Nothing
          in
          sim.coord <-
            Some
              (wrap_2pc_coord
                 (Two_pc.coordinator_recovered ~variant ~participants:all
                    ~timeouts ~logged));
          sim.pending <- sim.pending @ [ Kick { site; role = Coord } ]
      | P_paxos { f } -> (
          let config = paxos_config ~sites:sim.sites ~f in
          match decided with
          | Some d ->
              sim.coord <-
                Some
                  (wrap_paxos_coord
                     (Paxos_commit.coordinator_recovered ~config
                        ~self:coordinator_site ~timeouts
                        ~logged:(`Decision d)));
              sim.pending <- sim.pending @ [ Kick { site; role = Coord } ]
          | None ->
              if f = 0 then begin
                (* Sole acceptor: nothing logged means nothing decided —
                   the 2PC-PrN abort presumption. *)
                sim.coord <-
                  Some
                    (wrap_paxos_coord
                       (Paxos_commit.coordinator_recovered ~config
                          ~self:coordinator_site ~timeouts ~logged:`Nothing));
                sim.pending <- sim.pending @ [ Kick { site; role = Coord } ]
              end
              (* F > 0: surviving acceptors may have chosen; the origin
                 must stay amnesiac and let the election terminate. *))
      | P_three_pc | P_quorum _ -> ()
  end

(* rt_lint: allow no-toplevel-mutable-state -- opt-in debug tap, never read by simulation logic *)
let debug_hook : (string -> unit) option ref = ref None

let dbg fmt = Printf.ksprintf (fun s -> match !debug_hook with Some f -> f s | None -> ()) fmt

let process_event sim event =
  (match event with
   | Deliver { src; dst; msg } ->
       dbg "deliver %d->%d %s" src dst (Format.asprintf "%a" pp_msg msg)
   | Log_complete { site; role; tag } ->
       dbg "logdone site=%d role=%s %s" site
         (match role with Coord -> "C" | Part -> "P")
         (Format.asprintf "%a" pp_log_tag tag)
   | Notice_down { dst; down } -> dbg "down %d noticed at %d" down dst
   | Kick { site; _ } -> dbg "kick %d" site);
  match event with
  | Deliver { src; dst; msg } ->
      let role = if routed_to_coord sim ~dst msg then Coord else Part in
      feed sim ~site:dst ~role (Recv (src, msg))
  | Log_complete { site; role; tag } ->
      mark_durable sim site tag;
      feed sim ~site ~role (Log_done tag)
  | Notice_down { dst; down } ->
      feed sim ~site:dst ~role:Coord (Peer_down down);
      feed sim ~site:dst ~role:Part (Peer_down down)
  | Kick { site; role } -> feed sim ~site ~role Start

let pick_event sim =
  match sim.pending with
  | [] -> None
  | events -> (
      match sim.rng with
      | None ->
          (* FIFO *)
          let ev = List.hd events in
          sim.pending <- List.tl events;
          Some ev
      | Some rng ->
          let n = List.length events in
          let idx = Rt_sim.Rng.int rng n in
          let ev = List.nth events idx in
          sim.pending <- List.filteri (fun i _ -> i <> idx) events;
          Some ev)

let fire_some_timer sim =
  let enabled =
    Hashtbl.fold (fun k () acc -> k :: acc) sim.timers []
    |> List.sort timer_key_compare
  in
  match enabled with
  | [] -> false
  | _ ->
      let site, role, t =
        match sim.rng with
        | None -> List.hd enabled
        | Some rng ->
            List.nth enabled (Rt_sim.Rng.int rng (List.length enabled))
      in
      Hashtbl.remove sim.timers (site, role, t);
      dbg "timeout site=%d role=%s %s" site
        (match role with Coord -> "C" | Part -> "P")
        (Format.asprintf "%a" pp_timer t);
      sim.timeouts_fired <- sim.timeouts_fired + 1;
      feed sim ~site ~role (Timeout t);
      true

let live_parts_decided sim =
  let ok = ref true in
  for s = 0 to sim.sites - 1 do
    if not sim.crashed.(s) && not sim.forgotten.(s) then
      match sim.parts.(s) with
      | Some m -> if m.Erased.decision = None then ok := false
      | None -> ()
  done;
  !ok

let run ?seed ?(crashes = []) ?(recoveries = []) ?(max_steps = 10_000)
    ?read_only ~proto ~sites ~votes () =
  if Array.length votes <> sites then
    invalid_arg "Sandbox.run: votes array size mismatch";
  let read_only =
    match read_only with
    | Some a when Array.length a = sites -> a
    | Some _ -> invalid_arg "Sandbox.run: read_only array size mismatch"
    | None -> Array.make sites false
  in
  let rng = Option.map (fun s -> Rt_sim.Rng.create ~seed:s) seed in
  let sim =
    {
      proto;
      sites;
      votes;
      rng;
      coord = Some (make_coord proto ~sites);
      parts =
        Array.init sites (fun i ->
            Some
              (make_part proto ~sites ~self:i ~vote:votes.(i)
                 ~read_only:read_only.(i)));
      pending = [];
      timers = Hashtbl.create 16;
      durable = Hashtbl.create 16;
      crashed = Array.make sites false;
      messages = 0;
      forced_writes = 0;
      lazy_writes = 0;
      blocked = false;
      timeouts_fired = 0;
      decisions_delivered = [];
      forgotten = Array.make sites false;
    }
  in
  feed sim ~site:coordinator_site ~role:Coord Start;
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < max_steps do
    (* Scheduled crash/recovery points trigger on the step counter. *)
    List.iter (fun (s, k) -> if k = !steps then crash sim s) crashes;
    List.iter (fun (s, k) -> if k = !steps then recover sim s) recoveries;
    match pick_event sim with
    | Some ev ->
        incr steps;
        process_event sim ev
    | None ->
        if live_parts_decided sim then continue := false
        else if fire_some_timer sim then incr steps
        else continue := false
  done;
  let decisions =
    List.sort_uniq
      (fun (s1, d1) (s2, d2) ->
        let c = Int.compare s1 s2 in
        if c <> 0 then c else decision_compare d1 d2)
      sim.decisions_delivered
  in
  let agreement =
    match decisions with
    | [] -> true
    | (_, d0) :: rest -> List.for_all (fun (_, d) -> decision_equal d d0) rest
  in
  {
    decisions;
    agreement;
    all_decided = live_parts_decided sim;
    messages = sim.messages;
    forced_writes = sim.forced_writes;
    lazy_writes = sim.lazy_writes;
    blocked = sim.blocked;
    steps = !steps;
    timeouts_fired = sim.timeouts_fired;
  }

let run_fifo ~proto ~sites ~votes () = run ~proto ~sites ~votes ()
