(** Deterministic key→shard mapping.

    A shard map partitions the logical keyspace into a fixed number of
    shards.  Two strategies:

    - {b Hash}: shard = FNV-1a(key) mod shards.  Spreads any keyspace
      evenly; no locality.  The hash is hand-rolled (not [Hashtbl.hash])
      so the mapping is a stable contract across compiler versions.
    - {b Range}: an ordered list of boundary keys splits the keyspace
      into contiguous lexicographic ranges — shard 0 below the first
      boundary, the last shard at or above the final boundary.  Preserves
      locality, so experiments can place co-accessed keys together.

    Shard maps are pure and never consult an RNG: the same key always
    lands in the same shard, which replay determinism requires. *)

type shard_id = int

type strategy =
  | Hash of int  (** Number of hash shards. *)
  | Range of string list  (** Strictly increasing boundary keys. *)

type t

val hash : shards:int -> t
(** [shards] must be positive. *)

val range : boundaries:string list -> t
(** [range ~boundaries] has [List.length boundaries + 1] shards.  Raises
    [Invalid_argument] unless boundaries are strictly increasing. *)

val shards : t -> int

val shard_of : t -> string -> shard_id
(** Total and deterministic: every key maps to exactly one shard in
    [0, shards). *)

val strategy_name : t -> string

val pp : Format.formatter -> t -> unit
