(** Shard→replica-set assignment: which sites hold physical copies of
    which slice of the keyspace.

    A placement composes a {!Shard_map} (key→shard) with a layout that
    assigns every shard a replica set of [degree] sites:

    - {b Round-robin}: shard [s] lives on sites
      [s, s+1, …, s+degree-1 (mod sites)] — adjacent shards overlap in
      [degree-1] sites, spreading load evenly for any shard count.
    - {b Spread}: shard [s] lives on sites
      [s·degree, …, s·degree+degree-1 (mod sites)] — consecutive shards
      occupy disjoint site groups while [shards·degree ≤ sites],
      minimising the number of shards any one site serves.

    Full replication is the degenerate placement — one shard replicated
    at every site ({!full}) — under which every plan, participant set and
    catch-up peer set reduces to the classical "all sites" of the paper's
    setting.  Placements are pure, deterministic, and validated at
    construction ([1 ≤ degree ≤ sites]). *)

open Rt_types

type layout = Round_robin | Spread

val layout_name : layout -> string

type t

val create :
  ?layout:layout -> map:Shard_map.t -> sites:int -> degree:int -> unit -> t
(** Raises [Invalid_argument] unless [sites > 0] and
    [1 <= degree <= sites].  Default layout is round-robin. *)

val full : sites:int -> t
(** The degenerate placement: one shard, replicated at every site. *)

val sites : t -> int

val degree : t -> int

val shards : t -> int

val shard_map : t -> Shard_map.t

val layout : t -> layout

val is_full : t -> bool
(** One shard and [degree = sites]: classical full replication. *)

val replicas : t -> shard:Shard_map.shard_id -> Ids.site_id list
(** The shard's replica set, sorted ascending.  Raises on an out-of-range
    shard. *)

val shard_of_key : t -> string -> Shard_map.shard_id

val replicas_of_key : t -> string -> Ids.site_id list

val replicates : t -> site:Ids.site_id -> shard:Shard_map.shard_id -> bool

val owns_key : t -> site:Ids.site_id -> string -> bool
(** Does [site] hold a copy of [key]'s shard? *)

val shards_of_site : t -> Ids.site_id -> Shard_map.shard_id list
(** Shards replicated at the site, sorted ascending (empty when the
    layout leaves the site unused). *)

val co_replicas : t -> site:Ids.site_id -> Ids.site_id list
(** Other sites sharing at least one shard with [site], sorted — the
    peers a recovering site can catch up from. *)

val describe : t -> string

val pp : Format.formatter -> t -> unit
