type shard_id = int

type strategy =
  | Hash of int
  | Range of string list

type t = { shards : int; strategy : strategy }

(* FNV-1a, 64-bit.  Hand-rolled rather than [Hashtbl.hash] so the
   key→shard mapping is a stable part of the on-disk/experiment contract,
   not an artifact of the compiler's generic hash. *)
let fnv1a key =
  let prime = 0x100000001b3 in
  (* Offset basis 0xcbf29ce484222325 truncated to OCaml's 63-bit int;
     multiplication wraps in the native int, which is deterministic on
     every 64-bit platform. *)
  let h = ref 0x0bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * prime)
    key;
  !h land max_int

let hash ~shards =
  if shards <= 0 then invalid_arg "Shard_map.hash: shards must be positive";
  { shards; strategy = Hash shards }

let range ~boundaries =
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> String.compare a b < 0 && sorted rest
  in
  if not (sorted boundaries) then
    invalid_arg "Shard_map.range: boundaries must be strictly increasing";
  { shards = List.length boundaries + 1; strategy = Range boundaries }

let shards t = t.shards

let shard_of t key =
  match t.strategy with
  | Hash n -> if n = 1 then 0 else fnv1a key mod n
  | Range boundaries ->
      (* Shard = number of boundaries at or below the key: keys below the
         first boundary land in shard 0, keys at or above the last in the
         final shard. *)
      List.fold_left
        (fun acc b -> if String.compare key b >= 0 then acc + 1 else acc)
        0 boundaries

let strategy_name t =
  match t.strategy with
  | Hash n -> Printf.sprintf "hash(%d)" n
  | Range bs -> Printf.sprintf "range(%d)" (List.length bs + 1)

let pp fmt t = Format.pp_print_string fmt (strategy_name t)
