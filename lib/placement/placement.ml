open Rt_types

type layout = Round_robin | Spread

let layout_name = function
  | Round_robin -> "round-robin"
  | Spread -> "spread"

type t = {
  map : Shard_map.t;
  sites : int;
  degree : int;
  layout : layout;
  replica_sets : Ids.site_id list array;  (* indexed by shard, sorted *)
  site_shards : Shard_map.shard_id list array;  (* indexed by site, sorted *)
  (* Dense fast paths, precomputed once at create: membership tests and
     co-replica traversals run on every routed operation, so they index
     instead of walking lists. *)
  member : bool array array;  (* member.(shard).(site) *)
  co_replica_sets : Ids.site_id list array;  (* indexed by site, sorted *)
}

let replicas_for ~layout ~sites ~degree shard =
  let base =
    match layout with
    | Round_robin -> shard
    | Spread -> shard * degree
  in
  List.init degree (fun i -> (base + i) mod sites)
  |> List.sort_uniq Int.compare

let create ?(layout = Round_robin) ~map ~sites ~degree () =
  if sites <= 0 then invalid_arg "Placement.create: sites must be positive";
  if degree < 1 then
    invalid_arg "Placement.create: replication degree must be at least 1";
  if degree > sites then
    invalid_arg "Placement.create: replication degree exceeds site count";
  let shards = Shard_map.shards map in
  let replica_sets =
    Array.init shards (replicas_for ~layout ~sites ~degree)
  in
  let site_shards = Array.make sites [] in
  Array.iteri
    (fun shard reps ->
      List.iter
        (fun s -> site_shards.(s) <- shard :: site_shards.(s))
        reps)
    replica_sets;
  let site_shards = Array.map (List.sort Int.compare) site_shards in
  let member =
    Array.map
      (fun reps ->
        let row = Array.make sites false in
        List.iter (fun s -> row.(s) <- true) reps;
        row)
      replica_sets
  in
  let co_replica_sets =
    Array.init sites (fun site ->
        let seen = Array.make sites false in
        List.iter
          (fun shard ->
            List.iter (fun s -> seen.(s) <- true) replica_sets.(shard))
          site_shards.(site);
        seen.(site) <- false;
        let acc = ref [] in
        for s = sites - 1 downto 0 do
          if seen.(s) then acc := s :: !acc
        done;
        !acc)
  in
  { map; sites; degree; layout; replica_sets; site_shards; member;
    co_replica_sets }

let full ~sites =
  create ~map:(Shard_map.hash ~shards:1) ~sites ~degree:sites ()

let sites t = t.sites
let degree t = t.degree
let shards t = Shard_map.shards t.map
let shard_map t = t.map
let layout t = t.layout
let is_full t = shards t = 1 && t.degree = t.sites

let replicas t ~shard =
  if shard < 0 || shard >= Array.length t.replica_sets then
    invalid_arg "Placement.replicas: shard out of range";
  t.replica_sets.(shard)

let shard_of_key t key = Shard_map.shard_of t.map key
let replicas_of_key t key = t.replica_sets.(shard_of_key t key)

let replicates t ~site ~shard =
  if shard < 0 || shard >= Array.length t.member then
    invalid_arg "Placement.replicates: shard out of range";
  site >= 0 && site < t.sites && t.member.(shard).(site)

let shards_of_site t site =
  if site < 0 || site >= t.sites then
    invalid_arg "Placement.shards_of_site: site out of range";
  t.site_shards.(site)

let owns_key t ~site key =
  site >= 0 && site < t.sites && t.member.(shard_of_key t key).(site)

let co_replicas t ~site =
  if site < 0 || site >= t.sites then
    invalid_arg "Placement.co_replicas: site out of range";
  t.co_replica_sets.(site)

let describe t =
  Printf.sprintf "%s x%d over %d sites, degree %d, %s"
    (Shard_map.strategy_name t.map) (shards t) t.sites t.degree
    (layout_name t.layout)

let pp fmt t = Format.pp_print_string fmt (describe t)
