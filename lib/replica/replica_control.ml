open Rt_types

type t =
  | Rowa
  | Available_copies
  | Quorum of Rt_quorum.Votes.t
  | Primary_copy of Ids.site_id

let name = function
  | Rowa -> "ROWA"
  | Available_copies -> "ROWA-A"
  | Quorum v ->
      Printf.sprintf "Quorum(r=%d,w=%d)" (Rt_quorum.Votes.read_quorum v)
        (Rt_quorum.Votes.write_quorum v)
  | Primary_copy p -> Printf.sprintf "Primary(%d)" p

let rowa = Rowa
let available_copies = Available_copies
let majority ~sites = Quorum (Rt_quorum.Votes.majority ~sites)

let quorum ~read_quorum ~write_quorum ~sites =
  Quorum
    (Rt_quorum.Votes.make ~votes:(Array.make sites 1) ~read_quorum
       ~write_quorum)

let primary p = Primary_copy p

let all_up ~up ~replicas = List.filter up replicas

(* Prefer reading locally; fall back to the lowest up replica. *)
let one_up ~self ~up ~replicas =
  if List.mem self replicas && up self then Some [ self ]
  else
    match all_up ~up ~replicas with [] -> None | s :: _ -> Some [ s ]

(* Restrict a vote assignment to a shard's replica set.  When the set is
   every site the configured thresholds apply unchanged; a proper subset
   gets one-vote majorities over the subset (the configured global
   thresholds are meaningless against a fraction of the votes). *)
let votes_for v ~replicas =
  let n = Rt_quorum.Votes.sites v in
  if List.length replicas = n then Some v
  else
    let member = Array.make n false in
    let in_range = List.for_all (fun s -> s >= 0 && s < n) replicas in
    if not in_range then None
    else begin
      List.iter (fun s -> member.(s) <- true) replicas;
      let votes = Array.init n (fun i -> if member.(i) then 1 else 0) in
      let q = (List.length replicas / 2) + 1 in
      Some (Rt_quorum.Votes.make ~votes ~read_quorum:q ~write_quorum:q)
    end

(* Put [self] first among quorum candidates so local copies are preferred
   (Votes.min_*_set picks greedily by votes then id, which is already
   deterministic; we only need to bias toward self for the common
   one-vote-per-site case). *)
let quorum_set pick v ~self ~up ~replicas =
  match votes_for v ~replicas with
  | None -> None
  | Some v -> (
      (* Try to force self into the set by asking with self marked as the
         only "cheap" site: compute the set normally; if self is up and not
         included while some other site is, swap one equal-vote site out. *)
      match pick v ~up with
      | None -> None
      | Some set ->
          if
            (not (List.mem self replicas))
            || (not (up self))
            || List.mem self set
          then Some set
          else
            let votes = Rt_quorum.Votes.votes v in
            let self_votes = votes.(self) in
            let swappable =
              List.find_opt (fun s -> votes.(s) = self_votes) (List.rev set)
            in
            (match swappable with
            | Some s ->
                Some
                  (List.sort Int.compare (self :: List.filter (( <> ) s) set))
            | None -> Some set))

(* Primary-copy succession: if the configured primary does not replicate
   this shard (or is down), the lowest up replica acts as primary.  (Like
   all primary-succession schemes without consensus, a detector
   disagreement can briefly yield two acting primaries; quorum consensus
   is the partition-safe alternative.) *)
let acting_primary p ~up ~replicas =
  if List.mem p replicas && up p then Some p else List.find_opt up replicas

let read_plan t ~self ~up ~replicas =
  match t with
  | Rowa | Available_copies -> one_up ~self ~up ~replicas
  | Quorum v ->
      quorum_set
        (fun v ~up -> Rt_quorum.Votes.min_read_set v ~up)
        v ~self ~up ~replicas
  | Primary_copy p ->
      Option.map (fun a -> [ a ]) (acting_primary p ~up ~replicas)

let write_plan t ~self ~up ~replicas =
  match t with
  | Rowa ->
      let alive = all_up ~up ~replicas in
      if List.length alive = List.length replicas then Some alive else None
  | Available_copies -> (
      match all_up ~up ~replicas with [] -> None | alive -> Some alive)
  | Quorum v ->
      quorum_set
        (fun v ~up -> Rt_quorum.Votes.min_write_set v ~up)
        v ~self ~up ~replicas
  | Primary_copy p -> (
      (* Synchronous primary-backup: the acting primary plus every up
         backup of the shard. *)
      match acting_primary p ~up ~replicas with
      | Some _ -> Some (all_up ~up ~replicas)
      | None -> None)

let read_needs_version_resolution = function
  | Quorum _ -> true
  | Rowa | Available_copies | Primary_copy _ -> false

let needs_catchup_on_recovery = function
  | Available_copies | Rowa | Primary_copy _ -> true
  | Quorum _ -> false

let tolerates_partitions = function
  | Quorum _ -> true
  | Rowa | Available_copies | Primary_copy _ -> false
