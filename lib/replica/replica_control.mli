(** Replica-control protocols as pure planners.

    A replica-control protocol answers three questions for a replicated
    keyspace slice: which physical copies must a logical read contact,
    which must a logical write install at, and how are stale copies
    detected.  The cluster engine does the messaging; these planners make
    the policy explicit and unit-testable.

    Plans are computed against an explicit [replicas] set — the sites
    holding copies of the shard being accessed, as assigned by
    {!Rt_placement.Placement}.  Under full replication the set is every
    site and the planners reduce to the paper's classical behaviour; a
    sharded placement passes each shard's replica set instead, so "write
    all" means all copies {e of that shard}.

    Protocols:
    - {b ROWA} (read-one/write-all): reads are local, writes must reach
      every copy — any site down makes updates unavailable.
    - {b Available copies} (ROWA-A): writes go to every {e up} copy, so
      updates survive failures; a recovering copy must catch up before it
      may serve reads again.  Not partition-safe (both sides think the
      other is down), which experiment F8 demonstrates.
    - {b Quorum consensus} (weighted voting): reads and writes each
      gather a vote quorum; version numbers identify the current copy.
      Partition-safe by quorum intersection.
    - {b Primary copy}: one distinguished site orders all access; backups
      receive updates synchronously but serve no reads by default.  If
      the primary fails, the lowest up site succeeds it (no consensus —
      detector disagreement can transiently yield two acting primaries,
      which is the classical argument for quorums).

    A plan is a set of sites, or [None] when the operation is unavailable
    under the current up-set. *)

open Rt_types

type t =
  | Rowa
  | Available_copies
  | Quorum of Rt_quorum.Votes.t
  | Primary_copy of Ids.site_id

val name : t -> string

val rowa : t

val available_copies : t

val majority : sites:int -> t
(** Quorum consensus with one vote per site and majority thresholds. *)

val quorum : read_quorum:int -> write_quorum:int -> sites:int -> t

val primary : Ids.site_id -> t

val read_plan :
  t -> self:Ids.site_id -> up:(Ids.site_id -> bool) ->
  replicas:Ids.site_id list -> Ids.site_id list option
(** Sites a logical read must contact, out of the shard's [replicas].
    Prefers [self] whenever the protocol allows a local read and [self]
    holds a copy.  [None]: read unavailable.

    Quorum note: when [replicas] is every site of the vote assignment the
    configured thresholds apply unchanged; a proper subset votes with
    one-vote majorities over the subset (global weighted thresholds are
    not meaningful against a fraction of the votes). *)

val write_plan :
  t -> self:Ids.site_id -> up:(Ids.site_id -> bool) ->
  replicas:Ids.site_id list -> Ids.site_id list option
(** Sites a logical write must install at ("write all" = all replicas of
    the shard).  [None]: update unavailable. *)

val read_needs_version_resolution : t -> bool
(** Quorum reads must compare copy versions and take the newest; the
    other protocols keep all live copies identical. *)

val needs_catchup_on_recovery : t -> bool
(** Available-copies (and ROWA after repair) require a recovering copy to
    validate/catch up from a live copy before serving reads. *)

val tolerates_partitions : t -> bool
(** Whether concurrent operation on both sides of a partition is safe. *)
