.PHONY: all build test lint bench bench-json crash clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint

bench:
	dune exec bench/main.exe

# Deterministic machine-readable metrics snapshot: writes BENCH_<n>.json
# (next free index) with fixed field order; CI uploads it as an artifact.
bench-json:
	dune exec bench/main.exe -- --json

# Exhaustive crash-recovery fault injection (see docs/RECOVERY.md).
# Exits non-zero when any invariant violation is found.
crash:
	dune exec bin/crashpoints.exe

clean:
	dune clean
