.PHONY: all build test lint bench bench-json crash nemesis disk-nemesis explore clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint

bench:
	dune exec bench/main.exe

# Deterministic machine-readable metrics snapshot: writes BENCH_<n>.json
# (highest existing index + 1) with fixed field order; CI uploads it as
# an artifact.
bench-json:
	dune exec bench/main.exe -- --json

# Perf gate: regenerate the snapshot and diff it against the highest
# committed BENCH_<n>.json.  Fails on a >20%% committed/s regression on
# any probe both files share; prints a warning table otherwise.
bench-diff: bench-json
	dune exec tools/bench_diff.exe

# Exhaustive crash-recovery fault injection (see docs/RECOVERY.md).
# Exits non-zero when any invariant violation is found.
crash:
	dune exec bin/crashpoints.exe

# Network-fault campaign: scenario x protocol x placement matrix with the
# shared invariant audit (see docs/NEMESIS.md).  Exit code = number of
# audit violations; output is byte-identical for a given seed.
nemesis:
	dune build bin/nemesis.exe
	dune exec bin/nemesis.exe -- > NEMESIS.md; s=$$?; cat NEMESIS.md; exit $$s

# Disk-fault campaign: torn WAL writes, checkpoint corruption, and
# recovery-time re-crashes across protocol x placement, audited by the
# shared invariant battery (see docs/RECOVERY.md, "Storage faults").
# Exit code = number of audit violations; byte-identical per seed.
disk-nemesis:
	dune build bin/disk_nemesis.exe
	dune exec bin/disk_nemesis.exe -- > DISK_NEMESIS.md; s=$$?; cat DISK_NEMESIS.md; exit $$s

# Bounded exhaustive schedule exploration with DPOR: the N=3 scenario
# matrix across all six commit protocols (see docs/EXPLORER.md).  Every
# non-Paxos scenario closes within its budget (Paxos F=1 explores a
# capped prefix); exit code = number of audit violations; output is
# byte-identical run to run.
explore:
	dune build bin/explore.exe
	dune exec bin/explore.exe -- > EXPLORE.md; s=$$?; cat EXPLORE.md; exit $$s

clean:
	dune clean
