.PHONY: all build test lint bench crash clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint

bench:
	dune exec bench/main.exe

# Exhaustive crash-recovery fault injection (see docs/RECOVERY.md).
# Exits non-zero when any invariant violation is found.
crash:
	dune exec bin/crashpoints.exe

clean:
	dune clean
