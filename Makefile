.PHONY: all build test lint bench clean

all: build

build:
	dune build

test:
	dune runtest

lint:
	dune build @lint

bench:
	dune exec bench/main.exe

clean:
	dune clean
