(* Tests for the simulated network: delivery, latency, FIFO links, faults,
   partitions, and statistics accounting. *)

open Rt_sim
open Rt_net

let fixed_net ?(fifo = true) ?(nodes = 3) ?(latency = Time.ms 1) engine =
  Net.create ~fifo engine ~nodes ~default:(Net.reliable_link (Latency.Fixed latency))

let test_basic_delivery () =
  let e = Engine.create () in
  let net = fixed_net e in
  let got = ref [] in
  Net.register net 1 (fun ~src msg -> got := (src, msg) :: !got);
  Net.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got;
  Alcotest.(check int) "delivery time is latency" (Time.ms 1) (Engine.now e)

let test_unregistered_drops () =
  let e = Engine.create () in
  let net = fixed_net e in
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Net.Stats.dropped (Net.stats net));
  Alcotest.(check int) "counted as partition loss" 1
    (Net.stats net).dropped_partition

let test_latency_sampling () =
  let e = Engine.create ~seed:5 () in
  let net =
    Net.create e ~nodes:2
      ~default:(Net.reliable_link (Latency.Uniform (Time.ms 1, Time.ms 5)))
  in
  let times = ref [] in
  Net.register net 1 (fun ~src:_ _ -> times := Engine.now e :: !times);
  (* Non-FIFO check of raw sampling: use separate sends spaced out. *)
  for i = 0 to 99 do
    ignore
      (Engine.schedule_at e (Time.ms (10 * i)) (fun () ->
           Net.send net ~src:0 ~dst:1 "m"))
  done;
  Engine.run e;
  List.iteri
    (fun i t ->
      let base = Time.ms (10 * (99 - i)) in
      let d = Time.sub t base in
      Alcotest.(check bool)
        "latency within bounds" true
        Time.(d >= Time.ms 1 && d <= Time.ms 5))
    !times

let test_fifo_ordering () =
  let e = Engine.create ~seed:1 () in
  let net =
    Net.create ~fifo:true e ~nodes:2
      ~default:(Net.reliable_link (Latency.Uniform (Time.ms 1, Time.ms 50)))
  in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 0 to 19 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO preserved"
    (List.init 20 (fun i -> i))
    (List.rev !got)

let test_drop_probability () =
  let e = Engine.create ~seed:3 () in
  let link = { Net.latency = Latency.Fixed (Time.us 10); drop = 0.5; duplicate = 0. ; overhead = Time.zero } in
  let net = Net.create e ~nodes:2 ~default:link in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  let n = 2000 in
  for _ = 1 to n do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Engine.run e;
  let rate = float_of_int !got /. float_of_int n in
  Alcotest.(check bool) "~half delivered" true (rate > 0.45 && rate < 0.55);
  Alcotest.(check int) "sent counted" n (Net.stats net).sent;
  Alcotest.(check int) "conservation" n
    ((Net.stats net).delivered + Net.Stats.dropped (Net.stats net));
  Alcotest.(check int) "all losses are link losses" 0
    (Net.stats net).dropped_partition

let test_dropped_split_accounting () =
  (* One loss of each kind: a link-fault drop and a partition drop must
     land in separate counters, with [Stats.dropped] as their sum. *)
  let e = Engine.create ~seed:7 () in
  let net = fixed_net e in
  Net.register net 1 (fun ~src:_ _ -> ());
  Net.set_link net ~src:0 ~dst:1
    { Net.latency = Latency.Fixed (Time.us 10); drop = 1.0; duplicate = 0. ; overhead = Time.zero };
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "link loss counted" 1 (Net.stats net).dropped_link;
  Alcotest.(check int) "no partition loss yet" 0
    (Net.stats net).dropped_partition;
  Net.clear_link net ~src:0 ~dst:1;
  Partition.split (Net.partition net) [ [ 0 ]; [ 1; 2 ] ];
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "partition loss counted" 1
    (Net.stats net).dropped_partition;
  Alcotest.(check int) "link losses unchanged" 1 (Net.stats net).dropped_link;
  Alcotest.(check int) "derived total" 2 (Net.Stats.dropped (Net.stats net))

let test_duplicate_stats () =
  let e = Engine.create ~seed:4 () in
  let link = { Net.latency = Latency.Fixed (Time.us 10); drop = 0.; duplicate = 1.0 ; overhead = Time.zero } in
  let net = Net.create e ~nodes:2 ~default:link in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "one send" 1 (Net.stats net).sent;
  Alcotest.(check int) "one duplication" 1 (Net.stats net).duplicated;
  Alcotest.(check int) "both copies delivered" 2 (Net.stats net).delivered;
  Alcotest.(check int) "nothing dropped" 0 (Net.Stats.dropped (Net.stats net))

let test_fifo_under_duplication () =
  (* On a FIFO link a duplicate must land immediately after its original:
     sending 0..9 with duplicate=1.0 yields 0,0,1,1,...,9,9. *)
  let e = Engine.create ~seed:2 () in
  let link =
    { Net.latency = Latency.Uniform (Time.ms 1, Time.ms 20);
      drop = 0.; duplicate = 1.0; overhead = Time.zero }
  in
  let net = Net.create ~fifo:true e ~nodes:2 ~default:link in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 0 to 9 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  let expected = List.concat_map (fun i -> [ i; i ]) (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "contiguous duplicates, FIFO preserved"
    expected (List.rev !got)

let test_duplicate_probability () =
  let e = Engine.create ~seed:4 () in
  let link = { Net.latency = Latency.Fixed (Time.us 10); drop = 0.; duplicate = 1.0 ; overhead = Time.zero } in
  let net = Net.create e ~nodes:2 ~default:link in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "delivered twice" 2 !got

let test_partition_blocks_and_heals () =
  let e = Engine.create () in
  let net = fixed_net e in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Partition.split (Net.partition net) [ [ 0 ]; [ 1; 2 ] ];
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "blocked by partition" 0 !got;
  Partition.heal (Net.partition net);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "healed" 1 !got

let test_partition_in_flight_loss () =
  let e = Engine.create () in
  let net = fixed_net ~latency:(Time.ms 10) e in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  (* Partition forms while the message is in flight. *)
  ignore
    (Engine.schedule_after e (Time.ms 5) (fun () ->
         Partition.split (Net.partition net) [ [ 0 ]; [ 1; 2 ] ]));
  Engine.run e;
  Alcotest.(check int) "in-flight message lost" 0 !got

let test_partition_within_group_ok () =
  let e = Engine.create () in
  let net = fixed_net e in
  let got = ref 0 in
  Net.register net 2 (fun ~src:_ _ -> incr got);
  Partition.split (Net.partition net) [ [ 0 ]; [ 1; 2 ] ];
  Net.send net ~src:1 ~dst:2 ();
  Engine.run e;
  Alcotest.(check int) "same-side delivery works" 1 !got

let test_broadcast () =
  let e = Engine.create () in
  let net = fixed_net ~nodes:4 e in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.register net i (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.broadcast net ~src:1 ();
  Engine.run e;
  Alcotest.(check (array int)) "all but source" [| 1; 0; 1; 1 |] got

let test_link_override () =
  let e = Engine.create () in
  let net = fixed_net ~nodes:2 ~latency:(Time.ms 1) e in
  Net.set_link net ~src:0 ~dst:1
    (Net.reliable_link (Latency.Fixed (Time.ms 42)));
  let at = ref Time.zero in
  Net.register net 1 (fun ~src:_ _ -> at := Engine.now e);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "override used" (Time.ms 42) !at

let test_one_way_sever () =
  let e = Engine.create () in
  let net = fixed_net e in
  let at1 = ref 0 and at0 = ref 0 in
  Net.register net 0 (fun ~src:_ _ -> incr at0);
  Net.register net 1 (fun ~src:_ _ -> incr at1);
  Partition.sever (Net.partition net) ~src:0 ~dst:1;
  Net.send net ~src:0 ~dst:1 ();
  Net.send net ~src:1 ~dst:0 ();
  Engine.run e;
  Alcotest.(check int) "severed direction lost" 0 !at1;
  Alcotest.(check int) "reverse direction delivers" 1 !at0;
  Alcotest.(check int) "loss counted as partition" 1
    (Net.stats net).dropped_partition;
  Partition.restore (Net.partition net) ~src:0 ~dst:1;
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "restored" 1 !at1

let test_sever_in_flight_loss () =
  (* Reachability is re-checked at delivery, so a message already in the
     air when its direction is severed is lost. *)
  let e = Engine.create () in
  let net = fixed_net ~latency:(Time.ms 10) e in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  ignore
    (Engine.schedule_after e (Time.ms 5) (fun () ->
         Partition.sever (Net.partition net) ~src:0 ~dst:1));
  Engine.run e;
  Alcotest.(check int) "in-flight message lost" 0 !got

let test_partition_module () =
  let p = Partition.create ~nodes:5 in
  Alcotest.(check bool) "initially connected" true (Partition.connected p 0 4);
  Alcotest.(check bool) "not split" false (Partition.is_split p);
  Partition.split p [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "0-1 together" true (Partition.connected p 0 1);
  Alcotest.(check bool) "0-2 apart" false (Partition.connected p 0 2);
  (* Node 4 stays in component 0, apart from both named groups. *)
  Alcotest.(check bool) "4 apart from 0" false (Partition.connected p 4 0);
  Alcotest.(check bool) "split" true (Partition.is_split p);
  Partition.isolate p 1;
  Alcotest.(check bool) "isolated" false (Partition.connected p 0 1);
  Partition.heal p;
  Alcotest.(check bool) "healed" true (Partition.connected p 0 3);
  (* Directional edges: sever one way only. *)
  Partition.sever p ~src:0 ~dst:1;
  Alcotest.(check bool) "0->1 unreachable" false
    (Partition.reachable p ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 still reachable" true
    (Partition.reachable p ~src:1 ~dst:0);
  Alcotest.(check bool) "connected needs both ways" false
    (Partition.connected p 0 1);
  Alcotest.(check bool) "severed edge counts as split" true
    (Partition.is_split p);
  Partition.restore p ~src:0 ~dst:1;
  Alcotest.(check bool) "restored" true (Partition.connected p 0 1);
  Alcotest.(check bool) "restore clears split" false (Partition.is_split p);
  Partition.sever p ~src:2 ~dst:3;
  Partition.heal p;
  Alcotest.(check bool) "heal clears severed edges" true
    (Partition.connected p 2 3);
  Alcotest.check_raises "double listing rejected"
    (Invalid_argument "Partition.split: node 1 listed twice") (fun () ->
      Partition.split p [ [ 1 ]; [ 1; 2 ] ])

(* --- per-link batching ---------------------------------------------- *)

let batched_net ?default ~window e =
  let default =
    match default with
    | Some l -> l
    | None -> Net.reliable_link (Latency.Fixed (Time.us 10))
  in
  Net.create ~batch:(Time.us window) e ~nodes:3 ~default

let test_batch_fifo_one_envelope () =
  let e = Engine.create () in
  let net = batched_net ~window:50 e in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:1 "b";
  Net.send net ~src:0 ~dst:1 "c";
  Alcotest.(check (list string))
    "queued in send order" [ "a"; "b"; "c" ]
    (Net.pending net ~src:0 ~dst:1);
  Engine.run e;
  Alcotest.(check (list string)) "FIFO within envelope" [ "c"; "b"; "a" ] !got;
  let s = Net.stats net in
  Alcotest.(check int) "one wire envelope" 1 s.envelopes;
  Alcotest.(check int) "per-message sent" 3 s.sent;
  Alcotest.(check int) "per-message delivered" 3 s.delivered;
  Alcotest.(check int) "flush at window + latency" (Time.us 60) (Engine.now e)

let test_batch_drop_loses_whole_envelope () =
  let e = Engine.create ~seed:4 () in
  let net = batched_net ~window:50 e in
  Net.set_link net ~src:0 ~dst:1
    { Net.latency = Latency.Fixed (Time.us 10); drop = 1.0; duplicate = 0.;
      overhead = Time.zero };
  let got = ref [] in
  Net.register net 1 (fun ~src msg -> got := (src, msg) :: !got);
  (* Three messages on the faulty link, two on a clean one: the one drop
     roll for the 0->1 envelope loses exactly its contents. *)
  Net.send net ~src:0 ~dst:1 "x";
  Net.send net ~src:0 ~dst:1 "y";
  Net.send net ~src:0 ~dst:1 "z";
  Net.send net ~src:2 ~dst:1 "u";
  Net.send net ~src:2 ~dst:1 "v";
  Engine.run e;
  Alcotest.(check (list (pair int string)))
    "clean link unaffected" [ (2, "v"); (2, "u") ] !got;
  let s = Net.stats net in
  Alcotest.(check int) "all envelope contents lost" 3 s.dropped_link;
  Alcotest.(check int) "only the clean envelope flew" 1 s.envelopes

let test_batch_duplicate_repeats_envelope () =
  let e = Engine.create ~seed:4 () in
  let net = batched_net ~window:50 e in
  Net.set_link net ~src:0 ~dst:1
    { Net.latency = Latency.Fixed (Time.us 10); drop = 0.; duplicate = 1.0;
      overhead = Time.zero };
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:1 "b";
  Engine.run e;
  Alcotest.(check (list string))
    "whole envelope delivered twice, FIFO both times"
    [ "a"; "b"; "a"; "b" ] (List.rev !got);
  let s = Net.stats net in
  Alcotest.(check int) "two wire envelopes" 2 s.envelopes;
  Alcotest.(check int) "per-message duplicate tally" 2 s.duplicated

let test_batch_sever_inside_window () =
  let e = Engine.create () in
  let net = batched_net ~window:50 e in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:1 "b";
  (* The link is severed after the sends but before the window flushes:
     the whole envelope dies before reaching the wire. *)
  ignore
    (Engine.schedule_after e (Time.us 20) (fun () ->
         Partition.sever (Net.partition net) ~src:0 ~dst:1));
  Engine.run e;
  Alcotest.(check (list string)) "nothing delivered" [] !got;
  let s = Net.stats net in
  Alcotest.(check int) "counted as partition loss" 2 s.dropped_partition;
  Alcotest.(check int) "no envelope scheduled" 0 s.envelopes

let test_egress_overhead_serializes () =
  let e = Engine.create () in
  let net =
    Net.create e ~nodes:3
      ~default:
        (Net.reliable_link ~overhead:(Time.us 30) (Latency.Fixed (Time.us 10)))
  in
  let times = ref [] in
  let handler ~src:_ _ = times := Engine.now e :: !times in
  Net.register net 1 handler;
  Net.register net 2 handler;
  (* Two sends from node 0 at t=0, to different destinations: they
     serialize through 0's egress port (depart at 30 and 60), then each
     takes the 10us propagation. *)
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:2 "b";
  Engine.run e;
  Alcotest.(check (list int))
    "arrivals reflect serialized departures" [ Time.us 40; Time.us 70 ]
    (List.rev !times);
  Alcotest.(check int) "two envelopes" 2 (Net.stats net).envelopes

let test_latency_mean () =
  Alcotest.(check int) "fixed mean" (Time.ms 3) (Latency.mean (Latency.Fixed (Time.ms 3)));
  Alcotest.(check int) "uniform mean" (Time.ms 3)
    (Latency.mean (Latency.Uniform (Time.ms 2, Time.ms 4)));
  Alcotest.(check int) "exp mean" (Time.ms 5)
    (Latency.mean (Latency.Exponential { min = Time.ms 1; mean = Time.ms 5 }))

let prop_exponential_latency_positive =
  QCheck.Test.make ~name:"exponential latency respects min" ~count:200
    QCheck.(pair small_int small_int)
    (fun (seed, min_ms) ->
      let min_ms = 1 + (min_ms mod 10) in
      let rng = Rng.create ~seed in
      let l =
        Latency.Exponential { min = Time.ms min_ms; mean = Time.ms (min_ms * 3) }
      in
      let ok = ref true in
      for _ = 1 to 50 do
        if Latency.sample l rng < Time.ms min_ms then ok := false
      done;
      !ok)

let () =
  Alcotest.run "net"
    [
      ( "delivery",
        [
          Alcotest.test_case "basic" `Quick test_basic_delivery;
          Alcotest.test_case "unregistered drops" `Quick test_unregistered_drops;
          Alcotest.test_case "latency sampling" `Quick test_latency_sampling;
          Alcotest.test_case "fifo" `Quick test_fifo_ordering;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "link override" `Quick test_link_override;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop" `Quick test_drop_probability;
          Alcotest.test_case "duplicate" `Quick test_duplicate_probability;
          Alcotest.test_case "dropped split" `Quick test_dropped_split_accounting;
          Alcotest.test_case "duplicate stats" `Quick test_duplicate_stats;
          Alcotest.test_case "fifo under duplication" `Quick
            test_fifo_under_duplication;
        ] );
      ( "partition",
        [
          Alcotest.test_case "blocks and heals" `Quick
            test_partition_blocks_and_heals;
          Alcotest.test_case "in-flight loss" `Quick
            test_partition_in_flight_loss;
          Alcotest.test_case "same side ok" `Quick
            test_partition_within_group_ok;
          Alcotest.test_case "one-way sever" `Quick test_one_way_sever;
          Alcotest.test_case "sever in-flight loss" `Quick
            test_sever_in_flight_loss;
          Alcotest.test_case "partition module" `Quick test_partition_module;
        ] );
      ( "batching",
        [
          Alcotest.test_case "one envelope, FIFO" `Quick
            test_batch_fifo_one_envelope;
          Alcotest.test_case "drop loses whole envelope" `Quick
            test_batch_drop_loses_whole_envelope;
          Alcotest.test_case "duplicate repeats envelope" `Quick
            test_batch_duplicate_repeats_envelope;
          Alcotest.test_case "sever inside window" `Quick
            test_batch_sever_inside_window;
          Alcotest.test_case "egress overhead serializes" `Quick
            test_egress_overhead_serializes;
        ] );
      ( "latency",
        [
          Alcotest.test_case "means" `Quick test_latency_mean;
          QCheck_alcotest.to_alcotest prop_exponential_latency_positive;
        ] );
    ]
