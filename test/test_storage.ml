(* Tests for the storage engine: KV semantics, WAL durability and group
   commit, crash behaviour, truncation, recovery classification and
   replay, checkpoints. *)

open Rt_sim
open Rt_types
open Rt_storage

let txn ?(origin = 0) seq =
  Ids.Txn_id.make ~origin ~seq ~start_ts:(Time.ms seq)

let tid = Alcotest.testable Ids.Txn_id.pp Ids.Txn_id.equal

(* --- Kv ------------------------------------------------------------- *)

let test_kv_basic () =
  let kv = Kv.create () in
  Alcotest.(check bool) "absent" true (Kv.get kv "a" = None);
  Alcotest.(check int) "version 0 when absent" 0 (Kv.version kv "a");
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Alcotest.(check bool) "present" true (Kv.mem kv "a");
  (match Kv.get kv "a" with
  | Some { value; version } ->
      Alcotest.(check string) "value" "1" value;
      Alcotest.(check int) "version" 1 version
  | None -> Alcotest.fail "expected item");
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  Alcotest.(check int) "overwrite version" 2 (Kv.version kv "a");
  Kv.remove kv "a";
  Alcotest.(check bool) "removed" false (Kv.mem kv "a")

let test_kv_snapshot_restore () =
  let kv = Kv.create () in
  Kv.set kv ~key:"x" ~value:"1" ~version:1;
  Kv.set kv ~key:"y" ~value:"2" ~version:3;
  let snap = Kv.snapshot kv in
  Kv.set kv ~key:"x" ~value:"dirty" ~version:9;
  Kv.remove kv "y";
  Kv.restore kv snap;
  Alcotest.(check int) "x version restored" 1 (Kv.version kv "x");
  Alcotest.(check int) "y restored" 3 (Kv.version kv "y");
  Alcotest.(check bool) "equal to copy" true (Kv.equal kv (Kv.copy kv))

let prop_kv_snapshot_roundtrip =
  QCheck.Test.make ~name:"kv snapshot/restore roundtrip" ~count:100
    QCheck.(small_list (pair (string_of_size Gen.(1 -- 8)) small_nat))
    (fun entries ->
      let kv = Kv.create () in
      List.iteri
        (fun i (k, v) ->
          Kv.set kv ~key:k ~value:(string_of_int v) ~version:(i + 1))
        entries;
      let snap = Kv.snapshot kv in
      let kv2 = Kv.create () in
      Kv.restore kv2 snap;
      Kv.equal kv kv2)

(* --- Wal ------------------------------------------------------------ *)

let test_wal_append_and_force () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  let l1 = Wal.append wal "r1" in
  let l2 = Wal.append wal "r2" in
  Alcotest.(check int) "lsns" 1 l1;
  Alcotest.(check int) "lsns" 2 l2;
  Alcotest.(check int) "nothing durable yet" 0 (Wal.durable_lsn wal);
  let done_at = ref (-1) in
  Wal.force wal (fun () -> done_at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "durable after force" 2 (Wal.durable_lsn wal);
  Alcotest.(check int) "force took latency" (Time.us 100) !done_at;
  Alcotest.(check (list string)) "durable records" [ "r1"; "r2" ]
    (Wal.durable_records wal)

let test_wal_group_commit () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  let finished = ref [] in
  Wal.force wal (fun () -> finished := "f1" :: !finished);
  (* While the device is busy, two more forces arrive; they coalesce into
     a single second cycle. *)
  ignore
    (Engine.schedule_after e (Time.us 10) (fun () ->
         ignore (Wal.append wal "b");
         Wal.force wal (fun () -> finished := "f2" :: !finished)));
  ignore
    (Engine.schedule_after e (Time.us 20) (fun () ->
         ignore (Wal.append wal "c");
         Wal.force wal (fun () -> finished := "f3" :: !finished)));
  Engine.run e;
  Alcotest.(check (list string)) "all forces completed" [ "f3"; "f2"; "f1" ]
    !finished;
  Alcotest.(check int) "two device cycles" 2 (Wal.force_count wal);
  Alcotest.(check int) "everything durable" 3 (Wal.durable_lsn wal)

let test_wal_group_window_coalesces () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  (* Three forces land inside one flush window; none is acknowledged
     before the single covering device cycle completes. *)
  let acks = ref [] in
  let force_at t tag =
    ignore
      (Engine.schedule_at e t (fun () ->
           let lsn = Wal.append wal tag in
           Wal.force wal (fun () ->
               Alcotest.(check bool)
                 "ack only after covering flush" true
                 (Wal.durable_lsn wal >= lsn);
               acks := (tag, Engine.now e) :: !acks)))
  in
  force_at Time.zero "a";
  force_at (Time.us 10) "b";
  force_at (Time.us 40) "c";
  Engine.run e;
  (* Window arms at t=0, fires at 50, device cycle completes at 150. *)
  Alcotest.(check (list (pair string int)))
    "all acked together, in order"
    [ ("a", Time.us 150); ("b", Time.us 150); ("c", Time.us 150) ]
    (List.rev !acks);
  Alcotest.(check int) "one device cycle for three forces" 1
    (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "started" 1 st.st_started;
  Alcotest.(check int) "completed" 1 st.st_completed;
  Alcotest.(check int) "lost" 0 st.st_lost;
  Alcotest.(check int) "pending" 0 st.st_pending

let test_wal_crash_between_enqueue_and_flush () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  ignore (Wal.append wal "a");
  let fired = ref false in
  Wal.force wal (fun () -> fired := true);
  (* Crash while the flush window is still armed: the device never
     started, so no cycle is started, completed, or lost. *)
  ignore (Engine.schedule_at e (Time.us 20) (fun () -> Wal.crash wal));
  Engine.run e;
  Alcotest.(check bool) "ack silenced" false !fired;
  Alcotest.(check int) "no device cycle counted" 0 (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "none started" 0 st.st_started;
  Alcotest.(check int) "none lost" 0 st.st_lost;
  Alcotest.(check int) "nothing left waiting" 0 st.st_pending

let test_wal_crash_mid_cycle_counts_lost () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  (* Crash after the window fired (t=50) but before the device cycle
     completes (t=150): the in-flight flush is lost, not completed. *)
  ignore (Engine.schedule_at e (Time.us 80) (fun () -> Wal.crash wal));
  Engine.run e;
  Alcotest.(check int) "lost cycle not in force_count" 0 (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "started" 1 st.st_started;
  Alcotest.(check int) "completed" 0 st.st_completed;
  Alcotest.(check int) "lost" 1 st.st_lost;
  Alcotest.(check int) "nothing durable" 0 (Wal.durable_lsn wal)

let test_wal_force_when_already_durable () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  Engine.run e;
  let fired = ref false in
  Wal.force wal ~upto:1 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "immediate completion" true !fired;
  Alcotest.(check int) "no extra device cycle" 1 (Wal.force_count wal)

let test_wal_crash_loses_volatile_suffix () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  Engine.run e;
  ignore (Wal.append wal "b");
  let fired = ref false in
  Wal.force wal (fun () -> fired := true);
  Wal.crash wal;
  Engine.run e;
  Alcotest.(check bool) "pending force callback silenced" false !fired;
  Alcotest.(check int) "durable prefix survives" 1 (Wal.durable_lsn wal);
  Alcotest.(check (list string)) "only durable record" [ "a" ]
    (Wal.all_records wal)

let test_wal_truncate () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 10) () in
  for i = 1 to 5 do
    ignore (Wal.append wal (Printf.sprintf "r%d" i))
  done;
  Wal.force wal (fun () -> ());
  Engine.run e;
  Wal.truncate wal ~upto:3;
  Alcotest.(check int) "first lsn" 4 (Wal.first_lsn wal);
  Alcotest.(check int) "tail stable" 5 (Wal.tail_lsn wal);
  Alcotest.(check (list string)) "suffix" [ "r4"; "r5" ] (Wal.durable_records wal);
  let l6 = Wal.append wal "r6" in
  Alcotest.(check int) "numbering continues" 6 l6;
  Alcotest.check_raises "cannot truncate past durable"
    (Invalid_argument "Wal.truncate: beyond durable point") (fun () ->
      Wal.truncate wal ~upto:6)

(* --- Recovery -------------------------------------------------------- *)

let upd t key value version =
  Log_record.Update { txn = t; key; value; version; undo = None }

let test_recovery_winners_only () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1;
      upd t2 "b" "2" 1;
      Log_record.Prepared { txn = t1; participants = [ 0 ] };
      Log_record.Prepared { txn = t2; participants = [ 0 ] };
      Log_record.Commit t1;
      Log_record.Abort t2;
    ]
  in
  let kv = Kv.create () in
  let o = Recovery.recover kv log in
  Alcotest.(check (list tid)) "winner" [ t1 ] o.committed;
  Alcotest.(check (list tid)) "loser" [ t2 ] o.aborted;
  Alcotest.(check (list tid)) "no in-doubt" []
    (List.map (fun (d : Recovery.in_doubt) -> d.txn) o.in_doubt);
  Alcotest.(check int) "one redo" 1 o.redone;
  Alcotest.(check bool) "a applied" true (Kv.mem kv "a");
  Alcotest.(check bool) "b not applied" false (Kv.mem kv "b")

let test_recovery_in_doubt () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1;
      Log_record.Prepared { txn = t1; participants = [ 0 ] };
      upd t2 "b" "1" 1;
      Log_record.Prepared { txn = t2; participants = [ 0 ] };
      Log_record.Precommit t2;
    ]
  in
  let kv = Kv.create () in
  let o = Recovery.recover kv log in
  Alcotest.(check (list tid)) "both in doubt" [ t1; t2 ]
    (List.map (fun (d : Recovery.in_doubt) -> d.txn) o.in_doubt);
  Alcotest.(check (list tid)) "t2 precommitted" [ t2 ]
    (List.filter_map
       (fun (d : Recovery.in_doubt) ->
         if d.state = Recovery.D_precommitted then Some d.txn else None)
       o.in_doubt);
  Alcotest.(check int) "no redo for in-doubt" 0 o.redone

let test_recovery_idempotent () =
  let t1 = txn 1 in
  let log = [ upd t1 "a" "5" 3; Log_record.Commit t1 ] in
  let kv = Kv.create () in
  ignore (Recovery.recover kv log);
  let snap = Kv.snapshot kv in
  ignore (Recovery.recover kv log);
  Alcotest.(check bool) "idempotent replay" true (Kv.snapshot kv = snap)

let test_recovery_last_write_wins () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1; Log_record.Commit t1; upd t2 "a" "2" 2;
      Log_record.Commit t2;
    ]
  in
  let kv = Kv.create () in
  ignore (Recovery.recover kv log);
  Alcotest.(check int) "final version" 2 (Kv.version kv "a")

let prop_recovery_never_applies_losers =
  let gen =
    QCheck.Gen.(
      small_list (pair (int_range 0 5) (oneofl [ `Commit; `Abort; `None ])))
  in
  QCheck.Test.make ~name:"recovery applies exactly the winners" ~count:200
    (QCheck.make gen)
    (fun txns ->
      (* Build a log where txn i writes key i; outcome per the tag. *)
      let log =
        List.concat
          (List.mapi
             (fun i (k, outcome) ->
               let t = txn (i + 1) in
               let base =
                 [ upd t (Printf.sprintf "k%d" k) (string_of_int i) (i + 1);
                   Log_record.Prepared { txn = t; participants = [ 0 ] } ]
               in
               match outcome with
               | `Commit -> base @ [ Log_record.Commit t ]
               | `Abort -> base @ [ Log_record.Abort t ]
               | `None -> base)
             txns)
      in
      let kv = Kv.create () in
      let o = Recovery.recover kv log in
      let winners = List.length o.committed in
      o.redone = winners)

(* --- Checkpoint ------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Checkpoint.take cp ~kv ~lsn:10;
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  let kv2 = Kv.create () in
  let from = Checkpoint.restore_latest cp kv2 in
  Alcotest.(check int) "replay from" 10 from;
  Alcotest.(check int) "snapshot version" 1 (Kv.version kv2 "a");
  Alcotest.(check int) "count" 1 (Checkpoint.count cp)

let test_checkpoint_empty () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"junk" ~value:"x" ~version:1;
  let from = Checkpoint.restore_latest cp kv in
  Alcotest.(check int) "from scratch" 0 from;
  Alcotest.(check int) "cleared" 0 (Kv.size kv)

(* Full cycle: run updates through a WAL + checkpoint, crash, recover,
   and compare against the expected state. *)
let test_storage_crash_cycle () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 50) () in
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  let apply t key value version commit =
    ignore (Wal.append wal (upd t key value version));
    if commit then begin
      ignore (Wal.append wal (Log_record.Commit t));
      Wal.force wal (fun () -> Kv.set kv ~key ~value ~version)
    end
  in
  apply (txn 1) "a" "1" 1 true;
  Engine.run e;
  Checkpoint.take cp ~kv ~lsn:(Wal.durable_lsn wal);
  apply (txn 2) "b" "2" 1 true;
  Engine.run e;
  (* A transaction whose commit record never becomes durable. *)
  ignore (Wal.append wal (upd (txn 3) "c" "3" 1));
  Wal.crash wal;
  (* Restart: snapshot + durable suffix replay. *)
  let kv' = Kv.create () in
  let from = Checkpoint.restore_latest cp kv' in
  let suffix =
    List.filteri (fun i _ -> i >= from) (Wal.durable_records wal)
  in
  let o = Recovery.recover kv' suffix in
  Alcotest.(check bool) "a survived (checkpoint)" true (Kv.mem kv' "a");
  Alcotest.(check bool) "b survived (replay)" true (Kv.mem kv' "b");
  Alcotest.(check bool) "c lost (never committed)" false (Kv.mem kv' "c");
  Alcotest.(check int) "b redone" 1 o.redone

(* --- Storage faults --------------------------------------------------- *)

let torn_faults = { Storage_faults.off with torn_writes = true }

let test_torn_crash_truncates_cleanly () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) ~faults:torn_faults e
      ~force_latency:(Time.us 100) ()
  in
  ignore (Wal.append wal "a");
  ignore (Wal.append wal "b");
  ignore (Wal.append wal "c");
  Wal.force wal (fun () -> ());
  (* The window fires at t=50 and the 3-record cycle completes at t=150;
     crash at t=80 tears it so only one record reached the platter.  The
     other two survive on disk as garbage with broken checksums. *)
  ignore (Engine.schedule_at e (Time.us 80) (fun () -> Wal.crash ~torn:1 wal));
  Engine.run e;
  Alcotest.(check int) "durable rolled to torn point" 1 (Wal.durable_lsn wal);
  Alcotest.(check int) "garbage retained for the scan" 3 (Wal.length wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "cycle counted torn, not lost" 1 st.st_torn;
  Alcotest.(check int) "not lost" 0 st.st_lost;
  Alcotest.(check int) "identity: started = completed + lost + torn"
    st.st_started
    (st.st_completed + st.st_lost + st.st_torn);
  (* Recovery scan: the tail is above the durable horizon, so this is a
     clean truncation — no durable data was lost. *)
  let r = Wal.scan wal in
  Alcotest.(check int) "two garbage records dropped" 2 r.Wal.sc_torn;
  Alcotest.(check int) "no durable loss" 0 r.Wal.sc_corrupt;
  Alcotest.(check int) "durable unchanged" 1 (Wal.durable_lsn wal);
  Alcotest.(check (list string)) "exactly the durable prefix" [ "a" ]
    (Wal.durable_records wal);
  let r2 = Wal.scan wal in
  Alcotest.(check int) "second scan finds nothing (torn)" 0 r2.Wal.sc_torn;
  Alcotest.(check int) "second scan finds nothing (corrupt)" 0 r2.Wal.sc_corrupt

let test_corruption_below_horizon_is_loud () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 10) () in
  ignore (Wal.append wal "a");
  ignore (Wal.append wal "b");
  ignore (Wal.append wal "c");
  Wal.force wal (fun () -> ());
  Engine.run e;
  Alcotest.(check int) "all durable" 3 (Wal.durable_lsn wal);
  (* Flip a record below the durable horizon: supposedly-stable data. *)
  Wal.corrupt_record wal ~lsn:2;
  let r = Wal.scan wal in
  Alcotest.(check int) "durable loss reported" 2 r.Wal.sc_corrupt;
  Alcotest.(check int) "not classified as torn" 0 r.Wal.sc_torn;
  (* The durable point must roll back so the corrupt records are never
     replayed as if they were good. *)
  Alcotest.(check int) "durable rolled back" 1 (Wal.durable_lsn wal);
  Alcotest.(check (list string)) "valid prefix only" [ "a" ]
    (Wal.durable_records wal);
  Alcotest.check_raises "cannot corrupt an unretained lsn"
    (Invalid_argument "Wal.corrupt_record: LSN not retained") (fun () ->
      Wal.corrupt_record wal ~lsn:9)

let test_checkpoint_corrupt_falls_back_to_previous () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Checkpoint.take cp ~kv ~lsn:5;
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  Checkpoint.take cp ~kv ~lsn:10;
  Checkpoint.corrupt cp;
  let kv' = Kv.create () in
  (match Checkpoint.restore_validated cp kv' with
  | Checkpoint.R_previous lsn ->
      Alcotest.(check int) "replay from the previous snapshot" 5 lsn;
      Alcotest.(check int) "previous content installed" 1 (Kv.version kv' "a")
  | Checkpoint.R_latest _ -> Alcotest.fail "installed a corrupt snapshot"
  | Checkpoint.R_none -> Alcotest.fail "previous snapshot was usable");
  Alcotest.(check (option int)) "previous lsn exposed for truncation floors"
    (Some 5) (Checkpoint.previous_lsn cp)

let test_checkpoint_corrupt_without_previous_replays_log () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Checkpoint.take cp ~kv ~lsn:5;
  Alcotest.(check bool) "no previous yet" false (Checkpoint.has_previous cp);
  Checkpoint.corrupt cp;
  let kv' = Kv.create () in
  Kv.set kv' ~key:"junk" ~value:"x" ~version:1;
  (match Checkpoint.restore_validated cp kv' with
  | Checkpoint.R_none -> ()
  | Checkpoint.R_latest _ | Checkpoint.R_previous _ ->
      Alcotest.fail "expected full log replay");
  Alcotest.(check int) "store cleared for full replay" 0 (Kv.size kv')

let test_checkpoint_take_never_demotes_corrupt_latest () =
  (* A corrupt latest must not be demoted to previous by the next take:
     that would break the fallback chain (double corruption would then
     silently install garbage or lose the floor). *)
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Checkpoint.take cp ~kv ~lsn:5;
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  Checkpoint.take cp ~kv ~lsn:10;
  Checkpoint.corrupt cp;
  Kv.set kv ~key:"a" ~value:"3" ~version:3;
  Checkpoint.take cp ~kv ~lsn:15;
  Alcotest.(check (option int)) "previous is still the valid lsn-5 snapshot"
    (Some 5) (Checkpoint.previous_lsn cp);
  let kv' = Kv.create () in
  match Checkpoint.restore_validated cp kv' with
  | Checkpoint.R_latest lsn -> Alcotest.(check int) "fresh latest valid" 15 lsn
  | Checkpoint.R_previous _ | Checkpoint.R_none ->
      Alcotest.fail "fresh snapshot should be installable"

(* Any append/force schedule, any crash time, any torn point: after the
   crash and the recovery scan, the durable log is exactly a prefix of
   what was appended, every acknowledged force is inside it, the cycle
   accounting identity holds, and a re-crash plus re-scan is a no-op
   (recovery is idempotent under double crashes). *)
let prop_torn_scan_yields_durable_prefix =
  let gen =
    QCheck.Gen.(
      QCheck.Gen.triple (int_range 1 12) (int_range 0 400) (int_range 0 4))
  in
  QCheck.Test.make ~name:"torn crash + scan = longest valid durable prefix"
    ~count:500 (QCheck.make gen)
    (fun (n, crash_us, keep) ->
      let e = Engine.create () in
      let wal =
        Wal.create ~group_window:(Time.us 30) ~faults:torn_faults e
          ~force_latency:(Time.us 60) ()
      in
      let recs = List.init n (fun i -> Printf.sprintf "r%d" (i + 1)) in
      let acked = ref 0 in
      List.iteri
        (fun i r ->
          ignore
            (Engine.schedule_at e (Time.us (i * 25)) (fun () ->
                 let lsn = Wal.append wal r in
                 Wal.force wal (fun () -> acked := max !acked lsn))))
        recs;
      Engine.run ~until:(Time.us crash_us) e;
      Wal.crash ~torn:keep wal;
      ignore (Wal.scan wal);
      let d = Wal.durable_lsn wal in
      let prefix = List.filteri (fun i _ -> i < d) recs in
      let st = Wal.stats wal in
      let ok =
        Wal.durable_records wal = prefix
        && !acked <= d
        && st.st_started = st.st_completed + st.st_lost + st.st_torn
        && st.st_pending = 0
      in
      (* Crash again during "recovery" and re-scan: both must be no-ops
         on the already-truncated log. *)
      Wal.crash ~torn:keep wal;
      let again = Wal.scan wal in
      ok
      && again.Wal.sc_torn = 0
      && again.Wal.sc_corrupt = 0
      && Wal.durable_records wal = prefix)

let () =
  Alcotest.run "storage"
    [
      ( "kv",
        [
          Alcotest.test_case "basic" `Quick test_kv_basic;
          Alcotest.test_case "snapshot/restore" `Quick test_kv_snapshot_restore;
          QCheck_alcotest.to_alcotest prop_kv_snapshot_roundtrip;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append and force" `Quick test_wal_append_and_force;
          Alcotest.test_case "group commit" `Quick test_wal_group_commit;
          Alcotest.test_case "group window coalesces" `Quick
            test_wal_group_window_coalesces;
          Alcotest.test_case "crash with window armed" `Quick
            test_wal_crash_between_enqueue_and_flush;
          Alcotest.test_case "crash mid cycle counts lost" `Quick
            test_wal_crash_mid_cycle_counts_lost;
          Alcotest.test_case "force when durable" `Quick
            test_wal_force_when_already_durable;
          Alcotest.test_case "crash loses volatile suffix" `Quick
            test_wal_crash_loses_volatile_suffix;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "winners only" `Quick test_recovery_winners_only;
          Alcotest.test_case "in-doubt classification" `Quick
            test_recovery_in_doubt;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "last write wins" `Quick
            test_recovery_last_write_wins;
          QCheck_alcotest.to_alcotest prop_recovery_never_applies_losers;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "empty" `Quick test_checkpoint_empty;
          Alcotest.test_case "crash cycle" `Quick test_storage_crash_cycle;
        ] );
      ( "storage faults",
        [
          Alcotest.test_case "torn crash truncates cleanly" `Quick
            test_torn_crash_truncates_cleanly;
          Alcotest.test_case "corruption below horizon is loud" `Quick
            test_corruption_below_horizon_is_loud;
          Alcotest.test_case "corrupt checkpoint falls back" `Quick
            test_checkpoint_corrupt_falls_back_to_previous;
          Alcotest.test_case "corrupt-only checkpoint means full replay" `Quick
            test_checkpoint_corrupt_without_previous_replays_log;
          Alcotest.test_case "take never demotes a corrupt latest" `Quick
            test_checkpoint_take_never_demotes_corrupt_latest;
          QCheck_alcotest.to_alcotest prop_torn_scan_yields_durable_prefix;
        ] );
    ]
