(* Tests for the storage engine: KV semantics, WAL durability and group
   commit, crash behaviour, truncation, recovery classification and
   replay, checkpoints. *)

open Rt_sim
open Rt_types
open Rt_storage

let txn ?(origin = 0) seq =
  Ids.Txn_id.make ~origin ~seq ~start_ts:(Time.ms seq)

let tid = Alcotest.testable Ids.Txn_id.pp Ids.Txn_id.equal

(* --- Kv ------------------------------------------------------------- *)

let test_kv_basic () =
  let kv = Kv.create () in
  Alcotest.(check bool) "absent" true (Kv.get kv "a" = None);
  Alcotest.(check int) "version 0 when absent" 0 (Kv.version kv "a");
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Alcotest.(check bool) "present" true (Kv.mem kv "a");
  (match Kv.get kv "a" with
  | Some { value; version } ->
      Alcotest.(check string) "value" "1" value;
      Alcotest.(check int) "version" 1 version
  | None -> Alcotest.fail "expected item");
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  Alcotest.(check int) "overwrite version" 2 (Kv.version kv "a");
  Kv.remove kv "a";
  Alcotest.(check bool) "removed" false (Kv.mem kv "a")

let test_kv_snapshot_restore () =
  let kv = Kv.create () in
  Kv.set kv ~key:"x" ~value:"1" ~version:1;
  Kv.set kv ~key:"y" ~value:"2" ~version:3;
  let snap = Kv.snapshot kv in
  Kv.set kv ~key:"x" ~value:"dirty" ~version:9;
  Kv.remove kv "y";
  Kv.restore kv snap;
  Alcotest.(check int) "x version restored" 1 (Kv.version kv "x");
  Alcotest.(check int) "y restored" 3 (Kv.version kv "y");
  Alcotest.(check bool) "equal to copy" true (Kv.equal kv (Kv.copy kv))

let prop_kv_snapshot_roundtrip =
  QCheck.Test.make ~name:"kv snapshot/restore roundtrip" ~count:100
    QCheck.(small_list (pair (string_of_size Gen.(1 -- 8)) small_nat))
    (fun entries ->
      let kv = Kv.create () in
      List.iteri
        (fun i (k, v) ->
          Kv.set kv ~key:k ~value:(string_of_int v) ~version:(i + 1))
        entries;
      let snap = Kv.snapshot kv in
      let kv2 = Kv.create () in
      Kv.restore kv2 snap;
      Kv.equal kv kv2)

(* --- Wal ------------------------------------------------------------ *)

let test_wal_append_and_force () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  let l1 = Wal.append wal "r1" in
  let l2 = Wal.append wal "r2" in
  Alcotest.(check int) "lsns" 1 l1;
  Alcotest.(check int) "lsns" 2 l2;
  Alcotest.(check int) "nothing durable yet" 0 (Wal.durable_lsn wal);
  let done_at = ref (-1) in
  Wal.force wal (fun () -> done_at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "durable after force" 2 (Wal.durable_lsn wal);
  Alcotest.(check int) "force took latency" (Time.us 100) !done_at;
  Alcotest.(check (list string)) "durable records" [ "r1"; "r2" ]
    (Wal.durable_records wal)

let test_wal_group_commit () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  let finished = ref [] in
  Wal.force wal (fun () -> finished := "f1" :: !finished);
  (* While the device is busy, two more forces arrive; they coalesce into
     a single second cycle. *)
  ignore
    (Engine.schedule_after e (Time.us 10) (fun () ->
         ignore (Wal.append wal "b");
         Wal.force wal (fun () -> finished := "f2" :: !finished)));
  ignore
    (Engine.schedule_after e (Time.us 20) (fun () ->
         ignore (Wal.append wal "c");
         Wal.force wal (fun () -> finished := "f3" :: !finished)));
  Engine.run e;
  Alcotest.(check (list string)) "all forces completed" [ "f3"; "f2"; "f1" ]
    !finished;
  Alcotest.(check int) "two device cycles" 2 (Wal.force_count wal);
  Alcotest.(check int) "everything durable" 3 (Wal.durable_lsn wal)

let test_wal_group_window_coalesces () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  (* Three forces land inside one flush window; none is acknowledged
     before the single covering device cycle completes. *)
  let acks = ref [] in
  let force_at t tag =
    ignore
      (Engine.schedule_at e t (fun () ->
           let lsn = Wal.append wal tag in
           Wal.force wal (fun () ->
               Alcotest.(check bool)
                 "ack only after covering flush" true
                 (Wal.durable_lsn wal >= lsn);
               acks := (tag, Engine.now e) :: !acks)))
  in
  force_at Time.zero "a";
  force_at (Time.us 10) "b";
  force_at (Time.us 40) "c";
  Engine.run e;
  (* Window arms at t=0, fires at 50, device cycle completes at 150. *)
  Alcotest.(check (list (pair string int)))
    "all acked together, in order"
    [ ("a", Time.us 150); ("b", Time.us 150); ("c", Time.us 150) ]
    (List.rev !acks);
  Alcotest.(check int) "one device cycle for three forces" 1
    (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "started" 1 st.st_started;
  Alcotest.(check int) "completed" 1 st.st_completed;
  Alcotest.(check int) "lost" 0 st.st_lost;
  Alcotest.(check int) "pending" 0 st.st_pending

let test_wal_crash_between_enqueue_and_flush () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  ignore (Wal.append wal "a");
  let fired = ref false in
  Wal.force wal (fun () -> fired := true);
  (* Crash while the flush window is still armed: the device never
     started, so no cycle is started, completed, or lost. *)
  ignore (Engine.schedule_at e (Time.us 20) (fun () -> Wal.crash wal));
  Engine.run e;
  Alcotest.(check bool) "ack silenced" false !fired;
  Alcotest.(check int) "no device cycle counted" 0 (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "none started" 0 st.st_started;
  Alcotest.(check int) "none lost" 0 st.st_lost;
  Alcotest.(check int) "nothing left waiting" 0 st.st_pending

let test_wal_crash_mid_cycle_counts_lost () =
  let e = Engine.create () in
  let wal =
    Wal.create ~group_window:(Time.us 50) e ~force_latency:(Time.us 100) ()
  in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  (* Crash after the window fired (t=50) but before the device cycle
     completes (t=150): the in-flight flush is lost, not completed. *)
  ignore (Engine.schedule_at e (Time.us 80) (fun () -> Wal.crash wal));
  Engine.run e;
  Alcotest.(check int) "lost cycle not in force_count" 0 (Wal.force_count wal);
  let st = Wal.stats wal in
  Alcotest.(check int) "started" 1 st.st_started;
  Alcotest.(check int) "completed" 0 st.st_completed;
  Alcotest.(check int) "lost" 1 st.st_lost;
  Alcotest.(check int) "nothing durable" 0 (Wal.durable_lsn wal)

let test_wal_force_when_already_durable () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  Engine.run e;
  let fired = ref false in
  Wal.force wal ~upto:1 (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "immediate completion" true !fired;
  Alcotest.(check int) "no extra device cycle" 1 (Wal.force_count wal)

let test_wal_crash_loses_volatile_suffix () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 100) () in
  ignore (Wal.append wal "a");
  Wal.force wal (fun () -> ());
  Engine.run e;
  ignore (Wal.append wal "b");
  let fired = ref false in
  Wal.force wal (fun () -> fired := true);
  Wal.crash wal;
  Engine.run e;
  Alcotest.(check bool) "pending force callback silenced" false !fired;
  Alcotest.(check int) "durable prefix survives" 1 (Wal.durable_lsn wal);
  Alcotest.(check (list string)) "only durable record" [ "a" ]
    (Wal.all_records wal)

let test_wal_truncate () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 10) () in
  for i = 1 to 5 do
    ignore (Wal.append wal (Printf.sprintf "r%d" i))
  done;
  Wal.force wal (fun () -> ());
  Engine.run e;
  Wal.truncate wal ~upto:3;
  Alcotest.(check int) "first lsn" 4 (Wal.first_lsn wal);
  Alcotest.(check int) "tail stable" 5 (Wal.tail_lsn wal);
  Alcotest.(check (list string)) "suffix" [ "r4"; "r5" ] (Wal.durable_records wal);
  let l6 = Wal.append wal "r6" in
  Alcotest.(check int) "numbering continues" 6 l6;
  Alcotest.check_raises "cannot truncate past durable"
    (Invalid_argument "Wal.truncate: beyond durable point") (fun () ->
      Wal.truncate wal ~upto:6)

(* --- Recovery -------------------------------------------------------- *)

let upd t key value version =
  Log_record.Update { txn = t; key; value; version; undo = None }

let test_recovery_winners_only () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1;
      upd t2 "b" "2" 1;
      Log_record.Prepared { txn = t1; participants = [ 0 ] };
      Log_record.Prepared { txn = t2; participants = [ 0 ] };
      Log_record.Commit t1;
      Log_record.Abort t2;
    ]
  in
  let kv = Kv.create () in
  let o = Recovery.recover kv log in
  Alcotest.(check (list tid)) "winner" [ t1 ] o.committed;
  Alcotest.(check (list tid)) "loser" [ t2 ] o.aborted;
  Alcotest.(check (list tid)) "no in-doubt" []
    (List.map (fun (d : Recovery.in_doubt) -> d.txn) o.in_doubt);
  Alcotest.(check int) "one redo" 1 o.redone;
  Alcotest.(check bool) "a applied" true (Kv.mem kv "a");
  Alcotest.(check bool) "b not applied" false (Kv.mem kv "b")

let test_recovery_in_doubt () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1;
      Log_record.Prepared { txn = t1; participants = [ 0 ] };
      upd t2 "b" "1" 1;
      Log_record.Prepared { txn = t2; participants = [ 0 ] };
      Log_record.Precommit t2;
    ]
  in
  let kv = Kv.create () in
  let o = Recovery.recover kv log in
  Alcotest.(check (list tid)) "both in doubt" [ t1; t2 ]
    (List.map (fun (d : Recovery.in_doubt) -> d.txn) o.in_doubt);
  Alcotest.(check (list tid)) "t2 precommitted" [ t2 ]
    (List.filter_map
       (fun (d : Recovery.in_doubt) ->
         if d.state = Recovery.D_precommitted then Some d.txn else None)
       o.in_doubt);
  Alcotest.(check int) "no redo for in-doubt" 0 o.redone

let test_recovery_idempotent () =
  let t1 = txn 1 in
  let log = [ upd t1 "a" "5" 3; Log_record.Commit t1 ] in
  let kv = Kv.create () in
  ignore (Recovery.recover kv log);
  let snap = Kv.snapshot kv in
  ignore (Recovery.recover kv log);
  Alcotest.(check bool) "idempotent replay" true (Kv.snapshot kv = snap)

let test_recovery_last_write_wins () =
  let t1 = txn 1 and t2 = txn 2 in
  let log =
    [
      upd t1 "a" "1" 1; Log_record.Commit t1; upd t2 "a" "2" 2;
      Log_record.Commit t2;
    ]
  in
  let kv = Kv.create () in
  ignore (Recovery.recover kv log);
  Alcotest.(check int) "final version" 2 (Kv.version kv "a")

let prop_recovery_never_applies_losers =
  let gen =
    QCheck.Gen.(
      small_list (pair (int_range 0 5) (oneofl [ `Commit; `Abort; `None ])))
  in
  QCheck.Test.make ~name:"recovery applies exactly the winners" ~count:200
    (QCheck.make gen)
    (fun txns ->
      (* Build a log where txn i writes key i; outcome per the tag. *)
      let log =
        List.concat
          (List.mapi
             (fun i (k, outcome) ->
               let t = txn (i + 1) in
               let base =
                 [ upd t (Printf.sprintf "k%d" k) (string_of_int i) (i + 1);
                   Log_record.Prepared { txn = t; participants = [ 0 ] } ]
               in
               match outcome with
               | `Commit -> base @ [ Log_record.Commit t ]
               | `Abort -> base @ [ Log_record.Abort t ]
               | `None -> base)
             txns)
      in
      let kv = Kv.create () in
      let o = Recovery.recover kv log in
      let winners = List.length o.committed in
      o.redone = winners)

(* --- Checkpoint ------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"a" ~value:"1" ~version:1;
  Checkpoint.take cp ~kv ~lsn:10;
  Kv.set kv ~key:"a" ~value:"2" ~version:2;
  let kv2 = Kv.create () in
  let from = Checkpoint.restore_latest cp kv2 in
  Alcotest.(check int) "replay from" 10 from;
  Alcotest.(check int) "snapshot version" 1 (Kv.version kv2 "a");
  Alcotest.(check int) "count" 1 (Checkpoint.count cp)

let test_checkpoint_empty () =
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  Kv.set kv ~key:"junk" ~value:"x" ~version:1;
  let from = Checkpoint.restore_latest cp kv in
  Alcotest.(check int) "from scratch" 0 from;
  Alcotest.(check int) "cleared" 0 (Kv.size kv)

(* Full cycle: run updates through a WAL + checkpoint, crash, recover,
   and compare against the expected state. *)
let test_storage_crash_cycle () =
  let e = Engine.create () in
  let wal = Wal.create e ~force_latency:(Time.us 50) () in
  let cp = Checkpoint.create () in
  let kv = Kv.create () in
  let apply t key value version commit =
    ignore (Wal.append wal (upd t key value version));
    if commit then begin
      ignore (Wal.append wal (Log_record.Commit t));
      Wal.force wal (fun () -> Kv.set kv ~key ~value ~version)
    end
  in
  apply (txn 1) "a" "1" 1 true;
  Engine.run e;
  Checkpoint.take cp ~kv ~lsn:(Wal.durable_lsn wal);
  apply (txn 2) "b" "2" 1 true;
  Engine.run e;
  (* A transaction whose commit record never becomes durable. *)
  ignore (Wal.append wal (upd (txn 3) "c" "3" 1));
  Wal.crash wal;
  (* Restart: snapshot + durable suffix replay. *)
  let kv' = Kv.create () in
  let from = Checkpoint.restore_latest cp kv' in
  let suffix =
    List.filteri (fun i _ -> i >= from) (Wal.durable_records wal)
  in
  let o = Recovery.recover kv' suffix in
  Alcotest.(check bool) "a survived (checkpoint)" true (Kv.mem kv' "a");
  Alcotest.(check bool) "b survived (replay)" true (Kv.mem kv' "b");
  Alcotest.(check bool) "c lost (never committed)" false (Kv.mem kv' "c");
  Alcotest.(check int) "b redone" 1 o.redone

let () =
  Alcotest.run "storage"
    [
      ( "kv",
        [
          Alcotest.test_case "basic" `Quick test_kv_basic;
          Alcotest.test_case "snapshot/restore" `Quick test_kv_snapshot_restore;
          QCheck_alcotest.to_alcotest prop_kv_snapshot_roundtrip;
        ] );
      ( "wal",
        [
          Alcotest.test_case "append and force" `Quick test_wal_append_and_force;
          Alcotest.test_case "group commit" `Quick test_wal_group_commit;
          Alcotest.test_case "group window coalesces" `Quick
            test_wal_group_window_coalesces;
          Alcotest.test_case "crash with window armed" `Quick
            test_wal_crash_between_enqueue_and_flush;
          Alcotest.test_case "crash mid cycle counts lost" `Quick
            test_wal_crash_mid_cycle_counts_lost;
          Alcotest.test_case "force when durable" `Quick
            test_wal_force_when_already_durable;
          Alcotest.test_case "crash loses volatile suffix" `Quick
            test_wal_crash_loses_volatile_suffix;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "winners only" `Quick test_recovery_winners_only;
          Alcotest.test_case "in-doubt classification" `Quick
            test_recovery_in_doubt;
          Alcotest.test_case "idempotent" `Quick test_recovery_idempotent;
          Alcotest.test_case "last write wins" `Quick
            test_recovery_last_write_wins;
          QCheck_alcotest.to_alcotest prop_recovery_never_applies_losers;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "empty" `Quick test_checkpoint_empty;
          Alcotest.test_case "crash cycle" `Quick test_storage_crash_cycle;
        ] );
    ]
