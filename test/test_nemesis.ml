(* Nemesis scenario and campaign tests: the scenario DSL produces
   deterministic, well-formed step lists, and every commit protocol
   reaches a unanimous, audit-clean decision under message loss AND
   duplication, full and sharded.  These are the minimized cousins of
   the bin/nemesis.exe campaign (see docs/NEMESIS.md). *)

open Rt_sim
module Scenario = Rt_nemesis.Scenario
module Campaign = Rt_nemesis.Campaign

(* --- scenario DSL ---------------------------------------------------- *)

let test_steps_clipped_and_sorted () =
  let s =
    Scenario.make "test" (fun ~sites:_ ~duration ->
        [
          (Time.ms 90, Scenario.Heal_partition);
          (Time.ms 10, Scenario.Crash 0);
          (Time.ms (-5), Scenario.Crash 1);
          (duration, Scenario.Crash 2);
          (Time.ms 10, Scenario.Recover 0);
        ])
  in
  let steps = Scenario.steps s ~sites:3 ~duration:(Time.ms 100) in
  Alcotest.(check int) "clipped to window" 3 (List.length steps);
  let times = List.map fst steps in
  Alcotest.(check bool) "sorted" true
    (List.sort Time.compare times = times);
  (* Stable: equal-time faults keep emission order. *)
  (match steps with
  | (_, Scenario.Crash 0) :: (_, Scenario.Recover 0) :: _ -> ()
  | _ -> Alcotest.fail "stable sort broke equal-time order")

let test_square_wave_faults_end_inside_window () =
  let s = Scenario.flapping ~period:(Time.ms 40) () in
  let steps = Scenario.steps s ~sites:4 ~duration:(Time.ms 100) in
  (* Two whole periods fit: on@0 off@20 on@40 off@60; the clipped third
     cycle (on@80 off@100) must not leave a dangling partition. *)
  let last_fault = snd (List.nth steps (List.length steps - 1)) in
  Alcotest.(check bool) "window ends healed" true
    (match last_fault with Scenario.Heal_partition -> true | _ -> false)

let test_cuts_reachability () =
  let at f = [ (Time.zero, f) ] in
  Alcotest.(check bool) "sever cuts" true
    (Scenario.cuts_reachability (at (Scenario.Sever [ (0, 1) ])));
  Alcotest.(check bool) "partition cuts" true
    (Scenario.cuts_reachability (at (Scenario.Partition [ [ 0 ]; [ 1 ] ])));
  Alcotest.(check bool) "lossy does not" false
    (Scenario.cuts_reachability
       (at (Scenario.Lossy { pairs = None; drop = 0.5; duplicate = 0.5 })));
  Alcotest.(check bool) "crash does not" false
    (Scenario.cuts_reachability (at (Scenario.Crash 0)))

let test_scenario_steps_deterministic () =
  let s = Scenario.churn () in
  let a = Scenario.steps s ~sites:5 ~duration:(Time.ms 300) in
  let b = Scenario.steps s ~sites:5 ~duration:(Time.ms 300) in
  Alcotest.(check bool) "same steps" true (a = b)

(* --- lossy-link commit coverage -------------------------------------- *)

(* Every protocol must reach unanimous, audit-clean decisions with both
   drop > 0 and duplicate > 0 on every link, under a fixed seed, for
   full and sharded placements.  This is exactly the fault mix that
   historically leaked locks (duplicate data ops re-acquiring after
   resolution) and spun resend storms (lost decision acks never
   re-acked), so it runs in-tree, not only in the campaign binary. *)
let lossy_cell ~protocol ~placement () =
  let scenario = Scenario.lossy ~drop:0.05 ~duplicate:0.05 () in
  let r =
    Campaign.run_one ~seed:7 ~sites:5 ~clients:3 ~duration:(Time.ms 200)
      ~scenario ~protocol ~placement ()
  in
  Alcotest.(check (list string)) "no audit violations" []
    (List.map
       (fun v -> Format.asprintf "%a" Rt_core.Audit.pp_violation v)
       r.Campaign.r_violations);
  Alcotest.(check bool) "made progress" true
    (r.Campaign.r_committed + r.Campaign.r_aborted > 0);
  Alcotest.(check bool) "faults actually fired" true
    (r.Campaign.r_dropped_link > 0 && r.Campaign.r_duplicated > 0);
  Alcotest.(check bool) "drained after heal" true
    (r.Campaign.r_drain <> None)

let lossy_cases =
  List.concat_map
    (fun protocol ->
      List.map
        (fun placement ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s under loss+dup" (fst protocol)
               (fst placement))
            `Slow
            (lossy_cell ~protocol ~placement))
        (Campaign.default_placements ~sites:5))
    Campaign.default_protocols

let () =
  Alcotest.run "nemesis"
    [
      ( "scenario-dsl",
        [
          Alcotest.test_case "steps clipped and sorted" `Quick
            test_steps_clipped_and_sorted;
          Alcotest.test_case "square wave ends inside window" `Quick
            test_square_wave_faults_end_inside_window;
          Alcotest.test_case "cuts-reachability classification" `Quick
            test_cuts_reachability;
          Alcotest.test_case "steps deterministic" `Quick
            test_scenario_steps_deterministic;
        ] );
      ("lossy-commit", lossy_cases);
    ]
