(* Cross-shard atomicity: a transaction touching several shards must
   commit on every replica of every touched shard, or on none of them —
   even across crashes and partitions.  The property tests drive the
   schedule-exploring sandbox with participant sets derived from real
   placements and the full cluster with mid-protocol crash injection;
   the regression test isolates one shard's replica island and checks
   cross-shard transactions abort without split-brain. *)

open Rt_sim
open Rt_core
open Rt_placement
module Mix = Rt_workload.Mix
module Sandbox = Rt_commit.Sandbox
module Two_pc = Rt_commit.Two_pc

let sharded_config ?(sites = 5) ?(degree = 3) ?(layout = Placement.Round_robin)
    ?(seed = 1) () =
  let placement =
    Placement.create ~layout ~map:(Shard_map.range ~boundaries:[ "b" ]) ~sites
      ~degree ()
  in
  ( { (Config.default ~sites ()) with placement = Some placement; seed },
    placement )

let run_for cluster duration =
  Cluster.run ~until:(Time.add (Cluster.now cluster) duration) cluster

let value_at cluster site key =
  Option.map
    (fun (i : Rt_storage.Kv.item) -> i.value)
    (Rt_storage.Kv.get (Site.kv (Cluster.site cluster site)) key)

(* Every replica of [key]'s shard holds the same value for it. *)
let uniform_at cluster placement key =
  match Placement.replicas_of_key placement key with
  | [] -> Alcotest.fail "key owned by no replica"
  | first :: rest ->
      let v0 = value_at cluster first key in
      List.iter
        (fun s ->
          if value_at cluster s key <> v0 then
            Alcotest.failf "replicas of %s disagree (site %d vs %d)" key first
              s)
        rest;
      v0

(* --- sandbox interleaver property ------------------------------------ *)

(* The participant set of a cross-shard transaction is the union of the
   touched shards' replica sets.  Model that union in the sandbox: for
   random placements, schedules, votes, and a mid-protocol crash with
   recovery, no two participants may ever decide differently. *)
let prop_union_participants_agree =
  let protos =
    [|
      Sandbox.P_two_pc Two_pc.Presumed_nothing;
      Sandbox.P_two_pc Two_pc.Presumed_abort;
      Sandbox.P_two_pc Two_pc.Presumed_commit;
      Sandbox.P_three_pc;
    |]
  in
  QCheck.Test.make ~name:"cross-shard participant union agrees" ~count:250
    QCheck.(
      quad (int_range 0 99999)
        (pair (int_range 4 8) (int_range 2 3))
        (pair small_nat small_nat)
        small_nat)
    (fun (seed, (sites, degree), (crash_site, crash_after), vote_bits) ->
      let p =
        Placement.create
          ~map:(Shard_map.range ~boundaries:[ "b" ])
          ~sites ~degree ()
      in
      let union =
        List.sort_uniq Int.compare
          (Placement.replicas p ~shard:0 @ Placement.replicas p ~shard:1)
      in
      let n = List.length union in
      QCheck.assume (n >= 2);
      let votes = Array.init n (fun i -> vote_bits land (1 lsl i) <> 0) in
      let crash = crash_site mod n in
      let after = 1 + (crash_after mod 40) in
      let outcome =
        Sandbox.run ~seed
          ~crashes:[ (crash, after) ]
          ~recoveries:[ (crash, after + 25) ]
          ~proto:protos.(seed mod Array.length protos)
          ~sites:n ~votes ()
      in
      if not outcome.Sandbox.agreement then
        QCheck.Test.fail_reportf
          "participants of a cross-shard txn disagreed (n=%d crash=%d@%d)" n
          crash after;
      (* Validity: a commit requires unanimous yes votes. *)
      (match
         List.find_opt
           (fun (_, d) -> d = Rt_commit.Protocol.Commit)
           outcome.Sandbox.decisions
       with
      | Some _ when not (Array.for_all Fun.id votes) ->
          QCheck.Test.fail_reportf "committed despite a no vote"
      | _ -> ());
      true)

(* --- cluster-level property ------------------------------------------ *)

(* A real sharded cluster, a transaction writing one key in each shard,
   and a replica crashed at a random instant mid-protocol then recovered:
   after quiescence each key is uniform across its shard's replicas and
   either both shards installed the writes or neither did. *)
let prop_cluster_all_or_nothing =
  QCheck.Test.make ~name:"cluster cross-shard all-or-nothing" ~count:40
    QCheck.(
      quad (int_range 0 9999) (int_range 0 4) (int_range 0 4)
        (int_range 0 2000))
    (fun (seed, origin, crash_site, crash_us) ->
      let config, placement = sharded_config ~seed () in
      let cluster = Cluster.create config in
      let engine = Cluster.engine cluster in
      let va = Printf.sprintf "av%d" seed and vb = Printf.sprintf "bv%d" seed in
      let outcome = ref None in
      Cluster.submit cluster ~site:origin
        ~ops:[ Mix.Write ("a", va); Mix.Write ("b", vb) ]
        ~k:(fun o -> outcome := Some o);
      ignore
        (Engine.schedule_at engine (Time.us crash_us) (fun () ->
             Cluster.crash_site cluster crash_site));
      ignore
        (Engine.schedule_at engine (Time.ms 100) (fun () ->
             Cluster.recover_site cluster crash_site));
      run_for cluster (Time.sec 3);
      let a = uniform_at cluster placement "a" in
      let b = uniform_at cluster placement "b" in
      (match (a, b) with
      | Some _, None | None, Some _ ->
          QCheck.Test.fail_reportf
            "split write: a=%s b=%s (origin=%d crash=%d@%dus)"
            (Option.value a ~default:"-")
            (Option.value b ~default:"-")
            origin crash_site crash_us
      | _ -> ());
      (* When the coordinator survived to report, the stores must match
         the reported outcome. *)
      (match !outcome with
      | Some Site.Committed when a <> Some va || b <> Some vb ->
          QCheck.Test.fail_reportf "reported commit but writes missing"
      | Some (Site.Aborted _) when a <> None || b <> None ->
          QCheck.Test.fail_reportf "reported abort but writes installed"
      | _ -> ());
      true)

(* --- isolated-shard regression ---------------------------------------- *)

let test_isolated_shard_aborts_cross_shard () =
  (* Spread layout over 6 sites: shard 0 lives on {0,1,2}, shard 1 on
     {3,4,5} — disjoint islands, so isolating shard 1 severs every
     cross-shard transaction coordinated on the other side. *)
  let config, placement =
    sharded_config ~sites:6 ~layout:Placement.Spread ~seed:11 ()
  in
  let cluster = Cluster.create config in
  Failure.isolate_shard cluster ~shard:1;
  (* Let the failure detector notice the partition before submitting. *)
  run_for cluster (Time.sec 2);
  let xshard = ref None and local = ref None in
  Cluster.submit cluster ~site:0
    ~ops:[ Mix.Write ("a", "x1"); Mix.Write ("b", "x2") ]
    ~k:(fun o -> xshard := Some o);
  run_for cluster (Time.sec 5);
  (match !xshard with
  | Some (Site.Aborted _) -> ()
  | Some Site.Committed ->
      Alcotest.fail "cross-shard txn committed across the partition"
  | None -> Alcotest.fail "cross-shard txn never resolved");
  (* No split-brain: neither side installed either write. *)
  Alcotest.(check (option string)) "a absent" None
    (uniform_at cluster placement "a");
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        (Printf.sprintf "b absent at %d" s)
        None (value_at cluster s "b"))
    (Placement.replicas_of_key placement "b");
  (* Shard-local work on the reachable side still commits. *)
  Cluster.submit cluster ~site:1
    ~ops:[ Mix.Write ("a", "solo") ]
    ~k:(fun o -> local := Some o);
  run_for cluster (Time.sec 3);
  (match !local with
  | Some Site.Committed -> ()
  | Some (Site.Aborted r) ->
      Alcotest.failf "shard-local txn aborted during partition (%s)"
        (Site.abort_reason_label r)
  | None -> Alcotest.fail "shard-local txn never resolved");
  (* Heal: cross-shard transactions flow again and the stores converge. *)
  Cluster.heal cluster;
  run_for cluster (Time.sec 2);
  let healed = ref None in
  Cluster.submit cluster ~site:0
    ~ops:[ Mix.Write ("a", "h1"); Mix.Write ("b", "h2") ]
    ~k:(fun o -> healed := Some o);
  run_for cluster (Time.sec 3);
  (match !healed with
  | Some Site.Committed -> ()
  | _ -> Alcotest.fail "cross-shard txn failed after heal");
  Alcotest.(check (option string)) "a healed" (Some "h1")
    (uniform_at cluster placement "a");
  Alcotest.(check (option string)) "b healed" (Some "h2")
    (uniform_at cluster placement "b");
  Alcotest.(check bool) "converged" true (Cluster.converged cluster)

let () =
  Alcotest.run "xshard"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_union_participants_agree;
          QCheck_alcotest.to_alcotest prop_cluster_all_or_nothing;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "isolated shard aborts cross-shard" `Quick
            test_isolated_shard_aborts_cross_shard;
        ] );
    ]
