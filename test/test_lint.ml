(* Tests for rt_lint: per rule, an inline fixture that must match, one
   that must not, and one where an allow-annotation suppresses the
   finding.  Fixtures are parsed with the same compiler-libs pipeline
   the real linter uses, so these tests pin both the rule heuristics
   and the suppression machinery. *)

module D = Rt_lint_core.Driver
module F = Rt_lint_core.Finding

let rules_of name =
  match D.find_rule name with
  | Some r -> [ r ]
  | None -> Alcotest.failf "unknown rule %s" name

(* Findings of a single rule on an inline unit. *)
let run ?(file = "lib/fixture/fixture.ml") rule src =
  D.lint_source ~rules:(rules_of rule) ~file src

let check_count ?file rule ~expect src =
  Alcotest.(check int)
    (Printf.sprintf "%s on %S" rule src)
    expect
    (List.length (run ?file rule src))

let flags ?file rule src = check_count ?file rule ~expect:1 src
let clean ?file rule src = check_count ?file rule ~expect:0 src

(* --- no-wall-clock ---------------------------------------------------- *)

let test_wall_clock_match () =
  flags "no-wall-clock" "let t = Unix.gettimeofday ()";
  flags "no-wall-clock" "let t = Sys.time ()";
  check_count "no-wall-clock" ~expect:2
    "let d = Unix.gettimeofday () -. Unix.time ()"

let test_wall_clock_no_match () =
  clean "no-wall-clock" "let t engine = Rt_sim.Engine.now engine";
  (* Unrelated Unix/Sys values stay legal. *)
  clean "no-wall-clock" "let argv = Sys.argv"

let test_wall_clock_suppressed () =
  clean "no-wall-clock"
    "(* rt_lint: allow no-wall-clock -- host-side timing *)\n\
     let t = Unix.gettimeofday ()";
  (* Same-line annotation works too. *)
  clean "no-wall-clock"
    "let t = Unix.gettimeofday () (* rt_lint: allow no-wall-clock *)"

(* --- no-global-rng ---------------------------------------------------- *)

let test_rng_match () =
  flags "no-global-rng" "let x = Random.int 10";
  flags "no-global-rng" "let () = Random.self_init ()";
  flags "no-global-rng" "let s = Random.State.make [| 1 |]"

let test_rng_no_match () =
  clean "no-global-rng" "let x rng = Rt_sim.Rng.int rng 10";
  (* The seeded generator module itself is exempt. *)
  clean ~file:"lib/sim/rng.ml" "no-global-rng" "let x = Random.int 10"

let test_rng_suppressed () =
  clean "no-global-rng"
    "(* rt_lint: allow no-global-rng -- fixture *)\nlet x = Random.int 10"

(* --- no-poly-compare-on-ids ------------------------------------------ *)

let test_poly_compare_match () =
  flags "no-poly-compare-on-ids" "let sorted l = List.sort compare l";
  flags "no-poly-compare-on-ids" "let c = Stdlib.compare 1 2";
  flags "no-poly-compare-on-ids" "let h x = Hashtbl.hash x";
  (* =/<> on id-ish operands. *)
  flags "no-poly-compare-on-ids" "let same a tid = a = tid";
  flags "no-poly-compare-on-ids" "let differ r txn = r.txn <> txn"

let test_poly_compare_no_match () =
  clean "no-poly-compare-on-ids" "let sorted l = List.sort Int.compare l";
  clean "no-poly-compare-on-ids"
    "let eq a b = Ids.Txn_id.equal a b && String.equal \"x\" \"y\"";
  (* A file that binds its own [compare] may use it bare (Ids.Txn_id,
     Time, ... shadow the polymorphic one). *)
  clean "no-poly-compare-on-ids"
    "let compare a b = Int.compare a b\nlet older a b = compare a b < 0";
  (* Plain equality on non-id operands is untouched. *)
  clean "no-poly-compare-on-ids" "let is_root site = site = 0";
  (* ids.ml owns id hashing. *)
  clean ~file:"lib/types/ids.ml" "no-poly-compare-on-ids"
    "let hash t = Hashtbl.hash t"

let test_poly_compare_suppressed () =
  clean "no-poly-compare-on-ids"
    "(* rt_lint: allow no-poly-compare-on-ids -- structural tuples *)\n\
     let sorted l = List.sort compare l"

(* --- deterministic-iteration ----------------------------------------- *)

let test_det_iter_match () =
  flags "deterministic-iteration"
    "let dump t = Hashtbl.iter (fun k _ -> print_endline k) t";
  flags "deterministic-iteration"
    "let entries t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []";
  flags "deterministic-iteration"
    "let txns t = Ids.Txn_map.fold (fun k _ acc -> k :: acc) t []"

let test_det_iter_no_match () =
  (* A fold piped straight into a sort is the blessed shape. *)
  clean "deterministic-iteration"
    "let entries t =\n\
    \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []\n\
    \  |> List.sort (fun (a, _) (b, _) -> String.compare a b)";
  clean "deterministic-iteration"
    "let entries t =\n\
    \  List.sort cmp (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])";
  (* Ordered containers are fine. *)
  clean "deterministic-iteration" "let sum m = M.fold (fun _ v a -> v + a) m 0"

let test_det_iter_suppressed () =
  clean "deterministic-iteration"
    "let size t =\n\
    \  (* rt_lint: allow deterministic-iteration -- commutative count *)\n\
    \  Hashtbl.fold (fun _ _ n -> n + 1) t 0"

(* --- no-silent-catch-all ---------------------------------------------- *)

let protocol_file = "lib/commit/fixture.ml"

let test_catch_all_match () =
  flags ~file:protocol_file "no-silent-catch-all"
    "let step g = try g () with _ -> ()";
  flags ~file:"lib/storage/fixture.ml" "no-silent-catch-all"
    "let recover g = try g () with _e -> None | _ -> None"

let test_catch_all_no_match () =
  (* Named exceptions are deliberate. *)
  clean ~file:protocol_file "no-silent-catch-all"
    "let step g = try g () with Not_found -> ()";
  (* Guarded catch-alls make a decision, not a swallow. *)
  clean ~file:protocol_file "no-silent-catch-all"
    "let step g d = try g () with _ when d -> ()";
  (* Outside the protocol layers the rule is silent. *)
  clean ~file:"lib/member/fixture.ml" "no-silent-catch-all"
    "let step g = try g () with _ -> ()"

let test_catch_all_suppressed () =
  clean ~file:protocol_file "no-silent-catch-all"
    "let step g =\n\
    \  (* rt_lint: allow no-silent-catch-all -- fixture *)\n\
    \  try g () with _ -> ()"

(* --- mli-coverage ------------------------------------------------------ *)

let with_temp_module ~mli f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "rt_lint_test"
  in
  let libdir = Filename.concat dir "lib" in
  if not (Sys.file_exists libdir) then begin
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    Sys.mkdir libdir 0o755
  end;
  let ml = Filename.concat libdir "fixture.ml" in
  let write path = Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "let x = 1\n") in
  write ml;
  if mli then write (ml ^ "i") else if Sys.file_exists (ml ^ "i") then
    Sys.remove (ml ^ "i");
  Fun.protect ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ ml; ml ^ "i" ])
    (fun () -> f ml)

let test_mli_match () =
  with_temp_module ~mli:false (fun ml ->
      Alcotest.(check int) "missing mli flagged" 1
        (List.length (D.lint_file ~rules:(rules_of "mli-coverage") ml)))

let test_mli_no_match () =
  with_temp_module ~mli:true (fun ml ->
      Alcotest.(check int) "mli present" 0
        (List.length (D.lint_file ~rules:(rules_of "mli-coverage") ml)));
  (* Executables don't need interfaces. *)
  Alcotest.(check int) "bin exempt" 0
    (List.length
       (D.lint_source ~rules:(rules_of "mli-coverage") ~file:"bin/soak.ml"
          "let x = 1"))

let test_mli_suppressed () =
  with_temp_module ~mli:false (fun ml ->
      let src =
        "(* rt_lint: allow-file mli-coverage -- generated fixture *)\n\
         let x = 1\n"
      in
      Out_channel.with_open_bin ml (fun oc -> Out_channel.output_string oc src);
      Alcotest.(check int) "allow-file honoured" 0
        (List.length (D.lint_file ~rules:(rules_of "mli-coverage") ml)))

(* --- no-toplevel-mutable-state ----------------------------------------- *)

let test_toplevel_state_match () =
  flags "no-toplevel-mutable-state" "let table = Hashtbl.create 8";
  flags "no-toplevel-mutable-state" "let flag = ref false";
  (* Nested module-level lets are still initialization-time. *)
  flags "no-toplevel-mutable-state"
    "let cell = let base = 2 in ref base"

let test_toplevel_state_no_match () =
  (* Constructors under a lambda are per-call state. *)
  clean "no-toplevel-mutable-state" "let make () = ref false";
  clean "no-toplevel-mutable-state" "let create n = Hashtbl.create n";
  (* Outside lib/ the rule does not apply. *)
  clean ~file:"bin/soak.ml" "no-toplevel-mutable-state"
    "let table = Hashtbl.create 8"

let test_toplevel_state_suppressed () =
  clean "no-toplevel-mutable-state"
    "(* rt_lint: allow no-toplevel-mutable-state -- debug tap *)\n\
     let flag = ref false"

(* --- fingerprint-coverage ---------------------------------------------- *)

(* The rule consults the companion .mli on disk, so fixtures need a real
   file pair under a lib/core path. *)
let with_fp_module ~mli ~src f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "rt_lint_test_fp"
  in
  let libdir = Filename.concat dir "lib" in
  let coredir = Filename.concat libdir "core" in
  List.iter
    (fun d -> try Sys.mkdir d 0o755 with Sys_error _ -> ())
    [ dir; libdir; coredir ];
  let ml = Filename.concat coredir "fixture.ml" in
  let write path s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  write ml src;
  write (ml ^ "i") mli;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ ml; ml ^ "i" ])
    (fun () -> f ml)

let fp_count ~mli ~src =
  with_fp_module ~mli ~src (fun ml ->
      List.length (D.lint_file ~rules:(rules_of "fingerprint-coverage") ml))

let test_fingerprint_match () =
  Alcotest.(check int) "mutable field, no renderer" 1
    (fp_count ~mli:"type t\n"
       ~src:"type t = { mutable count : int }\nlet create () = { count = 0 }\n")

let test_fingerprint_no_match () =
  Alcotest.(check int) "dump exported" 0
    (fp_count ~mli:"type t\n\nval dump : t -> string\n"
       ~src:"type t = { mutable count : int }\nlet dump _ = \"\"\n");
  Alcotest.(check int) "immutable record" 0
    (fp_count ~mli:"type t\n" ~src:"type t = { count : int }\n");
  (* Outside the explorer's state surface the rule does not apply. *)
  Alcotest.(check int) "out of scope" 0
    (List.length
       (D.lint_source
          ~rules:(rules_of "fingerprint-coverage")
          ~file:"lib/workload/fixture.ml"
          "type t = { mutable count : int }"))

let test_fingerprint_suppressed () =
  Alcotest.(check int) "annotated" 0
    (fp_count ~mli:"type t\n"
       ~src:
         "type t = {\n\
          \  (* rt_lint: allow fingerprint-coverage -- driver tallies *)\n\
          \  mutable count : int;\n\
          }\n")

(* --- driver glue ------------------------------------------------------- *)

let test_finding_positions () =
  match run "no-wall-clock" "let a = 1\nlet t = Unix.gettimeofday ()" with
  | [ f ] ->
      Alcotest.(check int) "line" 2 f.F.line;
      Alcotest.(check int) "col" 8 f.F.col;
      Alcotest.(check string) "rule" "no-wall-clock" f.F.rule
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_all_rules_at_once () =
  (* One unit tripping several rules; the driver reports each, sorted. *)
  let src =
    "let t = Unix.gettimeofday ()\nlet x = Random.int 10\n" in
  let fs = D.lint_source ~file:"lib/fixture/fixture.ml" src in
  let rules = List.map (fun (f : F.t) -> f.F.rule) fs in
  Alcotest.(check (list string))
    "rules in order"
    [ "mli-coverage"; "no-wall-clock"; "no-global-rng" ]
    rules

let test_suppression_is_per_rule () =
  (* An allow for one rule must not silence another on the same line. *)
  let src =
    "(* rt_lint: allow no-global-rng -- wrong rule *)\n\
     let t = Unix.gettimeofday ()"
  in
  Alcotest.(check int) "still flagged" 1
    (List.length
       (D.lint_source ~rules:(rules_of "no-wall-clock")
          ~file:"lib/fixture/fixture.ml" src))

let () =
  Alcotest.run "lint"
    [
      ( "no-wall-clock",
        [
          Alcotest.test_case "match" `Quick test_wall_clock_match;
          Alcotest.test_case "no match" `Quick test_wall_clock_no_match;
          Alcotest.test_case "suppressed" `Quick test_wall_clock_suppressed;
        ] );
      ( "no-global-rng",
        [
          Alcotest.test_case "match" `Quick test_rng_match;
          Alcotest.test_case "no match" `Quick test_rng_no_match;
          Alcotest.test_case "suppressed" `Quick test_rng_suppressed;
        ] );
      ( "no-poly-compare-on-ids",
        [
          Alcotest.test_case "match" `Quick test_poly_compare_match;
          Alcotest.test_case "no match" `Quick test_poly_compare_no_match;
          Alcotest.test_case "suppressed" `Quick test_poly_compare_suppressed;
        ] );
      ( "deterministic-iteration",
        [
          Alcotest.test_case "match" `Quick test_det_iter_match;
          Alcotest.test_case "no match" `Quick test_det_iter_no_match;
          Alcotest.test_case "suppressed" `Quick test_det_iter_suppressed;
        ] );
      ( "no-silent-catch-all",
        [
          Alcotest.test_case "match" `Quick test_catch_all_match;
          Alcotest.test_case "no match" `Quick test_catch_all_no_match;
          Alcotest.test_case "suppressed" `Quick test_catch_all_suppressed;
        ] );
      ( "mli-coverage",
        [
          Alcotest.test_case "match" `Quick test_mli_match;
          Alcotest.test_case "no match" `Quick test_mli_no_match;
          Alcotest.test_case "suppressed" `Quick test_mli_suppressed;
        ] );
      ( "no-toplevel-mutable-state",
        [
          Alcotest.test_case "match" `Quick test_toplevel_state_match;
          Alcotest.test_case "no match" `Quick test_toplevel_state_no_match;
          Alcotest.test_case "suppressed" `Quick test_toplevel_state_suppressed;
        ] );
      ( "fingerprint-coverage",
        [
          Alcotest.test_case "match" `Quick test_fingerprint_match;
          Alcotest.test_case "no match" `Quick test_fingerprint_no_match;
          Alcotest.test_case "suppressed" `Quick test_fingerprint_suppressed;
        ] );
      ( "driver",
        [
          Alcotest.test_case "positions" `Quick test_finding_positions;
          Alcotest.test_case "multi-rule" `Quick test_all_rules_at_once;
          Alcotest.test_case "per-rule suppression" `Quick
            test_suppression_is_per_rule;
        ] );
    ]
