(* Deeper cluster tests: checkpointing and log truncation, presumed-commit
   recovery semantics, random partitions (no-fork property), read-only
   optimization end to end, and a randomized soak with crashes. *)

open Rt_sim
open Rt_core
module Mix = Rt_workload.Mix
module Kv = Rt_storage.Kv

let run_for cluster d =
  Cluster.run ~until:(Time.add (Cluster.now cluster) d) cluster

let run_one cluster ~site ~ops =
  let result = ref None in
  Cluster.submit cluster ~site ~ops ~k:(fun o -> result := Some o);
  run_for cluster (Time.sec 2);
  !result

let check_committed = function
  | Some Site.Committed -> ()
  | Some (Site.Aborted r) ->
      Alcotest.failf "expected commit, got %s" (Site.abort_reason_label r)
  | None -> Alcotest.fail "no outcome"

let value_at cluster site key =
  Option.map
    (fun (i : Kv.item) -> i.value)
    (Kv.get (Site.kv (Cluster.site cluster site)) key)

(* --- checkpoints -------------------------------------------------------- *)

let test_checkpoint_truncates_and_recovers () =
  let config =
    { (Config.default ~sites:3 ()) with checkpoint_every = 5; seed = 3 }
  in
  let cluster = Cluster.create config in
  for i = 1 to 30 do
    check_committed
      (run_one cluster ~site:(i mod 3)
         ~ops:[ Mix.Write (Printf.sprintf "k%d" (i mod 7), string_of_int i) ])
  done;
  (* Checkpoints happened and kept the log short. *)
  let s0 = Cluster.site cluster 0 in
  Alcotest.(check bool) "log truncated" true (Site.log_length s0 < 60);
  (* A crash after truncation still recovers the full state. *)
  let before = Kv.snapshot (Site.kv s0) in
  Cluster.crash_site cluster 0;
  run_for cluster (Time.ms 100);
  Cluster.recover_site cluster 0;
  run_for cluster (Time.ms 500);
  Alcotest.(check bool) "serving after recovery" true (Site.serving s0);
  Alcotest.(check bool) "state identical after restart" true
    (Kv.snapshot (Site.kv s0) = before)

(* --- presumed-commit recovery ------------------------------------------- *)

let test_prc_collecting_aborts_after_coordinator_crash () =
  (* Presumed commit force-writes a Collecting record before voting; if
     the coordinator crashes before any decision, recovery must answer
     inquiries with ABORT for that transaction (despite the commit
     presumption for unknown ones). *)
  let config =
    { (Config.default ~sites:3 ()) with
      commit_protocol = Config.Two_phase Rt_commit.Two_pc.Presumed_commit;
      seed = 13 }
  in
  let cluster = Cluster.create config in
  let outcome = ref None in
  Cluster.submit cluster ~site:0 ~ops:[ Mix.Write ("x", "1") ] ~k:(fun o ->
      outcome := Some o);
  (* Crash the coordinator just after the collecting record is durable
     but (very likely) before the decision. *)
  ignore
    (Engine.schedule_at (Cluster.engine cluster) (Time.us 120) (fun () ->
         Cluster.crash_site cluster 0));
  ignore
    (Engine.schedule_at (Cluster.engine cluster) (Time.ms 30) (fun () ->
         Cluster.recover_site cluster 0));
  run_for cluster (Time.sec 2);
  (* Whatever happened, all sites agree and nothing is stuck. *)
  Array.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "no stuck participants at %d" (Site.id s))
        0 (Site.active_participants s))
    (Cluster.sites cluster);
  Alcotest.(check bool) "replicas agree" true (Cluster.converged cluster)

(* --- read-only optimization end to end ---------------------------------- *)

let test_read_only_optimization_cluster () =
  let base = { (Config.default ~sites:3 ()) with seed = 5 } in
  (* A read-only transaction over a majority read quorum involves one
     remote participant that performs no writes — exactly the case the
     optimization targets.  Count commit-protocol messages via the
     cluster counters (heartbeats would otherwise drown the difference). *)
  let count_msgs config =
    let cluster = Cluster.create config in
    check_committed (run_one cluster ~site:0 ~ops:[ Mix.Write ("a", "1") ]);
    let c = Cluster.counters cluster in
    let before = Rt_metrics.Counter.get c "commit_protocol_msgs" in
    check_committed (run_one cluster ~site:0 ~ops:[ Mix.Read "a" ]);
    (Rt_metrics.Counter.get c "commit_protocol_msgs" - before, cluster)
  in
  let rc = Rt_replica.Replica_control.majority ~sites:3 in
  let off, _ = count_msgs { base with replica_control = rc } in
  let on, cluster_on =
    count_msgs { base with replica_control = rc; read_only_optimization = true }
  in
  (* Unoptimized: vote-req + vote + decision + ack = 4 cross-site
     messages; optimized: vote-req + read-only vote = 2. *)
  Alcotest.(check int) "unoptimized read-only txn" 4 off;
  Alcotest.(check int) "optimized read-only txn" 2 on;
  (* Both the remote and the coordinator's local participant were
     read-only. *)
  Alcotest.(check int) "read-only releases counted" 2
    (Rt_metrics.Counter.get (Cluster.counters cluster_on) "readonly_releases");
  Alcotest.(check (option string)) "state untouched" (Some "1")
    (value_at cluster_on 0 "a")

(* --- random partitions: no forks under quorum --------------------------- *)

let prop_random_partitions_never_fork =
  QCheck.Test.make ~name:"quorum control never forks under random partitions"
    ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 0 30))
    (fun (seed, cut) ->
      let config =
        { (Config.default ~sites:5 ()) with
          replica_control = Rt_replica.Replica_control.majority ~sites:5;
          commit_protocol =
            Config.Quorum_commit { commit_quorum = None; abort_quorum = None };
          seed }
      in
      let cluster = Cluster.create config in
      let mix = { Mix.default with keys = 30; ops_per_txn = 2 } in
      Cluster.populate cluster mix;
      let fleet =
        Client.start_fleet ~cluster ~clients:5 ~mix ~retry_aborts:false ()
      in
      (* A partition whose split point is randomized, then healed. *)
      let left = List.init (1 + (cut mod 4)) (fun i -> i) in
      let right =
        List.filter (fun s -> not (List.mem s left)) [ 0; 1; 2; 3; 4 ]
      in
      Failure.schedule cluster
        [
          (Time.ms 50, Failure.Partition [ left; right ]);
          (Time.ms 250, Failure.Heal);
        ];
      Cluster.run ~until:(Time.ms 400) cluster;
      List.iter Client.stop fleet;
      Cluster.run ~until:(Time.ms 600) cluster;
      (* Fork check: no key may carry the same version with different
         values on two sites. *)
      let sites = Cluster.sites cluster in
      let forked = ref false in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              Kv.iter (Site.kv a) (fun key (ia : Kv.item) ->
                  match Kv.get (Site.kv b) key with
                  | Some ib ->
                      if ia.version = ib.version && ia.value <> ib.value then
                        forked := true
                  | None -> ()))
            sites)
        sites;
      not !forked)

(* --- soak: random crashes and recoveries, invariants hold --------------- *)

let test_soak_crash_recover_available_copies () =
  let config =
    { (Config.default ~sites:3 ()) with
      replica_control = Rt_replica.Replica_control.available_copies;
      checkpoint_every = 20;
      seed = 99 }
  in
  let cluster = Cluster.create config in
  let mix = { Mix.default with keys = 60; ops_per_txn = 3; read_fraction = 0.4 } in
  Cluster.populate cluster mix;
  let fleet = Client.start_fleet ~cluster ~clients:6 ~mix () in
  let proc =
    Failure.random_crashes cluster ~mttf:(Time.ms 400) ~mttr:(Time.ms 80) ()
  in
  Cluster.run ~until:(Time.sec 3) cluster;
  Failure.stop proc;
  List.iter Client.stop fleet;
  (* Let everything recover and drain. *)
  Array.iteri
    (fun i s -> if not (Site.is_up s) then Cluster.recover_site cluster i)
    (Cluster.sites cluster);
  Cluster.run ~until:(Time.sec 4) cluster;
  let stats = Client.total fleet in
  Alcotest.(check bool) "made progress through failures" true
    (stats.committed > 100);
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "site %d serving" (Site.id s))
        true (Site.serving s);
      Alcotest.(check int)
        (Printf.sprintf "site %d no stuck participants" (Site.id s))
        0 (Site.active_participants s))
    (Cluster.sites cluster);
  (* No forks ever (available copies is fork-prone only under
     partitions, which this soak does not inject). *)
  Alcotest.(check bool) "replicas converged" true (Cluster.converged cluster)


(* --- distributed deadlock probes ---------------------------------------- *)

(* Build a deadlock no single site can see locally: reads lock only the
   local copy (ROWA), writes lock every copy, and the two wait edges land
   on different sites. *)
let cross_site_deadlock ~probe_deadlocks ~seed =
  let config =
    { (Config.default ~sites:3 ()) with probe_deadlocks; seed }
  in
  let cluster = Cluster.create config in
  let engine = Cluster.engine cluster in
  let s0 = Cluster.site cluster 0 and s1 = Cluster.site cluster 1 in
  check_committed
    (run_one cluster ~site:2 ~ops:[ Mix.Write ("k1", "0"); Mix.Write ("k2", "0") ]);
  let started = Cluster.now cluster in
  let resolved = ref [] in
  let finish name o =
    resolved := (name, o, Time.sub (Cluster.now cluster) started) :: !resolved
  in
  let drive name site first_read then_write =
    match Site.begin_txn site with
    | None -> Alcotest.fail "begin failed"
    | Some txn ->
        Site.txn_read site txn ~key:first_read ~k:(function
          | Error r -> finish name (Site.Aborted r)
          | Ok _ ->
              (* Wait until both transactions hold their read locks before
                 issuing the conflicting writes. *)
              ignore
                (Engine.schedule_after engine (Time.ms 2) (fun () ->
                     Site.txn_write site txn ~key:then_write ~value:name
                       ~k:(function
                       | Error r -> finish name (Site.Aborted r)
                       | Ok () ->
                           Site.txn_commit site txn ~k:(fun o -> finish name o)))))
  in
  drive "A" s0 "k2" "k1";
  drive "B" s1 "k1" "k2";
  run_for cluster (Time.sec 1);
  (cluster, !resolved)

let test_probes_resolve_distributed_deadlock () =
  let cluster, resolved = cross_site_deadlock ~probe_deadlocks:true ~seed:7 in
  Alcotest.(check int) "both resolved" 2 (List.length resolved);
  let aborts =
    List.filter (fun (_, o, _) -> o <> Site.Committed) resolved
  in
  Alcotest.(check bool) "at least one aborted" true (List.length aborts >= 1);
  (* Probes detect the cycle in a few message delays — far below the
     20ms lock-wait timeout backstop. *)
  List.iter
    (fun (name, _, at) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s resolved before the timeout (%s)" name
           (Format.asprintf "%a" Time.pp at))
        true
        Time.(at < Time.ms 15))
    resolved;
  Alcotest.(check bool) "probe deadlock counted" true
    (Rt_metrics.Counter.get (Cluster.counters cluster) "probe_deadlocks" >= 1)

let test_timeout_resolves_distributed_deadlock_slowly () =
  let _, resolved = cross_site_deadlock ~probe_deadlocks:false ~seed:7 in
  Alcotest.(check int) "both resolved" 2 (List.length resolved);
  (* Without probes the cycle stands until the lock-wait timeout. *)
  Alcotest.(check bool) "some resolution waited for the timeout" true
    (List.exists (fun (_, _, at) -> Time.(at >= Time.ms 15)) resolved)

(* --- storage faults ------------------------------------------------------ *)

(* Seeded regression for the torn-write path end to end: crash a
   participant exactly as its force-durable announcement fires with the
   whole device cycle torn away (torn=0).  Recovery's scan must detect
   the garbled tail, truncate it cleanly — never replay it — and the
   cluster must still pass the full audit. *)
let test_torn_tail_truncated_not_replayed () =
  let config =
    { (Config.default ~sites:3 ()) with
      seed = 11;
      group_commit_window = Time.us 20;
      batch_window = Some (Time.us 10);
      storage_faults =
        { Rt_storage.Storage_faults.off with torn_writes = true } }
  in
  let cluster = Cluster.create config in
  let injected =
    Failure.crash_at_point cluster ~torn:0 ~site:1 ~point:"wal:force-durable"
      ~occurrence:1 ~recover_after:(Time.ms 100) ()
  in
  let outcome = ref None in
  Cluster.submit cluster ~site:0
    ~ops:[ Mix.Write ("a", "1"); Mix.Write ("b", "2") ]
    ~k:(fun o -> outcome := Some o);
  run_for cluster (Time.sec 3);
  Alcotest.(check bool) "crash point reached" true (injected ());
  Alcotest.(check bool) "client outcome fired" true (!outcome <> None);
  let s1 = Cluster.site cluster 1 in
  Alcotest.(check bool) "torn tail detected and truncated" true
    (Site.torn_truncated s1 > 0);
  Alcotest.(check bool) "cycle accounted as torn" true
    ((Site.wal_stats s1).Rt_storage.Wal.st_torn >= 1);
  Alcotest.(check int) "no corruption declared (tail was above horizon)" 0
    (Site.corruption_detected s1);
  let vs =
    Audit.standard ~writes:[ ("a", "1"); ("b", "2") ] ~settle:(Time.sec 1)
      cluster
  in
  Alcotest.(check int) "audit clean" 0 (List.length vs)

(* Corruption below the durable horizon is data loss and must be loud:
   the audit's "storage" invariant has to fire, never a silent replay of
   a truncated log as if nothing happened. *)
let test_log_corruption_below_horizon_is_loud () =
  let config = { (Config.default ~sites:3 ()) with seed = 7 } in
  let cluster = Cluster.create config in
  check_committed (run_one cluster ~site:0 ~ops:[ Mix.Write ("x", "1") ]);
  let s1 = Cluster.site cluster 1 in
  Site.corrupt_wal_record s1 ~lsn:1;
  Cluster.crash_site cluster 1;
  run_for cluster (Time.ms 50);
  Cluster.recover_site cluster 1;
  run_for cluster (Time.ms 500);
  Alcotest.(check bool) "durable loss counted" true
    (Site.corruption_detected s1 > 0);
  let vs = Audit.standard ~settle:(Time.sec 1) cluster in
  Alcotest.(check bool) "storage violation reported loudly" true
    (List.exists (fun v -> v.Audit.inv = "storage") vs)

let () =
  Alcotest.run "core-failures"
    [
      ( "checkpoints",
        [
          Alcotest.test_case "truncation + recovery" `Quick
            test_checkpoint_truncates_and_recovers;
        ] );
      ( "presumed-commit",
        [
          Alcotest.test_case "collecting record forces abort" `Quick
            test_prc_collecting_aborts_after_coordinator_crash;
        ] );
      ( "read-only",
        [
          Alcotest.test_case "cluster saves messages" `Quick
            test_read_only_optimization_cluster;
        ] );
      ( "probes",
        [
          Alcotest.test_case "probes resolve distributed deadlock fast" `Quick
            test_probes_resolve_distributed_deadlock;
          Alcotest.test_case "timeout backstop without probes" `Quick
            test_timeout_resolves_distributed_deadlock_slowly;
        ] );
      ( "storage-faults",
        [
          Alcotest.test_case "torn tail truncated, not replayed" `Quick
            test_torn_tail_truncated_not_replayed;
          Alcotest.test_case "sub-horizon corruption is loud" `Quick
            test_log_corruption_below_horizon_is_loud;
        ] );
      ( "partitions",
        [ QCheck_alcotest.to_alcotest prop_random_partitions_never_fork ] );
      ( "soak",
        [
          Alcotest.test_case "crash/recover soak" `Slow
            test_soak_crash_recover_available_copies;
        ] );
    ]
