(* Tests for the lock manager: compatibility, FIFO fairness, upgrades,
   release/promotion, wait-for graphs, and deadlock detection. *)

open Rt_sim
open Rt_types
open Rt_lock

let txn seq = Ids.Txn_id.make ~origin:0 ~seq ~start_ts:(Time.ms seq)
let tid = Alcotest.testable Ids.Txn_id.pp Ids.Txn_id.equal

let granted = ref []
let on_grant name () = granted := name :: !granted
let reset () = granted := []

let check_outcome = Alcotest.(check bool)

let test_shared_compatible () =
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  check_outcome "a S granted" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(on_grant "a")
     = Granted);
  check_outcome "b S granted" true
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(on_grant "b")
     = Granted);
  Alcotest.(check int) "two holders" 2
    (List.length (Lock_table.holders t ~key:"k"))

let test_exclusive_conflicts () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  check_outcome "a X granted" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive
       ~on_grant:(on_grant "a")
     = Granted);
  check_outcome "b S waits" true
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(on_grant "b")
     = Waiting);
  Alcotest.(check bool) "b is waiting" true (Lock_table.is_waiting t ~txn:b);
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "b granted on release" [ "b" ] !granted;
  Alcotest.(check bool) "b no longer waiting" false
    (Lock_table.is_waiting t ~txn:b)

let test_reentrant () =
  let t = Lock_table.create () in
  let a = txn 1 in
  ignore
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () ->
         ()));
  check_outcome "re-acquire X" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () ->
         Alcotest.fail "no callback")
     = Granted);
  check_outcome "S while holding X" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () ->
         Alcotest.fail "no callback")
     = Granted)

let test_upgrade_sole_holder () =
  let t = Lock_table.create () in
  let a = txn 1 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  check_outcome "upgrade granted" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () ->
         Alcotest.fail "sync grant expected")
     = Granted);
  Alcotest.(check bool) "holds X" true
    (Lock_table.holds t ~txn:a ~key:"k" = Some Exclusive)

let test_upgrade_waits_for_other_reader () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  check_outcome "upgrade waits" true
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive
       ~on_grant:(on_grant "a-upgrade")
     = Waiting);
  Lock_table.release_all t ~txn:b;
  Alcotest.(check (list string)) "upgrade granted after reader left"
    [ "a-upgrade" ] !granted;
  Alcotest.(check bool) "holds X now" true
    (Lock_table.holds t ~txn:a ~key:"k" = Some Exclusive)

let test_upgrade_jumps_queue () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 and c = txn 3 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  (* c wants X and queues; then a upgrades: the upgrade must be served
     before c, otherwise a and c deadlock behind each other. *)
  ignore
    (Lock_table.acquire t ~txn:c ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "c"));
  ignore
    (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive
       ~on_grant:(on_grant "a"));
  Lock_table.release_all t ~txn:b;
  Alcotest.(check (list string)) "upgrade first" [ "a" ] !granted;
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "then c" [ "c"; "a" ] !granted

let test_fifo_no_starvation () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 and c = txn 3 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  (* b queues for X; a later S request from c must NOT overtake b. *)
  ignore
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "b"));
  check_outcome "late S waits behind X" true
    (Lock_table.acquire t ~txn:c ~key:"k" ~mode:Shared ~on_grant:(on_grant "c")
     = Waiting);
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "b served first" [ "b" ] !granted;
  Lock_table.release_all t ~txn:b;
  Alcotest.(check (list string)) "then c" [ "c"; "b" ] !granted

let test_batch_shared_grant () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 and c = txn 3 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(on_grant "b"));
  ignore (Lock_table.acquire t ~txn:c ~key:"k" ~mode:Shared ~on_grant:(on_grant "c"));
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "both readers granted together" [ "c"; "b" ]
    !granted

let test_release_removes_queued_requests () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "b"));
  (* b aborts while waiting. *)
  Lock_table.release_all t ~txn:b;
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "b never granted" [] !granted;
  Alcotest.(check int) "table empty" 0 (Lock_table.locked_keys t)

(* Regression: cancelling a queued request must unblock compatible
   waiters queued behind it, even though no lock was held or released. *)
let test_cancel_waiter_unblocks_queue () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 and c = txn 3 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  (* b queues for X behind a's S; c queues for S behind b. *)
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "b"));
  ignore (Lock_table.acquire t ~txn:c ~key:"k" ~mode:Shared ~on_grant:(on_grant "c"));
  (* b aborts while holding nothing: c is now compatible with a and must
     be granted immediately. *)
  Lock_table.release_all t ~txn:b;
  Alcotest.(check (list string)) "c granted when blocker cancelled" [ "c" ]
    !granted

(* Regression (found by the nemesis lossy campaign): the same operation
   delivered twice queues two requests for one txn.  Granting the first
   used to wipe every waits-index entry for the key, so the second
   request survived release_all invisibly and was re-granted to the
   already-dead transaction during its own release — a permanent leak. *)
let test_duplicate_queued_request_no_leak () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "b1"));
  ignore
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "b2"));
  Lock_table.release_all t ~txn:a;
  (* Both copies are granted (idempotent for one txn), one holder entry. *)
  Alcotest.(check (list string)) "both callbacks fired" [ "b2"; "b1" ] !granted;
  Alcotest.(check int) "single holder entry" 1
    (List.length (Lock_table.holders t ~key:"k"));
  Lock_table.release_all t ~txn:b;
  Alcotest.(check int) "no leak after release" 0 (Lock_table.locked_keys t)

(* An S and an X request from one txn queued together must coalesce into
   a single exclusive hold, not a mixed holder list or a self-deadlock. *)
let test_queued_s_then_x_same_txn_coalesces () =
  reset ();
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(on_grant "bs"));
  ignore
    (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(on_grant "bx"));
  Lock_table.release_all t ~txn:a;
  Alcotest.(check (list string)) "both granted in order" [ "bx"; "bs" ] !granted;
  Alcotest.(check bool) "holds X" true
    (Lock_table.holds t ~txn:b ~key:"k" = Some Exclusive);
  Alcotest.(check int) "single holder entry" 1
    (List.length (Lock_table.holders t ~key:"k"));
  Lock_table.release_all t ~txn:b;
  Alcotest.(check int) "no leak after release" 0 (Lock_table.locked_keys t)

let test_held_keys () =
  let t = Lock_table.create () in
  let a = txn 1 in
  ignore (Lock_table.acquire t ~txn:a ~key:"x" ~mode:Shared ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:a ~key:"y" ~mode:Exclusive ~on_grant:(fun () -> ()));
  Alcotest.(check (list string)) "held keys" [ "x"; "y" ]
    (Lock_table.held_keys t ~txn:a)

(* --- deadlock detection --------------------------------------------- *)

let test_deadlock_cycle_detected () =
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"x" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"y" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:a ~key:"y" ~mode:Exclusive ~on_grant:(fun () -> ()));
  Alcotest.(check (option tid)) "no deadlock yet" None
    (Lock_table.detect_deadlock t);
  ignore (Lock_table.acquire t ~txn:b ~key:"x" ~mode:Exclusive ~on_grant:(fun () -> ()));
  (match Lock_table.detect_deadlock t with
  | Some victim ->
      (* Youngest = b (started later). *)
      Alcotest.(check tid) "youngest is victim" b victim
  | None -> Alcotest.fail "deadlock not detected");
  (* Aborting the victim unblocks the system. *)
  Lock_table.release_all t ~txn:b;
  Alcotest.(check (option tid)) "resolved" None (Lock_table.detect_deadlock t)

let test_deadlock_victim_policy () =
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"x" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"y" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:a ~key:"y" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"x" ~mode:Exclusive ~on_grant:(fun () -> ()));
  (match Lock_table.detect_deadlock ~policy:`Oldest t with
  | Some victim -> Alcotest.(check tid) "oldest policy" a victim
  | None -> Alcotest.fail "deadlock not detected")

let test_upgrade_deadlock () =
  (* Two readers that both try to upgrade deadlock with each other. *)
  let t = Lock_table.create () in
  let a = txn 1 and b = txn 2 in
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Shared ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:a ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  ignore (Lock_table.acquire t ~txn:b ~key:"k" ~mode:Exclusive ~on_grant:(fun () -> ()));
  match Lock_table.detect_deadlock t with
  | Some _ -> ()
  | None -> Alcotest.fail "upgrade-upgrade deadlock not detected"

(* --- Wfg primitives --------------------------------------------------- *)

let test_wfg_cycle () =
  let a = txn 1 and b = txn 2 and c = txn 3 in
  let g = Wfg.of_edges [ (a, b); (b, c) ] in
  Alcotest.(check bool) "acyclic" true (Wfg.find_cycle g = None);
  Wfg.add_edge g c a;
  (match Wfg.find_cycle g with
  | Some cycle -> Alcotest.(check int) "cycle length" 3 (List.length cycle)
  | None -> Alcotest.fail "cycle expected");
  Alcotest.(check tid) "youngest victim" c
    (Wfg.victim [ a; b; c ]);
  Alcotest.(check tid) "oldest victim" a
    (Wfg.victim ~policy:`Oldest [ a; b; c ])

let test_wfg_self_edges_ignored () =
  let a = txn 1 in
  let g = Wfg.of_edges [ (a, a) ] in
  Alcotest.(check bool) "self edge no cycle" true (Wfg.find_cycle g = None)

let prop_wfg_cycle_detection_matches_reachability =
  let gen =
    QCheck.Gen.(small_list (pair (int_range 0 6) (int_range 0 6)))
  in
  QCheck.Test.make ~name:"wfg cycle detection is sound+complete" ~count:300
    (QCheck.make gen ~print:(fun edges ->
         String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))
    (fun int_edges ->
      let node i = txn (i + 1) in
      let edges = List.map (fun (a, b) -> (node a, node b)) int_edges in
      let g = Wfg.of_edges edges in
      (* Reference: Floyd-Warshall style reachability over non-self edges. *)
      let n = 7 in
      let reach = Array.make_matrix n n false in
      List.iter (fun (a, b) -> if a <> b then reach.(a).(b) <- true) int_edges;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let has_cycle = ref false in
      for i = 0 to n - 1 do
        if reach.(i).(i) then has_cycle := true
      done;
      (Wfg.find_cycle g <> None) = !has_cycle)

(* Randomized lock workload: invariants hold at every step. *)
let prop_lock_invariants =
  let gen =
    QCheck.Gen.(
      small_list
        (triple (int_range 1 5) (int_range 0 3) (oneofl [ `S; `X; `Release ])))
  in
  QCheck.Test.make ~name:"lock table invariants under random workloads"
    ~count:300
    (QCheck.make gen)
    (fun ops ->
      let t = Lock_table.create () in
      let key k = Printf.sprintf "k%d" k in
      let ok = ref true in
      List.iter
        (fun (ti, ki, op) ->
          let tx = txn ti in
          (match op with
          | `S ->
              ignore
                (Lock_table.acquire t ~txn:tx ~key:(key ki) ~mode:Shared
                   ~on_grant:(fun () -> ()))
          | `X ->
              ignore
                (Lock_table.acquire t ~txn:tx ~key:(key ki) ~mode:Exclusive
                   ~on_grant:(fun () -> ()))
          | `Release -> Lock_table.release_all t ~txn:tx);
          (* Invariant: a key's holders are one X or all S. *)
          for k = 0 to 3 do
            let holders = Lock_table.holders t ~key:(key k) in
            let xs =
              List.filter (fun (_, m) -> m = Lock_table.Exclusive) holders
            in
            if List.length xs > 1 then ok := false;
            if List.length xs = 1 && List.length holders > 1 then ok := false
          done)
        ops;
      !ok)

let () =
  Alcotest.run "lock"
    [
      ( "grants",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick
            test_exclusive_conflicts;
          Alcotest.test_case "reentrant" `Quick test_reentrant;
          Alcotest.test_case "batch shared grant" `Quick test_batch_shared_grant;
          Alcotest.test_case "held keys" `Quick test_held_keys;
        ] );
      ( "upgrades",
        [
          Alcotest.test_case "sole holder" `Quick test_upgrade_sole_holder;
          Alcotest.test_case "waits for reader" `Quick
            test_upgrade_waits_for_other_reader;
          Alcotest.test_case "jumps queue" `Quick test_upgrade_jumps_queue;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "fifo no starvation" `Quick test_fifo_no_starvation;
          Alcotest.test_case "release removes queued" `Quick
            test_release_removes_queued_requests;
          Alcotest.test_case "cancelled waiter unblocks queue" `Quick
            test_cancel_waiter_unblocks_queue;
          Alcotest.test_case "duplicate queued request no leak" `Quick
            test_duplicate_queued_request_no_leak;
          Alcotest.test_case "queued S then X coalesces" `Quick
            test_queued_s_then_x_same_txn_coalesces;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "cycle detected" `Quick test_deadlock_cycle_detected;
          Alcotest.test_case "victim policy" `Quick test_deadlock_victim_policy;
          Alcotest.test_case "upgrade deadlock" `Quick test_upgrade_deadlock;
          Alcotest.test_case "wfg cycle" `Quick test_wfg_cycle;
          Alcotest.test_case "wfg self edges" `Quick test_wfg_self_edges_ignored;
          QCheck_alcotest.to_alcotest
            prop_wfg_cycle_detection_matches_reachability;
          QCheck_alcotest.to_alcotest prop_lock_invariants;
        ] );
    ]
