(* Tests for replica-control planners: plan contents under full and
   degraded up-sets, availability boundaries, and protocol properties. *)

open Rt_replica
module RC = Replica_control

let all_up _ = true
let down these s = not (List.mem s these)
let ids n = List.init n (fun i -> i)

let test_rowa_plans () =
  let rc = RC.rowa in
  Alcotest.(check (option (list int))) "read local" (Some [ 1 ])
    (RC.read_plan rc ~self:1 ~up:all_up ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "write all" (Some [ 0; 1; 2 ])
    (RC.write_plan rc ~self:1 ~up:all_up ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "write unavailable when one down" None
    (RC.write_plan rc ~self:1 ~up:(down [ 2 ]) ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "read falls over to another up site"
    (Some [ 0 ])
    (RC.read_plan rc ~self:1 ~up:(down [ 1 ]) ~replicas:(ids 3))

let test_available_copies_plans () =
  let rc = RC.available_copies in
  Alcotest.(check (option (list int))) "write to up copies" (Some [ 0; 2 ])
    (RC.write_plan rc ~self:0 ~up:(down [ 1 ]) ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "write needs one copy" None
    (RC.write_plan rc ~self:0 ~up:(down [ 0; 1; 2 ]) ~replicas:(ids 3));
  Alcotest.(check bool) "needs catch-up on recovery" true
    (RC.needs_catchup_on_recovery rc);
  Alcotest.(check bool) "not partition safe" false (RC.tolerates_partitions rc)

let test_quorum_plans () =
  let rc = RC.majority ~sites:5 in
  (match RC.read_plan rc ~self:3 ~up:all_up ~replicas:(ids 5) with
  | Some plan ->
      Alcotest.(check int) "majority read size" 3 (List.length plan);
      Alcotest.(check bool) "prefers self" true (List.mem 3 plan)
  | None -> Alcotest.fail "plan expected");
  (match RC.write_plan rc ~self:4 ~up:(down [ 0; 1 ]) ~replicas:(ids 5) with
  | Some plan ->
      Alcotest.(check int) "write quorum from survivors" 3 (List.length plan);
      Alcotest.(check bool) "only up sites" true
        (List.for_all (fun s -> s >= 2) plan)
  | None -> Alcotest.fail "plan expected");
  Alcotest.(check (option (list int))) "minority cannot write" None
    (RC.write_plan rc ~self:0 ~up:(down [ 2; 3; 4 ]) ~replicas:(ids 5));
  Alcotest.(check bool) "needs version resolution" true
    (RC.read_needs_version_resolution rc);
  Alcotest.(check bool) "partition safe" true (RC.tolerates_partitions rc)

let test_primary_plans () =
  let rc = RC.primary 1 in
  Alcotest.(check (option (list int))) "reads at primary" (Some [ 1 ])
    (RC.read_plan rc ~self:0 ~up:all_up ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "writes at primary + up backups"
    (Some [ 0; 1; 2 ])
    (RC.write_plan rc ~self:0 ~up:all_up ~replicas:(ids 3));
  (* Succession: with the primary down, the lowest up site acts. *)
  Alcotest.(check (option (list int))) "succession to lowest up site"
    (Some [ 0 ])
    (RC.read_plan rc ~self:0 ~up:(down [ 1 ]) ~replicas:(ids 3));
  Alcotest.(check (option (list int))) "no site up = unavailable" None
    (RC.read_plan rc ~self:0 ~up:(down [ 0; 1; 2 ]) ~replicas:(ids 3))

let test_weighted_quorum_plan () =
  let rc = RC.Quorum (Rt_quorum.Votes.make ~votes:[| 3; 1; 1 |] ~read_quorum:3 ~write_quorum:3) in
  (match RC.read_plan rc ~self:1 ~up:all_up ~replicas:(ids 3) with
  | Some plan ->
      (* The heavy site alone satisfies the quorum; greedy picks it. *)
      Alcotest.(check (list int)) "heavy site suffices" [ 0 ] plan
  | None -> Alcotest.fail "plan expected");
  match RC.write_plan rc ~self:1 ~up:(down [ 0 ]) ~replicas:(ids 3) with
  | Some _ -> Alcotest.fail "cannot write without the heavy site"
  | None -> ()

(* Plans over a replica subset (a shard's replica set under partial
   replication) stay inside the subset. *)
let test_subset_plans () =
  let replicas = [ 1; 3; 4 ] in
  Alcotest.(check (option (list int))) "rowa reads a replica" (Some [ 1 ])
    (RC.read_plan RC.rowa ~self:1 ~up:all_up ~replicas);
  Alcotest.(check (option (list int))) "rowa writes all replicas only"
    (Some [ 1; 3; 4 ])
    (RC.write_plan RC.rowa ~self:0 ~up:all_up ~replicas);
  Alcotest.(check (option (list int)))
    "non-replica coordinator reads remotely" (Some [ 1 ])
    (RC.read_plan RC.rowa ~self:0 ~up:all_up ~replicas);
  Alcotest.(check (option (list int))) "available copies skips down replica"
    (Some [ 1; 4 ])
    (RC.write_plan RC.available_copies ~self:0 ~up:(down [ 3 ]) ~replicas);
  (* Majority over the 3-replica subset: 2 of {1;3;4}. *)
  let rc = RC.majority ~sites:5 in
  (match RC.read_plan rc ~self:3 ~up:all_up ~replicas with
  | Some plan ->
      Alcotest.(check int) "subset majority size" 2 (List.length plan);
      Alcotest.(check bool) "inside the subset" true
        (List.for_all (fun s -> List.mem s replicas) plan)
  | None -> Alcotest.fail "plan expected");
  Alcotest.(check (option (list int))) "subset minority cannot write" None
    (RC.write_plan rc ~self:1 ~up:(down [ 3; 4 ]) ~replicas)

(* Read/write plans must always intersect for quorum schemes — on every
   up-set where both exist. *)
let prop_quorum_plans_intersect =
  QCheck.Test.make ~name:"quorum read/write plans intersect" ~count:300
    QCheck.(pair (int_range 1 7) (int_range 0 127))
    (fun (sites, up_mask) ->
      let rc = RC.majority ~sites in
      let up s = up_mask land (1 lsl s) <> 0 in
      match
        ( RC.read_plan rc ~self:0 ~up ~replicas:(ids sites),
          RC.write_plan rc ~self:0 ~up ~replicas:(ids sites) )
      with
      | Some r, Some w -> List.exists (fun s -> List.mem s w) r
      | _ -> true)

(* Plans only ever name up sites. *)
let prop_plans_respect_up_set =
  QCheck.Test.make ~name:"plans contain only up sites" ~count:300
    QCheck.(triple (int_range 1 6) (int_range 0 63) (int_range 0 3))
    (fun (sites, up_mask, which) ->
      let rc =
        match which with
        | 0 -> RC.rowa
        | 1 -> RC.available_copies
        | 2 -> RC.majority ~sites
        | _ -> RC.primary 0
      in
      let up s = up_mask land (1 lsl s) <> 0 in
      let check = function
        | Some plan -> List.for_all up plan
        | None -> true
      in
      check (RC.read_plan rc ~self:0 ~up ~replicas:(ids sites))
      && check (RC.write_plan rc ~self:0 ~up ~replicas:(ids sites)))

let () =
  Alcotest.run "replica"
    [
      ( "plans",
        [
          Alcotest.test_case "rowa" `Quick test_rowa_plans;
          Alcotest.test_case "available copies" `Quick
            test_available_copies_plans;
          Alcotest.test_case "majority quorum" `Quick test_quorum_plans;
          Alcotest.test_case "primary copy" `Quick test_primary_plans;
          Alcotest.test_case "weighted quorum" `Quick test_weighted_quorum_plan;
          Alcotest.test_case "shard replica subsets" `Quick test_subset_plans;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_quorum_plans_intersect;
          QCheck_alcotest.to_alcotest prop_plans_respect_up_set;
        ] );
    ]
