(* Paxos Commit: direct properties of the acceptor core (ballot safety,
   quorum intersection) plus sandbox sweeps of the behaviours that make
   it a sixth protocol rather than a fifth 2PC variant — non-blocking
   termination through leader election while the coordinator is down,
   and survival of any F acceptor losses. *)

open Rt_commit
open Protocol

let timeouts = default_timeouts

let cfg ?f n =
  Paxos_commit.config ~all:(List.init n (fun i -> i)) ~coordinator:0 ?f ()

let dec = Alcotest.testable pp_decision decision_equal

(* --- configuration ------------------------------------------------- *)

let test_config_defaults () =
  let c = cfg 5 in
  Alcotest.(check int) "max F" 2 c.Paxos_commit.f;
  Alcotest.(check (list int)) "acceptors" [ 0; 1; 2; 3; 4 ]
    c.Paxos_commit.acceptors;
  Alcotest.(check int) "quorum" 3 (Paxos_commit.quorum c);
  let c0 = cfg ~f:0 5 in
  Alcotest.(check (list int)) "sole acceptor" [ 0 ] c0.Paxos_commit.acceptors;
  Alcotest.(check bool) "degenerate" true (Paxos_commit.degenerate c0);
  Alcotest.(check bool) "not degenerate" false (Paxos_commit.degenerate c)

let test_config_rejects () =
  Alcotest.check_raises "negative F"
    (Invalid_argument "Paxos_commit.config: negative F") (fun () ->
      ignore (cfg ~f:(-1) 3));
  Alcotest.check_raises "too large F"
    (Invalid_argument "Paxos_commit.config: not enough sites for 2F+1 acceptors")
    (fun () -> ignore (cfg ~f:2 3));
  Alcotest.check_raises "no participants"
    (Invalid_argument "Paxos_commit.config: no participants") (fun () ->
      ignore (Paxos_commit.config ~all:[] ~coordinator:0 ()))

let test_recovery_presumption () =
  (* F = 0: an empty coordinator log is the 2PC-PrN abort presumption. *)
  let c =
    Paxos_commit.coordinator_recovered ~config:(cfg ~f:0 3) ~self:0 ~timeouts
      ~logged:`Nothing
  in
  Alcotest.(check (option dec)) "presumed abort" (Some Abort)
    (Paxos_commit.coord_decision c);
  (* F > 0: a surviving quorum may have chosen; presuming is unsound. *)
  Alcotest.check_raises "empty log with F > 0"
    (Invalid_argument "Paxos_commit.coordinator_recovered: empty log with F > 0")
    (fun () ->
      ignore
        (Paxos_commit.coordinator_recovered ~config:(cfg ~f:1 3) ~self:0
           ~timeouts ~logged:`Nothing))

(* --- acceptor core -------------------------------------------------- *)

let test_equal_ballot_never_overwrites () =
  let a = Paxos_commit.acc_init (cfg ~f:1 3) in
  let b1 : epoch = (1, 1) in
  let a, r1 = Paxos_commit.acc_p2a a ~ballot:b1 ~rm:2 ~v:Commit in
  (match r1 with
  | `P2b v -> Alcotest.check dec "first accept acks itself" Commit v
  | `Nack _ -> Alcotest.fail "fresh ballot nacked");
  (* A conflicting proposal at the same ballot must be re-acknowledged
     with the original value, and the stored triple must not change. *)
  let a, r2 = Paxos_commit.acc_p2a a ~ballot:b1 ~rm:2 ~v:Abort in
  (match r2 with
  | `P2b v -> Alcotest.check dec "duplicate re-acks original" Commit v
  | `Nack _ -> Alcotest.fail "equal ballot nacked");
  Alcotest.(check int) "one triple" 1
    (List.length (Paxos_commit.acc_accepted a));
  match Paxos_commit.acc_accepted a with
  | [ (rm, b, v) ] ->
      Alcotest.(check int) "instance" 2 rm;
      Alcotest.(check bool) "ballot" true (epoch_compare b b1 = 0);
      Alcotest.check dec "value" Commit v
  | _ -> Alcotest.fail "unexpected accepted set"

let test_stale_ballots_fenced () =
  let a = Paxos_commit.acc_init (cfg ~f:1 3) in
  let a, _ = Paxos_commit.acc_p1a a ~ballot:(3, 1) in
  (match Paxos_commit.acc_p1a a ~ballot:(2, 2) with
  | _, `Nack promised ->
      Alcotest.(check bool) "reports promise" true
        (epoch_compare promised (3, 1) = 0)
  | _, `P1b _ -> Alcotest.fail "stale prepare admitted");
  match Paxos_commit.acc_p2a a ~ballot:(1, 0) ~rm:1 ~v:Commit with
  | _, `Nack _ -> ()
  | _, `P2b _ -> Alcotest.fail "stale accept admitted"

(* Random acceptor histories: whatever the interleaving of prepares and
   accepts, (a) the first value accepted for an (instance, ballot) pair is
   the value every later equal-ballot accept acknowledges, and (b) the
   ballot recorded for an instance never decreases. *)
let prop_acceptor_ballot_safety =
  let op_gen =
    QCheck.Gen.(
      let ballot = map2 (fun r s -> (r, s)) (int_range 0 4) (int_range 0 2) in
      frequency
        [
          (1, map (fun b -> `P1a b) ballot);
          ( 3,
            map3
              (fun b rm v -> `P2a (b, rm, if v then Commit else Abort))
              ballot (int_range 0 2) bool );
        ])
  in
  let print_op = function
    | `P1a (r, s) -> Printf.sprintf "p1a(%d.%d)" r s
    | `P2a ((r, s), rm, v) ->
        Printf.sprintf "p2a(%d.%d,rm=%d,%s)" r s rm
          (match v with Commit -> "C" | Abort -> "A")
  in
  QCheck.Test.make ~name:"acceptor ballot safety" ~count:500
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 40) op_gen)
       ~print:(fun ops -> String.concat ";" (List.map print_op ops)))
    (fun ops ->
      let config = cfg ~f:1 3 in
      let acc = ref (Paxos_commit.acc_init config) in
      (* First value accepted per (instance, ballot). *)
      let first : (int * epoch, decision) Hashtbl.t = Hashtbl.create 16 in
      let ballots : (int, epoch) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun op ->
          match op with
          | `P1a b ->
              let a, _ = Paxos_commit.acc_p1a !acc ~ballot:b in
              acc := a;
              true
          | `P2a (b, rm, v) -> (
              let a, rep = Paxos_commit.acc_p2a !acc ~ballot:b ~rm ~v in
              acc := a;
              match rep with
              | `Nack _ -> true
              | `P2b v' ->
                  let expected =
                    match Hashtbl.find_opt first (rm, b) with
                    | Some v0 -> v0
                    | None ->
                        Hashtbl.add first (rm, b) v';
                        v'
                  in
                  let monotone =
                    match Hashtbl.find_opt ballots rm with
                    | Some b0 -> epoch_compare b b0 >= 0
                    | None -> true
                  in
                  Hashtbl.replace ballots rm b;
                  decision_equal v' expected && monotone))
        ops)

(* Any two quorums of any valid (F, N) configuration share an acceptor:
   the property that makes a chosen value indelible. *)
let prop_quorum_intersection =
  let gen =
    QCheck.Gen.(
      int_range 1 9 >>= fun n ->
      int_range 0 ((n - 1) / 2) >>= fun f ->
      (* Two arbitrary acceptor subsets of quorum size. *)
      let subset seed =
        map (fun bits -> (seed, bits)) (array_size (return (2 * f + 1)) bool)
      in
      map2 (fun (_, b1) (_, b2) -> (n, f, b1, b2)) (subset 0) (subset 1))
  in
  QCheck.Test.make ~name:"quorums of every valid (F,N) intersect" ~count:500
    (QCheck.make gen ~print:(fun (n, f, _, _) -> Printf.sprintf "n=%d f=%d" n f))
    (fun (n, f, bits1, bits2) ->
      let config = cfg ~f n in
      let acceptors = Array.of_list config.Paxos_commit.acceptors in
      let q = Paxos_commit.quorum config in
      (* Grow each subset deterministically to quorum size. *)
      let pick bits =
        let chosen = ref [] in
        Array.iteri
          (fun i keep -> if keep then chosen := acceptors.(i) :: !chosen)
          bits;
        let i = ref 0 in
        while List.length !chosen < q do
          if not (List.mem acceptors.(!i) !chosen) then
            chosen := acceptors.(!i) :: !chosen;
          incr i
        done;
        !chosen
      in
      let q1 = pick bits1 and q2 = pick bits2 in
      List.length q1 >= q
      && List.length q2 >= q
      && List.exists (fun s -> List.mem s q2) q1)

(* --- sandbox: failure-free ------------------------------------------ *)

let commits_everywhere (o : Sandbox.outcome) ~sites =
  o.agreement && o.all_decided
  && List.length o.decisions = sites
  && List.for_all (fun (_, d) -> decision_equal d Commit) o.decisions

let test_failure_free_commit () =
  List.iter
    (fun (sites, f) ->
      let o =
        Sandbox.run_fifo
          ~proto:(Sandbox.P_paxos { f })
          ~sites ~votes:(Array.make sites true) ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "commit at N=%d F=%d" sites f)
        true
        (commits_everywhere o ~sites);
      Alcotest.(check bool)
        (Printf.sprintf "unblocked at N=%d F=%d" sites f)
        false o.blocked)
    [ (3, 0); (3, 1); (5, 0); (5, 1); (5, 2); (7, 3) ]

let test_refusal_aborts () =
  List.iter
    (fun f ->
      let votes = [| true; true; true; false; true |] in
      let o = Sandbox.run_fifo ~proto:(Sandbox.P_paxos { f }) ~sites:5 ~votes () in
      Alcotest.(check bool) "agreement" true o.agreement;
      Alcotest.(check bool) "all decided" true o.all_decided;
      List.iter
        (fun (s, d) ->
          Alcotest.check dec (Printf.sprintf "site %d aborted (F=%d)" s f)
            Abort d)
        o.decisions)
    [ 0; 1; 2 ]

let test_costs_match_analytic () =
  (* Failure-free commit: 2PC's message pattern plus, per extra acceptor,
     one phase-2a per instance and one phase-2b relay per vote — and the
     same forced-write bill (2PC-PrN's).  Must hold on every schedule. *)
  List.iter
    (fun (sites, f) ->
      let p = sites - 1 in
      let expect_msgs = (4 * p) + (2 * f * ((2 * p) + 1)) in
      let expect_forced = 1 + (2 * sites) in
      let fifo =
        Sandbox.run_fifo
          ~proto:(Sandbox.P_paxos { f })
          ~sites ~votes:(Array.make sites true) ()
      in
      Alcotest.(check int)
        (Printf.sprintf "messages N=%d F=%d" sites f)
        expect_msgs fifo.messages;
      Alcotest.(check int)
        (Printf.sprintf "forced N=%d F=%d" sites f)
        expect_forced fifo.forced_writes;
      for seed = 1 to 10 do
        let o =
          Sandbox.run ~seed
            ~proto:(Sandbox.P_paxos { f })
            ~sites ~votes:(Array.make sites true) ()
        in
        Alcotest.(check int)
          (Printf.sprintf "messages N=%d F=%d seed=%d" sites f seed)
          expect_msgs o.messages;
        Alcotest.(check int)
          (Printf.sprintf "forced N=%d F=%d seed=%d" sites f seed)
          expect_forced o.forced_writes
      done)
    [ (3, 0); (3, 1); (5, 1); (5, 2) ]

(* --- sandbox: fault tolerance --------------------------------------- *)

let test_coordinator_crash_nonblocking () =
  (* The tentpole behaviour: with F >= 1 a dead coordinator does not
     block the survivors — a participant usurps leadership and drives
     every instance to a decision.  No recovery ever happens, so 2PC
     would block here. *)
  List.iter
    (fun (sites, f) ->
      for k = sites + 1 to sites + 12 do
        for seed = 1 to 8 do
          let o =
            Sandbox.run ~seed
              ~crashes:[ (0, k) ]
              ~max_steps:4000
              ~proto:(Sandbox.P_paxos { f })
              ~sites ~votes:(Array.make sites true) ()
          in
          let tag =
            Printf.sprintf "N=%d F=%d crash@%d seed=%d" sites f k seed
          in
          Alcotest.(check bool) (tag ^ " agreement") true o.agreement;
          Alcotest.(check bool) (tag ^ " survivors decided") true o.all_decided
        done
      done)
    [ (3, 1); (5, 1); (5, 2) ]

let test_acceptor_crash_tolerated () =
  (* Losing up to F acceptors (never the coordinator) must not prevent
     commit, and never breaks agreement. *)
  List.iter
    (fun (sites, f, crashes) ->
      for seed = 1 to 10 do
        let o =
          Sandbox.run ~seed ~crashes ~max_steps:4000
            ~proto:(Sandbox.P_paxos { f })
            ~sites ~votes:(Array.make sites true) ()
        in
        let tag = Printf.sprintf "N=%d F=%d seed=%d" sites f seed in
        Alcotest.(check bool) (tag ^ " agreement") true o.agreement;
        Alcotest.(check bool) (tag ^ " survivors decided") true o.all_decided
      done)
    [
      (3, 1, [ (1, 9) ]);
      (5, 1, [ (2, 11) ]);
      (5, 2, [ (1, 9); (3, 13) ]);
    ]

let test_crash_recovery_converges () =
  (* Crash/recover sweeps across protocol stages: every live site ends
     with the same decision, for both the degenerate and the replicated
     configuration. *)
  List.iter
    (fun (site, f) ->
      for seed = 1 to 15 do
        let o =
          Sandbox.run ~seed
            ~crashes:[ (site, 6 + (seed mod 10)) ]
            ~recoveries:[ (site, 60) ]
            ~max_steps:5000
            ~proto:(Sandbox.P_paxos { f })
            ~sites:3 ~votes:[| true; true; true |] ()
        in
        let tag = Printf.sprintf "site=%d F=%d seed=%d" site f seed in
        Alcotest.(check bool) (tag ^ " agreement") true o.agreement;
        Alcotest.(check bool) (tag ^ " all decided") true o.all_decided
      done)
    [ (0, 0); (1, 0); (0, 1); (1, 1); (2, 1) ]

let test_recovered_acceptor_abstains () =
  (* A recovered acceptor lost its volatile promises: it must never again
     answer phase-1 or phase-2 traffic (abstention is the safety valve
     that 2F+1 acceptors buy). *)
  let p =
    Paxos_commit.participant_recovered ~config:(cfg ~f:1 3) ~self:1
      ~state:P_uncertain ~timeouts
  in
  let _, a1 = Paxos_commit.part_step p (Recv (2, Px_p1a (4, 2))) in
  Alcotest.(check int) "no phase-1 reply" 0 (List.length a1);
  let _, a2 = Paxos_commit.part_step p (Recv (2, Px_p2a ((4, 2), 1, Commit))) in
  Alcotest.(check int) "no phase-2 reply" 0 (List.length a2)

let () =
  Alcotest.run "paxos"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "rejects" `Quick test_config_rejects;
          Alcotest.test_case "recovery presumption" `Quick
            test_recovery_presumption;
        ] );
      ( "acceptor",
        [
          Alcotest.test_case "equal ballot never overwrites" `Quick
            test_equal_ballot_never_overwrites;
          Alcotest.test_case "stale ballots fenced" `Quick
            test_stale_ballots_fenced;
          QCheck_alcotest.to_alcotest prop_acceptor_ballot_safety;
          QCheck_alcotest.to_alcotest prop_quorum_intersection;
        ] );
      ( "failure-free",
        [
          Alcotest.test_case "commit" `Quick test_failure_free_commit;
          Alcotest.test_case "refusal aborts" `Quick test_refusal_aborts;
          Alcotest.test_case "costs match analytic" `Quick
            test_costs_match_analytic;
        ] );
      ( "fault-tolerance",
        [
          Alcotest.test_case "coordinator crash non-blocking" `Quick
            test_coordinator_crash_nonblocking;
          Alcotest.test_case "acceptor crash tolerated" `Quick
            test_acceptor_crash_tolerated;
          Alcotest.test_case "crash/recovery converges" `Quick
            test_crash_recovery_converges;
          Alcotest.test_case "recovered acceptor abstains" `Quick
            test_recovered_acceptor_abstains;
        ] );
    ]
